//! Interpreter invariants under random schedules: the world never
//! panics, monitors balance when tasks go idle, counters stay sane, and
//! stepping is deterministic.

use nadroid_corpus::{generate, AppSpec, PatternKind};
use nadroid_dynamic::{Step, World};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn spec_strategy() -> impl Strategy<Value = AppSpec> {
    let kinds = PatternKind::all();
    (
        proptest::collection::vec(0usize..=1, kinds.len()),
        any::<u64>(),
    )
        .prop_map(move |(counts, seed)| {
            let mut spec = AppSpec::new("Interp", seed);
            for (i, &n) in counts.iter().enumerate() {
                spec = spec.with(kinds[i], n);
            }
            spec
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random schedules on random generated apps never panic, and the
    /// world's invariants hold throughout.
    #[test]
    fn random_schedules_preserve_invariants(spec in spec_strategy(), sched_seed in any::<u64>()) {
        let app = generate(&spec);
        let mut world = World::new(&app.program);
        let mut rng = rand::rngs::StdRng::seed_from_u64(sched_seed);
        for _ in 0..300 {
            if world.npe.is_some() {
                break;
            }
            let steps = world.enabled_steps();
            if world.events >= 10 && steps.iter().all(|s| matches!(s, Step::Dispatch(_))) {
                break;
            }
            let Some(step) = steps.choose(&mut rng).cloned() else { break };
            world.step(&step);

            // Invariants:
            // 1. Monitors are only held by live tasks with frames.
            for (owner, depth) in world.monitors.values() {
                prop_assert!(*depth > 0);
                let t = &world.tasks[owner.0 as usize];
                prop_assert!(
                    !t.frames.is_empty(),
                    "a task without frames cannot hold a monitor"
                );
            }
            // 2. Idle loopers have no leftover monitors owned by them.
            for (i, t) in world.tasks.iter().enumerate() {
                if t.is_looper && t.frames.is_empty() {
                    prop_assert!(
                        !world
                            .monitors
                            .values()
                            .any(|(o, _)| o.0 as usize == i),
                        "looper {i} finished its callback holding a lock"
                    );
                }
            }
            // 3. Counters are monotone and bounded.
            prop_assert!(world.events <= world.steps);
        }
    }

    /// Stepping is deterministic: replaying the recorded schedule yields
    /// an identical final state.
    #[test]
    fn schedules_replay_identically(spec in spec_strategy(), sched_seed in any::<u64>()) {
        let app = generate(&spec);
        let mut world = World::new(&app.program);
        let mut rng = rand::rngs::StdRng::seed_from_u64(sched_seed);
        for _ in 0..150 {
            if world.npe.is_some() {
                break;
            }
            let steps = world.enabled_steps();
            let Some(step) = steps.choose(&mut rng).cloned() else { break };
            world.step(&step);
        }
        let replayed = nadroid_dynamic::replay(&app.program, &world.schedule);
        prop_assert_eq!(&replayed.npe, &world.npe);
        prop_assert_eq!(replayed.steps, world.steps);
        prop_assert_eq!(replayed.events, world.events);
        prop_assert_eq!(replayed.heap.len(), world.heap.len());
        prop_assert_eq!(&replayed.trace, &world.trace);
    }
}
