//! Runtime representation: heap, flattened code, frames, and tasks.

use nadroid_ir::{Block, ClassId, Cond, FieldId, InstrId, Local, MethodId, Op, Program, Stmt};
use std::collections::HashMap;
use std::rc::Rc;

/// A reference into the interpreter heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HeapRef(pub u32);

/// A runtime reference value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Value {
    /// The null reference.
    #[default]
    Null,
    /// A heap object.
    Obj(HeapRef),
}

impl Value {
    /// The heap reference, if non-null.
    #[must_use]
    pub fn as_ref(self) -> Option<HeapRef> {
        match self {
            Value::Null => None,
            Value::Obj(r) => Some(r),
        }
    }
}

/// One heap object: its class and reference fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeapObj {
    /// The object's class.
    pub class: ClassId,
    /// Field values (unset fields read as null).
    pub fields: HashMap<FieldId, Value>,
}

/// The interpreter heap.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Heap {
    objects: Vec<HeapObj>,
    /// Which free instruction wrote the current null in a field, for
    /// attributing NPEs to specific (use, free) pairs.
    null_writers: HashMap<(u32, FieldId), InstrId>,
}

impl Heap {
    /// An empty heap.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a fresh object of `class`.
    pub fn alloc(&mut self, class: ClassId) -> HeapRef {
        let r = HeapRef(self.objects.len() as u32);
        self.objects.push(HeapObj {
            class,
            fields: HashMap::new(),
        });
        r
    }

    /// Read a field (unset fields are null).
    #[must_use]
    pub fn load(&self, r: HeapRef, field: FieldId) -> Value {
        self.objects[r.0 as usize]
            .fields
            .get(&field)
            .copied()
            .unwrap_or(Value::Null)
    }

    /// Write a field.
    pub fn store(&mut self, r: HeapRef, field: FieldId, v: Value) {
        self.objects[r.0 as usize].fields.insert(field, v);
        self.null_writers.remove(&(r.0, field));
    }

    /// Write null into a field, recording the freeing instruction.
    pub fn store_null(&mut self, r: HeapRef, field: FieldId, writer: InstrId) {
        self.objects[r.0 as usize].fields.insert(field, Value::Null);
        self.null_writers.insert((r.0, field), writer);
    }

    /// The free instruction that wrote the current null in `r.field`,
    /// if the null came from an explicit `putfield null`.
    #[must_use]
    pub fn null_writer(&self, r: HeapRef, field: FieldId) -> Option<InstrId> {
        self.null_writers.get(&(r.0, field)).copied()
    }

    /// The class of an object.
    #[must_use]
    pub fn class_of(&self, r: HeapRef) -> ClassId {
        self.objects[r.0 as usize].class
    }

    /// Number of live objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the heap is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

/// Flattened executable operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlatOp {
    /// A straight-line IR instruction.
    Instr(InstrId, Op),
    /// Fall through when `cond` holds, else jump to `target`.
    BranchIfNot {
        /// The evaluable condition.
        cond: Cond,
        /// Jump target when the condition is false.
        target: usize,
    },
    /// A scheduler-resolved branch (opaque condition / loop continuation):
    /// either falls through or jumps to `target`.
    Choice {
        /// Jump target for the "other" resolution.
        target: usize,
    },
    /// Unconditional jump.
    Jump {
        /// Jump target.
        target: usize,
    },
    /// Acquire the lock object held in the local.
    MonitorEnter {
        /// Local holding the lock object.
        lock: Local,
    },
    /// Release the lock object held in the local.
    MonitorExit {
        /// Local holding the lock object.
        lock: Local,
    },
}

/// A method body compiled to a flat instruction list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatBody {
    /// The operations.
    pub ops: Vec<FlatOp>,
}

/// Flatten a structured body:
///
/// - `If` with an evaluable null-check becomes [`FlatOp::BranchIfNot`];
/// - `If` with an opaque condition becomes [`FlatOp::Choice`];
/// - `Loop` becomes a [`FlatOp::Choice`] exit guard plus a back jump
///   (iteration counts are then bounded by the explorer);
/// - `Sync` brackets its body with monitor ops.
#[must_use]
pub fn flatten(body: &Block) -> FlatBody {
    let mut ops = Vec::new();
    flatten_block(body, &mut ops);
    FlatBody { ops }
}

fn flatten_block(block: &Block, ops: &mut Vec<FlatOp>) {
    for stmt in block {
        match stmt {
            Stmt::Instr(i) => ops.push(FlatOp::Instr(i.id, i.op.clone())),
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let branch_at = ops.len();
                ops.push(FlatOp::Jump { target: 0 }); // placeholder
                flatten_block(then_blk, ops);
                if else_blk.is_empty() {
                    let after = ops.len();
                    ops[branch_at] = match cond {
                        Cond::Opaque => FlatOp::Choice { target: after },
                        c => FlatOp::BranchIfNot {
                            cond: *c,
                            target: after,
                        },
                    };
                } else {
                    let jump_at = ops.len();
                    ops.push(FlatOp::Jump { target: 0 }); // placeholder
                    let else_start = ops.len();
                    flatten_block(else_blk, ops);
                    let after = ops.len();
                    ops[branch_at] = match cond {
                        Cond::Opaque => FlatOp::Choice { target: else_start },
                        c => FlatOp::BranchIfNot {
                            cond: *c,
                            target: else_start,
                        },
                    };
                    ops[jump_at] = FlatOp::Jump { target: after };
                }
            }
            Stmt::Loop { body } => {
                let head = ops.len();
                ops.push(FlatOp::Jump { target: 0 }); // placeholder choice
                flatten_block(body, ops);
                ops.push(FlatOp::Jump { target: head });
                let after = ops.len();
                ops[head] = FlatOp::Choice { target: after };
            }
            Stmt::Sync { lock, body } => {
                ops.push(FlatOp::MonitorEnter { lock: *lock });
                flatten_block(body, ops);
                ops.push(FlatOp::MonitorExit { lock: *lock });
            }
        }
    }
}

/// Cache of flattened method bodies.
#[derive(Debug, Default)]
pub struct CodeCache {
    bodies: HashMap<MethodId, Rc<FlatBody>>,
}

impl CodeCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Get (or flatten) the body of a method.
    pub fn body(&mut self, program: &Program, m: MethodId) -> Rc<FlatBody> {
        self.bodies
            .entry(m)
            .or_insert_with(|| Rc::new(flatten(program.method(m).body())))
            .clone()
    }
}

/// Value provenance: the load that produced a local's value and, when
/// the value is an explicitly freed null, the free that wrote it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Prov {
    /// The `Load` instruction the value came from.
    pub loaded_from: Option<InstrId>,
    /// The `StoreNull` that wrote the null that was loaded.
    pub freed_by: Option<InstrId>,
}

/// One activation frame.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The executing method.
    pub method: MethodId,
    /// Flattened code.
    pub code: Rc<FlatBody>,
    /// Program counter into `code.ops`.
    pub pc: usize,
    /// Local slots (slot 0 = `this`).
    pub locals: Vec<Value>,
    /// Where each local's current value came from (used to attribute
    /// NPEs to static use sites and to the frees that wrote the null).
    pub provenance: Vec<Prov>,
    /// Destination local in the *caller* for the return value.
    pub ret_dst: Option<Local>,
    /// Remaining loop iterations allowed per loop head (explorer bound).
    pub loop_budget: HashMap<usize, u32>,
}

impl Frame {
    /// Fresh frame for `method` with `this` bound.
    #[must_use]
    pub fn new(program: &Program, cache: &mut CodeCache, method: MethodId, this: Value) -> Frame {
        let m = program.method(method);
        let n = m.num_locals().max(1) as usize;
        let mut locals = vec![Value::Null; n];
        locals[0] = this;
        Frame {
            method,
            code: cache.body(program, method),
            pc: 0,
            locals,
            provenance: vec![Prov::default(); n],
            ret_dst: None,
            loop_budget: HashMap::new(),
        }
    }

    /// Read a local.
    #[must_use]
    pub fn get(&self, l: Local) -> Value {
        self.locals.get(l.index()).copied().unwrap_or(Value::Null)
    }

    /// Write a local with provenance.
    pub fn set(&mut self, l: Local, v: Value, prov: Prov) {
        if l.index() < self.locals.len() {
            self.locals[l.index()] = v;
            self.provenance[l.index()] = prov;
        }
    }

    /// The provenance of a local's current value.
    #[must_use]
    pub fn provenance_of(&self, l: Local) -> Prov {
        self.provenance.get(l.index()).copied().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadroid_android::ClassRole;
    use nadroid_ir::ProgramBuilder;

    #[test]
    fn flattening_if_else() {
        let mut b = ProgramBuilder::new("F");
        let c = b.add_class("C", ClassRole::Plain);
        let f = b.add_field(c, "x", None);
        let mut m = b.method(c, "m");
        m.if_cond(
            Cond::NotNull {
                base: Local::THIS,
                field: f,
            },
            |m| {
                m.use_field(f);
            },
            |m| {
                m.free_field(f);
            },
        );
        m.ret(None);
        let mid = m.finish();
        let p = b.build();
        let flat = flatten(p.method(mid).body());
        // branch, load, deref, jump, free, return
        assert_eq!(flat.ops.len(), 6);
        assert!(matches!(flat.ops[0], FlatOp::BranchIfNot { target: 4, .. }));
        assert!(matches!(flat.ops[3], FlatOp::Jump { target: 5 }));
    }

    #[test]
    fn flattening_loop_has_bounded_shape() {
        let mut b = ProgramBuilder::new("F");
        let c = b.add_class("C", ClassRole::Plain);
        let f = b.add_field(c, "x", None);
        let mut m = b.method(c, "m");
        m.loop_(|m| {
            m.free_field(f);
        });
        let mid = m.finish();
        let p = b.build();
        let flat = flatten(p.method(mid).body());
        // choice(exit), free, jump-back
        assert_eq!(flat.ops.len(), 3);
        assert!(matches!(flat.ops[0], FlatOp::Choice { target: 3 }));
        assert!(matches!(flat.ops[2], FlatOp::Jump { target: 0 }));
    }

    #[test]
    fn flattening_sync_brackets() {
        let mut b = ProgramBuilder::new("F");
        let c = b.add_class("C", ClassRole::Plain);
        let f = b.add_field(c, "x", None);
        let mut m = b.method(c, "m");
        let lock = m.new_local();
        m.sync(lock, |m| {
            m.free_field(f);
        });
        let mid = m.finish();
        let p = b.build();
        let flat = flatten(p.method(mid).body());
        assert!(matches!(flat.ops[0], FlatOp::MonitorEnter { .. }));
        assert!(matches!(flat.ops[2], FlatOp::MonitorExit { .. }));
    }

    #[test]
    fn heap_roundtrip() {
        let mut h = Heap::new();
        let c = ClassId::from_raw(0);
        let f = FieldId::from_raw(0);
        let a = h.alloc(c);
        assert_eq!(h.load(a, f), Value::Null);
        let b2 = h.alloc(c);
        h.store(a, f, Value::Obj(b2));
        assert_eq!(h.load(a, f), Value::Obj(b2));
        assert_eq!(h.class_of(a), c);
    }
}
