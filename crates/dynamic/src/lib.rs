//! Dynamic validation substrate: an Android-semantics interpreter and a
//! bounded schedule explorer (§7 of the paper, automated).
//!
//! The paper validates potential UAF warnings by manually perturbing
//! event and thread schedules on a device until a
//! `NullPointerException` fires. This crate automates exactly that over
//! the IR: [`World`] is a small-step interpreter of the hybrid
//! concurrency model (looper callbacks are atomic; native threads and
//! AsyncTask bodies interleave at instruction granularity; lifecycle
//! events obey the framework automaton; posts are FIFO), and
//! [`explore`] searches schedules for an NPE attributable to a specific
//! (use, free) pair.
//!
//! # Example
//!
//! ```
//! use nadroid_ir::parse_program;
//! use nadroid_dynamic::find_any_npe;
//!
//! let p = parse_program(
//!     r#"
//!     app Crash
//!     activity Main {
//!         field svc: Main
//!         cb onCreate { bind this }
//!         cb onServiceConnected    { svc = new Main }
//!         cb onServiceDisconnected { svc = null }
//!         cb onCreateContextMenu   { use svc }
//!     }
//!     "#,
//! ).unwrap();
//! let witness = find_any_npe(&p).expect("the ConnectBot UAF is reachable");
//! assert!(!witness.trace.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cafa;
mod explore;
mod machine;
mod schedule;
mod world;

pub use explore::{
    explore, explore_guided, explore_no_sleep, find_any_npe, find_npe_at_use, fingerprint,
    minimize_schedule, replay, Exploration, ExploreConfig, Goal, Guide, Witness,
};
pub use schedule::{decode_schedule, describe_schedule, encode_schedule};
pub use machine::{
    flatten, CodeCache, FlatBody, FlatOp, Frame, Heap, HeapObj, HeapRef, Prov, Value,
};
pub use world::{
    AsyncRun, ConnState, Event, Npe, PendingPost, ServiceState, Step, Task, TaskId, TaskPhase,
    TraceEvent, World,
};

#[cfg(test)]
mod tests {
    use super::*;
    use nadroid_ir::{parse_program, Op, Program};

    fn parse(src: &str) -> Program {
        parse_program(src).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The first Load of the named field in the named method.
    fn use_site(p: &Program, class: &str, method: &str, field: &str) -> nadroid_ir::InstrId {
        let c = p.class_by_name(class).unwrap();
        let m = p.method_by_name(c, method).unwrap();
        let mut found = None;
        p.method(m).body().for_each_instr(&mut |i| {
            if let Op::Load { field: f, .. } = i.op {
                if found.is_none() && p.field(f).name() == field {
                    found = Some(i.id);
                }
            }
        });
        found.expect("use site")
    }

    #[test]
    fn fig1a_npe_witnessed_at_the_warned_use() {
        let p = parse(
            r#"
            app Fig1a
            activity Console {
                field bound: Console
                cb onCreate { bind this }
                cb onServiceConnected { bound = new Console }
                cb onServiceDisconnected { bound = null }
                cb onCreateContextMenu { use bound }
            }
            "#,
        );
        let use_i = use_site(&p, "Console", "onCreateContextMenu", "bound");
        let w = find_npe_at_use(&p, use_i).expect("witness");
        assert_eq!(w.npe.loaded_from, Some(use_i));
        assert!(
            w.npe.freed_by.is_some(),
            "null written by the disconnect free"
        );
    }

    #[test]
    fn fig1b_posted_use_races_with_disconnect() {
        let p = parse(
            r#"
            app Fig1b
            activity Console {
                field hostBridge: Console
                cb onCreate { bind this }
                cb onServiceConnected { hostBridge = new Console }
                cb onServiceDisconnected { hostBridge = null }
                cb onClick {
                    if hostBridge != null { post R }
                }
            }
            runnable R in Console {
                cb run { use outer.hostBridge }
            }
            "#,
        );
        let use_i = use_site(&p, "R", "run", "hostBridge");
        let w = find_npe_at_use(&p, use_i).expect("witness despite the if-guard");
        assert_eq!(w.npe.loaded_from, Some(use_i));
    }

    #[test]
    fn fig1c_thread_free_preempts_guarded_use() {
        let p = parse(
            r#"
            app Fig1c
            activity Main {
                field jClient: Main
                cb onCreate { jClient = new Main }
                cb onResume { spawn W }
                cb onPause {
                    if jClient != null { use jClient }
                }
            }
            thread W in Main {
                cb run { outer.jClient = null }
            }
            "#,
        );
        let use_i = use_site(&p, "Main", "onPause", "jClient");
        let w = find_npe_at_use(&p, use_i).expect("thread frees between the check and the use");
        assert_eq!(w.npe.loaded_from, Some(use_i));
    }

    #[test]
    fn guarded_atomic_pair_has_no_witness() {
        // Figure 4(b): guard + callback atomicity is genuinely safe.
        let p = parse(
            r#"
            app Fig4b
            activity M {
                field f: M
                cb onCreate { f = new M }
                cb onClick { if f != null { use f } }
                cb onLongClick { f = null }
            }
            "#,
        );
        let use_i = use_site(&p, "M", "onClick", "f");
        assert!(find_npe_at_use(&p, use_i).is_none());
    }

    #[test]
    fn rhb_pattern_is_dynamically_safe() {
        // Figure 4(d): onClick requires the activity resumed, and
        // onResume re-allocates, so the free in onPause cannot reach the
        // use.
        let p = parse(
            r#"
            app Fig4d
            activity M {
                field f: M
                cb onResume { f = new M }
                cb onPause { f = null }
                cb onClick { use f }
            }
            "#,
        );
        let use_i = use_site(&p, "M", "onClick", "f");
        assert!(find_npe_at_use(&p, use_i).is_none());
    }

    #[test]
    fn chb_false_negative_shape_is_witnessable() {
        // Table 2 / §8.6: finish() on one path only — CHB prunes, but the
        // path without finish still yields the UAF.
        let p = parse(
            r#"
            app ChbFn
            activity M {
                field f: M
                cb onCreate { f = new M }
                cb onClick {
                    if ? { finish }
                    f = null
                }
                cb onLongClick { use f }
            }
            "#,
        );
        let use_i = use_site(&p, "M", "onLongClick", "f");
        assert!(
            find_npe_at_use(&p, use_i).is_some(),
            "UAF feasible on the no-finish path"
        );
    }

    #[test]
    fn finish_stops_ui_events() {
        // Unconditional finish in the freeing callback: the use cannot
        // follow, so no witness.
        let p = parse(
            r#"
            app Chb
            activity M {
                field f: M
                cb onCreate { f = new M }
                cb onClick { finish  f = null }
                cb onLongClick { use f }
            }
            "#,
        );
        let use_i = use_site(&p, "M", "onLongClick", "f");
        assert!(find_npe_at_use(&p, use_i).is_none());
    }

    #[test]
    fn mhb_service_order_is_respected() {
        // Figure 4(a)-like: the use in onServiceConnected always precedes
        // the free in onServiceDisconnected (with an allocation first, so
        // no initial-null NPE muddies the check).
        let p = parse(
            r#"
            app Mhb
            activity M {
                field f: M
                cb onCreate { bind this }
                cb onServiceConnected { f = new M  use f }
                cb onServiceDisconnected { f = null }
            }
            "#,
        );
        let use_i = use_site(&p, "M", "onServiceConnected", "f");
        assert!(find_npe_at_use(&p, use_i).is_none());
    }

    #[test]
    fn asynctask_protocol_order() {
        let p = parse(
            r#"
            app Task
            activity M {
                cb onClick { execute T }
            }
            asynctask T in M {
                field d: T
                cb onPreExecute { d = new T }
                cb doInBackground { use d  publish }
                cb onProgressUpdate { use d }
                cb onPostExecute { d = null }
            }
            "#,
        );
        // The body's use always follows onPreExecute's allocation and
        // precedes onPostExecute's free.
        let body_use = use_site(&p, "T", "doInBackground", "d");
        assert!(find_npe_at_use(&p, body_use).is_none());
    }

    #[test]
    fn lock_mutual_exclusion_prevents_preemption() {
        let p = parse(
            r#"
            app Locked
            activity Main {
                field jClient: Main
                field lock: Obj
                cb onCreate { jClient = new Main  lock = new Obj }
                cb onResume { spawn W }
                cb onPause {
                    sync lock {
                        if jClient != null { use jClient }
                    }
                }
            }
            thread W in Main {
                cb run {
                    t1 = load this W.$outer
                    t2 = load t1 Main.lock
                    sync t2 {
                        free t1 Main.jClient
                    }
                }
            }
            class Obj { }
            "#,
        );
        let use_i = use_site(&p, "Main", "onPause", "jClient");
        assert!(
            find_npe_at_use(&p, use_i).is_none(),
            "common lock restores atomicity"
        );
    }

    #[test]
    fn posts_are_fifo() {
        let p = parse(
            r#"
            app Fifo
            activity M {
                field f: M
                cb onCreate { post A  post B }
            }
            runnable A in M { cb run { outer.f = new M } }
            runnable B in M { cb run { use outer.f } }
            "#,
        );
        // A (alloc) always dequeues before B (use): no NPE.
        let use_i = use_site(&p, "B", "run", "f");
        assert!(find_npe_at_use(&p, use_i).is_none());
    }

    #[test]
    fn unregister_stops_broadcasts() {
        // The receiver frees; after unregistering, no further broadcasts
        // can deliver, so a use that only the receiver's free could break
        // stays safe once the guard window is closed... here we check the
        // mechanism directly: with an immediate unregister, the free
        // never runs, so no pair witness exists.
        let p = parse(
            r#"
            app U
            activity M {
                field f: M
                field r: R
                cb onCreate {
                    f = new M
                    r = new R
                    t2 = load this M.r
                    registerreceiver t2
                    t3 = load this M.r
                    unregisterreceiver t3
                }
                cb onClick { use f }
            }
            receiver R { cb onReceive { M.f = null } }
            "#,
        );
        let use_i = use_site(&p, "M", "onClick", "f");
        assert!(
            find_npe_at_use(&p, use_i).is_none(),
            "onReceive can never fire"
        );
    }

    #[test]
    fn removeposts_drops_pending_work() {
        let p = parse(
            r#"
            app RP
            activity M {
                field f: M
                field h: H
                cb onCreate {
                    f = new M
                    h = new H
                    t2 = load this M.h
                    send t2
                    t3 = load this M.h
                    removeposts t3
                }
                cb onClick { use f }
            }
            handler H in M { cb handleMessage { outer.f = null } }
            "#,
        );
        let use_i = use_site(&p, "M", "onClick", "f");
        assert!(
            find_npe_at_use(&p, use_i).is_none(),
            "the pending free was removed"
        );
    }

    #[test]
    fn dismissed_dialog_cannot_fire_onshow_after_destroy() {
        // onStop must execute before onDestroy (automaton dominator), and
        // the unconditional dismiss there silences onShow before the free
        // can run — the shape the predicate refutation filter certifies.
        let p = parse(
            r#"
            app Dlg
            activity M {
                field f: M
                field dlg: D
                cb onCreate { f = new M  dlg = new D  show dlg }
                cb onStop { dismiss dlg }
                cb onDestroy { f = null }
            }
            dialog D in M { cb onShow { use outer.f } }
            "#,
        );
        let use_i = use_site(&p, "D", "onShow", "f");
        assert!(
            find_npe_at_use(&p, use_i).is_none(),
            "dismiss-by-onStop precedes every path to the free"
        );
    }

    #[test]
    fn pause_only_dismiss_leaks_the_dialog() {
        // Control: onPause is NOT on every path to onDestroy (the
        // automaton allows onCreate -> onStart -> onStop -> onDestroy),
        // so a dismiss placed only there leaves a leaked shown dialog.
        let p = parse(
            r#"
            app DlgK
            activity M {
                field f: M
                field dlg: D
                cb onCreate { f = new M  dlg = new D  show dlg }
                cb onPause { dismiss dlg }
                cb onDestroy { f = null }
            }
            dialog D in M { cb onShow { use outer.f } }
            "#,
        );
        let use_i = use_site(&p, "D", "onShow", "f");
        assert!(
            find_npe_at_use(&p, use_i).is_some(),
            "the skip path onStart -> onStop never dismisses"
        );
    }

    #[test]
    fn cancelled_alarm_cannot_fire() {
        let p = parse(
            r#"
            app Alm
            activity M {
                field f: M
                field r: R
                cb onCreate { f = new M  r = new R  t3 = load this M.r  schedule t3 }
                cb onStop { t1 = load this M.r  cancelalarm t1 }
                cb onDestroy { f = null }
            }
            receiver R { cb onAlarm { use M.f } }
            "#,
        );
        let use_i = use_site(&p, "R", "onAlarm", "f");
        assert!(
            find_npe_at_use(&p, use_i).is_none(),
            "cancel-by-onStop precedes every path to the free"
        );
    }

    #[test]
    fn launch_gated_activity_waits_for_startactivity() {
        // B's onCreate frees M.f, but B only starts after M.onCreate's
        // launch site — which follows the use. Without the gate the free
        // could preempt the use.
        let p = parse(
            r#"
            app TS
            activity M {
                field f: M
                cb onCreate { f = new M  use f  startactivity B }
            }
            activity B { cb onCreate { M.f = null } }
            "#,
        );
        let use_i = use_site(&p, "M", "onCreate", "f");
        assert!(
            find_npe_at_use(&p, use_i).is_none(),
            "B.onCreate cannot run before the launch"
        );

        // Control: with no launch site (and no manifest restricting
        // reachability), B is not gated and its onCreate may run first
        // (external intent), breaking a later use.
        let p = parse(
            r#"
            app TSK
            activity M {
                field f: M
                cb onCreate { f = new M }
                cb onClick { use f }
            }
            activity B { cb onCreate { M.f = null } }
            "#,
        );
        let use_i = use_site(&p, "M", "onClick", "f");
        assert!(
            find_npe_at_use(&p, use_i).is_some(),
            "an unlaunched, ungated activity still receives lifecycle events"
        );
    }

    #[test]
    fn cross_looper_handler_breaks_guard_atomicity() {
        // The §8.1 multi-looper refinement, dynamically: a handler on a
        // custom looper can free between the main-looper check and use.
        let p = parse(
            r#"
            app Ml
            activity M {
                field f: M
                cb onCreate { f = new M  send H }
                cb onClick { if f != null { use f } }
            }
            looperthread Worker { }
            handler H in M on Worker {
                cb handleMessage { outer.f = null }
            }
            "#,
        );
        let use_i = use_site(&p, "M", "onClick", "f");
        let w = find_npe_at_use(&p, use_i).expect("cross-looper preemption witnesses the UAF");
        assert!(w.npe.freed_by.is_some());
    }

    #[test]
    fn same_looper_handler_keeps_guard_atomicity() {
        // Control for the test above: the same handler on the *main*
        // looper cannot interleave with the guarded use.
        let p = parse(
            r#"
            app Sl
            activity M {
                field f: M
                cb onCreate { f = new M  send H }
                cb onClick { if f != null { use f } }
            }
            handler H in M {
                cb handleMessage { outer.f = null }
            }
            "#,
        );
        let use_i = use_site(&p, "M", "onClick", "f");
        assert!(find_npe_at_use(&p, use_i).is_none());
    }

    #[test]
    fn listener_fires_only_after_registration() {
        let p = parse(
            r#"
            app L
            activity M {
                field f: M
                cb onCreate { f = new M  listen setOnClickListener CL }
                cb onPause { f = null }
            }
            listener CL in M {
                cb onClick { use outer.f }
            }
            "#,
        );
        // pause frees, then a resume + listener click hits the null.
        let use_i = use_site(&p, "CL", "onClick", "f");
        assert!(find_npe_at_use(&p, use_i).is_some());
    }

    #[test]
    fn no_sleep_witness_found_for_unreleased_wakelock() {
        let p = parse(
            r#"
            app Ns2
            activity M {
                field wl: Wl
                cb onCreate { wl = new Wl }
                cb onClick { t1 = load this M.wl  acquire t1 }
            }
            class Wl { }
            "#,
        );
        let w = explore_no_sleep(&p, ExploreConfig::default())
            .expect("backgrounded with the lock held");
        assert!(w.last().is_some_and(|l| l.contains("QUIESCENT")));
    }

    #[test]
    fn balanced_wakelock_has_no_witness() {
        let p = parse(
            r#"
            app NsOk
            activity M {
                field wl: Wl
                cb onCreate { wl = new Wl }
                cb onClick {
                    t1 = load this M.wl
                    acquire t1
                    release t1
                }
            }
            class Wl { }
            "#,
        );
        assert!(explore_no_sleep(&p, ExploreConfig::default()).is_none());
    }

    #[test]
    fn minimized_witness_still_reproduces() {
        let p = parse(
            r#"
            app Min
            activity Console {
                field bound: Console
                cb onCreate { bind this }
                cb onServiceConnected { bound = new Console }
                cb onServiceDisconnected { bound = null }
                cb onCreateContextMenu { use bound }
            }
            "#,
        );
        let use_i = use_site(&p, "Console", "onCreateContextMenu", "bound");
        let w = find_npe_at_use(&p, use_i).expect("witness");
        let min = minimize_schedule(&p, &w.schedule, &w.npe);
        assert!(min.len() <= w.schedule.len());
        let world = replay(&p, &min);
        assert_eq!(world.npe.as_ref(), Some(&w.npe), "minimized schedule reproduces");
        // The minimal schedule must keep the essentials: create (to
        // bind), disconnect (to free), and the context-menu use.
        assert!(min.iter().any(|s| matches!(s, Step::Dispatch(_))));
    }

    #[test]
    fn minimization_is_idempotent() {
        // Shrink-idempotence: minimizing an already-minimal schedule
        // changes nothing, and the pass structure (block deletions,
        // single-step fixpoint) converges to the same result when run
        // again. A second app with a posted free exercises schedules
        // whose steps are pairwise dependent (post + dequeue).
        for src in [
            r#"
            app Idem1
            activity Console {
                field bound: Console
                cb onCreate { bind this }
                cb onServiceConnected { bound = new Console }
                cb onServiceDisconnected { bound = null }
                cb onCreateContextMenu { use bound }
            }
            "#,
            r#"
            app Idem2
            activity Main {
                field data: Obj
                cb onCreate { data = new Obj  post Killer }
                cb onClick { use data }
            }
            runnable Killer in Main {
                cb run { outer.data = null }
            }
            class Obj { }
            "#,
        ] {
            let p = parse(src);
            let w = find_any_npe(&p).expect("witness");
            let once = minimize_schedule(&p, &w.schedule, &w.npe);
            let twice = minimize_schedule(&p, &once, &w.npe);
            assert_eq!(once, twice, "minimize(minimize(s)) == minimize(s)");
            assert_eq!(replay(&p, &once).npe.as_ref(), Some(&w.npe));
        }
    }

    #[test]
    fn guided_exploration_matches_plain_exploration_when_unguided() {
        let p = parse(
            r#"
            app G
            activity Console {
                field bound: Console
                cb onCreate { bind this }
                cb onServiceConnected { bound = new Console }
                cb onServiceDisconnected { bound = null }
                cb onCreateContextMenu { use bound }
            }
            "#,
        );
        let cfg = ExploreConfig::default();
        let plain = explore(&p, Goal::AnyNpe, cfg).expect("witness");
        match explore_guided(&p, Goal::AnyNpe, cfg, None) {
            Exploration::Witness(w) => {
                assert_eq!(w.schedule, plain.schedule, "identical search order");
                assert_eq!(w.states_explored, plain.states_explored);
            }
            other => panic!("expected a witness, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_search_reports_completeness() {
        // An app with no free at all: the explorer drains the entire
        // bounded state space and proves it (complete = true).
        let p = parse(
            r#"
            app NoBug
            activity Main {
                field data: Obj
                cb onCreate { data = new Obj }
                cb onClick { use data }
            }
            class Obj { }
            "#,
        );
        match explore_guided(&p, Goal::AnyNpe, ExploreConfig::default(), None) {
            Exploration::Exhausted { states, complete } => {
                assert!(complete, "small state space fully enumerated");
                assert!(states > 0);
            }
            Exploration::Witness(w) => panic!("no NPE exists: {w:?}"),
        }
        // The same search under a starved state budget is inconclusive.
        let starved = ExploreConfig {
            max_states: 2,
            ..ExploreConfig::default()
        };
        match explore_guided(&p, Goal::AnyNpe, starved, None) {
            Exploration::Exhausted { complete, .. } => {
                assert!(!complete, "budget cut must void the proof");
            }
            Exploration::Witness(w) => panic!("no NPE exists: {w:?}"),
        }
    }

    #[test]
    fn witness_schedules_replay_deterministically() {
        let p = parse(
            r#"
            app R
            activity Console {
                field bound: Console
                cb onCreate { bind this }
                cb onServiceConnected { bound = new Console }
                cb onServiceDisconnected { bound = null }
                cb onCreateContextMenu { use bound }
            }
            "#,
        );
        let use_i = use_site(&p, "Console", "onCreateContextMenu", "bound");
        let w = find_npe_at_use(&p, use_i).expect("witness");
        let world = replay(&p, &w.schedule);
        assert_eq!(
            world.npe.as_ref(),
            Some(&w.npe),
            "replay reproduces the same NPE"
        );
    }

    #[test]
    fn lock_order_inversion_deadlocks() {
        // Two threads acquiring two locks in opposite orders; a guided
        // schedule wedges both, and the wait-for cycle is reported.
        let p = parse(
            r#"
            app D
            activity M {
                field a: Obj
                field b: Obj
                cb onCreate { a = new Obj  b = new Obj  spawn W1  spawn W2 }
            }
            thread W1 in M {
                cb run {
                    t1 = load this W1.$outer
                    t2 = load t1 M.a
                    t3 = load t1 M.b
                    sync t2 { sync t3 { } }
                }
            }
            thread W2 in M {
                cb run {
                    t1 = load this W2.$outer
                    t2 = load t1 M.a
                    t3 = load t1 M.b
                    sync t3 { sync t2 { } }
                }
            }
            class Obj { }
            "#,
        );
        let mut w = World::new(&p);
        // Dispatch onCreate and run the looper callback to completion.
        let create = w
            .enabled_steps()
            .into_iter()
            .find(|s| matches!(s, Step::Dispatch(_)))
            .expect("onCreate");
        w.step(&create);
        while !w.tasks[0].frames.is_empty() {
            w.step(&Step::Advance {
                task: TaskId(0),
                choice: false,
            });
        }
        assert_eq!(w.tasks.len(), 3, "both worker threads spawned");
        assert!(!w.deadlocked());
        // Each worker: 3 loads + its first monitor-enter.
        for _ in 0..4 {
            assert!(w.step(&Step::Advance {
                task: TaskId(1),
                choice: false
            }));
        }
        for _ in 0..4 {
            assert!(w.step(&Step::Advance {
                task: TaskId(2),
                choice: false
            }));
        }
        // Both now block on the other's lock: refused steps, wait cycle.
        assert!(!w.step(&Step::Advance {
            task: TaskId(1),
            choice: false
        }));
        assert!(!w.step(&Step::Advance {
            task: TaskId(2),
            choice: false
        }));
        assert!(w.deadlocked(), "wait-for cycle detected");
        // Blocked tasks are not offered as enabled steps.
        assert!(w
            .enabled_steps()
            .iter()
            .all(|s| !matches!(s, Step::Advance { task, .. } if task.0 != 0)));
    }

    #[test]
    fn service_lifecycle_orders_create_and_destroy() {
        // Music's MediaPlayServ shape: use in onStartCommand, free in
        // onDestroy — the service lifecycle orders them, no witness.
        let p = parse(
            r#"
            app Svc
            activity Main { }
            service Player {
                field mPlayer: Player
                cb onCreate { mPlayer = new Player }
                cb onStartCommand { use mPlayer }
                cb onDestroy { mPlayer = null }
            }
            manifest { main Main }
            "#,
        );
        let use_i = use_site(&p, "Player", "onStartCommand", "mPlayer");
        assert!(find_npe_at_use(&p, use_i).is_none(), "destroy is terminal");
    }

    #[test]
    fn service_free_in_oncreate_is_witnessable() {
        let p = parse(
            r#"
            app Svc2
            activity Main { }
            service S {
                field f: S
                cb onCreate { f = null }
                cb onStartCommand { use f }
            }
            manifest { main Main }
            "#,
        );
        let use_i = use_site(&p, "S", "onStartCommand", "f");
        let w = find_npe_at_use(&p, use_i).expect("create frees, command uses");
        assert!(w.npe.freed_by.is_some());
    }

    #[test]
    fn trace_records_dispatches() {
        let p = parse(
            r#"
            app T
            activity M {
                field f: M
                cb onPause { f = null }
                cb onClick { use f }
            }
            "#,
        );
        let w = find_any_npe(&p).expect("unguarded use of never-initialized field");
        assert!(w.trace.iter().any(|l| l.contains("dispatch")));
        assert!(w.trace.last().is_some_and(|l| l.contains("NPE")));
    }
}
