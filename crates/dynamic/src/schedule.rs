//! A compact, stable text codec for [`Step`] sequences.
//!
//! Confirmed warnings carry their minimized witness schedule in the
//! provenance document (`nadroid-provenance/3`), and CI replays that
//! schedule from a *separate process* to verify the NPE reproduces —
//! so schedules need a serialization that survives a round trip
//! through JSON and the shell. The encoding is a space-separated token
//! stream, one token per step:
//!
//! | token | step |
//! |---|---|
//! | `a<task>.<0\|1>` | [`Step::Advance`] (choice 0 = fall through) |
//! | `l<class>.<callback>` | [`Event::Lifecycle`] |
//! | `e<target>.<method>` | [`Event::Entry`] |
//! | `q<looper>` | [`Event::DequeuePost`] |
//! | `c<conn>` | [`Event::ServiceConnect`] |
//! | `d<conn>` | [`Event::ServiceDisconnect`] |
//! | `b<receiver>` | [`Event::Broadcast`] |
//! | `t<run>` | [`Event::TaskPost`] |
//!
//! All ids are the deterministic arena/heap indices of the program the
//! schedule was recorded against: [`World::new`] allocates component
//! singletons in class order, so a decoded schedule replays exactly on
//! the same program. [`crate::replay`] additionally validates every
//! step against the interpreter's dispatchability rules, so a schedule
//! decoded against the *wrong* program stops at the first illegal step
//! instead of executing nonsense.

use crate::machine::HeapRef;
use crate::world::{Event, Step, TaskId, World};
use nadroid_android::CallbackKind;
use nadroid_ir::{ClassId, MethodId};
use std::fmt::Write as _;

/// Encode a step sequence as one space-separated token line.
#[must_use]
pub fn encode_schedule(schedule: &[Step]) -> String {
    let mut out = String::new();
    for (i, step) in schedule.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        match step {
            Step::Advance { task, choice } => {
                let _ = write!(out, "a{}.{}", task.0, u8::from(*choice));
            }
            Step::Dispatch(e) => match e {
                Event::Lifecycle { activity, kind } => {
                    let _ = write!(out, "l{}.{}", activity.raw(), kind.method_name());
                }
                Event::Entry { target, method } => {
                    let _ = write!(out, "e{}.{}", target.0, method.raw());
                }
                Event::DequeuePost { looper } => {
                    let _ = write!(out, "q{}", looper.0);
                }
                Event::ServiceConnect { conn } => {
                    let _ = write!(out, "c{}", conn.0);
                }
                Event::ServiceDisconnect { conn } => {
                    let _ = write!(out, "d{}", conn.0);
                }
                Event::Broadcast { receiver } => {
                    let _ = write!(out, "b{}", receiver.0);
                }
                Event::TaskPost { run } => {
                    let _ = write!(out, "t{run}");
                }
            },
        }
    }
    out
}

fn parse_u32(s: &str, what: &str, token: &str) -> Result<u32, String> {
    s.parse()
        .map_err(|_| format!("bad {what} in schedule token {token:?}"))
}

fn lifecycle_kind(name: &str, token: &str) -> Result<CallbackKind, String> {
    CallbackKind::all()
        .iter()
        .copied()
        .find(|k| k.is_lifecycle() && k.method_name() == name)
        .ok_or_else(|| format!("unknown lifecycle callback in schedule token {token:?}"))
}

/// Decode a schedule previously produced by [`encode_schedule`].
///
/// # Errors
///
/// Returns a message naming the first malformed token.
pub fn decode_schedule(text: &str) -> Result<Vec<Step>, String> {
    let mut out = Vec::new();
    for token in text.split_whitespace() {
        let (tag, rest) = token.split_at(1);
        let step = match tag {
            "a" => {
                let (task, choice) = rest
                    .split_once('.')
                    .ok_or_else(|| format!("malformed advance token {token:?}"))?;
                let choice = match choice {
                    "0" => false,
                    "1" => true,
                    _ => return Err(format!("bad choice in schedule token {token:?}")),
                };
                Step::Advance {
                    task: TaskId(parse_u32(task, "task", token)?),
                    choice,
                }
            }
            "l" => {
                let (class, kind) = rest
                    .split_once('.')
                    .ok_or_else(|| format!("malformed lifecycle token {token:?}"))?;
                Step::Dispatch(Event::Lifecycle {
                    activity: ClassId::from_raw(parse_u32(class, "class", token)?),
                    kind: lifecycle_kind(kind, token)?,
                })
            }
            "e" => {
                let (target, method) = rest
                    .split_once('.')
                    .ok_or_else(|| format!("malformed entry token {token:?}"))?;
                Step::Dispatch(Event::Entry {
                    target: HeapRef(parse_u32(target, "target", token)?),
                    method: MethodId::from_raw(parse_u32(method, "method", token)?),
                })
            }
            "q" => Step::Dispatch(Event::DequeuePost {
                looper: TaskId(parse_u32(rest, "looper", token)?),
            }),
            "c" => Step::Dispatch(Event::ServiceConnect {
                conn: HeapRef(parse_u32(rest, "connection", token)?),
            }),
            "d" => Step::Dispatch(Event::ServiceDisconnect {
                conn: HeapRef(parse_u32(rest, "connection", token)?),
            }),
            "b" => Step::Dispatch(Event::Broadcast {
                receiver: HeapRef(parse_u32(rest, "receiver", token)?),
            }),
            "t" => Step::Dispatch(Event::TaskPost {
                run: parse_u32(rest, "run", token)? as usize,
            }),
            _ => return Err(format!("unknown schedule token {token:?}")),
        };
        out.push(step);
    }
    Ok(out)
}

/// Render a decoded schedule in human terms against a program — the
/// reproduction recipe `nadroid confirm`/`nadroid replay` print.
#[must_use]
pub fn describe_schedule(world_of: &World<'_>, schedule: &[Step]) -> Vec<String> {
    let p = world_of.program();
    schedule
        .iter()
        .map(|step| match step {
            Step::Advance { task, choice } => {
                format!("advance task {} (choice {})", task.0, u8::from(*choice))
            }
            Step::Dispatch(e) => match e {
                Event::Lifecycle { activity, kind } => {
                    format!("dispatch {}.{}", p.class(*activity).name(), kind.method_name())
                }
                Event::Entry { method, .. } => {
                    let m = p.method(*method);
                    format!("dispatch {}.{}", p.class(m.owner()).name(), m.name())
                }
                e => format!("dispatch {e}"),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{explore, find_any_npe, minimize_schedule, replay, ExploreConfig, Goal};
    use nadroid_ir::parse_program;

    const CONNECTBOT: &str = r#"
        app Mini
        activity Main {
            field svc: Main
            cb onCreate { bind this }
            cb onServiceConnected    { svc = new Main }
            cb onServiceDisconnected { svc = null }
            cb onCreateContextMenu   { use svc }
        }
    "#;

    #[test]
    fn witness_schedules_round_trip() {
        let p = parse_program(CONNECTBOT).unwrap();
        let w = find_any_npe(&p).expect("witness");
        let encoded = encode_schedule(&w.schedule);
        let decoded = decode_schedule(&encoded).expect("decode");
        assert_eq!(decoded, w.schedule);
        // And the decoded schedule replays to the same NPE.
        let world = replay(&p, &decoded);
        assert_eq!(world.npe.as_ref(), Some(&w.npe));
    }

    #[test]
    fn minimized_schedules_round_trip_and_replay() {
        let p = parse_program(CONNECTBOT).unwrap();
        let w = explore(&p, Goal::AnyNpe, ExploreConfig::default()).expect("witness");
        let min = minimize_schedule(&p, &w.schedule, &w.npe);
        let decoded = decode_schedule(&encode_schedule(&min)).expect("decode");
        assert_eq!(decoded, min);
        assert_eq!(replay(&p, &decoded).npe.as_ref(), Some(&w.npe));
    }

    #[test]
    fn decode_rejects_malformed_tokens() {
        for bad in ["z9", "a3", "a3.7", "l0.onFrobnicate", "exyz", "q", "a.1"] {
            assert!(decode_schedule(bad).is_err(), "{bad:?} should not decode");
        }
        assert_eq!(decode_schedule("").unwrap(), Vec::new());
        assert_eq!(decode_schedule("  \n ").unwrap(), Vec::new());
    }

    #[test]
    fn every_event_form_encodes_distinctly() {
        use crate::world::{Event, Step, TaskId};
        use nadroid_android::CallbackKind;
        let steps = vec![
            Step::Advance {
                task: TaskId(2),
                choice: true,
            },
            Step::Dispatch(Event::Lifecycle {
                activity: ClassId::from_raw(0),
                kind: CallbackKind::OnCreate,
            }),
            Step::Dispatch(Event::Entry {
                target: HeapRef(1),
                method: MethodId::from_raw(4),
            }),
            Step::Dispatch(Event::DequeuePost { looper: TaskId(0) }),
            Step::Dispatch(Event::ServiceConnect { conn: HeapRef(3) }),
            Step::Dispatch(Event::ServiceDisconnect { conn: HeapRef(3) }),
            Step::Dispatch(Event::Broadcast { receiver: HeapRef(5) }),
            Step::Dispatch(Event::TaskPost { run: 7 }),
        ];
        let text = encode_schedule(&steps);
        assert_eq!(text, "a2.1 l0.onCreate e1.4 q0 c3 d3 b5 t7");
        assert_eq!(decode_schedule(&text).unwrap(), steps);
    }
}
