//! Bounded schedule exploration: search for `NullPointerException`
//! witnesses.
//!
//! §7 of the paper validates potential UAF warnings by manually
//! constructing schedules that trigger an NPE. This module automates that
//! search over the interpreter: a depth-first exploration of event
//! dispatch orders, thread interleavings, and opaque-branch resolutions,
//! bounded by step/event budgets and deduplicated by state fingerprints.

use crate::world::{Npe, Step, World};
use nadroid_ir::{InstrId, Program};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

/// Exploration bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Maximum framework events dispatched along one path.
    pub max_events: usize,
    /// Maximum micro-steps along one path.
    pub max_steps: usize,
    /// Global budget of explored states.
    pub max_states: usize,
    /// Loop unrolling bound.
    pub max_loop_iters: u32,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_events: 8,
            max_steps: 400,
            max_states: 200_000,
            max_loop_iters: 1,
        }
    }
}

/// A schedule that triggers an NPE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// The NPE.
    pub npe: Npe,
    /// The schedule trace (dispatched events and the throw site).
    pub trace: Vec<String>,
    /// The exact step sequence; [`replay`] reproduces the NPE from it.
    pub schedule: Vec<Step>,
    /// States explored before the witness was found.
    pub states_explored: usize,
}

/// The goal of a search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Goal {
    /// Any `NullPointerException`.
    AnyNpe,
    /// An NPE whose null value was loaded by the given use instruction
    /// (matches a static warning's use site), or thrown at it.
    AtUse(InstrId),
    /// An NPE attributable to a specific warning: the null was loaded by
    /// `use_instr` and written by `free_instr`.
    Pair {
        /// The warning's use (`Load`) instruction.
        use_instr: InstrId,
        /// The warning's free (`StoreNull`) instruction.
        free_instr: InstrId,
    },
}

impl Goal {
    fn matches(self, npe: &Npe) -> bool {
        match self {
            Goal::AnyNpe => true,
            Goal::AtUse(u) => npe.loaded_from == Some(u) || npe.at == u,
            Goal::Pair {
                use_instr,
                free_instr,
            } => npe.loaded_from == Some(use_instr) && npe.freed_by == Some(free_instr),
        }
    }
}

/// A scheduling guide for [`explore_guided`]: prunes steps from the
/// search (`admit`) and orders the remaining ones (`priority`, higher
/// explored first). The confirm subsystem derives guides from a
/// warning's happens-before evidence; the default methods admit
/// everything with uniform priority, reproducing plain [`explore`].
pub trait Guide {
    /// Whether the step may be scheduled at all. Rejecting a step
    /// restricts the search space, so an exhausted guided search is
    /// never a completeness proof (see [`Exploration::Exhausted`]).
    fn admit(&self, world: &World<'_>, step: &Step) -> bool {
        let _ = (world, step);
        true
    }

    /// Relative exploration priority of an enabled step; higher values
    /// are explored first. Ties keep the interpreter's deterministic
    /// enabled-step order.
    fn priority(&self, world: &World<'_>, step: &Step) -> i32 {
        let _ = (world, step);
        0
    }
}

/// How a bounded search ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Exploration {
    /// A schedule matching the goal was found.
    Witness(Witness),
    /// The search frontier drained without a witness.
    Exhausted {
        /// States explored before the frontier drained.
        states: usize,
        /// Whether the enumeration covered the *entire* bounded state
        /// space: no path was cut by `max_steps`/`max_events`, the
        /// `max_states` budget was never reached, and no step was
        /// rejected by a [`Guide`]. When `true`, no schedule within the
        /// model's loop/choice bounds can reach the goal — the
        /// infeasibility proof `nadroid-confirm` relies on. When
        /// `false`, the absence of a witness is inconclusive.
        complete: bool,
    },
}

/// Search for an NPE witness under the given bounds.
#[must_use]
pub fn explore(program: &Program, goal: Goal, cfg: ExploreConfig) -> Option<Witness> {
    match explore_guided(program, goal, cfg, None) {
        Exploration::Witness(w) => Some(w),
        Exploration::Exhausted { .. } => None,
    }
}

/// Search for an NPE witness under the given bounds, optionally guided,
/// reporting whether an exhausted search covered the whole bounded
/// state space (the verdict [`nadroid-confirm`] distinguishes
/// *infeasible* from *unconfirmed* with).
///
/// The search is a depth-first exploration with state-fingerprint
/// deduplication; with a guide, successors are pushed in ascending
/// priority order so the highest-priority step is explored first.
/// Everything is deterministic: no randomness, no clocks, and a fixed
/// enabled-step order.
#[must_use]
pub fn explore_guided(
    program: &Program,
    goal: Goal,
    cfg: ExploreConfig,
    guide: Option<&dyn Guide>,
) -> Exploration {
    let mut initial = World::new(program);
    initial.max_loop_iters = cfg.max_loop_iters;
    let mut stack: Vec<World<'_>> = vec![initial];
    let mut visited: HashSet<u64> = HashSet::new();
    let mut states = 0usize;
    // Stays true only while every reachable step was actually taken:
    // any budget cut or guide rejection makes exhaustion inconclusive.
    let mut complete = true;

    while let Some(world) = stack.pop() {
        if states >= cfg.max_states {
            return Exploration::Exhausted {
                states,
                complete: false,
            };
        }
        states += 1;
        if let Some(npe) = &world.npe {
            if goal.matches(npe) {
                return Exploration::Witness(Witness {
                    npe: npe.clone(),
                    trace: world.trace.clone(),
                    schedule: world.schedule.clone(),
                    states_explored: states,
                });
            }
            continue;
        }
        let enabled = world.enabled_steps();
        if world.steps >= cfg.max_steps {
            if !enabled.is_empty() {
                complete = false;
            }
            continue;
        }
        let mut successors: Vec<(i32, usize, Step)> = Vec::with_capacity(enabled.len());
        for (i, step) in enabled.into_iter().enumerate() {
            if let Step::Dispatch(_) = step {
                if world.events >= cfg.max_events {
                    complete = false;
                    continue;
                }
            }
            match guide {
                Some(g) if !g.admit(&world, &step) => {
                    complete = false;
                    continue;
                }
                _ => {}
            }
            let priority = guide.map_or(0, |g| g.priority(&world, &step));
            successors.push((priority, i, step));
        }
        // Ascending (priority, index): the stack pops the
        // highest-priority successor first, and priority ties keep the
        // plain explorer's pop order (descending enabled-step index) so
        // an unguided `explore_guided` is step-for-step identical to
        // the original `explore`.
        successors.sort_by_key(|&(priority, i, _)| (priority, i));
        for (_, _, step) in successors {
            let mut next = world.clone();
            if !next.step(&step) {
                continue;
            }
            // Check NPEs eagerly: a throwing state has the same heap and
            // frame shape as its parent, so it must not be deduplicated.
            if let Some(npe) = &next.npe {
                if goal.matches(npe) {
                    return Exploration::Witness(Witness {
                        npe: npe.clone(),
                        trace: next.trace.clone(),
                        schedule: next.schedule.clone(),
                        states_explored: states,
                    });
                }
                continue;
            }
            let fp = fingerprint(&next);
            if visited.insert(fp) {
                stack.push(next);
            }
        }
    }
    Exploration::Exhausted { states, complete }
}

/// Convenience: search for any NPE with default bounds.
#[must_use]
pub fn find_any_npe(program: &Program) -> Option<Witness> {
    explore(program, Goal::AnyNpe, ExploreConfig::default())
}

/// Convenience: search for an NPE at a specific use site with default
/// bounds.
#[must_use]
pub fn find_npe_at_use(program: &Program, use_instr: InstrId) -> Option<Witness> {
    explore(program, Goal::AtUse(use_instr), ExploreConfig::default())
}

/// Deterministically replay a step sequence (e.g. a [`Witness`]
/// schedule) and return the final world — the reproduction workflow the
/// paper performs by hand in §7.
#[must_use]
pub fn replay<'p>(program: &'p Program, schedule: &[Step]) -> World<'p> {
    let mut world = World::new(program);
    for step in schedule {
        if !world.step(step) {
            break;
        }
    }
    world
}

/// Minimize a witness schedule by delta-debugging: try dropping
/// progressively smaller blocks of steps (halving from half the
/// schedule down to single steps), keeping a drop when the replay still
/// ends in the same NPE, and iterate the whole cycle to a fixpoint.
/// Block deletion matters: two steps can be individually load-bearing
/// for each other (e.g. a post and its dequeue) yet jointly removable,
/// which single-step passes alone never discover.
///
/// Every deletion pass re-validates the surviving schedule against the
/// NPE before the next pass runs, so the result provably reproduces the
/// witness; a schedule that does not reproduce the NPE in the first
/// place is returned unchanged. The function is idempotent:
/// `minimize_schedule` of its own output is a fixpoint.
#[must_use]
pub fn minimize_schedule(program: &Program, schedule: &[Step], npe: &Npe) -> Vec<Step> {
    let reproduces = |candidate: &[Step]| {
        let world = replay(program, candidate);
        world.npe.as_ref() == Some(npe)
    };
    let mut current: Vec<Step> = schedule.to_vec();
    if !reproduces(&current) {
        debug_assert!(false, "minimize_schedule: schedule does not reproduce the NPE");
        return current;
    }
    loop {
        let before = current.len();
        let mut chunk = (current.len() / 2).max(1);
        loop {
            let mut i = 0;
            while i + chunk <= current.len() {
                let mut candidate = current.clone();
                candidate.drain(i..i + chunk);
                if reproduces(&candidate) {
                    current = candidate;
                } else {
                    i += 1;
                }
            }
            // Re-validate after the pass: only reproducing candidates
            // are ever kept, so this can't fire — but the minimizer's
            // contract is that every pass ends on a verified witness.
            assert!(
                reproduces(&current),
                "minimize_schedule: deletion pass invalidated the witness"
            );
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
        if current.len() == before {
            break;
        }
    }
    current
}

/// A stable fingerprint of the scheduling-relevant state (heap, frames,
/// queues, component states) — progress counters and traces excluded so
/// that converging schedules deduplicate. Public so external search
/// drivers (the confirm subsystem) share the explorer's deduplication.
#[must_use]
pub fn fingerprint(w: &World<'_>) -> u64 {
    let mut h = DefaultHasher::new();
    // Heap.
    for i in 0..w.heap.len() {
        let r = crate::machine::HeapRef(i as u32);
        w.heap.class_of(r).raw().hash(&mut h);
        let obj_fields: std::collections::BTreeMap<u32, i64> = (0..w.program_field_count())
            .filter_map(|f| {
                let fid = nadroid_ir::FieldId::from_raw(f);
                match w.heap.load(r, fid) {
                    crate::machine::Value::Null => None,
                    crate::machine::Value::Obj(o) => Some((f, i64::from(o.0))),
                }
            })
            .collect();
        obj_fields.hash(&mut h);
    }
    // Tasks.
    for t in &w.tasks {
        t.done.hash(&mut h);
        for f in &t.frames {
            f.method.raw().hash(&mut h);
            f.pc.hash(&mut h);
            for v in &f.locals {
                match v {
                    crate::machine::Value::Null => (-1i64).hash(&mut h),
                    crate::machine::Value::Obj(o) => i64::from(o.0).hash(&mut h),
                }
            }
            let budget: std::collections::BTreeMap<_, _> =
                f.loop_budget.iter().map(|(k, v)| (*k, *v)).collect();
            budget.hash(&mut h);
        }
    }
    // Queues and component state.
    let mut queues: Vec<u32> = w.posts.keys().copied().collect();
    queues.sort_unstable();
    for q in queues {
        q.hash(&mut h);
        for p in &w.posts[&q] {
            p.target.0.hash(&mut h);
            p.method.raw().hash(&mut h);
        }
    }
    let mut lcs: Vec<(u32, u8)> = w
        .lifecycles
        .iter()
        .map(|(c, l)| (c.raw(), l.state() as u8))
        .collect();
    lcs.sort_unstable();
    lcs.hash(&mut h);
    let mut fin: Vec<u32> = w.finished.iter().map(|c| c.raw()).collect();
    fin.sort_unstable();
    fin.hash(&mut h);
    for (c, s) in &w.connections {
        c.0.hash(&mut h);
        (*s as u8).hash(&mut h);
    }
    for r in &w.receivers {
        r.0.hash(&mut h);
    }
    for (l, m) in &w.listeners {
        l.0.hash(&mut h);
        m.raw().hash(&mut h);
    }
    for a in &w.async_runs {
        a.obj.0.hash(&mut h);
        (a.phase as u8).hash(&mut h);
    }
    let mut mons: Vec<(u32, u32, u32)> = w
        .monitors
        .iter()
        .map(|(r, (t, d))| (r.0, t.0, *d))
        .collect();
    mons.sort_unstable();
    mons.hash(&mut h);
    let mut wl: Vec<(u32, u32)> = w.wakelocks.iter().map(|(r, n)| (r.0, *n)).collect();
    wl.sort_unstable();
    wl.hash(&mut h);
    let mut svc: Vec<(u32, u8)> = w
        .services
        .iter()
        .map(|(c, s)| (c.raw(), *s as u8))
        .collect();
    svc.sort_unstable();
    svc.hash(&mut h);
    h.finish()
}

/// Search for a **no-sleep witness** (§9's energy-bug client): a schedule
/// that leaves the app backgrounded and idle with a wake lock still held.
#[must_use]
pub fn explore_no_sleep(program: &Program, cfg: ExploreConfig) -> Option<Vec<String>> {
    let mut initial = World::new(program);
    initial.max_loop_iters = cfg.max_loop_iters;
    let mut stack: Vec<World<'_>> = vec![initial];
    let mut visited: HashSet<u64> = HashSet::new();
    let mut states = 0usize;
    while let Some(world) = stack.pop() {
        if states >= cfg.max_states {
            return None;
        }
        states += 1;
        if world.npe.is_some() {
            continue;
        }
        if world.holds_wakelock() && world.quiescent_background() {
            let mut trace = world.trace.clone();
            trace.push("QUIESCENT with wake lock held".to_owned());
            return Some(trace);
        }
        if world.steps >= cfg.max_steps {
            continue;
        }
        for step in world.enabled_steps() {
            if let Step::Dispatch(_) = step {
                if world.events >= cfg.max_events {
                    continue;
                }
            }
            let mut next = world.clone();
            if !next.step(&step) {
                continue;
            }
            let fp = fingerprint(&next);
            if visited.insert(fp) {
                stack.push(next);
            }
        }
    }
    None
}
