//! A CAFA-style *trace-based* dynamic race detector (§2.3's comparison
//! class: Hsiao et al., PLDI'14).
//!
//! Dynamic detectors execute the app under some schedule, record an
//! access trace, and flag use/free pairs that the trace's
//! happens-before relation leaves unordered — so a race is reported even
//! when the observed schedule didn't crash. Their weakness, which the
//! paper leans on, is *coverage*: only accesses that actually executed
//! can race. [`coverage`] quantifies that by unioning the races found
//! over N random schedules, to be compared with the static detector's
//! findings.
//!
//! Happens-before edges over callback/thread *segments*:
//! - program order within a segment (callbacks run to completion);
//! - the post edge: enqueuing segment → the posted callback's segment;
//! - the fork edge: spawning segment → the thread's segment.
//!
//! Two callbacks on the same looper get **no** implicit edge — their
//! dispatch order is scheduler nondeterminism, which is exactly the
//! single-thread race class CAFA introduced.

use crate::world::{Step, TraceEvent, World};
use nadroid_ir::{FieldId, InstrId, Program};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::{BTreeSet, HashMap};

/// A dynamically detected UAF race.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct DynamicRace {
    /// The use (`Load`) instruction.
    pub use_instr: InstrId,
    /// The free (`StoreNull`) instruction.
    pub free_instr: InstrId,
    /// The racy field.
    pub field: FieldId,
}

/// Execute one random schedule, recording the structured trace.
///
/// The schedule picks uniformly among enabled steps (bounded by
/// `max_steps` micro-steps and `max_events` dispatches) — the "automatic
/// UI exploration" input generators of the dynamic tools.
#[must_use]
pub fn run_random_schedule(
    program: &Program,
    seed: u64,
    max_steps: usize,
    max_events: usize,
) -> Vec<TraceEvent> {
    let mut world = World::new(program);
    world.record_events = true;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    while world.steps < max_steps && world.npe.is_none() {
        let mut steps = world.enabled_steps();
        if world.events >= max_events {
            steps.retain(|s| matches!(s, Step::Advance { .. }));
        }
        let Some(step) = steps.choose(&mut rng).cloned() else {
            break;
        };
        world.step(&step);
    }
    std::mem::take(&mut world.events_log)
}

/// Offline race detection over one trace.
#[must_use]
pub fn detect_races(trace: &[TraceEvent]) -> Vec<DynamicRace> {
    // 1. Segment the trace.
    #[derive(Debug, Default, Clone)]
    struct Segment {
        uses: Vec<(InstrId, u32, FieldId)>,
        frees: Vec<(InstrId, u32, FieldId)>,
    }
    let mut segments: Vec<Segment> = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut current: HashMap<u32, usize> = HashMap::new(); // task -> open segment
    let mut pending_post: HashMap<u32, usize> = HashMap::new(); // seq -> poster segment
    let mut awaiting_post: Option<usize> = None; // poster segment of the next SegmentBegin
    let mut pending_spawn: HashMap<u32, usize> = HashMap::new(); // child task -> spawner segment

    for ev in trace {
        match *ev {
            TraceEvent::SegmentBegin { task, .. } => {
                let id = segments.len();
                segments.push(Segment::default());
                current.insert(task.0, id);
                if let Some(poster) = awaiting_post.take() {
                    edges.push((poster, id));
                }
                if let Some(spawner) = pending_spawn.remove(&task.0) {
                    edges.push((spawner, id));
                }
            }
            TraceEvent::SegmentEnd { task } => {
                current.remove(&task.0);
            }
            TraceEvent::Use {
                task,
                instr,
                obj,
                field,
            } => {
                if let Some(&seg) = current.get(&task.0) {
                    segments[seg].uses.push((instr, obj.0, field));
                }
            }
            TraceEvent::Free {
                task,
                instr,
                obj,
                field,
            } => {
                if let Some(&seg) = current.get(&task.0) {
                    segments[seg].frees.push((instr, obj.0, field));
                }
            }
            TraceEvent::PostEnqueue { from, seq } => {
                if let Some(&seg) = current.get(&from.0) {
                    pending_post.insert(seq, seg);
                }
            }
            TraceEvent::PostDequeue { seq } => {
                awaiting_post = pending_post.remove(&seq);
            }
            TraceEvent::Spawn { from, child } => {
                if let Some(&seg) = current.get(&from.0) {
                    pending_spawn.insert(child.0, seg);
                }
            }
        }
    }

    // 2. Happens-before closure over the segment DAG.
    let n = segments.len();
    let mut reach = vec![vec![false; n]; n];
    for &(a, b) in &edges {
        reach[a][b] = true;
    }
    for k in 0..n {
        for i in 0..n {
            if reach[i][k] {
                let row_k = reach[k].clone();
                for (j, r) in row_k.iter().enumerate() {
                    if *r {
                        reach[i][j] = true;
                    }
                }
            }
        }
    }
    let ordered = |a: usize, b: usize| a == b || reach[a][b] || reach[b][a];

    // 3. Racy (use, free) pairs on the same concrete (object, field).
    let mut out = BTreeSet::new();
    for (si, s) in segments.iter().enumerate() {
        for &(u, uobj, ufield) in &s.uses {
            for (ti, t) in segments.iter().enumerate() {
                if ordered(si, ti) {
                    continue;
                }
                for &(f, fobj, ffield) in &t.frees {
                    if uobj == fobj && ufield == ffield {
                        out.insert(DynamicRace {
                            use_instr: u,
                            free_instr: f,
                            field: ufield,
                        });
                    }
                }
            }
        }
    }
    out.into_iter().collect()
}

/// Union of races found over `schedules` random executions — the
/// coverage a CAFA-style tool achieves with that testing budget.
#[must_use]
pub fn coverage(
    program: &Program,
    schedules: u64,
    base_seed: u64,
    max_steps: usize,
    max_events: usize,
) -> BTreeSet<DynamicRace> {
    let mut found = BTreeSet::new();
    for s in 0..schedules {
        let trace = run_random_schedule(program, base_seed.wrapping_add(s), max_steps, max_events);
        found.extend(detect_races(&trace));
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadroid_ir::parse_program;

    #[test]
    fn race_detected_without_witnessing_the_crash() {
        // The trace observes use-then-free (no NPE), but the two
        // callbacks are unordered by HB, so the race is still reported —
        // the defining property of trace-based detection.
        let p = parse_program(
            r#"
            app T
            activity M {
                field f: M
                cb onCreate { f = new M }
                cb onClick { use f }
                cb onPause { f = null }
            }
            "#,
        )
        .unwrap();
        let mut races = BTreeSet::new();
        for seed in 0..40u64 {
            let trace = run_random_schedule(&p, seed, 300, 8);
            races.extend(detect_races(&trace));
        }
        assert!(!races.is_empty(), "some schedule exercises both accesses");
    }

    #[test]
    fn post_edge_orders_poster_and_postee() {
        // A synthetic single-click trace: the poster's use is ordered
        // before its posted free by the post edge, so no race.
        use crate::world::TaskId;
        let t0 = TaskId(0);
        let obj = crate::HeapRef(0);
        let f = FieldId::from_raw(0);
        let trace = vec![
            TraceEvent::SegmentBegin {
                task: t0,
                method: nadroid_ir::MethodId::from_raw(0),
                target: Some(obj),
            },
            TraceEvent::Use {
                task: t0,
                instr: InstrId::from_raw(1),
                obj,
                field: f,
            },
            TraceEvent::PostEnqueue { from: t0, seq: 0 },
            TraceEvent::SegmentEnd { task: t0 },
            TraceEvent::PostDequeue { seq: 0 },
            TraceEvent::SegmentBegin {
                task: t0,
                method: nadroid_ir::MethodId::from_raw(1),
                target: Some(obj),
            },
            TraceEvent::Free {
                task: t0,
                instr: InstrId::from_raw(2),
                obj,
                field: f,
            },
            TraceEvent::SegmentEnd { task: t0 },
        ];
        assert!(detect_races(&trace).is_empty());
    }

    #[test]
    fn repeated_clicks_expose_the_phb_unsoundness() {
        // §6.2.1: the PHB filter "assumes that two different instances of
        // UI event callbacks do not share an object/field at runtime. If
        // they do, another call to the onClick callback may lead to a UAF
        // error." The trace-based detector sees exactly that: a second
        // click's use races with the first click's posted free.
        let p = parse_program(
            r#"
            app P
            activity M {
                field f: M
                cb onCreate { f = new M }
                cb onClick { use f  send H }
            }
            handler H in M { cb handleMessage { outer.f = null } }
            "#,
        )
        .unwrap();
        let mut races = BTreeSet::new();
        for seed in 0..40u64 {
            races.extend(detect_races(&run_random_schedule(&p, seed, 300, 8)));
        }
        assert!(
            !races.is_empty(),
            "a double-click schedule exposes the race"
        );
    }

    #[test]
    fn fork_edge_orders_spawner_and_thread() {
        let p = parse_program(
            r#"
            app F
            activity M {
                field f: M
                cb onCreate { f = new M  use f  spawn W }
            }
            thread W in M { cb run { outer.f = null } }
            "#,
        )
        .unwrap();
        for seed in 0..30u64 {
            let trace = run_random_schedule(&p, seed, 300, 8);
            let races = detect_races(&trace);
            assert!(
                races.is_empty(),
                "seed {seed}: fork edge must order the pair: {races:?}"
            );
        }
    }

    #[test]
    fn same_segment_accesses_never_race() {
        let p = parse_program(
            r#"
            app S
            activity M {
                field f: M
                cb onClick { f = new M  use f  f = null }
            }
            "#,
        )
        .unwrap();
        for seed in 0..10u64 {
            let trace = run_random_schedule(&p, seed, 200, 6);
            // Restrict to the first segment: two *separate* onClick
            // dispatches legitimately race (the PHB unsoundness tested
            // above), so the intra-segment ordering property must be
            // checked on a single-segment prefix regardless of how many
            // clicks the random schedule happened to deliver.
            let one_segment: Vec<_> = trace
                .iter()
                .take_while(|ev| !matches!(ev, TraceEvent::SegmentEnd { .. }))
                .chain(
                    trace
                        .iter()
                        .find(|ev| matches!(ev, TraceEvent::SegmentEnd { .. })),
                )
                .cloned()
                .collect();
            assert!(detect_races(&one_segment).is_empty());
        }
    }

    #[test]
    fn coverage_grows_with_schedules() {
        // Two independent races; a single schedule may see only one.
        let p = parse_program(
            r#"
            app C
            activity A1 {
                field f1: A1
                cb onCreate { f1 = new A1 }
                cb onClick { use f1 }
                cb onPause { f1 = null }
            }
            activity A2 {
                field f2: A2
                cb onCreate { f2 = new A2 }
                cb onClick { use f2 }
                cb onPause { f2 = null }
            }
            "#,
        )
        .unwrap();
        let few = coverage(&p, 1, 7, 250, 8);
        let many = coverage(&p, 60, 7, 250, 8);
        assert!(few.len() <= many.len());
        assert!(
            many.len() >= 2,
            "enough schedules cover both races: {many:?}"
        );
    }
}
