//! The small-step execution state: looper, threads, component lifecycles,
//! and framework event dispatch.
//!
//! The model follows the Android concurrency semantics the paper relies
//! on (§2.1): event callbacks run to completion, one at a time, on the
//! looper; native threads and AsyncTask bodies interleave with the looper
//! at instruction granularity; posted work is FIFO; lifecycle events obey
//! the [`nadroid_android::lifecycle::Lifecycle`] automaton; UI events are
//! only delivered to a resumed, unfinished activity.

use crate::machine::{CodeCache, FlatOp, Frame, Heap, HeapRef, Prov, Value};
use nadroid_android::lifecycle::Lifecycle;
use nadroid_android::{CallbackKind, ClassRole};
use nadroid_ir::{AndroidOp, Callee, ClassId, Cond, InstrId, Local, MethodId, Op, Program};
use nadroid_threadify::callback_method;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::rc::Rc;

/// Identifier of a task (0 = the looper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The looper task.
    pub const LOOPER: TaskId = TaskId(0);
}

/// A schedulable unit: the looper or a background thread.
#[derive(Debug, Clone)]
pub struct Task {
    /// Call stack (empty = idle/finished).
    pub frames: Vec<Frame>,
    /// Whether the task has terminated (threads only).
    pub done: bool,
    /// Whether this task is a looper (processes queued callbacks
    /// atomically). Task 0 is the main looper; further looper tasks come
    /// from `LooperThread` classes (`HandlerThread`).
    pub is_looper: bool,
}

/// A pending looper delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingPost {
    /// Receiver object.
    pub target: HeapRef,
    /// Callback method to run.
    pub method: MethodId,
    /// Trace identity of the post (for the causal post edge).
    pub seq: u32,
}

/// AsyncTask protocol state for one executed task instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskPhase {
    /// `onPreExecute` queued/running.
    Pre,
    /// Body thread running.
    Body,
    /// Body finished, `onPostExecute` pending.
    Post,
    /// Protocol complete.
    Done,
}

/// One executed AsyncTask instance.
#[derive(Debug, Clone)]
pub struct AsyncRun {
    /// The task object.
    pub obj: HeapRef,
    /// Protocol phase.
    pub phase: TaskPhase,
}

/// A structured trace event for offline (CAFA-style) race detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A callback or thread body began on a task (opens a segment).
    SegmentBegin {
        /// The executing task.
        task: TaskId,
        /// The root method.
        method: MethodId,
        /// The receiver object.
        target: Option<HeapRef>,
    },
    /// The current segment of a task ended.
    SegmentEnd {
        /// The executing task.
        task: TaskId,
    },
    /// A field read (`getfield`).
    Use {
        /// The executing task.
        task: TaskId,
        /// The load instruction.
        instr: InstrId,
        /// The base object.
        obj: HeapRef,
        /// The field.
        field: nadroid_ir::FieldId,
    },
    /// A field free (`putfield null`).
    Free {
        /// The executing task.
        task: TaskId,
        /// The store instruction.
        instr: InstrId,
        /// The base object.
        obj: HeapRef,
        /// The field.
        field: nadroid_ir::FieldId,
    },
    /// Work was enqueued on a looper (the causal post edge).
    PostEnqueue {
        /// The enqueuing task.
        from: TaskId,
        /// Sequence number identifying the post.
        seq: u32,
    },
    /// Enqueued work began executing.
    PostDequeue {
        /// Sequence number of the post.
        seq: u32,
    },
    /// A thread was spawned (the causal fork edge).
    Spawn {
        /// The spawning task.
        from: TaskId,
        /// The new task.
        child: TaskId,
    },
}

/// A recorded `NullPointerException`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Npe {
    /// The instruction that threw.
    pub at: InstrId,
    /// The load instruction that produced the null value, when the NPE
    /// came from dereferencing a loaded field (this is what matches a
    /// static warning's use site).
    pub loaded_from: Option<InstrId>,
    /// The free instruction that wrote the null, when it came from an
    /// explicit `putfield null` (this is what matches a static warning's
    /// free site).
    pub freed_by: Option<InstrId>,
    /// The task that threw.
    pub task: TaskId,
}

/// A schedulable step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Advance a task by one instruction (resolving a pending choice to
    /// "fall through" (`false`) or "jump" (`true`)).
    Advance {
        /// The task to step.
        task: TaskId,
        /// Resolution for a [`FlatOp::Choice`] at the pc, if one is there.
        choice: bool,
    },
    /// Dispatch a framework event on the idle looper.
    Dispatch(Event),
}

/// A framework event the environment may deliver when the looper is idle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A lifecycle transition of an activity.
    Lifecycle {
        /// The activity class.
        activity: ClassId,
        /// The lifecycle callback.
        kind: CallbackKind,
    },
    /// A UI/system entry callback on an armed target.
    Entry {
        /// The receiver object.
        target: HeapRef,
        /// The callback method.
        method: MethodId,
    },
    /// Deliver the head of a looper's post queue.
    DequeuePost {
        /// The looper task to deliver on.
        looper: TaskId,
    },
    /// The framework connects a bound service connection.
    ServiceConnect {
        /// The connection object.
        conn: HeapRef,
    },
    /// The framework disconnects a connected connection.
    ServiceDisconnect {
        /// The connection object.
        conn: HeapRef,
    },
    /// A broadcast delivered to a registered receiver.
    Broadcast {
        /// The receiver object.
        receiver: HeapRef,
    },
    /// Run the pending `onPostExecute` of a finished AsyncTask.
    TaskPost {
        /// Index into the async-run table.
        run: usize,
    },
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Lifecycle { activity, kind } => write!(f, "lifecycle({activity}, {kind})"),
            Event::Entry { method, .. } => write!(f, "entry({method})"),
            Event::DequeuePost { looper } => write!(f, "dequeue-post({})", looper.0),
            Event::ServiceConnect { conn } => write!(f, "connect({})", conn.0),
            Event::ServiceDisconnect { conn } => write!(f, "disconnect({})", conn.0),
            Event::Broadcast { receiver } => write!(f, "broadcast({})", receiver.0),
            Event::TaskPost { run } => write!(f, "task-post({run})"),
        }
    }
}

/// Lifecycle state of a started service component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceState {
    /// Not yet created by the framework.
    Fresh,
    /// `onCreate` ran; the service accepts commands and binds.
    Created,
    /// `onDestroy` ran (terminal).
    Destroyed,
}

/// Service-connection state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Bound, never connected yet.
    Bound,
    /// Currently connected.
    Connected,
    /// Disconnected (may reconnect while still bound).
    Disconnected,
}

/// The whole execution state. `World` is cloneable so the explorer can
/// branch.
#[derive(Clone)]
pub struct World<'p> {
    program: &'p Program,
    cache: Rc<std::cell::RefCell<CodeCache>>,
    /// The heap.
    pub heap: Heap,
    /// Component singletons.
    pub singletons: HashMap<ClassId, HeapRef>,
    /// Tasks; index 0 is the main looper; `LooperThread` classes get
    /// their own looper tasks at startup.
    pub tasks: Vec<Task>,
    /// FIFO post queue per looper task (keyed by the task index).
    pub posts: HashMap<u32, VecDeque<PendingPost>>,
    /// Looper task of each `LooperThread` class.
    pub looper_tasks: HashMap<ClassId, TaskId>,
    /// Activity lifecycles.
    pub lifecycles: HashMap<ClassId, Lifecycle>,
    /// Finished activities (no further UI/lifecycle).
    pub finished: Vec<ClassId>,
    /// Bound service connections.
    pub connections: Vec<(HeapRef, ConnState)>,
    /// Lifecycle state of each service component.
    pub services: HashMap<ClassId, ServiceState>,
    /// Registered broadcast receivers.
    pub receivers: Vec<HeapRef>,
    /// Currently shown dialogs (`Dialog.show()` adds, `dismiss()` removes).
    pub shown: Vec<HeapRef>,
    /// Armed alarm targets (`AlarmManager.set` adds, `cancel` removes).
    pub alarms: Vec<HeapRef>,
    /// Activities that are only reachable through an explicit
    /// `startActivity` launch (statically targeted by a launch site
    /// somewhere in the program): their lifecycles stay dormant until a
    /// launch actually executes.
    pub launch_gated: Vec<ClassId>,
    /// Launch-gated activities that have been started at runtime.
    pub launched: Vec<ClassId>,
    /// Imperatively armed listeners: (object, callback).
    pub listeners: Vec<(HeapRef, MethodId)>,
    /// Executed AsyncTask instances.
    pub async_runs: Vec<AsyncRun>,
    /// Held monitors: lock object -> (task, depth).
    pub monitors: HashMap<HeapRef, (TaskId, u32)>,
    /// Held wake locks: lock object -> acquire depth (no-sleep client).
    pub wakelocks: HashMap<HeapRef, u32>,
    /// First NPE observed, if any.
    pub npe: Option<Npe>,
    /// Total micro-steps taken.
    pub steps: usize,
    /// Events dispatched.
    pub events: usize,
    /// Human-readable schedule trace.
    pub trace: Vec<String>,
    /// The exact steps taken (for deterministic replay of witnesses).
    pub schedule: Vec<Step>,
    /// Structured event log for offline race detection (populated only
    /// when [`World::record_events`] is set).
    pub events_log: Vec<TraceEvent>,
    /// Whether to populate `events_log`.
    pub record_events: bool,
    /// Next post sequence number (trace identity of enqueued work).
    pub next_post_seq: u32,
    /// Per-frame loop iteration bound.
    pub max_loop_iters: u32,
}

impl fmt::Debug for World<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("World")
            .field("steps", &self.steps)
            .field("events", &self.events)
            .field("npe", &self.npe)
            .finish_non_exhaustive()
    }
}

impl<'p> World<'p> {
    /// A fresh world: singletons for every component class, activities in
    /// their initial lifecycle state, manifest receivers registered.
    #[must_use]
    pub fn new(program: &'p Program) -> World<'p> {
        let mut heap = Heap::new();
        let mut singletons = HashMap::new();
        let mut lifecycles = HashMap::new();
        for (cid, class) in program.classes() {
            if class.role().is_component() {
                let r = heap.alloc(cid);
                singletons.insert(cid, r);
                // Only activities an intent can reach are ever started —
                // unreachable components keep a singleton (for static
                // accesses) but receive no events.
                if class.role() == ClassRole::Activity && program.component_reachable(cid) {
                    lifecycles.insert(cid, Lifecycle::new());
                }
            } else if class.role() == ClassRole::Fragment && class.outer().is_some() {
                // Fragments are framework-instantiated alongside their
                // host activity and follow their own lifecycle automaton.
                let host = program.outermost_class(cid);
                if program.class(host).role() == ClassRole::Activity
                    && program.component_reachable(host)
                {
                    let r = heap.alloc(cid);
                    singletons.insert(cid, r);
                    lifecycles.insert(cid, Lifecycle::new());
                }
            }
        }
        let services: HashMap<ClassId, ServiceState> = program
            .classes()
            .filter(|(_, c)| c.role() == ClassRole::Service)
            .map(|(cid, _)| (cid, ServiceState::Fresh))
            .collect();
        let receivers = program
            .manifest()
            .declared_receivers()
            .iter()
            .filter_map(|c| singletons.get(c).copied())
            .collect();
        // Activities statically targeted by a launch site wait for the
        // launch; all other activities behave as before (started by an
        // external intent at any time). The main activity is never gated.
        let mut launch_gated: Vec<ClassId> = Vec::new();
        for m in program.method_ids() {
            for site in nadroid_threadify::resolve::scan_method(program, m).sites {
                if let nadroid_threadify::resolve::SiteAction::Launch(c) = site.action {
                    if program.class(c).role() == ClassRole::Activity
                        && program.manifest().main_activity() != Some(c)
                        && !launch_gated.contains(&c)
                    {
                        launch_gated.push(c);
                    }
                }
            }
        }
        let mut tasks = vec![Task {
            frames: Vec::new(),
            done: false,
            is_looper: true,
        }];
        let mut posts = HashMap::new();
        posts.insert(0u32, VecDeque::new());
        let mut looper_tasks = HashMap::new();
        for (cid, class) in program.classes() {
            if class.role() == ClassRole::LooperThread {
                let id = TaskId(tasks.len() as u32);
                tasks.push(Task {
                    frames: Vec::new(),
                    done: false,
                    is_looper: true,
                });
                posts.insert(id.0, VecDeque::new());
                looper_tasks.insert(cid, id);
            }
        }
        World {
            program,
            cache: Rc::new(std::cell::RefCell::new(CodeCache::new())),
            heap,
            singletons,
            tasks,
            posts,
            looper_tasks,
            lifecycles,
            finished: Vec::new(),
            connections: Vec::new(),
            services,
            receivers,
            shown: Vec::new(),
            alarms: Vec::new(),
            launch_gated,
            launched: Vec::new(),
            listeners: Vec::new(),
            async_runs: Vec::new(),
            monitors: HashMap::new(),
            wakelocks: HashMap::new(),
            npe: None,
            steps: 0,
            events: 0,
            trace: Vec::new(),
            schedule: Vec::new(),
            events_log: Vec::new(),
            record_events: false,
            next_post_seq: 0,
            max_loop_iters: 1,
        }
    }

    /// The program under execution.
    #[must_use]
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Whether execution is over: NPE observed, or nothing can ever run.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.npe.is_some()
    }

    /// Whether the system is deadlocked: a cycle in the wait-for graph
    /// (task blocked on a monitor → the task holding that monitor).
    #[must_use]
    pub fn deadlocked(&self) -> bool {
        // blocked task -> owner of the monitor it waits on.
        let mut waits: HashMap<u32, u32> = HashMap::new();
        for i in 0..self.tasks.len() as u32 {
            let t = &self.tasks[i as usize];
            if t.frames.is_empty() || t.done {
                continue;
            }
            let tid = TaskId(i);
            if !self.blocked_on_monitor(tid) {
                continue;
            }
            let f = t.frames.last().expect("frames checked non-empty");
            if let Some(FlatOp::MonitorEnter { lock }) = f.code.ops.get(f.pc) {
                if let Value::Obj(r) = f.get(*lock) {
                    if let Some((owner, _)) = self.monitors.get(&r) {
                        waits.insert(i, owner.0);
                    }
                }
            }
        }
        // Cycle detection by walking the (functional) wait-for graph.
        for &start in waits.keys() {
            let mut seen = vec![start];
            let mut cur = start;
            while let Some(&next) = waits.get(&cur) {
                if seen.contains(&next) {
                    return true;
                }
                seen.push(next);
                cur = next;
            }
        }
        false
    }

    /// Whether any wake lock is currently held.
    #[must_use]
    pub fn holds_wakelock(&self) -> bool {
        !self.wakelocks.is_empty()
    }

    /// Whether the app is "backgrounded": no activity resumed, no task
    /// running, and no pending work — the state where a held wake lock is
    /// a no-sleep bug.
    #[must_use]
    pub fn quiescent_background(&self) -> bool {
        let any_resumed = self.lifecycles.values().any(|lc| {
            matches!(
                lc.state(),
                nadroid_android::lifecycle::LifecycleState::Resumed
            )
        });
        let any_running = self.tasks.iter().any(|t| !t.frames.is_empty() && !t.done);
        let any_pending = self.posts.values().any(|q| !q.is_empty());
        !any_resumed && !any_running && !any_pending
    }

    /// Whether the main looper has no active callback.
    #[must_use]
    pub fn looper_idle(&self) -> bool {
        self.tasks[0].frames.is_empty()
    }

    /// The looper task a callback on `class` runs on (its declared
    /// `HandlerThread` looper, or the main looper).
    fn looper_for_class(&self, class: ClassId) -> TaskId {
        self.program
            .class(class)
            .looper()
            .and_then(|l| self.looper_tasks.get(&l).copied())
            .unwrap_or(TaskId::LOOPER)
    }

    // --- step enumeration ---------------------------------------------------

    /// All steps currently enabled.
    #[must_use]
    pub fn enabled_steps(&self) -> Vec<Step> {
        let mut out = Vec::new();
        if self.npe.is_some() {
            return out;
        }
        for (i, t) in self.tasks.iter().enumerate() {
            if t.frames.is_empty() || t.done {
                continue;
            }
            let tid = TaskId(i as u32);
            if self.blocked_on_monitor(tid) {
                continue;
            }
            if self.at_choice(tid) {
                if self.choice_false_allowed(tid) {
                    out.push(Step::Advance {
                        task: tid,
                        choice: false,
                    });
                }
                out.push(Step::Advance {
                    task: tid,
                    choice: true,
                });
            } else {
                out.push(Step::Advance {
                    task: tid,
                    choice: false,
                });
            }
        }
        if self.looper_idle() {
            for e in self.enabled_events() {
                out.push(Step::Dispatch(e));
            }
        }
        // Custom loopers drain their own queues when idle.
        for (&task_idx, queue) in &self.posts {
            if task_idx == 0 {
                continue; // folded into enabled_events (main-looper gating)
            }
            let t = &self.tasks[task_idx as usize];
            if t.frames.is_empty() && !queue.is_empty() {
                out.push(Step::Dispatch(Event::DequeuePost {
                    looper: TaskId(task_idx),
                }));
            }
        }
        out
    }

    fn at_choice(&self, tid: TaskId) -> bool {
        let t = &self.tasks[tid.0 as usize];
        let f = t.frames.last().expect("task has frames");
        matches!(f.code.ops.get(f.pc), Some(FlatOp::Choice { .. }))
    }

    /// Falling through a `Choice` (into a loop body or then-arm) is
    /// allowed only `max_loop_iters` times per choice site per frame,
    /// which bounds loop unrolling; jumping out is always allowed.
    fn choice_false_allowed(&self, tid: TaskId) -> bool {
        let f = self.tasks[tid.0 as usize].frames.last().expect("frames");
        f.loop_budget.get(&f.pc).copied().unwrap_or(0) < self.max_loop_iters
    }

    fn blocked_on_monitor(&self, tid: TaskId) -> bool {
        let t = &self.tasks[tid.0 as usize];
        let Some(f) = t.frames.last() else {
            return false;
        };
        let Some(FlatOp::MonitorEnter { lock }) = f.code.ops.get(f.pc) else {
            return false;
        };
        match f.get(*lock) {
            Value::Null => false, // NPE will be raised on step
            Value::Obj(r) => {
                matches!(self.monitors.get(&r), Some((owner, _)) if *owner != tid)
            }
        }
    }

    /// Framework events currently deliverable.
    #[must_use]
    pub fn enabled_events(&self) -> Vec<Event> {
        let mut out = Vec::new();
        // Lifecycle transitions of unfinished activities (and fragments,
        // whose events stop with their finished host).
        for (&act, lc) in &self.lifecycles {
            if self.finished.contains(&act)
                || self.finished.contains(&self.program.outermost_class(act))
                || self.launch_dormant(act)
            {
                continue;
            }
            for kind in lc.legal_events() {
                if callback_method(self.program, act, kind).is_some() || kind_needed(lc, kind) {
                    out.push(Event::Lifecycle {
                        activity: act,
                        kind,
                    });
                }
            }
        }
        // UI/system callbacks declared on resumed activities/fragments.
        for (&act, lc) in &self.lifecycles {
            if self.finished.contains(&act)
                || self.finished.contains(&self.program.outermost_class(act))
                || self.launch_dormant(act)
                || !matches!(
                    lc.state(),
                    nadroid_android::lifecycle::LifecycleState::Resumed
                )
            {
                continue;
            }
            let Some(&target) = self.singletons.get(&act) else {
                continue;
            };
            for &m in self.program.class(act).methods() {
                if let Some(k) = self.program.method(m).callback() {
                    if k.is_ui() || k.is_system() {
                        out.push(Event::Entry { target, method: m });
                    }
                }
            }
        }
        // Service lifecycle and entry callbacks: the framework creates a
        // service on demand, delivers commands/binds while it lives, and
        // destroys it once (the MHB-Lifecycle order for services).
        for (&svc, &state) in &self.services {
            let Some(&target) = self.singletons.get(&svc) else {
                continue;
            };
            match state {
                ServiceState::Fresh => {
                    out.push(Event::Lifecycle {
                        activity: svc,
                        kind: CallbackKind::OnCreate,
                    });
                }
                ServiceState::Created => {
                    for &m in self.program.class(svc).methods() {
                        if let Some(k) = self.program.method(m).callback() {
                            if k.is_system() {
                                out.push(Event::Entry { target, method: m });
                            }
                        }
                    }
                    out.push(Event::Lifecycle {
                        activity: svc,
                        kind: CallbackKind::OnDestroy,
                    });
                }
                ServiceState::Destroyed => {}
            }
        }
        // Imperatively armed listeners (gated on their governing activity
        // still accepting UI events, when resolvable).
        for &(target, method) in &self.listeners {
            if self.listener_enabled(target) {
                out.push(Event::Entry { target, method });
            }
        }
        // Posted work on the main looper.
        if self.posts.get(&0).is_some_and(|q| !q.is_empty()) {
            out.push(Event::DequeuePost {
                looper: TaskId::LOOPER,
            });
        }
        // Service connections.
        for &(conn, state) in &self.connections {
            match state {
                ConnState::Bound => {
                    if self
                        .conn_method(conn, CallbackKind::OnServiceConnected)
                        .is_some()
                    {
                        out.push(Event::ServiceConnect { conn });
                    }
                }
                ConnState::Connected => {
                    if self
                        .conn_method(conn, CallbackKind::OnServiceDisconnected)
                        .is_some()
                    {
                        out.push(Event::ServiceDisconnect { conn });
                    }
                }
                // A crashed service connection stays disconnected: the
                // paper's sound MHB-Service order (connected strictly
                // before disconnected) relies on no reconnection.
                ConnState::Disconnected => {}
            }
        }
        // Broadcasts.
        for &r in &self.receivers {
            if callback_method(self.program, self.heap.class_of(r), CallbackKind::OnReceive)
                .is_some()
            {
                out.push(Event::Broadcast { receiver: r });
            }
        }
        // Shown dialogs deliver onShow while shown; dismissal silences
        // them (onDismiss delivery is modeled statically only).
        for &d in &self.shown {
            if let Some(m) = callback_method(self.program, self.heap.class_of(d), CallbackKind::OnShow)
            {
                out.push(Event::Entry { target: d, method: m });
            }
        }
        // Armed alarm targets deliver onAlarm until cancelled.
        for &a in &self.alarms {
            if let Some(m) =
                callback_method(self.program, self.heap.class_of(a), CallbackKind::OnAlarm)
            {
                out.push(Event::Entry { target: a, method: m });
            }
        }
        // Finished AsyncTasks' onPostExecute.
        for (i, run) in self.async_runs.iter().enumerate() {
            if run.phase == TaskPhase::Post {
                out.push(Event::TaskPost { run: i });
            }
        }
        out
    }

    /// Whether an activity's (or hosted fragment's) lifecycle is dormant
    /// pending an explicit `startActivity` launch.
    fn launch_dormant(&self, act: ClassId) -> bool {
        let host = self.program.outermost_class(act);
        self.launch_gated.contains(&host) && !self.launched.contains(&host)
    }

    fn listener_enabled(&self, target: HeapRef) -> bool {
        // A listener armed by an activity stops firing once that activity
        // is finished; approximate the governing activity by the outer
        // chain of the listener's class.
        let outer = self.program.outermost_class(self.heap.class_of(target));
        if self.program.class(outer).role() == ClassRole::Activity {
            !self.finished.contains(&outer)
                && self
                    .lifecycles
                    .get(&outer)
                    .is_some_and(nadroid_android::lifecycle::Lifecycle::accepts_ui_events)
        } else {
            true
        }
    }

    fn conn_method(&self, conn: HeapRef, kind: CallbackKind) -> Option<MethodId> {
        callback_method(self.program, self.heap.class_of(conn), kind)
    }

    // --- step application -----------------------------------------------------

    /// Apply one step. Returns `false` when the step was not applicable
    /// (stale after cloning).
    pub fn step(&mut self, step: &Step) -> bool {
        if self.npe.is_some() {
            return false;
        }
        self.steps += 1;
        self.schedule.push(step.clone());
        match step {
            Step::Advance { task, choice } => {
                // Same validation as for dispatches below: a minimized
                // schedule may have dropped the step that created this
                // task, making the advance stale rather than a crash.
                if self.tasks.get(task.0 as usize).is_none() {
                    self.steps -= 1;
                    self.schedule.pop();
                    return false;
                }
                self.advance(*task, *choice)
            }
            Step::Dispatch(e) => {
                // Validate against the framework rules, so replayed or
                // minimized schedules cannot smuggle in illegal events
                // (e.g. a disconnect before any connect).
                if !self.dispatchable(e) {
                    self.steps -= 1;
                    self.schedule.pop();
                    return false;
                }
                self.events += 1;
                self.trace.push(format!("dispatch {e}"));
                self.dispatch(e.clone())
            }
        }
    }

    /// Whether an event may legally be dispatched right now — the same
    /// conditions [`World::enabled_steps`] enumerates under.
    fn dispatchable(&self, e: &Event) -> bool {
        if let Event::DequeuePost { looper } = e {
            if looper.0 != 0 {
                let Some(t) = self.tasks.get(looper.0 as usize) else {
                    return false;
                };
                return t.is_looper
                    && t.frames.is_empty()
                    && self.posts.get(&looper.0).is_some_and(|q| !q.is_empty());
            }
        }
        self.looper_idle() && self.enabled_events().contains(e)
    }

    fn dispatch(&mut self, e: Event) -> bool {
        match e {
            Event::Lifecycle { activity, kind } => {
                // Service lifecycle: Fresh -> Created -> Destroyed.
                if let Some(state) = self.services.get_mut(&activity) {
                    let ok = match (*state, kind) {
                        (ServiceState::Fresh, CallbackKind::OnCreate) => {
                            *state = ServiceState::Created;
                            true
                        }
                        (ServiceState::Created, CallbackKind::OnDestroy) => {
                            *state = ServiceState::Destroyed;
                            true
                        }
                        _ => false,
                    };
                    if !ok {
                        return false;
                    }
                    if let Some(m) = callback_method(self.program, activity, kind) {
                        let this = Value::Obj(self.singletons[&activity]);
                        self.push_looper_frame(m, this);
                    }
                    return true;
                }
                let Some(lc) = self.lifecycles.get_mut(&activity) else {
                    return false;
                };
                if lc.fire(kind).is_err() {
                    return false;
                }
                if let Some(m) = callback_method(self.program, activity, kind) {
                    let this = Value::Obj(self.singletons[&activity]);
                    self.push_looper_frame(m, this);
                }
                true
            }
            Event::Entry { target, method } => {
                self.push_looper_frame(method, Value::Obj(target));
                true
            }
            Event::DequeuePost { looper } => {
                let Some(p) = self.posts.get_mut(&looper.0).and_then(VecDeque::pop_front) else {
                    return false;
                };
                if self.record_events {
                    self.events_log.push(TraceEvent::PostDequeue { seq: p.seq });
                }
                self.push_frame_on(looper, p.method, Value::Obj(p.target));
                true
            }
            Event::ServiceConnect { conn } => {
                let Some(slot) = self.connections.iter_mut().find(|(c, _)| *c == conn) else {
                    return false;
                };
                slot.1 = ConnState::Connected;
                if let Some(m) = self.conn_method(conn, CallbackKind::OnServiceConnected) {
                    self.push_looper_frame(m, Value::Obj(conn));
                }
                true
            }
            Event::ServiceDisconnect { conn } => {
                let Some(slot) = self.connections.iter_mut().find(|(c, _)| *c == conn) else {
                    return false;
                };
                slot.1 = ConnState::Disconnected;
                if let Some(m) = self.conn_method(conn, CallbackKind::OnServiceDisconnected) {
                    self.push_looper_frame(m, Value::Obj(conn));
                }
                true
            }
            Event::Broadcast { receiver } => {
                let class = self.heap.class_of(receiver);
                if let Some(m) = callback_method(self.program, class, CallbackKind::OnReceive) {
                    self.push_looper_frame(m, Value::Obj(receiver));
                }
                true
            }
            Event::TaskPost { run } => {
                let Some(r) = self.async_runs.get_mut(run) else {
                    return false;
                };
                if r.phase != TaskPhase::Post {
                    return false;
                }
                r.phase = TaskPhase::Done;
                let obj = r.obj;
                let class = self.heap.class_of(obj);
                if let Some(m) = callback_method(self.program, class, CallbackKind::OnPostExecute) {
                    self.push_looper_frame(m, Value::Obj(obj));
                }
                true
            }
        }
    }

    fn push_looper_frame(&mut self, method: MethodId, this: Value) {
        self.push_frame_on(TaskId::LOOPER, method, this);
    }

    fn push_frame_on(&mut self, task: TaskId, method: MethodId, this: Value) {
        if self.record_events && self.tasks[task.0 as usize].frames.is_empty() {
            self.events_log.push(TraceEvent::SegmentBegin {
                task,
                method,
                target: this.as_ref(),
            });
        }
        let frame = Frame::new(self.program, &mut self.cache.borrow_mut(), method, this);
        self.tasks[task.0 as usize].frames.push(frame);
    }

    /// Enqueue a post on the looper governing the receiver's class,
    /// recording the causal post edge from the enqueuing task.
    fn enqueue_post_from(&mut self, from: TaskId, target: HeapRef, method: MethodId) {
        let looper = self.looper_for_class(self.heap.class_of(target));
        let seq = self.next_post_seq;
        self.next_post_seq += 1;
        if self.record_events {
            self.events_log.push(TraceEvent::PostEnqueue { from, seq });
        }
        self.posts
            .entry(looper.0)
            .or_default()
            .push_back(PendingPost {
                target,
                method,
                seq,
            });
    }

    fn spawn_thread(&mut self, from: TaskId, method: MethodId, this: Value) -> TaskId {
        let frame = Frame::new(self.program, &mut self.cache.borrow_mut(), method, this);
        self.tasks.push(Task {
            frames: vec![frame],
            done: false,
            is_looper: false,
        });
        let child = TaskId(self.tasks.len() as u32 - 1);
        if self.record_events {
            self.events_log.push(TraceEvent::Spawn { from, child });
            self.events_log.push(TraceEvent::SegmentBegin {
                task: child,
                method,
                target: this.as_ref(),
            });
        }
        child
    }

    /// Advance a task by one flattened op.
    #[allow(clippy::too_many_lines)]
    fn advance(&mut self, tid: TaskId, choice: bool) -> bool {
        let ti = tid.0 as usize;
        let Some(frame) = self.tasks[ti].frames.last() else {
            return false;
        };
        let Some(op) = frame.code.ops.get(frame.pc).cloned() else {
            // Method end without explicit return.
            self.pop_frame(tid, None);
            return true;
        };
        match op {
            FlatOp::Jump { target } => {
                self.frame_mut(tid).pc = target;
            }
            FlatOp::Choice { target } => {
                let f = self.frame_mut(tid);
                if choice {
                    f.pc = target;
                } else {
                    // Entering a loop body consumes budget; pure if-choices
                    // have jump targets *after* their pc, loops jump back.
                    let head = f.pc;
                    let budget = f.loop_budget.entry(head).or_insert(0);
                    *budget += 1;
                    f.pc += 1;
                }
            }
            FlatOp::BranchIfNot { cond, target } => {
                let taken = self.eval_cond(tid, cond);
                if self.npe.is_some() {
                    return true;
                }
                let f = self.frame_mut(tid);
                if taken {
                    f.pc += 1;
                } else {
                    f.pc = target;
                }
            }
            FlatOp::MonitorEnter { lock } => {
                let v = self.frame(tid).get(lock);
                match v {
                    Value::Null => self.raise_npe(tid, Prov::default()),
                    Value::Obj(r) => match self.monitors.get_mut(&r) {
                        Some((owner, depth)) if *owner == tid => {
                            *depth += 1;
                            self.frame_mut(tid).pc += 1;
                        }
                        Some(_) => return false, // blocked; caller filters
                        None => {
                            self.monitors.insert(r, (tid, 1));
                            self.frame_mut(tid).pc += 1;
                        }
                    },
                }
            }
            FlatOp::MonitorExit { lock } => {
                if let Value::Obj(r) = self.frame(tid).get(lock) {
                    if let Some((owner, depth)) = self.monitors.get_mut(&r) {
                        if *owner == tid {
                            *depth -= 1;
                            if *depth == 0 {
                                self.monitors.remove(&r);
                            }
                        }
                    }
                }
                self.frame_mut(tid).pc += 1;
            }
            FlatOp::Instr(id, op) => {
                self.exec(tid, id, &op);
            }
        }
        true
    }

    fn frame(&self, tid: TaskId) -> &Frame {
        self.tasks[tid.0 as usize]
            .frames
            .last()
            .expect("active frame")
    }

    fn frame_mut(&mut self, tid: TaskId) -> &mut Frame {
        self.tasks[tid.0 as usize]
            .frames
            .last_mut()
            .expect("active frame")
    }

    fn raise_npe(&mut self, tid: TaskId, prov: Prov) {
        let frame = self.frame(tid);
        let at = match frame.code.ops.get(frame.pc) {
            Some(FlatOp::Instr(id, _)) => *id,
            _ => InstrId::from_raw(u32::MAX),
        };
        self.trace.push(format!("NPE at {at} in task {}", tid.0));
        self.npe = Some(Npe {
            at,
            loaded_from: prov.loaded_from,
            freed_by: prov.freed_by,
            task: tid,
        });
    }

    /// Total number of fields in the program (fingerprinting helper).
    #[must_use]
    pub fn program_field_count(&self) -> u32 {
        self.program.field_ids().count() as u32
    }

    fn eval_cond(&mut self, tid: TaskId, cond: Cond) -> bool {
        match cond {
            Cond::NotNull { base, field } | Cond::IsNull { base, field } => {
                let b = self.frame(tid).get(base);
                let Some(r) = b.as_ref() else {
                    self.raise_npe(tid, self.frame(tid).provenance_of(base));
                    return false;
                };
                let non_null = self.heap.load(r, field) != Value::Null;
                match cond {
                    Cond::NotNull { .. } => non_null,
                    _ => !non_null,
                }
            }
            Cond::Opaque => unreachable!("opaque conditions become Choice ops"),
        }
    }

    fn pop_frame(&mut self, tid: TaskId, ret: Option<(Value, Prov)>) {
        let ti = tid.0 as usize;
        if self.record_events && self.tasks[ti].frames.len() == 1 {
            self.events_log.push(TraceEvent::SegmentEnd { task: tid });
        }
        let finished = self.tasks[ti].frames.pop().expect("frame to pop");
        if let Some(caller) = self.tasks[ti].frames.last_mut() {
            if let Some(dst) = finished.ret_dst {
                let (v, prov) = ret.unwrap_or((Value::Null, Prov::default()));
                caller.set(dst, v, prov);
            }
            caller.pc += 1;
        } else if self.tasks[ti].is_looper {
            // A looper callback finished: if it was an onPreExecute, the
            // AsyncTask body may now start (framework protocol order).
            let this = finished.get(Local::THIS);
            if let Some(r) = this.as_ref() {
                if let Some(i) = self
                    .async_runs
                    .iter()
                    .position(|a| a.obj == r && a.phase == TaskPhase::Pre)
                {
                    let class = self.heap.class_of(r);
                    let pre = callback_method(self.program, class, CallbackKind::OnPreExecute);
                    if pre == Some(finished.method) {
                        if let Some(body) =
                            callback_method(self.program, class, CallbackKind::DoInBackground)
                        {
                            self.spawn_thread(tid, body, Value::Obj(r));
                            self.async_runs[i].phase = TaskPhase::Body;
                        } else {
                            self.async_runs[i].phase = TaskPhase::Post;
                        }
                    }
                }
            }
        } else {
            // A thread's root frame returned: check AsyncTask protocol.
            self.tasks[ti].done = true;
            let this = finished.get(Local::THIS);
            if let Some(r) = this.as_ref() {
                if let Some(run) = self.async_runs.iter_mut().find(|a| a.obj == r) {
                    if run.phase == TaskPhase::Body {
                        run.phase = TaskPhase::Post;
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn exec(&mut self, tid: TaskId, id: InstrId, op: &Op) {
        match op {
            Op::New { dst, class } => {
                let r = self.heap.alloc(*class);
                let f = self.frame_mut(tid);
                f.set(*dst, Value::Obj(r), Prov::default());
                f.pc += 1;
            }
            Op::LoadStatic { dst, class } => {
                let v = self
                    .singletons
                    .get(class)
                    .map_or(Value::Null, |&r| Value::Obj(r));
                let f = self.frame_mut(tid);
                f.set(*dst, v, Prov::default());
                f.pc += 1;
            }
            Op::Load { dst, base, field } => {
                let b = self.frame(tid).get(*base);
                let Some(r) = b.as_ref() else {
                    self.raise_npe(tid, self.frame(tid).provenance_of(*base));
                    return;
                };
                if self.record_events {
                    self.events_log.push(TraceEvent::Use {
                        task: tid,
                        instr: id,
                        obj: r,
                        field: *field,
                    });
                }
                let v = self.heap.load(r, *field);
                let freed_by = if v == Value::Null {
                    self.heap.null_writer(r, *field)
                } else {
                    None
                };
                let f = self.frame_mut(tid);
                f.set(
                    *dst,
                    v,
                    Prov {
                        loaded_from: Some(id),
                        freed_by,
                    },
                );
                f.pc += 1;
            }
            Op::Store { base, field, src } => {
                let b = self.frame(tid).get(*base);
                let Some(r) = b.as_ref() else {
                    self.raise_npe(tid, self.frame(tid).provenance_of(*base));
                    return;
                };
                let v = self.frame(tid).get(*src);
                self.heap.store(r, *field, v);
                self.frame_mut(tid).pc += 1;
            }
            Op::StoreNull { base, field } => {
                let b = self.frame(tid).get(*base);
                let Some(r) = b.as_ref() else {
                    self.raise_npe(tid, self.frame(tid).provenance_of(*base));
                    return;
                };
                if self.record_events {
                    self.events_log.push(TraceEvent::Free {
                        task: tid,
                        instr: id,
                        obj: r,
                        field: *field,
                    });
                }
                self.heap.store_null(r, *field, id);
                self.frame_mut(tid).pc += 1;
            }
            Op::Move { dst, src } => {
                let f = self.frame_mut(tid);
                let v = f.get(*src);
                let prov = f.provenance_of(*src);
                f.set(*dst, v, prov);
                f.pc += 1;
            }
            Op::Null { dst } => {
                let f = self.frame_mut(tid);
                f.set(*dst, Value::Null, Prov::default());
                f.pc += 1;
            }
            Op::Invoke {
                dst,
                callee,
                recv,
                args,
            } => {
                // Dereference the receiver.
                let mut this = Value::Null;
                if let Some(r) = recv {
                    let v = self.frame(tid).get(*r);
                    if v == Value::Null {
                        let prov = self.frame(tid).provenance_of(*r);
                        self.raise_npe(tid, prov);
                        return;
                    }
                    this = v;
                }
                match callee {
                    Callee::Opaque => {
                        // Unanalyzed code: returns null, no effect.
                        let f = self.frame_mut(tid);
                        if let Some(d) = dst {
                            f.set(*d, Value::Null, Prov::default());
                        }
                        f.pc += 1;
                    }
                    Callee::Method(m) => {
                        let mut callee_frame =
                            Frame::new(self.program, &mut self.cache.borrow_mut(), *m, this);
                        let nparams = self.program.method(*m).param_count();
                        for (i, a) in args.iter().enumerate() {
                            if (i as u16) < nparams {
                                let v = self.frame(tid).get(*a);
                                let prov = self.frame(tid).provenance_of(*a);
                                callee_frame.set(Local(i as u16 + 1), v, prov);
                            }
                        }
                        callee_frame.ret_dst = *dst;
                        self.tasks[tid.0 as usize].frames.push(callee_frame);
                    }
                }
            }
            Op::Return { val } => {
                let ret = val.map(|v| {
                    let f = self.frame(tid);
                    (f.get(v), f.provenance_of(v))
                });
                self.pop_frame(tid, ret);
            }
            Op::Android(a) => {
                self.exec_android(tid, *a);
            }
        }
    }

    fn operand_obj(&mut self, tid: TaskId, l: Local) -> Option<HeapRef> {
        let v = self.frame(tid).get(l);
        match v.as_ref() {
            Some(r) => Some(r),
            None => {
                let prov = self.frame(tid).provenance_of(l);
                self.raise_npe(tid, prov);
                None
            }
        }
    }

    fn exec_android(&mut self, tid: TaskId, a: AndroidOp) {
        match a {
            AndroidOp::Post { runnable } => {
                let Some(r) = self.operand_obj(tid, runnable) else {
                    return;
                };
                if let Some(m) =
                    callback_method(self.program, self.heap.class_of(r), CallbackKind::PostedRun)
                {
                    self.enqueue_post_from(tid, r, m);
                }
            }
            AndroidOp::SendMessage { handler } => {
                let Some(r) = self.operand_obj(tid, handler) else {
                    return;
                };
                if let Some(m) = callback_method(
                    self.program,
                    self.heap.class_of(r),
                    CallbackKind::HandleMessage,
                ) {
                    self.enqueue_post_from(tid, r, m);
                }
            }
            AndroidOp::BindService { connection } => {
                let Some(r) = self.operand_obj(tid, connection) else {
                    return;
                };
                if !self.connections.iter().any(|(c, _)| *c == r) {
                    self.connections.push((r, ConnState::Bound));
                }
            }
            AndroidOp::UnbindService { connection } => {
                let Some(r) = self.operand_obj(tid, connection) else {
                    return;
                };
                self.connections.retain(|(c, _)| *c != r);
            }
            AndroidOp::RegisterReceiver { receiver } => {
                let Some(r) = self.operand_obj(tid, receiver) else {
                    return;
                };
                if !self.receivers.contains(&r) {
                    self.receivers.push(r);
                }
            }
            AndroidOp::UnregisterReceiver { receiver } => {
                let Some(r) = self.operand_obj(tid, receiver) else {
                    return;
                };
                self.receivers.retain(|x| *x != r);
            }
            AndroidOp::Execute { task } => {
                let Some(r) = self.operand_obj(tid, task) else {
                    return;
                };
                let class = self.heap.class_of(r);
                if let Some(pre) = callback_method(self.program, class, CallbackKind::OnPreExecute)
                {
                    // The body starts only after onPreExecute completes.
                    self.enqueue_post_from(tid, r, pre);
                    self.async_runs.push(AsyncRun {
                        obj: r,
                        phase: TaskPhase::Pre,
                    });
                } else if let Some(body) =
                    callback_method(self.program, class, CallbackKind::DoInBackground)
                {
                    self.spawn_thread(tid, body, Value::Obj(r));
                    self.async_runs.push(AsyncRun {
                        obj: r,
                        phase: TaskPhase::Body,
                    });
                } else {
                    self.async_runs.push(AsyncRun {
                        obj: r,
                        phase: TaskPhase::Post,
                    });
                }
            }
            AndroidOp::PublishProgress => {
                let this = self.frame(tid).get(Local::THIS);
                if let Some(r) = this.as_ref() {
                    if let Some(m) = callback_method(
                        self.program,
                        self.heap.class_of(r),
                        CallbackKind::OnProgressUpdate,
                    ) {
                        self.enqueue_post_from(tid, r, m);
                    }
                }
            }
            AndroidOp::Start { thread } => {
                let Some(r) = self.operand_obj(tid, thread) else {
                    return;
                };
                if let Some(m) =
                    callback_method(self.program, self.heap.class_of(r), CallbackKind::ThreadRun)
                {
                    self.spawn_thread(tid, m, Value::Obj(r));
                }
            }
            AndroidOp::Finish => {
                // Finish the governing activity of the current frame.
                let this = self.frame(tid).get(Local::THIS);
                if let Some(r) = this.as_ref() {
                    let outer = self.program.outermost_class(self.heap.class_of(r));
                    if self.program.class(outer).role() == ClassRole::Activity
                        && !self.finished.contains(&outer)
                    {
                        self.finished.push(outer);
                    }
                }
            }
            AndroidOp::RemoveCallbacksAndMessages { handler } => {
                let Some(r) = self.operand_obj(tid, handler) else {
                    return;
                };
                for q in self.posts.values_mut() {
                    q.retain(|p| p.target != r);
                }
            }
            AndroidOp::AcquireWakeLock { lock } => {
                let Some(r) = self.operand_obj(tid, lock) else {
                    return;
                };
                *self.wakelocks.entry(r).or_insert(0) += 1;
            }
            AndroidOp::ReleaseWakeLock { lock } => {
                let Some(r) = self.operand_obj(tid, lock) else {
                    return;
                };
                if let Some(n) = self.wakelocks.get_mut(&r) {
                    *n = n.saturating_sub(1);
                    if *n == 0 {
                        self.wakelocks.remove(&r);
                    }
                }
            }
            AndroidOp::ShowDialog { dialog } => {
                let Some(r) = self.operand_obj(tid, dialog) else {
                    return;
                };
                if !self.shown.contains(&r) {
                    self.shown.push(r);
                }
            }
            AndroidOp::DismissDialog { dialog } => {
                let Some(r) = self.operand_obj(tid, dialog) else {
                    return;
                };
                self.shown.retain(|x| *x != r);
            }
            AndroidOp::ScheduleAlarm { target } => {
                let Some(r) = self.operand_obj(tid, target) else {
                    return;
                };
                if !self.alarms.contains(&r) {
                    self.alarms.push(r);
                }
            }
            AndroidOp::CancelAlarm { target } => {
                let Some(r) = self.operand_obj(tid, target) else {
                    return;
                };
                self.alarms.retain(|x| *x != r);
            }
            AndroidOp::StartActivity { activity } => {
                let Some(r) = self.operand_obj(tid, activity) else {
                    return;
                };
                let class = self.heap.class_of(r);
                if self.launch_gated.contains(&class) && !self.launched.contains(&class) {
                    self.launched.push(class);
                }
            }
            AndroidOp::RegisterListener { listener, .. } => {
                let Some(r) = self.operand_obj(tid, listener) else {
                    return;
                };
                let class = self.heap.class_of(r);
                for &m in self.program.class(class).methods() {
                    if let Some(k) = self.program.method(m).callback() {
                        if k.is_ui() || k.is_system() {
                            self.listeners.push((r, m));
                        }
                    }
                }
            }
        }
        if self.npe.is_none() {
            self.frame_mut(tid).pc += 1;
        }
    }
}

/// Lifecycle transitions are worth dispatching even without a callback
/// body (they gate UI events).
fn kind_needed(_lc: &Lifecycle, _kind: CallbackKind) -> bool {
    true
}
