//! The extended Fragment lifecycle automaton (Dexteroid-style
//! reverse-engineered model).
//!
//! The paper's prototype skipped fragments entirely (§8.1); this module
//! models the fragment lifecycle the way [`crate::lifecycle`] models the
//! activity lifecycle, but keeps its ordering facts *out* of the
//! paper-pinned MHB-Lifecycle relation: fragment edges are emitted into
//! the predicate-extended happens-before relations, so the 27-app paper
//! populations are untouched while new corpus patterns exercise them.
//!
//! The sound kind-level facts mirror the activity treatment: `onAttach`
//! is strictly first and `onDetach` strictly last for a fragment
//! instance. `onCreateView` / `onDestroyView` may cycle via the back
//! stack, so they carry no mutual order — except that any `onCreateView`
//! still precedes `onDetach` and follows `onAttach`.

use crate::CallbackKind;

/// States of the fragment lifecycle automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum FragmentState {
    /// Before `onAttach`.
    #[default]
    Fresh,
    /// After `onAttach`, before a view exists.
    Attached,
    /// After `onCreateView` (view hierarchy live).
    ViewCreated,
    /// After `onDestroyView` (view torn down, instance retained — the
    /// back-stack state from which `onCreateView` may run again).
    ViewDestroyed,
    /// After `onDetach` (terminal).
    Detached,
}

/// A running fragment's lifecycle, as a stepped automaton.
///
/// # Example
///
/// ```
/// use nadroid_android::fragment::{FragmentLifecycle, FragmentState};
/// use nadroid_android::CallbackKind;
///
/// let mut f = FragmentLifecycle::new();
/// assert!(f.fire(CallbackKind::OnAttach).is_ok());
/// assert!(f.fire(CallbackKind::OnCreateView).is_ok());
/// // the back-stack cycle:
/// assert!(f.fire(CallbackKind::OnDestroyView).is_ok());
/// assert!(f.fire(CallbackKind::OnCreateView).is_ok());
/// assert!(f.fire(CallbackKind::OnDetach).is_err()); // view still live
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FragmentLifecycle {
    state: FragmentState,
}

impl FragmentLifecycle {
    /// A fresh, not-yet-attached fragment.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The current state.
    #[must_use]
    pub fn state(&self) -> FragmentState {
        self.state
    }

    /// Fragment callbacks legal in the current state.
    #[must_use]
    pub fn legal_events(&self) -> Vec<CallbackKind> {
        use CallbackKind::*;
        use FragmentState::*;
        match self.state {
            Fresh => vec![OnAttach],
            Attached => vec![OnCreateView, OnDetach],
            ViewCreated => vec![OnDestroyView],
            ViewDestroyed => vec![OnCreateView, OnDetach],
            Detached => vec![],
        }
    }

    /// Fire a fragment lifecycle callback, advancing the automaton.
    ///
    /// # Errors
    ///
    /// Returns the illegal `(state, event)` pair when the callback is not
    /// legal in the current state.
    pub fn fire(
        &mut self,
        event: CallbackKind,
    ) -> Result<FragmentState, (FragmentState, CallbackKind)> {
        use CallbackKind::*;
        use FragmentState::*;
        let next = match (self.state, event) {
            (Fresh, OnAttach) => Attached,
            (Attached | ViewDestroyed, OnCreateView) => ViewCreated,
            (ViewCreated, OnDestroyView) => ViewDestroyed,
            (Attached | ViewDestroyed, OnDetach) => Detached,
            (from, event) => return Err((from, event)),
        };
        self.state = next;
        Ok(next)
    }

    /// Whether the fragment has been detached (terminal state).
    #[must_use]
    pub fn is_detached(&self) -> bool {
        self.state == FragmentState::Detached
    }
}

/// The sound fragment-lifecycle must-happens-before relation.
///
/// `onAttach` precedes every other fragment callback of the same fragment
/// instance, and every fragment callback precedes `onDetach`. The
/// `onCreateView`/`onDestroyView` pair cycles via the back stack, so it
/// carries no order of its own.
///
/// Both arguments must execute on the *same fragment class*; the HB layer
/// applies that qualification.
#[must_use]
pub fn fragment_mhb(first: CallbackKind, second: CallbackKind) -> bool {
    if first == second || !first.is_fragment_lifecycle() || !second.is_fragment_lifecycle() {
        return false;
    }
    first == CallbackKind::OnAttach || second == CallbackKind::OnDetach
}

#[cfg(test)]
mod tests {
    use super::*;
    use CallbackKind::*;

    #[test]
    fn attach_first_detach_last() {
        for &k in CallbackKind::all() {
            if !k.is_fragment_lifecycle() {
                assert!(!fragment_mhb(OnAttach, k), "{k}: non-fragment kind");
                continue;
            }
            if k != OnAttach {
                assert!(fragment_mhb(OnAttach, k), "onAttach MHB {k}");
            }
            if k != OnDetach {
                assert!(fragment_mhb(k, OnDetach), "{k} MHB onDetach");
            }
        }
    }

    #[test]
    fn view_pair_not_ordered() {
        assert!(!fragment_mhb(OnCreateView, OnDestroyView));
        assert!(!fragment_mhb(OnDestroyView, OnCreateView));
    }

    #[test]
    fn irreflexive() {
        for &k in CallbackKind::all() {
            assert!(!fragment_mhb(k, k), "{k}");
        }
    }

    #[test]
    fn automaton_back_stack_cycle() {
        let mut f = FragmentLifecycle::new();
        for e in [OnAttach, OnCreateView, OnDestroyView, OnCreateView] {
            f.fire(e).unwrap_or_else(|(s, e)| panic!("{e} in {s:?}"));
        }
        assert_eq!(f.state(), FragmentState::ViewCreated);
        assert!(f.fire(OnDetach).is_err());
        f.fire(OnDestroyView).unwrap();
        f.fire(OnDetach).unwrap();
        assert!(f.is_detached());
        assert!(f.legal_events().is_empty());
    }

    #[test]
    fn automaton_rejects_reattach() {
        let mut f = FragmentLifecycle::new();
        f.fire(OnAttach).unwrap();
        assert!(f.fire(OnAttach).is_err());
        f.fire(OnDetach).unwrap();
        assert!(f.fire(OnAttach).is_err(), "detach is terminal");
    }
}
