//! Framework roles a class can play in an Android application.

use std::fmt;

/// The framework role of a class in the analyzed application.
///
/// Roles determine which callbacks a class may declare and how instances of
/// the class interact with looper threads. They correspond to the Android
/// base classes / interfaces an application class extends or implements
/// (e.g. `android.app.Activity`, `java.lang.Runnable`).
///
/// # Example
///
/// ```
/// use nadroid_android::ClassRole;
///
/// assert!(ClassRole::Activity.is_component());
/// assert!(ClassRole::AsyncTask.runs_off_looper());
/// assert!(!ClassRole::Handler.runs_off_looper());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ClassRole {
    /// `android.app.Activity`: UI component with a framework lifecycle.
    Activity,
    /// `android.app.Service`: background component bound or started by others.
    Service,
    /// `android.content.BroadcastReceiver`: responds to broadcasts.
    Receiver,
    /// `android.app.Application`: process-wide singleton component.
    Application,
    /// `android.content.ServiceConnection`: receives service (dis)connect
    /// callbacks on behalf of a binding component.
    ServiceConnection,
    /// `java.lang.Runnable` whose `run` is posted to a looper thread.
    Runnable,
    /// `android.os.Handler`: receives `sendMessage`/`post` deliveries.
    Handler,
    /// `android.os.AsyncTask`: structured background task with looper-side
    /// pre/progress/post callbacks.
    AsyncTask,
    /// `java.lang.Thread`: a native thread with a `run` body.
    Thread,
    /// `android.os.HandlerThread`: a thread that owns its own looper, so
    /// handlers can be attached to it. Addressing the paper's §8.1
    /// limitation: callbacks on different loopers are *not* atomic with
    /// respect to each other, which downgrades the IG/IA filters for
    /// cross-looper pairs.
    LooperThread,
    /// `android.app.Fragment`: a reusable UI portion hosted by an
    /// activity, with its own framework lifecycle. The paper's prototype
    /// did not model fragments (§8.1) — the one DEvA warning it missed in
    /// Table 3; modeling them closes that gap.
    Fragment,
    /// A UI or system listener interface implementation (e.g.
    /// `View.OnClickListener`, `LocationListener`).
    Listener,
    /// `android.app.Dialog`: a transient UI surface whose callbacks are
    /// armed by `show()` and silenced by `dismiss()` — the canonical
    /// enabling/disabling predicate pair of the Perez & Le callback
    /// summaries.
    Dialog,
    /// Any other application class with no framework role.
    Plain,
}

impl ClassRole {
    /// Whether this role is one of the four Android application components
    /// declared in the manifest (Activity, Service, Receiver, Application).
    #[must_use]
    pub fn is_component(self) -> bool {
        matches!(
            self,
            ClassRole::Activity | ClassRole::Service | ClassRole::Receiver | ClassRole::Application
        )
    }

    /// Whether instances of this role execute off the looper thread
    /// (i.e. they introduce genuine multi-threading).
    ///
    /// `AsyncTask` counts because its `doInBackground` runs on a pool
    /// thread; `Thread` is a native thread. Everything else executes as
    /// event callbacks on a looper thread.
    #[must_use]
    pub fn runs_off_looper(self) -> bool {
        matches!(self, ClassRole::AsyncTask | ClassRole::Thread)
    }

    /// Whether this role is a framework-helper object that, in Java, would
    /// be an (anonymous) inner class capturing its creator — Runnable,
    /// Handler, AsyncTask, Thread, ServiceConnection, Listener.
    ///
    /// The IR wires such instances to their creator through the implicit
    /// `$outer` field when built with `MethodBuilder::new_wired`.
    #[must_use]
    pub fn is_framework_helper(self) -> bool {
        matches!(
            self,
            ClassRole::Runnable
                | ClassRole::Handler
                | ClassRole::AsyncTask
                | ClassRole::Thread
                | ClassRole::ServiceConnection
                | ClassRole::Listener
                | ClassRole::Dialog
        )
    }

    /// All roles, useful for exhaustive tests and corpus generation.
    #[must_use]
    pub fn all() -> &'static [ClassRole] {
        &[
            ClassRole::Activity,
            ClassRole::Service,
            ClassRole::Receiver,
            ClassRole::Application,
            ClassRole::ServiceConnection,
            ClassRole::Runnable,
            ClassRole::Handler,
            ClassRole::AsyncTask,
            ClassRole::Thread,
            ClassRole::LooperThread,
            ClassRole::Fragment,
            ClassRole::Listener,
            ClassRole::Dialog,
            ClassRole::Plain,
        ]
    }

    /// Short lower-case keyword used by the IR's textual DSL.
    #[must_use]
    pub fn keyword(self) -> &'static str {
        match self {
            ClassRole::Activity => "activity",
            ClassRole::Service => "service",
            ClassRole::Receiver => "receiver",
            ClassRole::Application => "application",
            ClassRole::ServiceConnection => "connection",
            ClassRole::Runnable => "runnable",
            ClassRole::Handler => "handler",
            ClassRole::AsyncTask => "asynctask",
            ClassRole::Thread => "thread",
            ClassRole::LooperThread => "looperthread",
            ClassRole::Fragment => "fragment",
            ClassRole::Listener => "listener",
            ClassRole::Dialog => "dialog",
            ClassRole::Plain => "class",
        }
    }

    /// Parse a DSL keyword back into a role. Inverse of [`ClassRole::keyword`].
    #[must_use]
    pub fn from_keyword(kw: &str) -> Option<ClassRole> {
        ClassRole::all().iter().copied().find(|r| r.keyword() == kw)
    }
}

impl fmt::Display for ClassRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_are_the_manifest_four() {
        let comps: Vec<_> = ClassRole::all()
            .iter()
            .filter(|r| r.is_component())
            .collect();
        assert_eq!(comps.len(), 4);
    }

    #[test]
    fn keyword_round_trips() {
        for &role in ClassRole::all() {
            assert_eq!(ClassRole::from_keyword(role.keyword()), Some(role));
        }
    }

    #[test]
    fn unknown_keyword_is_none() {
        assert_eq!(ClassRole::from_keyword("menu"), None);
    }

    #[test]
    fn dialog_is_a_wired_helper() {
        assert!(ClassRole::Dialog.is_framework_helper());
        assert!(!ClassRole::Dialog.is_component());
        assert_eq!(ClassRole::from_keyword("dialog"), Some(ClassRole::Dialog));
    }

    #[test]
    fn off_looper_roles() {
        assert!(ClassRole::Thread.runs_off_looper());
        assert!(ClassRole::AsyncTask.runs_off_looper());
        assert!(!ClassRole::Runnable.runs_off_looper());
        assert!(!ClassRole::Activity.runs_off_looper());
    }
}
