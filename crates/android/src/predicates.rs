//! Predicate callback summaries: enabling/disabling API pairs between
//! framework callbacks (Perez & Le, "Generating Predicate Callback
//! Summaries for the Android Framework").
//!
//! Each summarized *family* ties a pair of framework APIs to the callback
//! kinds whose future deliveries they arm and silence:
//!
//! | family       | enabler             | disabler               | callbacks |
//! |--------------|---------------------|------------------------|-----------|
//! | Connection   | `bindService`       | `unbindService`        | `onServiceConnected`, `onServiceDisconnected` |
//! | Receiver     | `registerReceiver`  | `unregisterReceiver`   | `onReceive` |
//! | Dialog       | `Dialog.show`       | `Dialog.dismiss`       | `onShow`, `onDismiss` |
//! | Alarm        | `AlarmManager.set`  | `AlarmManager.cancel`  | `onAlarm` |
//! | Task         | `startActivity`     | — (one-way)            | launched activity's lifecycle |
//!
//! The HB layer compiles these summaries into the Datalog relations
//! `enables(cb_a, cb_b)` / `disables(cb_a, cb_b)` with per-edge
//! provenance, from which the predicate-extended closure derives new
//! must-HB edges and `mustNotHb` facts consumed by the sound refutation
//! filter. The summaries deliberately exclude `Activity.finish()` — that
//! is the (unsound) CHB filter's domain, and keeping it out guarantees
//! the predicate relations stay empty on the 27 paper apps.

use crate::CallbackKind;
use std::fmt;

/// A summarized enabling/disabling API family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PredicateFamily {
    /// `bindService` / `unbindService` arming a `ServiceConnection`.
    Connection,
    /// `registerReceiver` / `unregisterReceiver` arming a receiver.
    Receiver,
    /// `Dialog.show()` / `Dialog.dismiss()` arming dialog callbacks.
    Dialog,
    /// `AlarmManager.set…()` / `AlarmManager.cancel()` arming an alarm
    /// delivery.
    Alarm,
    /// `startActivity` launching another activity's lifecycle family
    /// (enable-only: there is no framework API that "un-launches").
    Task,
}

impl PredicateFamily {
    /// All summarized families.
    #[must_use]
    pub fn all() -> &'static [PredicateFamily] {
        &[
            PredicateFamily::Connection,
            PredicateFamily::Receiver,
            PredicateFamily::Dialog,
            PredicateFamily::Alarm,
            PredicateFamily::Task,
        ]
    }

    /// Short lower-case name used in provenance records and evidence.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PredicateFamily::Connection => "connection",
            PredicateFamily::Receiver => "receiver",
            PredicateFamily::Dialog => "dialog",
            PredicateFamily::Alarm => "alarm",
            PredicateFamily::Task => "task",
        }
    }

    /// The framework API that arms the family's callbacks.
    #[must_use]
    pub fn enabler_api(self) -> &'static str {
        match self {
            PredicateFamily::Connection => "Context.bindService()",
            PredicateFamily::Receiver => "Context.registerReceiver()",
            PredicateFamily::Dialog => "Dialog.show()",
            PredicateFamily::Alarm => "AlarmManager.set()",
            PredicateFamily::Task => "Context.startActivity()",
        }
    }

    /// The framework API that silences the family's callbacks, or `None`
    /// for enable-only families.
    #[must_use]
    pub fn disabler_api(self) -> Option<&'static str> {
        match self {
            PredicateFamily::Connection => Some("Context.unbindService()"),
            PredicateFamily::Receiver => Some("Context.unregisterReceiver()"),
            PredicateFamily::Dialog => Some("Dialog.dismiss()"),
            PredicateFamily::Alarm => Some("AlarmManager.cancel()"),
            PredicateFamily::Task => None,
        }
    }

    /// The callback kinds whose deliveries the family's APIs gate on the
    /// *target class* of the API call. The `Task` family gates the
    /// launched activity's whole lifecycle; the HB layer resolves that
    /// against the target's declared callbacks.
    #[must_use]
    pub fn gated_kinds(self) -> &'static [CallbackKind] {
        match self {
            PredicateFamily::Connection => &[
                CallbackKind::OnServiceConnected,
                CallbackKind::OnServiceDisconnected,
            ],
            PredicateFamily::Receiver => &[CallbackKind::OnReceive],
            PredicateFamily::Dialog => &[CallbackKind::OnShow, CallbackKind::OnDismiss],
            PredicateFamily::Alarm => &[CallbackKind::OnAlarm],
            PredicateFamily::Task => &[
                CallbackKind::OnCreate,
                CallbackKind::OnStart,
                CallbackKind::OnRestart,
                CallbackKind::OnResume,
                CallbackKind::OnPause,
                CallbackKind::OnStop,
                CallbackKind::OnDestroy,
            ],
        }
    }

    /// The family a callback kind is gated by, when the kind is *only*
    /// deliverable through a summarized enabler. Activity lifecycle kinds
    /// return `None`: they are gated by `Task` launches only for
    /// launch-gated target classes, which the HB layer decides with the
    /// whole program in view.
    #[must_use]
    pub fn of_kind(kind: CallbackKind) -> Option<PredicateFamily> {
        use CallbackKind::*;
        match kind {
            OnServiceConnected | OnServiceDisconnected => Some(PredicateFamily::Connection),
            OnReceive => Some(PredicateFamily::Receiver),
            OnShow | OnDismiss => Some(PredicateFamily::Dialog),
            OnAlarm => Some(PredicateFamily::Alarm),
            _ => None,
        }
    }
}

impl fmt::Display for PredicateFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_with_disabler_has_gated_kinds() {
        for &f in PredicateFamily::all() {
            assert!(!f.gated_kinds().is_empty(), "{f}");
            if f.disabler_api().is_some() {
                for &k in f.gated_kinds() {
                    assert_eq!(PredicateFamily::of_kind(k), Some(f), "{f}/{k}");
                }
            }
        }
    }

    #[test]
    fn lifecycle_kinds_are_not_statically_family_gated() {
        // Activity lifecycle callbacks belong to the Task family only for
        // launch-gated classes — a whole-program property, so the
        // kind-level map must not claim them.
        for &k in CallbackKind::all() {
            if k.is_lifecycle() || k.is_ui() || k.is_fragment_lifecycle() {
                assert_eq!(PredicateFamily::of_kind(k), None, "{k}");
            }
        }
    }

    #[test]
    fn finish_is_not_a_summarized_disabler() {
        // finish() stays the CHB filter's domain; no family names it.
        for &f in PredicateFamily::all() {
            assert_ne!(f.disabler_api(), Some("Activity.finish()"));
        }
    }
}
