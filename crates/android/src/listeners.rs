//! FlowDroid-style table of listener-registration APIs.
//!
//! nAdroid identifies entry callbacks using the Android API
//! listener-callback list from FlowDroid (§8.1). This module provides the
//! equivalent table for our IR: each registration API maps to the callback
//! kinds it arms on the registered listener object. The threadification
//! pass uses this to model imperatively-registered callbacks as child
//! threads of the dummy main.

use crate::CallbackKind;

/// A registration API that arms entry callbacks on a listener object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegistrationApi {
    /// `View.setOnClickListener` → `onClick`.
    SetOnClickListener,
    /// `View.setOnLongClickListener` → `onLongClick`.
    SetOnLongClickListener,
    /// `View.setOnTouchListener` → `onTouch`.
    SetOnTouchListener,
    /// `View.setOnKeyListener` → `onKey`.
    SetOnKeyListener,
    /// `AdapterView.setOnItemSelectedListener` → `onItemSelected`.
    SetOnItemSelectedListener,
    /// `LocationManager.requestLocationUpdates` → `onLocationChanged`.
    RequestLocationUpdates,
    /// `SensorManager.registerListener` → `onSensorChanged`.
    RegisterSensorListener,
}

impl RegistrationApi {
    /// All registration APIs in the table.
    #[must_use]
    pub fn all() -> &'static [RegistrationApi] {
        &[
            RegistrationApi::SetOnClickListener,
            RegistrationApi::SetOnLongClickListener,
            RegistrationApi::SetOnTouchListener,
            RegistrationApi::SetOnKeyListener,
            RegistrationApi::SetOnItemSelectedListener,
            RegistrationApi::RequestLocationUpdates,
            RegistrationApi::RegisterSensorListener,
        ]
    }

    /// The Android method name of the registration call.
    #[must_use]
    pub fn method_name(self) -> &'static str {
        match self {
            RegistrationApi::SetOnClickListener => "setOnClickListener",
            RegistrationApi::SetOnLongClickListener => "setOnLongClickListener",
            RegistrationApi::SetOnTouchListener => "setOnTouchListener",
            RegistrationApi::SetOnKeyListener => "setOnKeyListener",
            RegistrationApi::SetOnItemSelectedListener => "setOnItemSelectedListener",
            RegistrationApi::RequestLocationUpdates => "requestLocationUpdates",
            RegistrationApi::RegisterSensorListener => "registerListener",
        }
    }

    /// Resolve an API from its method name.
    #[must_use]
    pub fn from_method_name(name: &str) -> Option<RegistrationApi> {
        RegistrationApi::all()
            .iter()
            .copied()
            .find(|a| a.method_name() == name)
    }

    /// The entry callback kind this registration arms on the listener.
    #[must_use]
    pub fn armed_callback(self) -> CallbackKind {
        match self {
            RegistrationApi::SetOnClickListener => CallbackKind::OnClick,
            RegistrationApi::SetOnLongClickListener => CallbackKind::OnLongClick,
            RegistrationApi::SetOnTouchListener => CallbackKind::OnTouch,
            RegistrationApi::SetOnKeyListener => CallbackKind::OnKey,
            RegistrationApi::SetOnItemSelectedListener => CallbackKind::OnItemSelected,
            RegistrationApi::RequestLocationUpdates => CallbackKind::OnLocationChanged,
            RegistrationApi::RegisterSensorListener => CallbackKind::OnSensorChanged,
        }
    }
}

impl std::fmt::Display for RegistrationApi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.method_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for &api in RegistrationApi::all() {
            assert_eq!(
                RegistrationApi::from_method_name(api.method_name()),
                Some(api)
            );
        }
    }

    #[test]
    fn armed_callbacks_are_entry() {
        use crate::CallbackClass;
        for &api in RegistrationApi::all() {
            assert_eq!(api.armed_callback().class(), Some(CallbackClass::Entry));
        }
    }
}
