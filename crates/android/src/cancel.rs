//! Cancellation APIs and the scopes they silence — the basis of the
//! unsound cancel-happens-before (CHB) filter (§6.2.1).
//!
//! Android lets an application cancel future callback deliveries:
//! `Activity.finish()` stops all further UI/lifecycle callbacks of the
//! activity, `unbindService` stops service-connection callbacks,
//! `unregisterReceiver` stops broadcast deliveries, and
//! `Handler.removeCallbacksAndMessages` drops pending posts. A callback
//! that cancels a family of callbacks must happen *after* any remaining
//! delivery of that family — the CHB order.

use crate::CallbackKind;
use std::fmt;

/// A framework cancellation API call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CancelApi {
    /// `Activity.finish()`: closes the activity; no further UI or lifecycle
    /// callbacks (other than the teardown sequence) are delivered.
    Finish,
    /// `Context.unbindService(conn)`: no further `onServiceConnected` /
    /// `onServiceDisconnected` on the connection.
    UnbindService,
    /// `Context.unregisterReceiver(r)`: no further `onReceive`.
    UnregisterReceiver,
    /// `Handler.removeCallbacksAndMessages(null)`: drops pending posted
    /// runnables and messages of the handler.
    RemoveCallbacksAndMessages,
}

/// The family of callbacks a cancellation API silences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CancelScope {
    /// UI and system entry callbacks of the finished activity.
    UiOfActivity,
    /// Service-connection callbacks of the unbound connection.
    ServiceConnection,
    /// Broadcast deliveries of the unregistered receiver.
    Receiver,
    /// Pending posted runnables / messages of the handler.
    HandlerPosts,
}

impl CancelApi {
    /// The scope this API cancels.
    #[must_use]
    pub fn scope(self) -> CancelScope {
        match self {
            CancelApi::Finish => CancelScope::UiOfActivity,
            CancelApi::UnbindService => CancelScope::ServiceConnection,
            CancelApi::UnregisterReceiver => CancelScope::Receiver,
            CancelApi::RemoveCallbacksAndMessages => CancelScope::HandlerPosts,
        }
    }

    /// All cancellation APIs.
    #[must_use]
    pub fn all() -> &'static [CancelApi] {
        &[
            CancelApi::Finish,
            CancelApi::UnbindService,
            CancelApi::UnregisterReceiver,
            CancelApi::RemoveCallbacksAndMessages,
        ]
    }

    /// The Android method name of the API.
    #[must_use]
    pub fn method_name(self) -> &'static str {
        match self {
            CancelApi::Finish => "finish",
            CancelApi::UnbindService => "unbindService",
            CancelApi::UnregisterReceiver => "unregisterReceiver",
            CancelApi::RemoveCallbacksAndMessages => "removeCallbacksAndMessages",
        }
    }
}

impl fmt::Display for CancelApi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.method_name())
    }
}

impl CancelScope {
    /// Whether a callback kind falls inside this cancellation scope, i.e.
    /// whether the cancel silences future deliveries of that kind.
    ///
    /// The component-identity qualification (same activity, same
    /// connection, same handler) is the responsibility of the filter layer.
    #[must_use]
    pub fn covers(self, kind: CallbackKind) -> bool {
        match self {
            CancelScope::UiOfActivity => kind.is_ui() || kind.is_system() || kind.is_lifecycle(),
            CancelScope::ServiceConnection => matches!(
                kind,
                CallbackKind::OnServiceConnected | CallbackKind::OnServiceDisconnected
            ),
            CancelScope::Receiver => kind == CallbackKind::OnReceive,
            CancelScope::HandlerPosts => {
                matches!(kind, CallbackKind::HandleMessage | CallbackKind::PostedRun)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_covers_ui_not_posts() {
        let s = CancelApi::Finish.scope();
        assert!(s.covers(CallbackKind::OnClick));
        assert!(s.covers(CallbackKind::OnResume));
        assert!(!s.covers(CallbackKind::HandleMessage));
        assert!(!s.covers(CallbackKind::OnReceive));
    }

    #[test]
    fn unbind_covers_connection_callbacks() {
        let s = CancelApi::UnbindService.scope();
        assert!(s.covers(CallbackKind::OnServiceConnected));
        assert!(s.covers(CallbackKind::OnServiceDisconnected));
        assert!(!s.covers(CallbackKind::OnClick));
    }

    #[test]
    fn remove_callbacks_covers_handler_posts() {
        let s = CancelApi::RemoveCallbacksAndMessages.scope();
        assert!(s.covers(CallbackKind::HandleMessage));
        assert!(s.covers(CallbackKind::PostedRun));
        assert!(!s.covers(CallbackKind::OnClick));
    }

    #[test]
    fn every_api_has_distinct_scope() {
        let mut scopes: Vec<_> = CancelApi::all().iter().map(|a| a.scope()).collect();
        scopes.sort();
        scopes.dedup();
        assert_eq!(scopes.len(), CancelApi::all().len());
    }
}
