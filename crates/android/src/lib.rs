//! Android framework vocabulary and concurrency-model semantics.
//!
//! This crate is the bottom layer of the nAdroid-rs stack. It defines the
//! *framework-side* concepts that the rest of the pipeline reasons about:
//!
//! - [`ClassRole`]: what kind of framework entity a class plays
//!   (Activity, Service, Runnable, Handler, AsyncTask, ...).
//! - [`CallbackKind`]: the taxonomy of event callbacks the Android runtime
//!   or the application itself may invoke (lifecycle, UI, system, posted,
//!   AsyncTask, ...), together with the Entry-Callback / Posted-Callback
//!   split from §7 of the paper.
//! - [`lifecycle`]: the Activity lifecycle automaton and the *sound*
//!   must-happens-before (MHB) relations of §6.1 of the paper.
//! - [`cancel`]: the cancellation APIs behind the unsound
//!   cancel-happens-before (CHB) filter of §6.2.
//! - [`listeners`]: the FlowDroid-style registration-API table used to
//!   discover imperatively registered entry callbacks.
//! - [`fragment`]: the extended (Dexteroid-style) Fragment lifecycle
//!   automaton, feeding the predicate-extended HB relations.
//! - [`predicates`]: the Perez-&-Le-style summary table of
//!   enabling/disabling API pairs behind the `enables`/`disables`
//!   relations and the sound refutation filter.
//!
//! Nothing in this crate depends on the program IR; it is pure framework
//! modelling, mirroring how nAdroid encodes Android rules separately from
//! the analyzed bytecode.
//!
//! # Example
//!
//! ```
//! use nadroid_android::{CallbackKind, lifecycle};
//!
//! // onCreate must happen before any UI callback ...
//! assert!(lifecycle::lifecycle_mhb(CallbackKind::OnCreate, CallbackKind::OnClick));
//! // ... but onResume/onPause cycle via the back button, so no MHB there.
//! assert!(!lifecycle::lifecycle_mhb(CallbackKind::OnResume, CallbackKind::OnPause));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod fragment;
pub mod lifecycle;
pub mod listeners;
pub mod predicates;

mod callback;
mod role;

pub use callback::{CallbackClass, CallbackKind};
pub use cancel::{CancelApi, CancelScope};
pub use predicates::PredicateFamily;
pub use role::ClassRole;
