//! The event-callback taxonomy of the Android concurrency model.

use std::fmt;

/// High-level classification of a callback used by the report stage (§7 of
/// the paper): Entry Callbacks are externally invoked by the Android
/// runtime, Posted Callbacks are internally triggered by other callbacks
/// or threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CallbackClass {
    /// Entry Callback (EC): lifecycle, UI, and other system-triggered
    /// callbacks invoked directly by the Android runtime.
    Entry,
    /// Posted Callback (PC): Handler, Service/Receiver, and AsyncTask
    /// callbacks triggered from within the application.
    Posted,
}

impl fmt::Display for CallbackClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CallbackClass::Entry => "EC",
            CallbackClass::Posted => "PC",
        })
    }
}

/// The kind of an event callback method.
///
/// This mirrors the callback families that nAdroid's threadification (§4)
/// distinguishes:
///
/// - **Lifecycle** callbacks of Activities/Services (`onCreate` ...);
/// - **UI / system** entry callbacks (`onClick`, `onLocationChanged` ...);
/// - **Handler** deliveries (`handleMessage`, posted `run`);
/// - **Service / Receiver** posted callbacks (`onServiceConnected` ...);
/// - **AsyncTask** callbacks (`onPreExecute`, `doInBackground` ...);
/// - **Native thread** bodies (`Thread.run`).
///
/// # Example
///
/// ```
/// use nadroid_android::{CallbackClass, CallbackKind};
///
/// assert_eq!(CallbackKind::OnClick.class(), Some(CallbackClass::Entry));
/// assert_eq!(CallbackKind::HandleMessage.class(), Some(CallbackClass::Posted));
/// // A thread body is not an event callback at all.
/// assert_eq!(CallbackKind::ThreadRun.class(), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum CallbackKind {
    // --- Activity lifecycle (Entry) ---
    /// `Activity.onCreate`: first lifecycle callback.
    OnCreate,
    /// `Activity.onStart`.
    OnStart,
    /// `Activity.onRestart`.
    OnRestart,
    /// `Activity.onResume`.
    OnResume,
    /// `Activity.onPause`.
    OnPause,
    /// `Activity.onStop`.
    OnStop,
    /// `Activity.onDestroy`: final lifecycle callback.
    OnDestroy,

    // --- UI entry callbacks (Entry) ---
    /// `View.OnClickListener.onClick`.
    OnClick,
    /// `View.OnLongClickListener.onLongClick`.
    OnLongClick,
    /// `View.OnTouchListener.onTouch`.
    OnTouch,
    /// `View.OnKeyListener.onKey`.
    OnKey,
    /// `AdapterView.OnItemSelectedListener.onItemSelected`.
    OnItemSelected,
    /// `Activity.onCreateContextMenu`.
    OnCreateContextMenu,
    /// `Activity.onCreateOptionsMenu`.
    OnCreateOptionsMenu,
    /// `Activity.onOptionsItemSelected`.
    OnOptionsItemSelected,
    /// `Activity.onActivityResult` (posted back by the framework, but
    /// delivered as an entry callback on the UI looper).
    OnActivityResult,
    /// `Activity.onRetainNonConfigurationInstance`.
    OnRetainNonConfigurationInstance,

    // --- System entry callbacks (Entry) ---
    /// `LocationListener.onLocationChanged`.
    OnLocationChanged,
    /// `SensorEventListener.onSensorChanged`.
    OnSensorChanged,
    /// `Service.onBind`.
    OnBind,
    /// `Service.onStartCommand`.
    OnStartCommand,

    // --- Fragment lifecycle (Entry, Dexteroid-style extended model) ---
    /// `Fragment.onAttach`: first fragment lifecycle callback.
    OnAttach,
    /// `Fragment.onCreateView`.
    OnCreateView,
    /// `Fragment.onDestroyView`.
    OnDestroyView,
    /// `Fragment.onDetach`: final fragment lifecycle callback.
    OnDetach,

    // --- Service / Receiver posted callbacks (Posted) ---
    /// `ServiceConnection.onServiceConnected`.
    OnServiceConnected,
    /// `ServiceConnection.onServiceDisconnected`.
    OnServiceDisconnected,
    /// `BroadcastReceiver.onReceive`.
    OnReceive,
    /// `DialogInterface.OnShowListener.onShow`: delivered while the
    /// owning dialog is shown (enabled by `show()`, disabled by
    /// `dismiss()`).
    OnShow,
    /// `DialogInterface.OnDismissListener.onDismiss`.
    OnDismiss,
    /// Alarm delivery (`AlarmManager` firing a scheduled receiver):
    /// enabled by `AlarmManager.set…()`, disabled by
    /// `AlarmManager.cancel()`.
    OnAlarm,

    // --- Handler posted callbacks (Posted) ---
    /// `Handler.handleMessage`: target of `sendMessage`.
    HandleMessage,
    /// `Runnable.run` posted to a looper via `Handler.post`,
    /// `View.post`, or `Activity.runOnUiThread`.
    PostedRun,

    // --- AsyncTask callbacks ---
    /// `AsyncTask.onPreExecute` (looper side, Posted).
    OnPreExecute,
    /// `AsyncTask.doInBackground` (pool thread — not an event callback).
    DoInBackground,
    /// `AsyncTask.onProgressUpdate` (looper side, Posted).
    OnProgressUpdate,
    /// `AsyncTask.onPostExecute` (looper side, Posted).
    OnPostExecute,

    // --- Native thread body (not an event callback) ---
    /// `Thread.run` of a native `java.lang.Thread`.
    ThreadRun,
}

impl CallbackKind {
    /// All callback kinds, for exhaustive tests and corpus generation.
    #[must_use]
    pub fn all() -> &'static [CallbackKind] {
        use CallbackKind::*;
        &[
            OnCreate,
            OnStart,
            OnRestart,
            OnResume,
            OnPause,
            OnStop,
            OnDestroy,
            OnClick,
            OnLongClick,
            OnTouch,
            OnKey,
            OnItemSelected,
            OnCreateContextMenu,
            OnCreateOptionsMenu,
            OnOptionsItemSelected,
            OnActivityResult,
            OnRetainNonConfigurationInstance,
            OnLocationChanged,
            OnSensorChanged,
            OnBind,
            OnStartCommand,
            OnAttach,
            OnCreateView,
            OnDestroyView,
            OnDetach,
            OnServiceConnected,
            OnServiceDisconnected,
            OnReceive,
            OnShow,
            OnDismiss,
            OnAlarm,
            HandleMessage,
            PostedRun,
            OnPreExecute,
            DoInBackground,
            OnProgressUpdate,
            OnPostExecute,
            ThreadRun,
        ]
    }

    /// Whether this is an Activity/Service lifecycle callback.
    #[must_use]
    pub fn is_lifecycle(self) -> bool {
        use CallbackKind::*;
        matches!(
            self,
            OnCreate | OnStart | OnRestart | OnResume | OnPause | OnStop | OnDestroy
        )
    }

    /// Whether this is a UI-interaction entry callback.
    #[must_use]
    pub fn is_ui(self) -> bool {
        use CallbackKind::*;
        matches!(
            self,
            OnClick
                | OnLongClick
                | OnTouch
                | OnKey
                | OnItemSelected
                | OnCreateContextMenu
                | OnCreateOptionsMenu
                | OnOptionsItemSelected
                | OnActivityResult
                | OnRetainNonConfigurationInstance
        )
    }

    /// Whether this is a sensor/system entry callback.
    #[must_use]
    pub fn is_system(self) -> bool {
        use CallbackKind::*;
        matches!(
            self,
            OnLocationChanged | OnSensorChanged | OnBind | OnStartCommand
        )
    }

    /// Whether this is a Fragment lifecycle callback of the extended
    /// (Dexteroid-style) model. Deliberately *not* part of
    /// [`CallbackKind::is_lifecycle`]: the paper-pinned MHB-Lifecycle
    /// relation is untouched, and fragment ordering flows through the
    /// predicate-extended edge relations instead.
    #[must_use]
    pub fn is_fragment_lifecycle(self) -> bool {
        use CallbackKind::*;
        matches!(self, OnAttach | OnCreateView | OnDestroyView | OnDetach)
    }

    /// Whether this is one of the AsyncTask looper-side callbacks.
    #[must_use]
    pub fn is_asynctask_looper(self) -> bool {
        use CallbackKind::*;
        matches!(self, OnPreExecute | OnProgressUpdate | OnPostExecute)
    }

    /// Whether this kind executes on a looper thread at all.
    ///
    /// Everything except `doInBackground` and native `Thread.run` executes
    /// as an atomic event callback on a looper thread.
    #[must_use]
    pub fn runs_on_looper(self) -> bool {
        !matches!(self, CallbackKind::DoInBackground | CallbackKind::ThreadRun)
    }

    /// The Entry/Posted classification of §7, or `None` for bodies that are
    /// not event callbacks (`doInBackground`, `Thread.run`).
    #[must_use]
    pub fn class(self) -> Option<CallbackClass> {
        use CallbackKind::*;
        match self {
            DoInBackground | ThreadRun => None,
            OnServiceConnected
            | OnServiceDisconnected
            | OnReceive
            | OnShow
            | OnDismiss
            | OnAlarm
            | HandleMessage
            | PostedRun
            | OnPreExecute
            | OnProgressUpdate
            | OnPostExecute => Some(CallbackClass::Posted),
            _ => Some(CallbackClass::Entry),
        }
    }

    /// The method name the Android framework uses for this callback, also
    /// used by the IR's textual DSL.
    #[must_use]
    pub fn method_name(self) -> &'static str {
        use CallbackKind::*;
        match self {
            OnCreate => "onCreate",
            OnStart => "onStart",
            OnRestart => "onRestart",
            OnResume => "onResume",
            OnPause => "onPause",
            OnStop => "onStop",
            OnDestroy => "onDestroy",
            OnClick => "onClick",
            OnLongClick => "onLongClick",
            OnTouch => "onTouch",
            OnKey => "onKey",
            OnItemSelected => "onItemSelected",
            OnCreateContextMenu => "onCreateContextMenu",
            OnCreateOptionsMenu => "onCreateOptionsMenu",
            OnOptionsItemSelected => "onOptionsItemSelected",
            OnActivityResult => "onActivityResult",
            OnRetainNonConfigurationInstance => "onRetainNonConfigurationInstance",
            OnLocationChanged => "onLocationChanged",
            OnSensorChanged => "onSensorChanged",
            OnBind => "onBind",
            OnStartCommand => "onStartCommand",
            OnAttach => "onAttach",
            OnCreateView => "onCreateView",
            OnDestroyView => "onDestroyView",
            OnDetach => "onDetach",
            OnServiceConnected => "onServiceConnected",
            OnServiceDisconnected => "onServiceDisconnected",
            OnReceive => "onReceive",
            OnShow => "onShow",
            OnDismiss => "onDismiss",
            OnAlarm => "onAlarm",
            HandleMessage => "handleMessage",
            PostedRun => "run",
            OnPreExecute => "onPreExecute",
            DoInBackground => "doInBackground",
            OnProgressUpdate => "onProgressUpdate",
            OnPostExecute => "onPostExecute",
            ThreadRun => "run",
        }
    }

    /// Resolve a method name *in the context of a class role* back to a
    /// callback kind. The role disambiguates `run` (posted `Runnable.run`
    /// vs native `Thread.run`).
    #[must_use]
    pub fn from_method_name(name: &str, role: crate::ClassRole) -> Option<CallbackKind> {
        if name == "run" {
            return match role {
                crate::ClassRole::Thread => Some(CallbackKind::ThreadRun),
                crate::ClassRole::Runnable => Some(CallbackKind::PostedRun),
                _ => None,
            };
        }
        CallbackKind::all().iter().copied().find(|k| {
            k.method_name() == name
                && !matches!(k, CallbackKind::PostedRun | CallbackKind::ThreadRun)
        })
    }
}

impl fmt::Display for CallbackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.method_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClassRole;

    #[test]
    fn every_kind_has_a_class_or_is_thread_body() {
        for &k in CallbackKind::all() {
            if k.class().is_none() {
                assert!(matches!(
                    k,
                    CallbackKind::DoInBackground | CallbackKind::ThreadRun
                ));
            }
        }
    }

    #[test]
    fn lifecycle_kinds_are_entry() {
        for &k in CallbackKind::all() {
            if k.is_lifecycle() {
                assert_eq!(k.class(), Some(CallbackClass::Entry), "{k}");
            }
        }
    }

    #[test]
    fn ui_kinds_are_entry() {
        for &k in CallbackKind::all() {
            if k.is_ui() {
                assert_eq!(k.class(), Some(CallbackClass::Entry), "{k}");
            }
        }
    }

    #[test]
    fn run_disambiguates_by_role() {
        assert_eq!(
            CallbackKind::from_method_name("run", ClassRole::Thread),
            Some(CallbackKind::ThreadRun)
        );
        assert_eq!(
            CallbackKind::from_method_name("run", ClassRole::Runnable),
            Some(CallbackKind::PostedRun)
        );
        assert_eq!(
            CallbackKind::from_method_name("run", ClassRole::Activity),
            None
        );
    }

    #[test]
    fn method_name_resolution_round_trips() {
        for &k in CallbackKind::all() {
            let role = match k {
                CallbackKind::ThreadRun => ClassRole::Thread,
                CallbackKind::PostedRun => ClassRole::Runnable,
                _ => ClassRole::Activity,
            };
            assert_eq!(
                CallbackKind::from_method_name(k.method_name(), role),
                Some(k)
            );
        }
    }

    #[test]
    fn fragment_kinds_are_entry_but_not_activity_lifecycle() {
        for &k in CallbackKind::all() {
            if k.is_fragment_lifecycle() {
                assert_eq!(k.class(), Some(CallbackClass::Entry), "{k}");
                assert!(!k.is_lifecycle(), "{k} must not join MHB-Lifecycle");
                assert!(!k.is_ui(), "{k}");
                assert!(!k.is_system(), "{k}");
            }
        }
    }

    #[test]
    fn predicate_kinds_are_posted() {
        for k in [
            CallbackKind::OnShow,
            CallbackKind::OnDismiss,
            CallbackKind::OnAlarm,
        ] {
            assert_eq!(k.class(), Some(CallbackClass::Posted), "{k}");
            assert!(!k.is_ui() && !k.is_system() && !k.is_lifecycle(), "{k}");
        }
    }

    #[test]
    fn looper_execution() {
        assert!(CallbackKind::OnClick.runs_on_looper());
        assert!(CallbackKind::OnPostExecute.runs_on_looper());
        assert!(!CallbackKind::DoInBackground.runs_on_looper());
        assert!(!CallbackKind::ThreadRun.runs_on_looper());
    }
}
