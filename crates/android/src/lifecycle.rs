//! The Activity lifecycle automaton and the sound must-happens-before
//! (MHB) relations of §6.1.
//!
//! The automaton is used in two places:
//!
//! 1. Statically, [`lifecycle_mhb`], [`service_mhb`] and [`asynctask_mhb`]
//!    implement the paper's three *sound* MHB rules (same-component /
//!    same-task qualification is applied by the filter layer, which knows
//!    the threadified origins).
//! 2. Dynamically, [`LifecycleState`] and [`Lifecycle`] drive the event-loop
//!    interpreter: only framework-legal lifecycle event sequences are
//!    explored when searching for UAF witnesses.

use crate::CallbackKind;

/// States of the Activity lifecycle automaton.
///
/// The transition structure follows the Android developer documentation:
/// there is a *back edge* from `Paused`/`Stopped` back to `Resumed`/`Started`
/// (the "back button" cycle the paper highlights in §6.1.1), which is
/// exactly why `onResume`/`onPause` carry no sound MHB relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum LifecycleState {
    /// Before `onCreate` has run.
    #[default]
    Fresh,
    /// After `onCreate`.
    Created,
    /// After `onStart` (visible).
    Started,
    /// After `onResume` (foreground).
    Resumed,
    /// After `onPause` (partially obscured).
    Paused,
    /// After `onStop` (hidden).
    Stopped,
    /// After `onDestroy` (terminal).
    Destroyed,
}

/// A running Activity's lifecycle, as a stepped automaton.
///
/// # Example
///
/// ```
/// use nadroid_android::lifecycle::{Lifecycle, LifecycleState};
/// use nadroid_android::CallbackKind;
///
/// let mut lc = Lifecycle::new();
/// assert_eq!(lc.state(), LifecycleState::Fresh);
/// assert!(lc.fire(CallbackKind::OnCreate).is_ok());
/// assert!(lc.fire(CallbackKind::OnResume).is_err()); // must onStart first
/// assert!(lc.fire(CallbackKind::OnStart).is_ok());
/// assert!(lc.fire(CallbackKind::OnResume).is_ok());
/// // the back-button cycle:
/// assert!(lc.fire(CallbackKind::OnPause).is_ok());
/// assert!(lc.fire(CallbackKind::OnResume).is_ok());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Lifecycle {
    state: LifecycleState,
}

/// Error returned by [`Lifecycle::fire`] for a framework-illegal transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IllegalTransition {
    /// The state the automaton was in.
    pub from: LifecycleState,
    /// The lifecycle callback that was attempted.
    pub event: CallbackKind,
}

impl std::fmt::Display for IllegalTransition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "illegal lifecycle transition: {} in state {:?}",
            self.event, self.from
        )
    }
}

impl std::error::Error for IllegalTransition {}

impl Lifecycle {
    /// A fresh, not-yet-created lifecycle.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The current state.
    #[must_use]
    pub fn state(&self) -> LifecycleState {
        self.state
    }

    /// Lifecycle callbacks legal in the current state, in the order the
    /// framework would consider them.
    #[must_use]
    pub fn legal_events(&self) -> Vec<CallbackKind> {
        use CallbackKind::*;
        use LifecycleState::*;
        match self.state {
            Fresh => vec![OnCreate],
            Created => vec![OnStart],
            Started => vec![OnResume, OnStop],
            Resumed => vec![OnPause],
            Paused => vec![OnResume, OnStop],
            Stopped => vec![OnRestart, OnDestroy],
            Destroyed => vec![],
        }
    }

    /// Whether UI / system callbacks may currently be delivered.
    ///
    /// The interpreter allows UI events between `onCreate` and `onDestroy`
    /// when the activity is at least started (visible).
    #[must_use]
    pub fn accepts_ui_events(&self) -> bool {
        matches!(
            self.state,
            LifecycleState::Started | LifecycleState::Resumed | LifecycleState::Paused
        )
    }

    /// Fire a lifecycle callback, advancing the automaton.
    ///
    /// # Errors
    ///
    /// Returns [`IllegalTransition`] if the callback is not legal in the
    /// current state (e.g. `onResume` before `onStart`).
    pub fn fire(&mut self, event: CallbackKind) -> Result<LifecycleState, IllegalTransition> {
        use CallbackKind::*;
        use LifecycleState::*;
        let next = match (self.state, event) {
            (Fresh, OnCreate) => Created,
            (Created, OnStart) => Started,
            (Started, OnResume) => Resumed,
            (Started, OnStop) => Stopped,
            (Resumed, OnPause) => Paused,
            (Paused, OnResume) => Resumed,
            (Paused, OnStop) => Stopped,
            (Stopped, OnRestart) => Created, // onRestart is followed by onStart
            (Stopped, OnDestroy) => Destroyed,
            (from, event) => return Err(IllegalTransition { from, event }),
        };
        self.state = next;
        Ok(next)
    }

    /// Whether the activity has been destroyed (terminal state).
    #[must_use]
    pub fn is_destroyed(&self) -> bool {
        self.state == LifecycleState::Destroyed
    }
}

/// The sound MHB-Lifecycle relation (§6.1.1).
///
/// `onCreate` must happen before every other callback of the same
/// component, and every callback must happen before `onDestroy`. No other
/// lifecycle pair is ordered, because the back-button edge makes
/// `onPause`/`onResume`-style pairs circular.
///
/// Both arguments must execute on the *same component*; the filter layer is
/// responsible for that qualification.
#[must_use]
pub fn lifecycle_mhb(first: CallbackKind, second: CallbackKind) -> bool {
    if first == second {
        return false;
    }
    let relevant = |k: CallbackKind| k.is_lifecycle() || k.is_ui() || k.is_system();
    if !relevant(first) || !relevant(second) {
        return false;
    }
    (first == CallbackKind::OnCreate && second != CallbackKind::OnCreate)
        || (second == CallbackKind::OnDestroy && first != CallbackKind::OnDestroy)
}

/// The sound MHB-Service relation (§6.1.1): `onServiceConnected` must happen
/// before `onServiceDisconnected` on the same connection.
#[must_use]
pub fn service_mhb(first: CallbackKind, second: CallbackKind) -> bool {
    first == CallbackKind::OnServiceConnected && second == CallbackKind::OnServiceDisconnected
}

/// The sound MHB-AsyncTask relation (§6.1.1) for callbacks of the *same
/// task instance*:
///
/// - `onPreExecute` before `doInBackground`, `onProgressUpdate`,
///   `onPostExecute`;
/// - `doInBackground` and `onProgressUpdate` before `onPostExecute`.
#[must_use]
pub fn asynctask_mhb(first: CallbackKind, second: CallbackKind) -> bool {
    use CallbackKind::*;
    match first {
        OnPreExecute => matches!(second, DoInBackground | OnProgressUpdate | OnPostExecute),
        DoInBackground | OnProgressUpdate => second == OnPostExecute,
        _ => false,
    }
}

/// Combined kind-level MHB check: true if *any* of the three sound MHB
/// relations orders `first` before `second`. The caller must ensure the two
/// callbacks belong to the same component / connection / task instance.
#[must_use]
pub fn any_mhb(first: CallbackKind, second: CallbackKind) -> bool {
    lifecycle_mhb(first, second) || service_mhb(first, second) || asynctask_mhb(first, second)
}

/// The lifecycle *dominator* relation: `first` must already have executed
/// (at least once) on every automaton path that reaches a delivery of
/// `second`. Strictly stronger than [`lifecycle_mhb`] for the pairs it
/// claims, and the soundness backbone of the predicate refutation filter:
/// a disabling API call sitting unconditionally in `first` is guaranteed
/// to have run by the time `second` runs.
///
/// Derived from the automaton and pinned by an exhaustive
/// path-enumeration test. Notably `onPause` does *not* dominate
/// `onDestroy` (the legal path `onCreate → onStart → onStop → onDestroy`
/// skips it), while `onStop` does: `Stopped` is the only state from
/// which `onDestroy` is legal, and `onStop` is its only entry.
#[must_use]
pub fn must_precede_execution(first: CallbackKind, second: CallbackKind) -> bool {
    use CallbackKind::*;
    let dominators: &[CallbackKind] = match second {
        OnStart => &[OnCreate],
        OnResume | OnStop => &[OnCreate, OnStart],
        OnPause => &[OnCreate, OnStart, OnResume],
        OnRestart | OnDestroy => &[OnCreate, OnStart, OnStop],
        _ => return false,
    };
    dominators.contains(&first)
}

/// Whether a callback kind is delivered *at most once* per component
/// instance under its automaton: `onCreate` for activities (the `Fresh`
/// state is never re-entered), `onAttach`/`onDetach` for fragments.
/// Once-only enablers cannot re-arm a family after its disabler has run,
/// which is what lets the refutation filter treat a dominated disabler as
/// final.
#[must_use]
pub fn once_only(kind: CallbackKind) -> bool {
    matches!(
        kind,
        CallbackKind::OnCreate | CallbackKind::OnAttach | CallbackKind::OnDetach
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use CallbackKind::*;

    #[test]
    fn oncreate_precedes_everything() {
        for &k in CallbackKind::all() {
            if k != OnCreate && (k.is_lifecycle() || k.is_ui() || k.is_system()) {
                assert!(lifecycle_mhb(OnCreate, k), "onCreate MHB {k}");
            }
        }
    }

    #[test]
    fn everything_precedes_ondestroy() {
        for &k in CallbackKind::all() {
            if k != OnDestroy && (k.is_lifecycle() || k.is_ui() || k.is_system()) {
                assert!(lifecycle_mhb(k, OnDestroy), "{k} MHB onDestroy");
            }
        }
    }

    #[test]
    fn resume_pause_not_ordered() {
        assert!(!lifecycle_mhb(OnResume, OnPause));
        assert!(!lifecycle_mhb(OnPause, OnResume));
        assert!(!lifecycle_mhb(OnPause, OnClick));
        assert!(!lifecycle_mhb(OnClick, OnPause));
    }

    #[test]
    fn posted_callbacks_not_lifecycle_ordered() {
        assert!(!lifecycle_mhb(OnCreate, HandleMessage));
        assert!(!lifecycle_mhb(PostedRun, OnDestroy));
    }

    #[test]
    fn service_order() {
        assert!(service_mhb(OnServiceConnected, OnServiceDisconnected));
        assert!(!service_mhb(OnServiceDisconnected, OnServiceConnected));
    }

    #[test]
    fn asynctask_order() {
        assert!(asynctask_mhb(OnPreExecute, DoInBackground));
        assert!(asynctask_mhb(OnPreExecute, OnPostExecute));
        assert!(asynctask_mhb(DoInBackground, OnPostExecute));
        assert!(asynctask_mhb(OnProgressUpdate, OnPostExecute));
        assert!(!asynctask_mhb(DoInBackground, OnProgressUpdate));
        assert!(!asynctask_mhb(OnPostExecute, OnPreExecute));
    }

    #[test]
    fn automaton_happy_path() {
        let mut lc = Lifecycle::new();
        for e in [
            OnCreate, OnStart, OnResume, OnPause, OnStop, OnRestart, OnStart, OnResume,
        ] {
            lc.fire(e).unwrap_or_else(|err| panic!("{err}"));
        }
        assert_eq!(lc.state(), LifecycleState::Resumed);
    }

    #[test]
    fn automaton_rejects_skips() {
        let mut lc = Lifecycle::new();
        assert!(lc.fire(OnResume).is_err());
        lc.fire(OnCreate).unwrap();
        assert!(lc.fire(OnDestroy).is_err()); // must stop first
    }

    #[test]
    fn destroy_is_terminal() {
        let mut lc = Lifecycle::new();
        for e in [OnCreate, OnStart, OnStop, OnDestroy] {
            lc.fire(e).unwrap();
        }
        assert!(lc.is_destroyed());
        assert!(lc.legal_events().is_empty());
        assert!(!lc.accepts_ui_events());
    }

    /// Exhaustively verify [`must_precede_execution`] against the
    /// automaton: `first` dominates `second` iff no state where `second`
    /// is legal is reachable from `Fresh` without ever firing `first`.
    #[test]
    fn dominators_match_the_automaton() {
        let lifecycle_kinds: Vec<CallbackKind> = CallbackKind::all()
            .iter()
            .copied()
            .filter(|k| k.is_lifecycle())
            .collect();
        for &first in &lifecycle_kinds {
            // BFS over states reachable while refusing to fire `first`.
            let mut seen = vec![LifecycleState::Fresh];
            let mut queue = vec![Lifecycle::new()];
            let mut deliverable_without_first = Vec::new();
            while let Some(lc) = queue.pop() {
                for e in lc.legal_events() {
                    if e == first {
                        continue;
                    }
                    deliverable_without_first.push(e);
                    let mut next = lc.clone();
                    next.fire(e).unwrap();
                    if !seen.contains(&next.state()) {
                        seen.push(next.state());
                        queue.push(next);
                    }
                }
            }
            for &second in &lifecycle_kinds {
                let dominated = !deliverable_without_first.contains(&second);
                assert_eq!(
                    must_precede_execution(first, second),
                    dominated && first != second,
                    "{first} must-precede {second}"
                );
            }
        }
    }

    #[test]
    fn dominators_imply_lifecycle_mhb_only_for_oncreate_pairs() {
        // must_precede_execution is a different (stronger, execution-
        // counting) relation: onStop dominates onDestroy yet carries no
        // paper MHB edge. Only the onCreate-first facts overlap.
        assert!(must_precede_execution(OnStop, OnDestroy));
        assert!(lifecycle_mhb(OnStop, OnDestroy), "onDestroy-last overlaps");
        assert!(must_precede_execution(OnStart, OnStop));
        assert!(!lifecycle_mhb(OnStart, OnStop), "no paper edge here");
        assert!(
            !must_precede_execution(OnPause, OnDestroy),
            "the skip path onCreate→onStart→onStop→onDestroy never pauses"
        );
    }

    #[test]
    fn once_only_kinds() {
        assert!(once_only(OnCreate));
        assert!(once_only(OnAttach));
        assert!(once_only(OnDetach));
        for k in [OnStart, OnResume, OnPause, OnStop, OnRestart, OnDestroy] {
            // OnDestroy *is* once-only dynamically, but nothing runs
            // after it anyway; the refutation filter only relies on the
            // kinds listed true above, so keep the claim minimal.
            if k == OnDestroy {
                continue;
            }
            assert!(!once_only(k), "{k}");
        }
        assert!(!once_only(OnCreateView), "back stack recreates views");
    }

    #[test]
    fn ui_events_only_when_visible() {
        let mut lc = Lifecycle::new();
        assert!(!lc.accepts_ui_events());
        lc.fire(OnCreate).unwrap();
        assert!(!lc.accepts_ui_events());
        lc.fire(OnStart).unwrap();
        assert!(lc.accepts_ui_events());
    }
}
