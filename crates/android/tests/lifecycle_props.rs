//! Property tests for the Activity lifecycle automaton and the MHB
//! relations.

use nadroid_android::lifecycle::{Lifecycle, LifecycleState};
use nadroid_android::{lifecycle, CallbackKind};
use proptest::prelude::*;

fn lifecycle_events() -> impl Strategy<Value = CallbackKind> {
    prop::sample::select(
        CallbackKind::all()
            .iter()
            .copied()
            .filter(|k| k.is_lifecycle())
            .collect::<Vec<_>>(),
    )
}

proptest! {
    /// Random event sequences never corrupt the automaton: every `fire`
    /// either transitions to a state whose legal events include what the
    /// automaton advertises, or errors without changing state.
    #[test]
    fn automaton_is_total_and_consistent(events in prop::collection::vec(lifecycle_events(), 0..40)) {
        let mut lc = Lifecycle::new();
        for e in events {
            let before = lc.state();
            let legal = lc.legal_events();
            match lc.fire(e) {
                Ok(after) => {
                    prop_assert!(legal.contains(&e), "{e} fired but was not advertised");
                    prop_assert_eq!(after, lc.state());
                }
                Err(err) => {
                    prop_assert!(!legal.contains(&e), "{e} advertised but rejected");
                    prop_assert_eq!(err.from, before);
                    prop_assert_eq!(lc.state(), before, "failed fire must not move");
                }
            }
        }
    }

    /// Driving the automaton with its own advertised events always works
    /// and only reaches Destroyed via onDestroy.
    #[test]
    fn advertised_events_always_fire(choices in prop::collection::vec(0usize..4, 1..30)) {
        let mut lc = Lifecycle::new();
        for c in choices {
            let legal = lc.legal_events();
            if legal.is_empty() {
                prop_assert!(lc.is_destroyed());
                break;
            }
            let e = legal[c % legal.len()];
            lc.fire(e).expect("advertised events fire");
        }
    }

    /// UI events are only accepted while at least started and the
    /// lifecycle is not destroyed.
    #[test]
    fn ui_acceptance_matches_state(choices in prop::collection::vec(0usize..4, 0..30)) {
        let mut lc = Lifecycle::new();
        for c in choices {
            let legal = lc.legal_events();
            if legal.is_empty() {
                break;
            }
            lc.fire(legal[c % legal.len()]).unwrap();
            let accepts = lc.accepts_ui_events();
            let expected = matches!(
                lc.state(),
                LifecycleState::Started | LifecycleState::Resumed | LifecycleState::Paused
            );
            prop_assert_eq!(accepts, expected);
        }
    }
}

#[test]
fn mhb_is_irreflexive_and_antisymmetric() {
    for &a in CallbackKind::all() {
        assert!(!lifecycle::any_mhb(a, a), "{a} MHB {a}");
        for &b in CallbackKind::all() {
            if lifecycle::any_mhb(a, b) && lifecycle::any_mhb(b, a) {
                panic!("MHB cycle: {a} <-> {b}");
            }
        }
    }
}

#[test]
fn mhb_chains_through_asynctask_protocol() {
    use CallbackKind::*;
    // pre < body < post and pre < progress < post: transitive closure is
    // consistent with the protocol DAG.
    assert!(lifecycle::asynctask_mhb(OnPreExecute, DoInBackground));
    assert!(lifecycle::asynctask_mhb(DoInBackground, OnPostExecute));
    assert!(lifecycle::asynctask_mhb(OnPreExecute, OnPostExecute));
}
