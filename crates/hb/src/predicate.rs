//! Predicate callback summaries compiled into happens-before facts.
//!
//! This module turns the [`PredicateFamily`] enabling/disabling API
//! summaries and the extended lifecycle automata (fragment attach/detach,
//! multi-activity task stack) into the raw facts behind four new Datalog
//! relations:
//!
//! | relation | meaning |
//! |---|---|
//! | `enables(e, c)` | thread `e` contains an API call arming gated callback `c` |
//! | `disables(d, c)` | thread `d` contains an API call silencing gated callback `c` |
//! | `predEdge(a, b)` | a predicate-derived must-HB edge (fragment order, task stack) |
//! | `mustNotHb(f, c)` | `c` is never delivered after `f` completes |
//!
//! `predEdge` feeds the predicate-extended closure `predHb` (a strict
//! extension of `mustHb`; the legacy closure is untouched). `mustNotHb`
//! is derived by a dominator argument over the activity automaton:
//!
//! 1. every enabler of the family sits in the component's `onCreate`
//!    (once-only, and a dominator of every other lifecycle callback), and
//! 2. some *unconditional* disabler sits in a callback `d` that the
//!    automaton guarantees executes before `f` does
//!    ([`lifecycle::must_precede_execution`]),
//!
//! so by the time `f` runs, the family has been disabled and — the
//! enabler being once-only — can never be re-armed. Fragment `onDetach`
//! is terminal in the fragment automaton, which yields the analogous
//! fact without any disabler API.

use crate::effective_kind;
use nadroid_android::fragment::fragment_mhb;
use nadroid_android::predicates::PredicateFamily;
use nadroid_android::{lifecycle, CallbackKind, ClassRole};
use nadroid_ir::{Block, ClassId, InstrId, MethodId, Program, Stmt};
use nadroid_threadify::resolve::SiteAction;
use nadroid_threadify::{ThreadId, ThreadModel};
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};

/// Provenance of one `enables`/`disables` fact: which summarized API,
/// at which instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredicateSite {
    /// The summarized family the API belongs to.
    pub family: PredicateFamily,
    /// The framework API name (from the family summary).
    pub api: &'static str,
    /// The call instruction.
    pub site: InstrId,
}

/// Why a `predEdge` holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredEdgeKind {
    /// Fragment automaton order: `onAttach` first / `onDetach` last on
    /// the same fragment class.
    Fragment,
    /// Task-stack order: the launcher callback completes (looper
    /// atomicity) before the launched activity's `onCreate` runs. Only
    /// emitted for a launch-gated target with a unique launch site in a
    /// once-only looper callback.
    TaskStack {
        /// The unique `startActivity` call.
        launch_site: InstrId,
    },
}

/// One predicate-derived must-HB edge with provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredEdge {
    /// The earlier thread.
    pub src: ThreadId,
    /// The later thread.
    pub dst: ThreadId,
    /// Why the edge exists.
    pub kind: PredEdgeKind,
}

/// Why a `mustNotHb(f, c)` fact holds — the contradiction chain the
/// refutation filter records as audit evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MustNotProv {
    /// The family was disabled before `f` could run and can never be
    /// re-armed (enablers are once-only and dominated by the disabler).
    Disabled {
        /// The summarized family.
        family: PredicateFamily,
        /// Every thread holding an enabler site (all in `onCreate`).
        enablers: Vec<ThreadId>,
        /// The thread holding the unconditional disabler.
        disabler: ThreadId,
        /// The disabling call instruction.
        disable_site: InstrId,
    },
    /// `f` is a fragment `onDetach`, terminal in the fragment automaton:
    /// no callback of the instance runs after it.
    FragmentTerminal {
        /// The detach thread itself.
        detach: ThreadId,
    },
}

/// The raw predicate facts of one threadified program, pre-closure.
#[derive(Debug, Default)]
pub(crate) struct PredicateFacts {
    /// `(enabler thread, gated thread, provenance)`, deduped per pair.
    pub enables: Vec<(ThreadId, ThreadId, PredicateSite)>,
    /// `(disabler thread, gated thread, provenance)`, deduped per pair.
    pub disables: Vec<(ThreadId, ThreadId, PredicateSite)>,
    /// Predicate-derived must-HB edges, cycle-guarded.
    pub edges: Vec<PredEdge>,
    /// Candidate `mustNotHb(f, c)` facts with provenance. The builder
    /// demotes a candidate to an `unreachable(c)` fact when `predHb(f, c)`
    /// also holds (keeping `mustNotHb` disjoint from every must relation).
    pub must_not: Vec<(ThreadId, ThreadId, MustNotProv)>,
}

/// One summarized API occurrence.
struct ApiSite {
    thread: ThreadId,
    site: InstrId,
    /// Site sits at the top level of the thread's root method body
    /// (executes on every run of the callback).
    unconditional: bool,
}

/// Compute all predicate facts. `must_edges` are the direct sound MHB
/// edges, used by the task-stack cycle guard so `predHb` stays a strict
/// partial order even for adversarial mutual-launch programs.
pub(crate) fn compute(
    program: &Program,
    threads: &ThreadModel,
    must_edges: &[(ThreadId, ThreadId)],
) -> PredicateFacts {
    let mut enabler_sites: BTreeMap<(PredicateFamily, ClassId), Vec<ApiSite>> = BTreeMap::new();
    let mut disabler_sites: BTreeMap<(PredicateFamily, ClassId), Vec<ApiSite>> = BTreeMap::new();
    let mut gated: BTreeMap<(PredicateFamily, ClassId), Vec<ThreadId>> = BTreeMap::new();
    let mut fragment_members: BTreeMap<ClassId, Vec<(ThreadId, CallbackKind)>> = BTreeMap::new();
    let mut lifecycle_members: BTreeMap<ClassId, Vec<(ThreadId, CallbackKind)>> = BTreeMap::new();
    let mut launch_sites: BTreeMap<ClassId, Vec<ApiSite>> = BTreeMap::new();
    let mut toplevel: BTreeMap<MethodId, BTreeSet<InstrId>> = BTreeMap::new();

    for (t, mt) in threads.threads() {
        let kind = effective_kind(threads, t);
        if let (Some(k), Some(c)) = (kind, mt.class()) {
            if k.is_fragment_lifecycle() {
                fragment_members.entry(c).or_default().push((t, k));
            }
            if let Some(fam) = PredicateFamily::of_kind(k) {
                gated.entry((fam, c)).or_default().push(t);
            }
        }
        if let (Some(k), Some(comp)) = (kind, mt.component()) {
            if k.is_lifecycle() {
                lifecycle_members.entry(comp).or_default().push((t, k));
            }
        }
        for site in threads.sites_of(t) {
            let (fam, class, enabler) = match site.action {
                SiteAction::Bind(c) => (PredicateFamily::Connection, c, true),
                SiteAction::Unbind(c) => (PredicateFamily::Connection, c, false),
                SiteAction::Register(c) => (PredicateFamily::Receiver, c, true),
                SiteAction::Unregister(c) => (PredicateFamily::Receiver, c, false),
                SiteAction::Show(c) => (PredicateFamily::Dialog, c, true),
                SiteAction::Dismiss(c) => (PredicateFamily::Dialog, c, false),
                SiteAction::Schedule(c) => (PredicateFamily::Alarm, c, true),
                SiteAction::CancelAlarm(c) => (PredicateFamily::Alarm, c, false),
                SiteAction::Launch(c) => (PredicateFamily::Task, c, true),
                _ => continue,
            };
            let unconditional = mt.root() == Some(site.method)
                && toplevel
                    .entry(site.method)
                    .or_insert_with(|| {
                        let mut out = BTreeSet::new();
                        toplevel_instrs(program.method(site.method).body(), &mut out);
                        out
                    })
                    .contains(&site.instr);
            let api = ApiSite {
                thread: t,
                site: site.instr,
                unconditional,
            };
            if fam == PredicateFamily::Task {
                launch_sites.entry(class).or_default().push(api);
            } else if enabler {
                enabler_sites.entry((fam, class)).or_default().push(api);
            } else {
                disabler_sites.entry((fam, class)).or_default().push(api);
            }
        }
    }

    let mut facts = PredicateFacts::default();

    // enables / disables facts, deduped per (api thread, gated thread)
    // pair — the first site in scan order is the provenance.
    let fact_list = |sites: &BTreeMap<(PredicateFamily, ClassId), Vec<ApiSite>>,
                         enabling: bool| {
        let mut out: Vec<(ThreadId, ThreadId, PredicateSite)> = Vec::new();
        let mut seen: BTreeSet<(ThreadId, ThreadId)> = BTreeSet::new();
        for (&(fam, class), occurrences) in sites {
            let Some(gs) = gated.get(&(fam, class)) else {
                continue;
            };
            for occ in occurrences {
                for &g in gs {
                    if seen.insert((occ.thread, g)) {
                        let api = if enabling {
                            fam.enabler_api()
                        } else {
                            fam.disabler_api().unwrap_or(fam.enabler_api())
                        };
                        out.push((
                            occ.thread,
                            g,
                            PredicateSite {
                                family: fam,
                                api,
                                site: occ.site,
                            },
                        ));
                    }
                }
            }
        }
        out
    };
    facts.enables = fact_list(&enabler_sites, true);
    facts.disables = fact_list(&disabler_sites, false);

    // Task enables: a launch arms the target activity's whole lifecycle
    // family (enable-only; there is no "un-launch").
    {
        let mut seen: BTreeSet<(ThreadId, ThreadId)> = BTreeSet::new();
        for (&target, occurrences) in &launch_sites {
            if !launch_gated(program, target) {
                continue;
            }
            let Some(members) = lifecycle_members.get(&target) else {
                continue;
            };
            for occ in occurrences {
                for &(g, _) in members {
                    if seen.insert((occ.thread, g)) {
                        facts.enables.push((
                            occ.thread,
                            g,
                            PredicateSite {
                                family: PredicateFamily::Task,
                                api: PredicateFamily::Task.enabler_api(),
                                site: occ.site,
                            },
                        ));
                    }
                }
            }
        }
    }

    // predEdge (fragment order): onAttach-first / onDetach-last pairs on
    // the same fragment class — the Dexteroid-style automaton's sound
    // kind-level facts, kept out of the paper-pinned MHB-Lifecycle.
    for members in fragment_members.values() {
        for &(a, ak) in members {
            for &(b, bk) in members {
                if a != b && fragment_mhb(ak, bk) {
                    facts.edges.push(PredEdge {
                        src: a,
                        dst: b,
                        kind: PredEdgeKind::Fragment,
                    });
                }
            }
        }
    }

    // predEdge (task stack): the launcher callback atomically completes
    // before the launched activity's onCreate. Sound only when the
    // target cannot start any other way (launch-gated, unique site) and
    // the launcher runs at most once on a looper (else a later launcher
    // execution could follow the target's onCreate). A reachability
    // guard keeps adversarial mutual-launch programs acyclic.
    let mut succ: BTreeMap<ThreadId, Vec<ThreadId>> = BTreeMap::new();
    for &(a, b) in must_edges {
        succ.entry(a).or_default().push(b);
    }
    for e in &facts.edges {
        succ.entry(e.src).or_default().push(e.dst);
    }
    for (&target, occurrences) in &launch_sites {
        if occurrences.len() != 1 || !launch_gated(program, target) {
            continue;
        }
        let occ = &occurrences[0];
        let mt = threads.thread(occ.thread);
        let once_looper = effective_kind(threads, occ.thread)
            .is_some_and(lifecycle::once_only)
            && mt.kind().on_looper();
        if !once_looper {
            continue;
        }
        let Some(members) = lifecycle_members.get(&target) else {
            continue;
        };
        for &(dst, dk) in members {
            if dk != CallbackKind::OnCreate || dst == occ.thread {
                continue;
            }
            if reaches(&succ, dst, occ.thread) {
                continue; // would close a cycle: skip, predHb stays strict
            }
            succ.entry(occ.thread).or_default().push(dst);
            facts.edges.push(PredEdge {
                src: occ.thread,
                dst,
                kind: PredEdgeKind::TaskStack {
                    launch_site: occ.site,
                },
            });
        }
    }

    // mustNotHb (family disabled): enablers all once-only in onCreate,
    // some unconditional disabler in a callback the automaton proves
    // executes before f does.
    for (&(fam, class), dsites) in &disabler_sites {
        let Some(gs) = gated.get(&(fam, class)) else {
            continue;
        };
        let Some(ens) = enabler_sites.get(&(fam, class)) else {
            continue;
        };
        if ens.is_empty() {
            continue;
        }
        for d in dsites.iter().filter(|d| d.unconditional) {
            let Some(dk) = effective_kind(threads, d.thread) else {
                continue;
            };
            let Some(comp) = threads.thread(d.thread).component() else {
                continue;
            };
            let all_enablers_dominated = ens.iter().all(|e| {
                effective_kind(threads, e.thread) == Some(CallbackKind::OnCreate)
                    && threads.thread(e.thread).component() == Some(comp)
                    && lifecycle::must_precede_execution(CallbackKind::OnCreate, dk)
            });
            if !all_enablers_dominated {
                continue;
            }
            let prov = || MustNotProv::Disabled {
                family: fam,
                enablers: ens.iter().map(|e| e.thread).collect(),
                disabler: d.thread,
                disable_site: d.site,
            };
            for &(f, fk) in lifecycle_members.get(&comp).into_iter().flatten() {
                if !lifecycle::must_precede_execution(dk, fk) {
                    continue;
                }
                for &g in gs {
                    if g != f {
                        facts.must_not.push((f, g, prov()));
                    }
                }
            }
        }
    }

    // mustNotHb (fragment terminal): nothing of the instance runs after
    // onDetach.
    for members in fragment_members.values() {
        for &(f, fk) in members {
            if fk != CallbackKind::OnDetach {
                continue;
            }
            for &(g, _) in members {
                if g != f {
                    facts
                        .must_not
                        .push((f, g, MustNotProv::FragmentTerminal { detach: f }));
                }
            }
        }
    }

    facts
}

/// Whether an activity can only start through an explicit launch: it is
/// statically targeted by some `startActivity` site and is not the
/// manifest main (mirrors the dynamic interpreter's launch gating).
fn launch_gated(program: &Program, target: ClassId) -> bool {
    program.class(target).role() == ClassRole::Activity
        && program.manifest().main_activity() != Some(target)
}

/// Instructions that execute on *every* run of the body: top-level
/// statements, descending through `sync` blocks (always entered) but not
/// into conditionals or loops.
fn toplevel_instrs(block: &Block, out: &mut BTreeSet<InstrId>) {
    for stmt in block {
        match stmt {
            Stmt::Instr(i) => {
                out.insert(i.id);
            }
            Stmt::Sync { body, .. } => toplevel_instrs(body, out),
            Stmt::If { .. } | Stmt::Loop { .. } => {}
        }
    }
}

/// BFS reachability over the direct must-edge successor map.
fn reaches(succ: &BTreeMap<ThreadId, Vec<ThreadId>>, from: ThreadId, to: ThreadId) -> bool {
    if from == to {
        return true;
    }
    let mut queue = VecDeque::from([from]);
    let mut seen = HashSet::from([from]);
    while let Some(t) = queue.pop_front() {
        for &next in succ.get(&t).into_iter().flatten() {
            if next == to {
                return true;
            }
            if seen.insert(next) {
                queue.push_back(next);
            }
        }
    }
    false
}
