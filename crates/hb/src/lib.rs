//! The unified callback happens-before graph.
//!
//! The §6 filters each reason about ordering piecemeal: MHB walks the
//! Service/AsyncTask/Lifecycle relations, while RHB/CHB/PHB re-derive
//! their own callback-lineage facts. This crate materializes *all* of
//! that ordering knowledge once, as explicit Datalog relations over the
//! threadified program:
//!
//! | relation | arity | meaning |
//! |---|---|---|
//! | `mhbService(u, f)` | 2 | §6.1.1 MHB-Service edge (same connection class) |
//! | `mhbAsyncTask(u, f)` | 2 | §6.1.1 MHB-AsyncTask edge (same task instance) |
//! | `mhbLifecycle(u, f)` | 2 | §6.1.1 MHB-Lifecycle edge (same component) |
//! | `postEdge(u, f)` | 2 | `f` was posted/sent by `u` (PHB raw edge) |
//! | `sameLooper(a, b)` | 2 | a post pair serializing on one looper (materialized only where `postEdge` holds — the `postHb` join is its sole consumer) |
//! | `cancelEdge(u, f)` | 2 | `f` may cancel `u`'s callback family (CHB) |
//! | `reentryEdge(u, f, fld)` | 3 | `onResume` may re-allocate `fld` (RHB) |
//! | `mhbEdge(a, b)` | 2 | union of the three sound MHB relations |
//! | `mustHb(a, b)` | 2 | transitive closure of `mhbEdge` |
//! | `postHb(a, b)` | 2 | `postEdge` restricted to a shared looper |
//! | `enables(e, c)` | 2 | `e` holds a summarized API call arming gated callback `c` |
//! | `disables(d, c)` | 2 | `d` holds a summarized API call silencing gated callback `c` |
//! | `predEdge(a, b)` | 2 | predicate-derived must edge (fragment order, task stack) |
//! | `predHb(a, b)` | 2 | transitive closure of `mhbEdge ∪ predEdge` |
//! | `mustNotHb(f, c)` | 2 | `c` is never delivered after `f` completes |
//! | `unreachable(c)` | 1 | `c` can never be delivered at all (demoted `mustNotHb`) |
//!
//! The closure is computed once by the indexed-join engine
//! (`nadroid-datalog`) and exposed through the compact [`HbGraph`] query
//! API: [`HbGraph::must_hb`], [`HbGraph::may_hb`], [`HbGraph::mhp`], and
//! per-edge provenance ([`HbGraph::edges_between`],
//! [`HbGraph::must_hb_path`]). The filter crate queries this graph; the
//! detector uses [`HbGraph::must_hb`] for its opt-in MHP pre-prune.
//!
//! The *direct* edge relations reproduce the legacy per-filter logic
//! exactly (the filter parity suite pins this); `mustHb` is their sound
//! transitive extension, and is what MHP queries are defined over:
//! `mhp(a, b) = a ≠ b ∧ ¬mustHb(a, b) ∧ ¬mustHb(b, a)`.
//!
//! The predicate relations (`enables`/`disables`/`predEdge`/`predHb`/
//! `mustNotHb`) compile the [`nadroid_android::predicates`] summaries and
//! the extended lifecycle automata into the same database (see
//! [`predicate`]). They are consumed only by the sound refutation filter:
//! `mustHb`, `mhp`, and every legacy query are computed exactly as
//! before, and on programs that use none of the summarized APIs all five
//! relations are empty (the 27-app parity gate pins this).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod predicate;

pub use predicate::{MustNotProv, PredEdge, PredEdgeKind, PredicateSite};

use nadroid_android::lifecycle;
use nadroid_android::{CallbackKind, CancelApi};
use nadroid_datalog::{Database, RelId, RuleSet, Term};
use nadroid_ir::{ClassId, FieldId, InstrId, Local, Op, Program};
use nadroid_threadify::resolve::SiteAction;
use nadroid_threadify::{SpawnVia, ThreadId, ThreadKind, ThreadModel};
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};
use std::time::{Duration, Instant};

/// The provenance label of one direct happens-before edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HbEdgeKind {
    /// §6.1.1 MHB-Service: `onServiceConnected` before
    /// `onServiceDisconnected` on the same connection class.
    MhbService,
    /// §6.1.1 MHB-AsyncTask: the AsyncTask callback DAG, same task
    /// instance (class + execute site).
    MhbAsyncTask,
    /// §6.1.1 MHB-Lifecycle: `onCreate` first / `onDestroy` last, same
    /// component.
    MhbLifecycle,
    /// §6.2.1 PHB raw edge: the source callback posted/sent the target.
    Post,
    /// §6.2.1 CHB: the target callback may invoke this cancellation API,
    /// silencing the source's callback family.
    Cancel(CancelApi),
    /// §6.2.1 RHB: `onResume` of the shared component may re-allocate
    /// this field before the source's next UI use.
    Reentry(FieldId),
}

impl HbEdgeKind {
    /// Whether the edge belongs to a *sound* must-happens-before relation
    /// (only those feed the `mustHb` closure).
    #[must_use]
    pub fn is_must(self) -> bool {
        matches!(
            self,
            HbEdgeKind::MhbService | HbEdgeKind::MhbAsyncTask | HbEdgeKind::MhbLifecycle
        )
    }

    /// The relation name, as it appears in the Datalog database.
    #[must_use]
    pub fn relation(self) -> &'static str {
        match self {
            HbEdgeKind::MhbService => "mhbService",
            HbEdgeKind::MhbAsyncTask => "mhbAsyncTask",
            HbEdgeKind::MhbLifecycle => "mhbLifecycle",
            HbEdgeKind::Post => "postEdge",
            HbEdgeKind::Cancel(_) => "cancelEdge",
            HbEdgeKind::Reentry(_) => "reentryEdge",
        }
    }
}

/// One direct happens-before edge with its provenance label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HbEdge {
    /// The earlier (or silenced, for cancel edges) thread.
    pub src: ThreadId,
    /// The later (or cancelling) thread.
    pub dst: ThreadId,
    /// Why the edge exists.
    pub kind: HbEdgeKind,
}

/// The materialized happens-before graph of one threadified program.
///
/// Built once per analysis by [`HbGraph::build`]; queries are hash
/// lookups into the solved Datalog database plus small side maps for
/// edge provenance.
#[derive(Debug)]
pub struct HbGraph {
    db: Database,
    must_hb: RelId,
    post_hb: RelId,
    mhb_service: RelId,
    mhb_asynctask: RelId,
    mhb_lifecycle: RelId,
    /// First matching cancellation API per (use, free) pair, in the free
    /// thread's site order — the CHB evidence the audit trail renders.
    cancel: BTreeMap<(u32, u32), CancelApi>,
    /// Fields an `onResume` of the shared component may re-allocate, per
    /// (use, free) pair — the RHB edge labels.
    reentry: BTreeMap<(u32, u32), BTreeSet<FieldId>>,
    edges: Vec<HbEdge>,
    closure: Duration,
    /// Predicate-extended closure relation (`mhbEdge ∪ predEdge`)⁺.
    pred_hb: RelId,
    /// Per-pair provenance of the `enables` facts.
    enables_prov: BTreeMap<(u32, u32), PredicateSite>,
    /// Per-pair provenance of the `disables` facts.
    disables_prov: BTreeMap<(u32, u32), PredicateSite>,
    /// Predicate-derived direct must edges, in deterministic order.
    pred_edges: Vec<PredEdge>,
    /// Per-pair provenance of the `mustNotHb` facts (first derivation
    /// wins — the evidence the refutation filter renders).
    must_not: BTreeMap<(u32, u32), MustNotProv>,
    /// Gated callbacks provably never delivered at all: a `mustNotHb`
    /// candidate that would contradict `predHb` is demoted here, keeping
    /// `mustNotHb` disjoint from every must relation.
    unreachable_cbs: BTreeMap<u32, MustNotProv>,
}

impl HbGraph {
    /// Materialize the happens-before relation of a threadified program:
    /// extract direct edges from per-relation candidate buckets (class /
    /// component / task instance / cancel-site target — near-linear in
    /// the thread count, never the full pair square), then compute the
    /// `mustHb` transitive closure with the indexed-join engine.
    ///
    /// With the `metrics` feature (default) and a recorder installed,
    /// emits `hb.edges` and `hb.closure_micros` counters.
    #[must_use]
    pub fn build(program: &Program, threads: &ThreadModel) -> HbGraph {
        let mut db = Database::new();
        let mhb_service = db.relation("mhbService", 2);
        let mhb_asynctask = db.relation("mhbAsyncTask", 2);
        let mhb_lifecycle = db.relation("mhbLifecycle", 2);
        let post_edge = db.relation("postEdge", 2);
        let same_looper = db.relation("sameLooper", 2);
        let cancel_edge = db.relation("cancelEdge", 2);
        let reentry_edge = db.relation("reentryEdge", 3);
        let mhb_edge = db.relation("mhbEdge", 2);
        let must_hb = db.relation("mustHb", 2);
        let post_hb = db.relation("postHb", 2);
        let enables = db.relation("enables", 2);
        let disables = db.relation("disables", 2);
        let pred_edge = db.relation("predEdge", 2);
        let pred_hb = db.relation("predHb", 2);
        let must_not_hb = db.relation("mustNotHb", 2);
        let unreachable = db.relation("unreachable", 1);

        let resume_fields = resume_alloc_fields(program, threads);
        let mut cancel = BTreeMap::new();
        let mut reentry: BTreeMap<(u32, u32), BTreeSet<FieldId>> = BTreeMap::new();

        // Direct-edge facts per ordered pair. Keyed by (src, dst) so the
        // flattened `edges` vector keeps the (src, dst) scan order, with
        // the per-pair kind order fixed below.
        #[derive(Default)]
        struct PairFacts {
            post: bool,
            cancel: Option<CancelApi>,
            service: bool,
            asynctask: bool,
            lifecycle: bool,
            reentry: Vec<FieldId>,
        }
        let mut pairs: BTreeMap<(ThreadId, ThreadId), PairFacts> = BTreeMap::new();

        // One linear pass builds candidate buckets; each relation then
        // enumerates only pairs sharing its qualifying key (class,
        // component, task instance, cancel-site target) — never all n²
        // thread pairs.
        type KindBucket<K> = BTreeMap<K, Vec<(ThreadId, CallbackKind)>>;
        let mut service_conn: BTreeMap<ClassId, Vec<ThreadId>> = BTreeMap::new();
        let mut service_disc: BTreeMap<ClassId, Vec<ThreadId>> = BTreeMap::new();
        let mut tasks: KindBucket<(ClassId, Option<InstrId>)> = BTreeMap::new();
        let mut lifecycle_members: KindBucket<ClassId> = BTreeMap::new();
        let mut by_class: BTreeMap<ClassId, Vec<ThreadId>> = BTreeMap::new();
        let mut by_component: BTreeMap<ClassId, Vec<ThreadId>> = BTreeMap::new();
        let mut pausers: Vec<(ThreadId, ClassId)> = Vec::new();
        let mut cancelers: Vec<ThreadId> = Vec::new();

        for (t, mt) in threads.threads() {
            // postEdge comes straight off the spawn tree; sameLooper is
            // materialized only where postEdge holds, since the postHb
            // join is its sole consumer (unrestricted it is quadratic in
            // main-looper callbacks).
            if let Some(u) = mt.parent() {
                if matches!(mt.via(), SpawnVia::Post | SpawnVia::Send) {
                    db.insert(post_edge, &[u.raw(), t.raw()]);
                    if threads.atomic_pair(u, t) {
                        db.insert(same_looper, &[u.raw(), t.raw()]);
                    }
                    pairs.entry((u, t)).or_default().post = true;
                }
            }
            if threads.sites_of(t).iter().any(|s| {
                matches!(
                    s.action,
                    SiteAction::Finish
                        | SiteAction::Unbind(_)
                        | SiteAction::Unregister(_)
                        | SiteAction::RemovePosts(_)
                )
            }) {
                cancelers.push(t);
            }
            let Some(k) = effective_kind(threads, t) else {
                continue;
            };
            if let Some(c) = mt.class() {
                by_class.entry(c).or_default().push(t);
                match k {
                    CallbackKind::OnServiceConnected => service_conn.entry(c).or_default().push(t),
                    CallbackKind::OnServiceDisconnected => {
                        service_disc.entry(c).or_default().push(t);
                    }
                    CallbackKind::OnPreExecute
                    | CallbackKind::DoInBackground
                    | CallbackKind::OnProgressUpdate
                    | CallbackKind::OnPostExecute => {
                        tasks.entry((c, mt.origin_site())).or_default().push((t, k));
                    }
                    _ => {}
                }
            }
            if let Some(c) = mt.component() {
                by_component.entry(c).or_default().push(t);
                if k.is_lifecycle() || k.is_ui() || k.is_system() {
                    lifecycle_members.entry(c).or_default().push((t, k));
                }
                if k == CallbackKind::OnPause {
                    pausers.push((t, c));
                }
            }
        }

        // MHB-Service: connected before disconnected, same connection class.
        for (c, conns) in &service_conn {
            let Some(discs) = service_disc.get(c) else { continue };
            for &u in conns {
                for &f in discs {
                    db.insert(mhb_service, &[u.raw(), f.raw()]);
                    pairs.entry((u, f)).or_default().service = true;
                }
            }
        }
        // MHB-AsyncTask: the callback DAG of one task instance
        // (class + execute site).
        for members in tasks.values() {
            for &(u, uk) in members {
                for &(f, fk) in members {
                    if u != f && lifecycle::asynctask_mhb(uk, fk) {
                        db.insert(mhb_asynctask, &[u.raw(), f.raw()]);
                        pairs.entry((u, f)).or_default().asynctask = true;
                    }
                }
            }
        }
        // MHB-Lifecycle: only onCreate-first / onDestroy-last pairs hold,
        // so pivot on those members instead of all member pairs.
        for members in lifecycle_members.values() {
            for &(s, sk) in members {
                if sk != CallbackKind::OnCreate && sk != CallbackKind::OnDestroy {
                    continue;
                }
                for &(o, ok) in members {
                    if s == o {
                        continue;
                    }
                    if lifecycle::lifecycle_mhb(sk, ok) {
                        db.insert(mhb_lifecycle, &[s.raw(), o.raw()]);
                        pairs.entry((s, o)).or_default().lifecycle = true;
                    }
                    if lifecycle::lifecycle_mhb(ok, sk) {
                        db.insert(mhb_lifecycle, &[o.raw(), s.raw()]);
                        pairs.entry((o, s)).or_default().lifecycle = true;
                    }
                }
            }
        }
        // CHB: candidate users are bounded by each cancel site's target —
        // the canceller's component for `finish()`, the named class for
        // unbind/unregister/removeCallbacks.
        for &f in &cancelers {
            let mut cands: BTreeSet<ThreadId> = BTreeSet::new();
            for site in threads.sites_of(f) {
                match site.action {
                    SiteAction::Finish => {
                        if let Some(c) = threads.thread(f).component() {
                            cands.extend(by_component.get(&c).into_iter().flatten().copied());
                        }
                    }
                    SiteAction::Unbind(c)
                    | SiteAction::Unregister(c)
                    | SiteAction::RemovePosts(c) => {
                        cands.extend(by_class.get(&c).into_iter().flatten().copied());
                    }
                    _ => {}
                }
            }
            for u in cands {
                if u == f {
                    continue;
                }
                if let Some(api) = cancel_pair(threads, u, f) {
                    db.insert(cancel_edge, &[u.raw(), f.raw()]);
                    cancel.insert((u.raw(), f.raw()), api);
                    pairs.entry((u, f)).or_default().cancel = Some(api);
                }
            }
        }
        // RHB: an `onResume` of the shared component may re-allocate.
        for &(f, comp) in &pausers {
            let Some(fields) = resume_fields.get(&comp) else { continue };
            if fields.is_empty() {
                continue;
            }
            for &u in by_component.get(&comp).into_iter().flatten() {
                if u == f {
                    continue;
                }
                let Some(uk) = effective_kind(threads, u) else { continue };
                if !(uk.is_ui() || uk.is_system()) {
                    continue;
                }
                for &fld in fields {
                    db.insert(reentry_edge, &[u.raw(), f.raw(), fld.raw()]);
                }
                pairs.entry((u, f)).or_default().reentry = fields.iter().copied().collect();
                reentry.insert((u.raw(), f.raw()), fields.clone());
            }
        }

        // Flatten in (src, dst) order with the canonical per-pair kind
        // order (post, cancel, service, asynctask, lifecycle, reentry).
        let mut edges = Vec::new();
        for (&(src, dst), facts) in &pairs {
            let mut push = |kind: HbEdgeKind| edges.push(HbEdge { src, dst, kind });
            if facts.post {
                push(HbEdgeKind::Post);
            }
            if let Some(api) = facts.cancel {
                push(HbEdgeKind::Cancel(api));
            }
            if facts.service {
                push(HbEdgeKind::MhbService);
            }
            if facts.asynctask {
                push(HbEdgeKind::MhbAsyncTask);
            }
            if facts.lifecycle {
                push(HbEdgeKind::MhbLifecycle);
            }
            for &fld in &facts.reentry {
                push(HbEdgeKind::Reentry(fld));
            }
        }

        // Predicate summaries and extended automata: compiled from the
        // same thread model, fed into their own relations. The legacy
        // facts above are byte-identical with or without them.
        let must_direct: Vec<(ThreadId, ThreadId)> = edges
            .iter()
            .filter(|e| e.kind.is_must())
            .map(|e| (e.src, e.dst))
            .collect();
        let facts = predicate::compute(program, threads, &must_direct);
        let mut enables_prov = BTreeMap::new();
        for &(e, c, site) in &facts.enables {
            db.insert(enables, &[e.raw(), c.raw()]);
            enables_prov.entry((e.raw(), c.raw())).or_insert(site);
        }
        let mut disables_prov = BTreeMap::new();
        for &(d, c, site) in &facts.disables {
            db.insert(disables, &[d.raw(), c.raw()]);
            disables_prov.entry((d.raw(), c.raw())).or_insert(site);
        }
        for e in &facts.edges {
            db.insert(pred_edge, &[e.src.raw(), e.dst.raw()]);
        }
        let pred_edges = facts.edges;

        let v = Term::var;
        let mut rules = RuleSet::new();
        for rel in [mhb_service, mhb_asynctask, mhb_lifecycle] {
            rules.add(mhb_edge, vec![v(0), v(1)]).when(rel, vec![v(0), v(1)]);
        }
        rules.add(must_hb, vec![v(0), v(1)]).when(mhb_edge, vec![v(0), v(1)]);
        rules
            .add(must_hb, vec![v(0), v(2)])
            .when(must_hb, vec![v(0), v(1)])
            .when(mhb_edge, vec![v(1), v(2)]);
        rules
            .add(post_hb, vec![v(0), v(1)])
            .when(post_edge, vec![v(0), v(1)])
            .when(same_looper, vec![v(0), v(1)]);
        // predHb: the predicate-extended sound closure. `predEdge` is
        // cycle-guarded at construction, so this stays a strict partial
        // order extending `mustHb`.
        for rel in [mhb_edge, pred_edge] {
            rules.add(pred_hb, vec![v(0), v(1)]).when(rel, vec![v(0), v(1)]);
            rules
                .add(pred_hb, vec![v(0), v(2)])
                .when(pred_hb, vec![v(0), v(1)])
                .when(rel, vec![v(1), v(2)]);
        }
        let t0 = Instant::now();
        db.run(&rules);
        let closure = t0.elapsed();

        // mustNotHb needs the solved predHb for its disjointness guard,
        // so its facts land after the solve (no rule consumes them).
        let mut must_not: BTreeMap<(u32, u32), MustNotProv> = BTreeMap::new();
        let mut unreachable_cbs: BTreeMap<u32, MustNotProv> = BTreeMap::new();
        for (f, c, prov) in facts.must_not {
            if db.contains(pred_hb, &[f.raw(), c.raw()]) {
                // `c` only ever runs after `f`, yet never runs after `f`:
                // it never runs at all. Demoting (instead of emitting
                // both) keeps mustNotHb ∩ predHb = ∅.
                db.insert(unreachable, &[c.raw()]);
                unreachable_cbs.entry(c.raw()).or_insert(prov);
            } else {
                db.insert(must_not_hb, &[f.raw(), c.raw()]);
                must_not.entry((f.raw(), c.raw())).or_insert(prov);
            }
        }

        let predicate_facts = enables_prov.len() + disables_prov.len() + pred_edges.len();
        emit_metrics(edges.len(), closure, predicate_facts);

        HbGraph {
            db,
            must_hb,
            post_hb,
            mhb_service,
            mhb_asynctask,
            mhb_lifecycle,
            cancel,
            reentry,
            edges,
            closure,
            pred_hb,
            enables_prov,
            disables_prov,
            pred_edges,
            must_not,
            unreachable_cbs,
        }
    }

    /// Whether every execution orders callbacks of `a` strictly before
    /// callbacks of `b` — the transitive closure of the three sound MHB
    /// relations.
    #[must_use]
    pub fn must_hb(&self, a: ThreadId, b: ThreadId) -> bool {
        self.db.contains(self.must_hb, &[a.raw(), b.raw()])
    }

    /// The direct sound MHB edge from `a` to `b`, labeled with the
    /// highest-priority relation that produces it (Service, then
    /// AsyncTask, then Lifecycle — the order the legacy filter checked).
    #[must_use]
    pub fn mhb_edge(&self, a: ThreadId, b: ThreadId) -> Option<HbEdgeKind> {
        let key = [a.raw(), b.raw()];
        if self.db.contains(self.mhb_service, &key) {
            Some(HbEdgeKind::MhbService)
        } else if self.db.contains(self.mhb_asynctask, &key) {
            Some(HbEdgeKind::MhbAsyncTask)
        } else if self.db.contains(self.mhb_lifecycle, &key) {
            Some(HbEdgeKind::MhbLifecycle)
        } else {
            None
        }
    }

    /// Whether some *unsound* ordering evidence (§6.2.1's mayHB family)
    /// suggests `a` completes before `b`: a post on a shared looper, a
    /// cancellation of `a`'s family by `b`, or an `onResume` re-entry
    /// edge.
    #[must_use]
    pub fn may_hb(&self, a: ThreadId, b: ThreadId) -> bool {
        self.post_hb(a, b) || self.cancel_hb(a, b).is_some() || self.reentry.contains_key(&(a.raw(), b.raw()))
    }

    /// May-happen-in-parallel: distinct threads with no sound ordering in
    /// either direction. Disjoint from [`HbGraph::must_hb`] by
    /// construction (the property suite pins this).
    #[must_use]
    pub fn mhp(&self, a: ThreadId, b: ThreadId) -> bool {
        a != b && !self.must_hb(a, b) && !self.must_hb(b, a)
    }

    /// Whether `a` posted/sent `b` on a shared looper (the PHB relation:
    /// the atomic post completes before the posted callback runs).
    #[must_use]
    pub fn post_hb(&self, a: ThreadId, b: ThreadId) -> bool {
        self.db.contains(self.post_hb, &[a.raw(), b.raw()])
    }

    /// The cancellation API through which `b` may silence `a`'s callback
    /// family, if any — the first matching cancel site of `b`, in site
    /// order (the CHB evidence string depends on this order).
    #[must_use]
    pub fn cancel_hb(&self, a: ThreadId, b: ThreadId) -> Option<CancelApi> {
        self.cancel.get(&(a.raw(), b.raw())).copied()
    }

    /// Whether an `onResume` of the shared component may re-allocate
    /// `field` between `b`'s free (`onPause`) and `a`'s next UI use —
    /// the RHB relation.
    #[must_use]
    pub fn reentry_hb(&self, a: ThreadId, b: ThreadId, field: FieldId) -> bool {
        self.reentry
            .get(&(a.raw(), b.raw()))
            .is_some_and(|fields| fields.contains(&field))
    }

    /// All direct edges, in deterministic (src, dst) scan order.
    #[must_use]
    pub fn edges(&self) -> &[HbEdge] {
        &self.edges
    }

    /// The direct edges between one ordered thread pair.
    #[must_use]
    pub fn edges_between(&self, a: ThreadId, b: ThreadId) -> Vec<HbEdge> {
        self.edges
            .iter()
            .filter(|e| e.src == a && e.dst == b)
            .copied()
            .collect()
    }

    /// A shortest witness path `a = t0 → t1 → … → tk = b` through the
    /// direct sound MHB edges, when `must_hb(a, b)` holds — the per-edge
    /// provenance behind a closure fact.
    #[must_use]
    pub fn must_hb_path(&self, a: ThreadId, b: ThreadId) -> Option<Vec<ThreadId>> {
        if a == b {
            return None;
        }
        let mut succ: BTreeMap<ThreadId, Vec<ThreadId>> = BTreeMap::new();
        for e in &self.edges {
            if e.kind.is_must() {
                succ.entry(e.src).or_default().push(e.dst);
            }
        }
        let mut prev: BTreeMap<ThreadId, ThreadId> = BTreeMap::new();
        let mut queue = VecDeque::from([a]);
        let mut seen = HashSet::from([a]);
        while let Some(t) = queue.pop_front() {
            if t == b {
                let mut path = vec![b];
                let mut cur = b;
                while let Some(&p) = prev.get(&cur) {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            for &next in succ.get(&t).into_iter().flatten() {
                if seen.insert(next) {
                    prev.insert(next, t);
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// Whether the predicate-extended sound closure orders `a` strictly
    /// before `b`: the transitive closure of `mhbEdge ∪ predEdge`. A
    /// superset of [`HbGraph::must_hb`]; still a strict partial order
    /// (the predicate edges are cycle-guarded at construction).
    #[must_use]
    pub fn pred_must_hb(&self, a: ThreadId, b: ThreadId) -> bool {
        self.db.contains(self.pred_hb, &[a.raw(), b.raw()])
    }

    /// Whether `b` is provably *never* delivered after `a` completes —
    /// the predicate summaries' negative ordering fact. Disjoint from
    /// [`HbGraph::pred_must_hb`] (and hence [`HbGraph::must_hb`]) by
    /// construction.
    #[must_use]
    pub fn must_not_hb(&self, a: ThreadId, b: ThreadId) -> bool {
        self.must_not.contains_key(&(a.raw(), b.raw()))
    }

    /// The contradiction chain behind a `mustNotHb(a, b)` fact.
    #[must_use]
    pub fn must_not_prov(&self, a: ThreadId, b: ThreadId) -> Option<&MustNotProv> {
        self.must_not.get(&(a.raw(), b.raw()))
    }

    /// The provenance of an `enables(a, b)` fact: the summarized API call
    /// in `a` that arms gated callback `b`.
    #[must_use]
    pub fn enables(&self, a: ThreadId, b: ThreadId) -> Option<&PredicateSite> {
        self.enables_prov.get(&(a.raw(), b.raw()))
    }

    /// The provenance of a `disables(a, b)` fact: the summarized API call
    /// in `a` that silences gated callback `b`.
    #[must_use]
    pub fn disables(&self, a: ThreadId, b: ThreadId) -> Option<&PredicateSite> {
        self.disables_prov.get(&(a.raw(), b.raw()))
    }

    /// All predicate-derived direct must edges, in deterministic order.
    #[must_use]
    pub fn pred_edges(&self) -> &[PredEdge] {
        &self.pred_edges
    }

    /// All solved `enables` facts with provenance, in deterministic
    /// order.
    pub fn enables_facts(&self) -> impl Iterator<Item = (ThreadId, ThreadId, &PredicateSite)> {
        self.enables_prov
            .iter()
            .map(|(&(e, c), site)| (ThreadId::from_raw(e), ThreadId::from_raw(c), site))
    }

    /// Number of solved `disables` facts.
    #[must_use]
    pub fn disables_count(&self) -> usize {
        self.disables_prov.len()
    }

    /// Whether gated callback `c` is provably never delivered at all (a
    /// `mustNotHb` candidate demoted by the disjointness guard).
    #[must_use]
    pub fn unreachable_cb(&self, c: ThreadId) -> bool {
        self.unreachable_cbs.contains_key(&c.raw())
    }

    /// The contradiction chain behind an `unreachable(c)` fact.
    #[must_use]
    pub fn unreachable_prov(&self, c: ThreadId) -> Option<&MustNotProv> {
        self.unreachable_cbs.get(&c.raw())
    }

    /// Total predicate fact count (`enables` + `disables` + `predEdge`)
    /// — the `hb.predicate_edges` counter's value.
    #[must_use]
    pub fn predicate_fact_count(&self) -> usize {
        self.enables_prov.len() + self.disables_prov.len() + self.pred_edges.len()
    }

    /// A shortest witness path through the direct sound MHB edges *plus*
    /// the predicate-derived edges, when [`HbGraph::pred_must_hb`] holds
    /// — the per-edge provenance behind a predicate-extended closure
    /// fact.
    #[must_use]
    pub fn pred_must_hb_path(&self, a: ThreadId, b: ThreadId) -> Option<Vec<ThreadId>> {
        if a == b {
            return None;
        }
        let mut succ: BTreeMap<ThreadId, Vec<ThreadId>> = BTreeMap::new();
        for e in &self.edges {
            if e.kind.is_must() {
                succ.entry(e.src).or_default().push(e.dst);
            }
        }
        for e in &self.pred_edges {
            succ.entry(e.src).or_default().push(e.dst);
        }
        let mut prev: BTreeMap<ThreadId, ThreadId> = BTreeMap::new();
        let mut queue = VecDeque::from([a]);
        let mut seen = HashSet::from([a]);
        while let Some(t) = queue.pop_front() {
            if t == b {
                let mut path = vec![b];
                let mut cur = b;
                while let Some(&p) = prev.get(&cur) {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            for &next in succ.get(&t).into_iter().flatten() {
                if seen.insert(next) {
                    prev.insert(next, t);
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// Number of direct edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Wall time of the Datalog closure solve.
    #[must_use]
    pub fn closure_time(&self) -> Duration {
        self.closure
    }

    /// The solved Datalog database, for inspection and crosschecks.
    #[must_use]
    pub fn database(&self) -> &Database {
        &self.db
    }
}

#[cfg(feature = "metrics")]
fn emit_metrics(edge_count: usize, closure: Duration, predicate_facts: usize) {
    if nadroid_obs::recording() {
        nadroid_obs::counter("hb.edges", edge_count as u64);
        #[allow(clippy::cast_possible_truncation)]
        nadroid_obs::counter("hb.closure_micros", closure.as_micros() as u64);
        nadroid_obs::counter("hb.predicate_edges", predicate_facts as u64);
    }
}

#[cfg(not(feature = "metrics"))]
fn emit_metrics(_edge_count: usize, _closure: Duration, _predicate_facts: usize) {}

/// The callback kind a modeled thread behaves as for ordering purposes
/// (`doInBackground` bodies participate in the AsyncTask order).
pub(crate) fn effective_kind(threads: &ThreadModel, t: ThreadId) -> Option<CallbackKind> {
    match threads.thread(t).kind() {
        ThreadKind::Callback(k) => Some(k),
        ThreadKind::TaskBody => Some(CallbackKind::DoInBackground),
        ThreadKind::DummyMain | ThreadKind::Native => None,
    }
}

fn same_component(threads: &ThreadModel, a: ThreadId, b: ThreadId) -> bool {
    let ca = threads.thread(a).component();
    ca.is_some() && ca == threads.thread(b).component()
}

/// The first cancellation site of `f` (in site order) whose scope covers
/// `u`'s callback family — the CHB edge label.
fn cancel_pair(threads: &ThreadModel, u: ThreadId, f: ThreadId) -> Option<CancelApi> {
    let uk = effective_kind(threads, u)?;
    let use_class = threads.thread(u).class();
    threads.sites_of(f).iter().find_map(|site| {
        let api = match site.action {
            SiteAction::Finish => Some(CancelApi::Finish),
            SiteAction::Unbind(c) if use_class == Some(c) => Some(CancelApi::UnbindService),
            SiteAction::Unregister(c) if use_class == Some(c) => {
                Some(CancelApi::UnregisterReceiver)
            }
            SiteAction::RemovePosts(c) if use_class == Some(c) => {
                Some(CancelApi::RemoveCallbacksAndMessages)
            }
            _ => None,
        }?;
        let covered = api.scope().covers(uk)
            && (api != CancelApi::Finish || same_component(threads, u, f));
        covered.then_some(api)
    })
}

/// Per component: the fields some `onResume` callback of that component
/// may store a fresh allocation into — the RHB edge labels.
fn resume_alloc_fields(
    program: &Program,
    threads: &ThreadModel,
) -> BTreeMap<nadroid_ir::ClassId, BTreeSet<FieldId>> {
    let mut out: BTreeMap<nadroid_ir::ClassId, BTreeSet<FieldId>> = BTreeMap::new();
    for (_, mt) in threads.threads() {
        if mt.kind().callback_kind() != Some(CallbackKind::OnResume) {
            continue;
        }
        let (Some(component), Some(root)) = (mt.component(), mt.root()) else {
            continue;
        };
        let entry = out.entry(component).or_default();
        entry.extend(alloc_fields(program, root));
    }
    out
}

/// May-analysis mirroring the RHB filter's: every field some path
/// through `method` (or a plain helper it calls) stores a fresh
/// allocation into, in one pass over each body. Re-implemented here
/// (rather than imported from the filter crate) because the filter
/// crate depends on this one.
fn alloc_fields(program: &Program, method: nadroid_ir::MethodId) -> BTreeSet<FieldId> {
    let mut found = BTreeSet::new();
    for &m in &nadroid_threadify::own_methods(program, method) {
        let mut fresh: HashSet<Local> = HashSet::new();
        program
            .method(m)
            .body()
            .for_each_instr(&mut |i| match &i.op {
                Op::New { dst, .. } => {
                    fresh.insert(*dst);
                }
                Op::Move { dst, src } if fresh.contains(src) => {
                    fresh.insert(*dst);
                }
                Op::Store { field, src, .. } if fresh.contains(src) => {
                    found.insert(*field);
                }
                _ => {}
            });
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadroid_ir::parse_program;

    fn build(src: &str) -> (Program, ThreadModel, HbGraph) {
        let p = parse_program(src).unwrap_or_else(|e| panic!("{e}"));
        let t = ThreadModel::build(&p);
        let g = HbGraph::build(&p, &t);
        (p, t, g)
    }

    fn thread_of(t: &ThreadModel, kind: CallbackKind) -> ThreadId {
        t.threads()
            .find(|(_, mt)| mt.kind().callback_kind() == Some(kind))
            .map(|(id, _)| id)
            .unwrap_or_else(|| panic!("no {kind:?} thread"))
    }

    const LIFECYCLE: &str = r#"
        app L
        activity Main {
            field f: Main
            cb onCreate { f = new Main }
            cb onClick { use f }
            cb onDestroy { f = null }
        }
    "#;

    #[test]
    fn lifecycle_edges_and_closure() {
        let (_p, t, g) = build(LIFECYCLE);
        let create = thread_of(&t, CallbackKind::OnCreate);
        let click = thread_of(&t, CallbackKind::OnClick);
        let destroy = thread_of(&t, CallbackKind::OnDestroy);
        assert_eq!(g.mhb_edge(create, click), Some(HbEdgeKind::MhbLifecycle));
        assert_eq!(g.mhb_edge(click, destroy), Some(HbEdgeKind::MhbLifecycle));
        assert!(g.must_hb(create, destroy), "closure: onCreate ≺ onDestroy");
        assert!(!g.must_hb(destroy, create));
        assert!(!g.mhp(create, destroy));
        let path = g.must_hb_path(create, destroy).expect("witness path");
        assert_eq!(path.first(), Some(&create));
        assert_eq!(path.last(), Some(&destroy));
        assert!(path.len() >= 2);
    }

    #[test]
    fn must_hb_is_irreflexive_here() {
        let (_p, t, g) = build(LIFECYCLE);
        for (id, _) in t.threads() {
            assert!(!g.must_hb(id, id), "mustHb must be irreflexive");
            assert!(!g.mhp(id, id), "a thread never races itself");
        }
    }

    #[test]
    fn service_edge_has_priority_over_lifecycle() {
        let (_p, t, g) = build(
            r#"
            app S
            activity Console {
                field bound: Console
                cb onCreate { bind this }
                cb onServiceConnected { bound = new Console }
                cb onServiceDisconnected { bound = null }
            }
            "#,
        );
        let con = thread_of(&t, CallbackKind::OnServiceConnected);
        let dis = thread_of(&t, CallbackKind::OnServiceDisconnected);
        assert_eq!(g.mhb_edge(con, dis), Some(HbEdgeKind::MhbService));
        assert!(g.must_hb(con, dis));
    }

    #[test]
    fn post_edges_require_a_shared_looper_for_post_hb() {
        let (_p, t, g) = build(
            r#"
            app P
            activity Main {
                field f: Main
                cb onClick { post R  use f }
            }
            runnable R in Main {
                cb run { outer.f = null }
            }
            "#,
        );
        let click = thread_of(&t, CallbackKind::OnClick);
        let posted = t
            .threads()
            .find(|(_, mt)| mt.parent() == Some(click))
            .map(|(id, _)| id)
            .expect("posted thread");
        assert!(g.post_hb(click, posted), "posted on the shared main looper");
        assert!(g
            .edges_between(click, posted)
            .iter()
            .any(|e| e.kind == HbEdgeKind::Post));
    }

    #[test]
    fn cancel_edges_record_the_api() {
        let (_p, t, g) = build(
            r#"
            app C
            activity Console {
                field bound: Console
                cb onCreate { bind this }
                cb onServiceConnected { use bound }
                cb onDestroy { unbind this }
            }
            "#,
        );
        let con = thread_of(&t, CallbackKind::OnServiceConnected);
        let destroy = thread_of(&t, CallbackKind::OnDestroy);
        assert_eq!(g.cancel_hb(con, destroy), Some(CancelApi::UnbindService));
        assert!(g.may_hb(con, destroy));
    }

    #[test]
    fn reentry_edges_carry_the_field() {
        let (p, t, g) = build(
            r#"
            app R
            activity Main {
                field f: Main
                cb onResume { f = new Main }
                cb onClick { use f }
                cb onPause { f = null }
            }
            "#,
        );
        let click = thread_of(&t, CallbackKind::OnClick);
        let pause = thread_of(&t, CallbackKind::OnPause);
        let c = p.class_by_name("Main").unwrap();
        let f = p.field_by_name(c, "f").unwrap();
        assert!(g.reentry_hb(click, pause, f));
        assert!(g
            .edges_between(click, pause)
            .iter()
            .any(|e| e.kind == HbEdgeKind::Reentry(f)));
    }

    #[test]
    fn mhp_is_symmetric_and_disjoint_from_must_hb() {
        let (_p, t, g) = build(LIFECYCLE);
        let ids: Vec<ThreadId> = t.threads().map(|(id, _)| id).collect();
        for &a in &ids {
            for &b in &ids {
                assert_eq!(g.mhp(a, b), g.mhp(b, a), "mhp is symmetric");
                if g.must_hb(a, b) {
                    assert!(!g.mhp(a, b), "mustHb and mhp are disjoint");
                }
            }
        }
    }

    #[test]
    fn edge_count_matches_edges() {
        let (_p, _t, g) = build(LIFECYCLE);
        assert_eq!(g.edge_count(), g.edges().len());
        assert!(g.edge_count() > 0);
    }

    #[test]
    fn predicate_relations_empty_without_summarized_apis() {
        // The paper corpus uses none of the summarized enable/disable
        // pairs; on such programs every predicate relation must be empty
        // and predHb must coincide with mustHb (the parity gate depends
        // on this).
        let (_p, t, g) = build(LIFECYCLE);
        assert_eq!(g.predicate_fact_count(), 0);
        assert!(g.pred_edges().is_empty());
        let ids: Vec<ThreadId> = t.threads().map(|(id, _)| id).collect();
        for &a in &ids {
            for &b in &ids {
                assert_eq!(g.pred_must_hb(a, b), g.must_hb(a, b), "{a}->{b}");
                assert!(!g.must_not_hb(a, b));
            }
            assert!(!g.unreachable_cb(a));
        }
    }

    const DIALOG: &str = r#"
        app D
        activity Main {
            field dlg: Dlg
            field f: Main
            cb onCreate { dlg = new Dlg  show dlg  f = new Main }
            cb onStop { dismiss dlg }
            cb onDestroy { f = null }
        }
        dialog Dlg in Main {
            cb onShow { use outer.f }
        }
    "#;

    #[test]
    fn dialog_summary_yields_enables_disables_and_must_not() {
        let (_p, t, g) = build(DIALOG);
        let create = thread_of(&t, CallbackKind::OnCreate);
        let stop = thread_of(&t, CallbackKind::OnStop);
        let destroy = thread_of(&t, CallbackKind::OnDestroy);
        let show = thread_of(&t, CallbackKind::OnShow);
        let en = g.enables(create, show).expect("show arms onShow");
        assert_eq!(en.api, "Dialog.show()");
        let dis = g.disables(stop, show).expect("dismiss silences onShow");
        assert_eq!(dis.api, "Dialog.dismiss()");
        // onStop dominates onDestroy, the show sits once-only in
        // onCreate: onShow can never run after onDestroy.
        assert!(g.must_not_hb(destroy, show));
        match g.must_not_prov(destroy, show) {
            Some(MustNotProv::Disabled {
                family, disabler, ..
            }) => {
                assert_eq!(family.name(), "dialog");
                assert_eq!(*disabler, stop);
            }
            other => panic!("unexpected provenance {other:?}"),
        }
        // The negative fact stays disjoint from every must relation.
        assert!(!g.pred_must_hb(destroy, show));
        assert!(!g.must_hb(destroy, show));
        // Legacy queries are untouched by the new facts.
        assert!(g.must_hb(create, destroy));
        assert!(!g.must_hb(destroy, show));
    }

    #[test]
    fn conditional_disabler_yields_no_must_not() {
        let (_p, t, g) = build(
            r#"
            app D
            activity Main {
                field dlg: Dlg
                field f: Main
                cb onCreate { dlg = new Dlg  show dlg  f = new Main }
                cb onStop { if ? { dismiss dlg } }
                cb onDestroy { f = null }
            }
            dialog Dlg in Main {
                cb onShow { use outer.f }
            }
            "#,
        );
        let stop = thread_of(&t, CallbackKind::OnStop);
        let destroy = thread_of(&t, CallbackKind::OnDestroy);
        let show = thread_of(&t, CallbackKind::OnShow);
        assert!(g.disables(stop, show).is_some(), "fact still recorded");
        assert!(
            !g.must_not_hb(destroy, show),
            "a branch-guarded dismiss may never execute"
        );
    }

    #[test]
    fn pause_disabler_yields_no_must_not_for_destroy() {
        // onPause does not dominate onDestroy (the stop-skip path), so a
        // dismiss there proves nothing about post-destroy deliveries.
        let (_p, t, g) = build(
            r#"
            app D
            activity Main {
                field dlg: Dlg
                field f: Main
                cb onCreate { dlg = new Dlg  show dlg  f = new Main }
                cb onPause { dismiss dlg }
                cb onDestroy { f = null }
            }
            dialog Dlg in Main {
                cb onShow { use outer.f }
            }
            "#,
        );
        let destroy = thread_of(&t, CallbackKind::OnDestroy);
        let show = thread_of(&t, CallbackKind::OnShow);
        assert!(!g.must_not_hb(destroy, show));
    }

    #[test]
    fn reenabling_callback_defeats_the_dominator_argument() {
        // A second show in onClick means the family can be re-armed
        // after onStop's dismiss: no mustNotHb.
        let (_p, t, g) = build(
            r#"
            app D
            activity Main {
                field dlg: Dlg
                field f: Main
                cb onCreate { dlg = new Dlg  show dlg  f = new Main }
                cb onClick { show dlg }
                cb onStop { dismiss dlg }
                cb onDestroy { f = null }
            }
            dialog Dlg in Main {
                cb onShow { use outer.f }
            }
            "#,
        );
        let destroy = thread_of(&t, CallbackKind::OnDestroy);
        let show = thread_of(&t, CallbackKind::OnShow);
        assert!(!g.must_not_hb(destroy, show));
    }

    #[test]
    fn fragment_edges_feed_pred_hb_but_not_must_hb() {
        let (_p, t, g) = build(
            r#"
            app F
            manifest { main Main }
            activity Main {
                field f: Main
                cb onCreate { f = new Main }
            }
            fragment Frag in Main {
                cb onAttach { use Main.f }
                cb onCreateView { use Main.f }
                cb onDetach { Main.f = null }
            }
            "#,
        );
        let attach = thread_of(&t, CallbackKind::OnAttach);
        let view = thread_of(&t, CallbackKind::OnCreateView);
        let detach = thread_of(&t, CallbackKind::OnDetach);
        assert!(g.pred_must_hb(attach, view), "attach first");
        assert!(g.pred_must_hb(view, detach), "detach last");
        assert!(g.pred_must_hb(attach, detach), "closure");
        assert!(!g.must_hb(attach, view), "legacy closure untouched");
        assert!(
            g.pred_edges()
                .iter()
                .all(|e| e.kind == PredEdgeKind::Fragment),
            "only fragment edges here"
        );
        // Terminal detach: nothing of the instance runs after it.
        assert!(g.must_not_hb(detach, view));
        assert!(g.must_not_hb(detach, attach));
        assert!(matches!(
            g.must_not_prov(detach, view),
            Some(MustNotProv::FragmentTerminal { .. })
        ));
        let path = g.pred_must_hb_path(attach, detach).expect("witness");
        assert_eq!(path.first(), Some(&attach));
        assert_eq!(path.last(), Some(&detach));
    }

    #[test]
    fn unique_launch_from_oncreate_orders_the_task_stack() {
        let (_p, t, g) = build(
            r#"
            app T
            manifest { main Main }
            activity Main {
                field f: Main
                cb onCreate { f = new Main  use f  startactivity Second }
            }
            activity Second {
                cb onCreate { Main.f = null }
            }
            "#,
        );
        let launcher = thread_of(&t, CallbackKind::OnCreate);
        let second = t
            .threads()
            .find(|(id, mt)| {
                mt.kind().callback_kind() == Some(CallbackKind::OnCreate) && *id != launcher
            })
            .map(|(id, _)| id)
            .expect("second onCreate");
        assert!(g.pred_must_hb(launcher, second), "launcher before target");
        assert!(!g.must_hb(launcher, second), "legacy closure untouched");
        assert!(g
            .pred_edges()
            .iter()
            .any(|e| matches!(e.kind, PredEdgeKind::TaskStack { .. })));
        assert!(g.enables(launcher, second).is_some(), "launch arms target");
    }

    #[test]
    fn repeatable_launcher_gets_no_task_edge() {
        // A launch from onClick may run after the target's onCreate; only
        // once-only launcher callbacks produce the edge.
        let (_p, _t, g) = build(
            r#"
            app T
            manifest { main Main }
            activity Main {
                cb onClick { startactivity Second }
            }
            activity Second {
                field f: Second
                cb onCreate { f = new Second }
            }
            "#,
        );
        assert!(g
            .pred_edges()
            .iter()
            .all(|e| !matches!(e.kind, PredEdgeKind::TaskStack { .. })));
    }

    #[test]
    fn mutual_launches_stay_acyclic() {
        // Adversarial: two non-main activities launch each other from
        // their onCreate. The cycle guard must drop one edge so predHb
        // remains a strict partial order.
        let (_p, t, g) = build(
            r#"
            app T
            manifest { main Root }
            activity Root {
                cb onCreate { startactivity A }
            }
            activity A {
                cb onCreate { startactivity B }
            }
            activity B {
                cb onCreate { startactivity A }
            }
            "#,
        );
        let ids: Vec<ThreadId> = t.threads().map(|(id, _)| id).collect();
        for &a in &ids {
            assert!(!g.pred_must_hb(a, a), "predHb must stay irreflexive");
            for &b in &ids {
                assert!(
                    !(g.pred_must_hb(a, b) && g.pred_must_hb(b, a)),
                    "predHb must stay asymmetric"
                );
            }
        }
    }
}
