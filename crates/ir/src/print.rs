//! Canonical textual form of IR programs.
//!
//! [`print_program`] emits the low-level statement syntax accepted by the
//! parser ([`crate::parse_program`]); `parse(print(p)) == p` for every
//! program built through [`crate::ProgramBuilder`] (the round-trip
//! property tested in this crate and by proptest suites).

use crate::ids::{ClassId, FieldId, MethodId};
use crate::instr::{AndroidOp, Block, Callee, Cond, Instr, Op, Stmt};
use crate::program::Program;
use std::fmt::Write as _;

/// Render a whole program in canonical DSL form.
#[must_use]
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "app {}", p.name());
    for (_, class) in p.classes() {
        out.push('\n');
        let _ = write!(out, "{} {}", class.role().keyword(), class.name());
        if let Some(outer) = class.outer() {
            let _ = write!(out, " in {}", p.class(outer).name());
        }
        if let Some(looper) = class.looper() {
            let _ = write!(out, " on {}", p.class(looper).name());
        }
        out.push_str(" {\n");
        for &f in class.fields() {
            let field = p.field(f);
            let _ = write!(out, "  field {}", field.name());
            if let Some(ty) = field.ty() {
                let _ = write!(out, ": {}", p.class(ty).name());
            }
            out.push('\n');
        }
        for &m in class.methods() {
            print_method(p, m, &mut out);
        }
        out.push_str("}\n");
    }
    let manifest = p.manifest();
    if manifest.main_activity().is_some() || !manifest.declared_receivers().is_empty() {
        out.push_str("\nmanifest {\n");
        if let Some(main) = manifest.main_activity() {
            let _ = writeln!(out, "  main {}", p.class(main).name());
        }
        for &r in manifest.declared_receivers() {
            let _ = writeln!(out, "  receiver {}", p.class(r).name());
        }
        out.push_str("}\n");
    }
    out
}

fn print_method(p: &Program, mid: MethodId, out: &mut String) {
    let m = p.method(mid);
    let kw = if m.callback().is_some() { "cb" } else { "fn" };
    let _ = write!(
        out,
        "  {kw} {}(params={}, locals={})",
        m.name(),
        m.param_count(),
        m.num_locals()
    );
    if m.body().is_empty() {
        out.push_str(" { }\n");
        return;
    }
    out.push_str(" {\n");
    print_block(p, m.body(), 2, out);
    out.push_str("  }\n");
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn print_block(p: &Program, block: &Block, depth: usize, out: &mut String) {
    for stmt in block {
        print_stmt(p, stmt, depth + 1, out);
    }
}

fn qfield(p: &Program, f: FieldId) -> String {
    let field = p.field(f);
    format!("{}.{}", p.class(field.owner()).name(), field.name())
}

fn print_stmt(p: &Program, stmt: &Stmt, depth: usize, out: &mut String) {
    match stmt {
        Stmt::Instr(i) => {
            indent(out, depth);
            print_instr(p, i, out);
            out.push('\n');
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
        } => {
            indent(out, depth);
            match cond {
                Cond::NotNull { base, field } => {
                    let _ = write!(out, "if notnull {base} {}", qfield(p, *field));
                }
                Cond::IsNull { base, field } => {
                    let _ = write!(out, "if isnull {base} {}", qfield(p, *field));
                }
                Cond::Opaque => out.push_str("if ?"),
            }
            out.push_str(" {\n");
            print_block(p, then_blk, depth, out);
            indent(out, depth);
            out.push('}');
            if !else_blk.is_empty() {
                out.push_str(" else {\n");
                print_block(p, else_blk, depth, out);
                indent(out, depth);
                out.push('}');
            }
            out.push('\n');
        }
        Stmt::Loop { body } => {
            indent(out, depth);
            out.push_str("loop {\n");
            print_block(p, body, depth, out);
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Sync { lock, body } => {
            indent(out, depth);
            let _ = write!(out, "sync {lock} {{");
            out.push('\n');
            print_block(p, body, depth, out);
            indent(out, depth);
            out.push_str("}\n");
        }
    }
}

fn class_name(p: &Program, c: ClassId) -> &str {
    p.class(c).name()
}

fn print_instr(p: &Program, i: &Instr, out: &mut String) {
    match &i.op {
        Op::New { dst, class } => {
            let _ = write!(out, "{dst} = new {}", class_name(p, *class));
        }
        Op::LoadStatic { dst, class } => {
            let _ = write!(out, "{dst} = static {}", class_name(p, *class));
        }
        Op::Load { dst, base, field } => {
            let _ = write!(out, "{dst} = load {base} {}", qfield(p, *field));
        }
        Op::Store { base, field, src } => {
            let _ = write!(out, "store {base} {} = {src}", qfield(p, *field));
        }
        Op::StoreNull { base, field } => {
            let _ = write!(out, "free {base} {}", qfield(p, *field));
        }
        Op::Move { dst, src } => {
            let _ = write!(out, "{dst} = move {src}");
        }
        Op::Null { dst } => {
            let _ = write!(out, "{dst} = null");
        }
        Op::Invoke {
            dst,
            callee,
            recv,
            args,
        } => {
            if let Some(d) = dst {
                let _ = write!(out, "{d} = ");
            }
            match callee {
                Callee::Method(m) => {
                    let method = p.method(*m);
                    let _ = write!(
                        out,
                        "call {}.{}",
                        class_name(p, method.owner()),
                        method.name()
                    );
                }
                Callee::Opaque => {
                    let _ = write!(out, "call opaque");
                }
            }
            out.push('(');
            let mut first = true;
            if let Some(r) = recv {
                let _ = write!(out, "recv={r}");
                first = false;
            }
            for a in args {
                if !first {
                    out.push_str(", ");
                }
                let _ = write!(out, "{a}");
                first = false;
            }
            out.push(')');
        }
        Op::Return { val } => {
            out.push_str("return");
            if let Some(v) = val {
                let _ = write!(out, " {v}");
            }
        }
        Op::Android(a) => print_android(p, a, out),
    }
}

fn print_android(_p: &Program, a: &AndroidOp, out: &mut String) {
    match a {
        AndroidOp::Post { runnable } => {
            let _ = write!(out, "post {runnable}");
        }
        AndroidOp::SendMessage { handler } => {
            let _ = write!(out, "send {handler}");
        }
        AndroidOp::BindService { connection } => {
            let _ = write!(out, "bindservice {connection}");
        }
        AndroidOp::UnbindService { connection } => {
            let _ = write!(out, "unbindservice {connection}");
        }
        AndroidOp::RegisterReceiver { receiver } => {
            let _ = write!(out, "registerreceiver {receiver}");
        }
        AndroidOp::UnregisterReceiver { receiver } => {
            let _ = write!(out, "unregisterreceiver {receiver}");
        }
        AndroidOp::Execute { task } => {
            let _ = write!(out, "execute {task}");
        }
        AndroidOp::PublishProgress => out.push_str("publish"),
        AndroidOp::Start { thread } => {
            let _ = write!(out, "start {thread}");
        }
        AndroidOp::Finish => out.push_str("finish"),
        AndroidOp::RemoveCallbacksAndMessages { handler } => {
            let _ = write!(out, "removeposts {handler}");
        }
        AndroidOp::RegisterListener { api, listener } => {
            let _ = write!(out, "listen {} {listener}", api.method_name());
        }
        AndroidOp::AcquireWakeLock { lock } => {
            let _ = write!(out, "acquire {lock}");
        }
        AndroidOp::ReleaseWakeLock { lock } => {
            let _ = write!(out, "release {lock}");
        }
        AndroidOp::ShowDialog { dialog } => {
            let _ = write!(out, "show {dialog}");
        }
        AndroidOp::DismissDialog { dialog } => {
            let _ = write!(out, "dismiss {dialog}");
        }
        AndroidOp::ScheduleAlarm { target } => {
            let _ = write!(out, "schedule {target}");
        }
        AndroidOp::CancelAlarm { target } => {
            let _ = write!(out, "cancelalarm {target}");
        }
        AndroidOp::StartActivity { activity } => {
            let _ = write!(out, "startactivity {activity}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::ids::Local;
    use nadroid_android::{CallbackKind, ClassRole};

    #[test]
    fn prints_a_small_program() {
        let mut b = ProgramBuilder::new("Demo");
        let act = b.add_class("Main", ClassRole::Activity);
        let f = b.add_field(act, "svc", Some(act));
        let mut m = b.method(act, "onCreate");
        m.alloc_field(f, act);
        m.finish_callback(CallbackKind::OnCreate);
        let mut m = b.method(act, "onClick");
        m.if_not_null(Local::THIS, f, |m| {
            m.use_field(f);
        });
        m.finish_callback(CallbackKind::OnClick);
        b.set_main_activity(act);
        let p = b.build();

        let text = print_program(&p);
        assert!(text.contains("app Demo"), "{text}");
        assert!(text.contains("activity Main {"), "{text}");
        assert!(text.contains("field svc: Main"), "{text}");
        assert!(text.contains("if notnull this Main.svc {"), "{text}");
        assert!(text.contains("free") || text.contains("load"), "{text}");
        assert!(text.contains("manifest {"), "{text}");
        assert!(text.contains("main Main"), "{text}");
    }

    #[test]
    fn loc_counts_nonblank_lines() {
        let mut b = ProgramBuilder::new("L");
        let c = b.add_class("C", ClassRole::Plain);
        let mut m = b.method(c, "m");
        m.ret(None);
        m.finish();
        let p = b.build();
        assert!(p.loc() >= 4); // app, class, method, return... braces
    }
}
