//! Parser for the textual application DSL.
//!
//! The DSL has two layers that may be mixed freely:
//!
//! - the **canonical** instruction syntax emitted by
//!   [`crate::print_program`] (`t3 = load this Main.svc`, `free this
//!   Main.svc`, ...), and
//! - **sugar** statements for hand-written fixtures (`svc = new Service`,
//!   `use svc`, `if svc != null { ... }`, `post Worker`, ...), which lower
//!   to the same instructions [`crate::MethodBuilder`]'s helpers emit.
//!
//! Parsing is two-pass: declarations are collected first so classes,
//! fields, and methods may be referenced before their declaration.

use crate::builder::ProgramBuilder;
use crate::ids::{ClassId, FieldId, Local, MethodId};
use crate::instr::{AndroidOp, Cond};
use crate::program::{Program, OUTER_FIELD};
use nadroid_android::listeners::RegistrationApi;
use nadroid_android::{CallbackKind, ClassRole};
use std::collections::HashMap;
use std::fmt;

/// Error produced when the DSL text is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    line: u32,
    msg: String,
}

impl ParseError {
    fn new(line: u32, msg: impl Into<String>) -> Self {
        ParseError {
            line,
            msg: msg.into(),
        }
    }

    /// The 1-based source line of the error.
    #[must_use]
    pub fn line(&self) -> u32 {
        self.line
    }

    /// The error message.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(u32),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Eq,
    EqEq,
    NotEq,
    Colon,
    Dot,
    Comma,
    Question,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(n) => write!(f, "`{n}`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::NotEq => write!(f, "`!=`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Question => write!(f, "`?`"),
        }
    }
}

fn lex(src: &str) -> Result<Vec<(Tok, u32)>> {
    let mut toks = Vec::new();
    let mut line: u32 = 1;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    return Err(ParseError::new(
                        line,
                        "unexpected `/` (use `//` for comments)",
                    ));
                }
            }
            '{' => {
                toks.push((Tok::LBrace, line));
                chars.next();
            }
            '}' => {
                toks.push((Tok::RBrace, line));
                chars.next();
            }
            '(' => {
                toks.push((Tok::LParen, line));
                chars.next();
            }
            ')' => {
                toks.push((Tok::RParen, line));
                chars.next();
            }
            ':' => {
                toks.push((Tok::Colon, line));
                chars.next();
            }
            '.' => {
                toks.push((Tok::Dot, line));
                chars.next();
            }
            ',' => {
                toks.push((Tok::Comma, line));
                chars.next();
            }
            '?' => {
                toks.push((Tok::Question, line));
                chars.next();
            }
            '=' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    toks.push((Tok::EqEq, line));
                } else {
                    toks.push((Tok::Eq, line));
                }
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    toks.push((Tok::NotEq, line));
                } else {
                    return Err(ParseError::new(line, "unexpected `!`"));
                }
            }
            c if c.is_ascii_digit() => {
                let mut n: u32 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(v) = d.to_digit(10) {
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(v))
                            .ok_or_else(|| ParseError::new(line, "integer literal too large"))?;
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push((Tok::Int(n), line));
            }
            c if c.is_alphabetic() || c == '_' || c == '$' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' || d == '$' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push((Tok::Ident(s), line));
            }
            other => {
                return Err(ParseError::new(
                    line,
                    format!("unexpected character {other:?}"),
                ))
            }
        }
    }
    Ok(toks)
}

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct AstProgram {
    name: String,
    classes: Vec<AstClass>,
    main_activity: Option<String>,
    receivers: Vec<String>,
}

#[derive(Debug)]
struct AstClass {
    role: ClassRole,
    name: String,
    outer: Option<String>,
    looper: Option<String>,
    fields: Vec<(String, Option<String>)>,
    methods: Vec<AstMethod>,
    line: u32,
}

#[derive(Debug)]
struct AstMethod {
    is_cb: bool,
    name: String,
    params: u16,
    locals: Option<u16>,
    body: Vec<(u32, AstStmt)>,
    line: u32,
}

/// A reference to a field from statement position.
#[derive(Debug, Clone)]
enum Path {
    /// Bare name: a field of the enclosing class, via `this`.
    This(String),
    /// `outer.f`: a field of the lexically enclosing class, via `$outer`.
    Outer(String),
    /// `Class.f`: a field of a component class, via its static instance.
    Static(String, String),
}

#[derive(Debug, Clone)]
enum Rhs {
    New(String),
    Null,
    Call(String),
    Path(Path),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UseMode {
    Deref,
    Ret,
    Arg,
}

#[derive(Debug, Clone)]
enum Operand {
    Local(Local),
    Class(String),
    Field(String),
}

#[derive(Debug)]
enum AstStmt {
    // Canonical three-address forms.
    CNew {
        dst: Local,
        class: String,
    },
    CStatic {
        dst: Local,
        class: String,
    },
    CLoad {
        dst: Local,
        base: Local,
        class: String,
        field: String,
    },
    CStore {
        base: Local,
        class: String,
        field: String,
        src: Local,
    },
    CFree {
        base: Local,
        class: String,
        field: String,
    },
    CMove {
        dst: Local,
        src: Local,
    },
    CNull {
        dst: Local,
    },
    CCall {
        dst: Option<Local>,
        target: Option<(String, String)>,
        recv: Option<Local>,
        args: Vec<Local>,
    },
    CReturn {
        val: Option<Local>,
    },
    CAndroid {
        op: &'static str,
        operand: Option<Operand>,
        api: Option<RegistrationApi>,
    },
    // Sugar forms.
    SAssign {
        path: Path,
        rhs: Rhs,
    },
    SUse {
        path: Path,
        mode: UseMode,
    },
    SCall {
        name: String,
    },
    // Structured statements (nested statements carry their lines).
    If {
        cond: AstCond,
        then_blk: Vec<(u32, AstStmt)>,
        else_blk: Vec<(u32, AstStmt)>,
        line: u32,
    },
    Loop {
        body: Vec<(u32, AstStmt)>,
    },
    Sync {
        lock: Operand,
        body: Vec<(u32, AstStmt)>,
        line: u32,
    },
}

#[derive(Debug)]
enum AstCond {
    Canon {
        non_null: bool,
        base: Local,
        class: String,
        field: String,
    },
    Sugar {
        non_null: bool,
        path: Path,
    },
    Opaque,
}

// ---------------------------------------------------------------------------
// Parser (tokens -> AST)
// ---------------------------------------------------------------------------

struct Parser {
    toks: Vec<(Tok, u32)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(0, |(_, l)| *l)
    }

    fn next(&mut self) -> Result<Tok> {
        let line = self.line();
        let t = self
            .toks
            .get(self.pos)
            .map(|(t, _)| t.clone())
            .ok_or_else(|| ParseError::new(line, "unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, want: &Tok) -> Result<()> {
        let line = self.line();
        let got = self.next()?;
        if &got == want {
            Ok(())
        } else {
            Err(ParseError::new(
                line,
                format!("expected {want}, found {got}"),
            ))
        }
    }

    fn ident(&mut self) -> Result<String> {
        let line = self.line();
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(ParseError::new(
                line,
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn int(&mut self) -> Result<u32> {
        let line = self.line();
        match self.next()? {
            Tok::Int(n) => Ok(n),
            other => Err(ParseError::new(
                line,
                format!("expected integer, found {other}"),
            )),
        }
    }

    fn eat_ident(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn program(&mut self) -> Result<AstProgram> {
        let line = self.line();
        if !self.eat_ident("app") {
            return Err(ParseError::new(
                line,
                "program must start with `app <Name>`",
            ));
        }
        let name = self.ident()?;
        let mut classes = Vec::new();
        let mut main_activity = None;
        let mut receivers = Vec::new();
        while let Some(tok) = self.peek() {
            let line = self.line();
            let Tok::Ident(kw) = tok.clone() else {
                return Err(ParseError::new(
                    line,
                    format!("expected class or manifest, found {tok}"),
                ));
            };
            if kw == "manifest" {
                self.pos += 1;
                self.expect(&Tok::LBrace)?;
                while !self.eat(&Tok::RBrace) {
                    let l = self.line();
                    let kw = self.ident()?;
                    match kw.as_str() {
                        "main" => main_activity = Some(self.ident()?),
                        "receiver" => receivers.push(self.ident()?),
                        other => {
                            return Err(ParseError::new(
                                l,
                                format!("unknown manifest entry `{other}`"),
                            ))
                        }
                    }
                }
            } else if let Some(role) = ClassRole::from_keyword(&kw) {
                self.pos += 1;
                classes.push(self.class(role, line)?);
            } else {
                return Err(ParseError::new(
                    line,
                    format!("unknown declaration keyword `{kw}`"),
                ));
            }
        }
        Ok(AstProgram {
            name,
            classes,
            main_activity,
            receivers,
        })
    }

    fn class(&mut self, role: ClassRole, line: u32) -> Result<AstClass> {
        let name = self.ident()?;
        let outer = if self.eat_ident("in") {
            Some(self.ident()?)
        } else {
            None
        };
        let looper = if self.eat_ident("on") {
            Some(self.ident()?)
        } else {
            None
        };
        self.expect(&Tok::LBrace)?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        while !self.eat(&Tok::RBrace) {
            let l = self.line();
            let kw = self.ident()?;
            match kw.as_str() {
                "field" => {
                    let fname = self.ident()?;
                    let ty = if self.eat(&Tok::Colon) {
                        Some(self.ident()?)
                    } else {
                        None
                    };
                    fields.push((fname, ty));
                }
                "cb" | "fn" => methods.push(self.method(kw == "cb", l)?),
                other => {
                    // Bare callback-name sugar: `onCreate { ... }`.
                    if CallbackKind::from_method_name(other, role).is_some()
                        || matches!(self.peek(), Some(Tok::LBrace) | Some(Tok::LParen))
                    {
                        self.pos -= 1;
                        let name = self.ident()?;
                        let is_cb = CallbackKind::from_method_name(&name, role).is_some();
                        let mut m = self.method_tail(is_cb, name, l)?;
                        m.is_cb = is_cb;
                        methods.push(m);
                    } else {
                        return Err(ParseError::new(
                            l,
                            format!("unknown class member `{other}` (expected field/cb/fn)"),
                        ));
                    }
                }
            }
        }
        Ok(AstClass {
            role,
            name,
            outer,
            looper,
            fields,
            methods,
            line,
        })
    }

    fn method(&mut self, is_cb: bool, line: u32) -> Result<AstMethod> {
        let name = self.ident()?;
        self.method_tail(is_cb, name, line)
    }

    fn method_tail(&mut self, is_cb: bool, name: String, line: u32) -> Result<AstMethod> {
        let mut params = 0u16;
        let mut locals = None;
        if self.eat(&Tok::LParen) {
            while !self.eat(&Tok::RParen) {
                let l = self.line();
                let kw = self.ident()?;
                self.expect(&Tok::Eq)?;
                let n = self.int()?;
                match kw.as_str() {
                    "params" => {
                        params = u16::try_from(n)
                            .map_err(|_| ParseError::new(l, "too many parameters"))?;
                    }
                    "locals" => {
                        locals = Some(
                            u16::try_from(n).map_err(|_| ParseError::new(l, "too many locals"))?,
                        );
                    }
                    other => {
                        return Err(ParseError::new(
                            l,
                            format!("unknown method attribute `{other}`"),
                        ))
                    }
                }
                let _ = self.eat(&Tok::Comma);
            }
        }
        self.expect(&Tok::LBrace)?;
        let body = self.block()?;
        Ok(AstMethod {
            is_cb,
            name,
            params,
            locals,
            body,
            line,
        })
    }

    fn block(&mut self) -> Result<Vec<(u32, AstStmt)>> {
        let mut out = Vec::new();
        while !self.eat(&Tok::RBrace) {
            let line = self.line();
            out.push((line, self.stmt()?));
        }
        Ok(out)
    }

    fn local_of(name: &str) -> Option<Local> {
        if name == "this" {
            return Some(Local::THIS);
        }
        let rest = name.strip_prefix('t')?;
        if rest.is_empty() || !rest.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        rest.parse::<u16>().ok().map(Local)
    }

    fn local(&mut self) -> Result<Local> {
        let line = self.line();
        let id = self.ident()?;
        Self::local_of(&id).ok_or_else(|| {
            ParseError::new(line, format!("expected local (`this`/`tN`), found `{id}`"))
        })
    }

    /// Parse `Class.field` (canonical qualified field).
    fn qfield(&mut self) -> Result<(String, String)> {
        let class = self.ident()?;
        self.expect(&Tok::Dot)?;
        let field = self.ident()?;
        Ok((class, field))
    }

    /// Parse a sugar field path starting from an already-consumed ident.
    fn path_from(&mut self, first: String) -> Result<Path> {
        if self.eat(&Tok::Dot) {
            let field = self.ident()?;
            if first == "outer" {
                Ok(Path::Outer(field))
            } else {
                Ok(Path::Static(first, field))
            }
        } else {
            Ok(Path::This(first))
        }
    }

    /// Parse an operand that is either a local, or a class/field name.
    fn operand(&mut self) -> Result<Operand> {
        let id = self.ident()?;
        Ok(match Self::local_of(&id) {
            Some(l) => Operand::Local(l),
            None => {
                if id.chars().next().is_some_and(char::is_uppercase) {
                    Operand::Class(id)
                } else {
                    Operand::Field(id)
                }
            }
        })
    }

    fn android_stmt(&mut self, op: &'static str, takes_operand: bool) -> Result<AstStmt> {
        let operand = if takes_operand {
            Some(self.operand()?)
        } else {
            None
        };
        Ok(AstStmt::CAndroid {
            op,
            operand,
            api: None,
        })
    }

    fn stmt(&mut self) -> Result<AstStmt> {
        let line = self.line();
        let first = self.ident()?;
        match first.as_str() {
            "store" => {
                let base = self.local()?;
                let (class, field) = self.qfield()?;
                self.expect(&Tok::Eq)?;
                let src = self.local()?;
                Ok(AstStmt::CStore {
                    base,
                    class,
                    field,
                    src,
                })
            }
            "free" => {
                let base = self.local()?;
                let (class, field) = self.qfield()?;
                Ok(AstStmt::CFree { base, class, field })
            }
            "return" => {
                // `return` may be followed by a local, or by nothing.
                if let Some(Tok::Ident(id)) = self.peek() {
                    if let Some(l) = Self::local_of(id) {
                        self.pos += 1;
                        return Ok(AstStmt::CReturn { val: Some(l) });
                    }
                }
                Ok(AstStmt::CReturn { val: None })
            }
            "call" => self.call_stmt(None),
            "use" => {
                let id = self.ident()?;
                let path = self.path_from(id)?;
                Ok(AstStmt::SUse {
                    path,
                    mode: UseMode::Deref,
                })
            }
            "useret" => {
                let id = self.ident()?;
                let path = self.path_from(id)?;
                Ok(AstStmt::SUse {
                    path,
                    mode: UseMode::Ret,
                })
            }
            "usearg" => {
                let id = self.ident()?;
                let path = self.path_from(id)?;
                Ok(AstStmt::SUse {
                    path,
                    mode: UseMode::Arg,
                })
            }
            "post" => self.android_stmt("post", true),
            "send" => self.android_stmt("send", true),
            "execute" => self.android_stmt("execute", true),
            "start" | "spawn" => self.android_stmt("start", true),
            "bindservice" | "bind" => self.android_stmt("bind", true),
            "unbindservice" | "unbind" => self.android_stmt("unbind", true),
            "registerreceiver" | "register" => self.android_stmt("register", true),
            "unregisterreceiver" | "unregister" => self.android_stmt("unregister", true),
            "removeposts" => self.android_stmt("removeposts", true),
            "acquire" => self.android_stmt("acquire", true),
            "release" => self.android_stmt("release", true),
            "show" => self.android_stmt("show", true),
            "dismiss" => self.android_stmt("dismiss", true),
            "schedule" => self.android_stmt("schedule", true),
            "cancelalarm" => self.android_stmt("cancelalarm", true),
            "startactivity" | "launch" => self.android_stmt("startactivity", true),
            "publish" => self.android_stmt("publish", false),
            "finish" => self.android_stmt("finish", false),
            "listen" => {
                let l = self.line();
                let api_name = self.ident()?;
                let api = RegistrationApi::from_method_name(&api_name).ok_or_else(|| {
                    ParseError::new(l, format!("unknown listener-registration API `{api_name}`"))
                })?;
                let operand = Some(self.operand()?);
                Ok(AstStmt::CAndroid {
                    op: "listen",
                    operand,
                    api: Some(api),
                })
            }
            "if" => self.if_stmt(line),
            "loop" => {
                self.expect(&Tok::LBrace)?;
                Ok(AstStmt::Loop {
                    body: self.block()?,
                })
            }
            "sync" => {
                let lock = self.operand()?;
                self.expect(&Tok::LBrace)?;
                Ok(AstStmt::Sync {
                    lock,
                    body: self.block()?,
                    line,
                })
            }
            _ => {
                // Assignment: canonical `tN = ...` or sugar `<path> = ...`.
                if let Some(dst) = Self::local_of(&first) {
                    self.expect(&Tok::Eq)?;
                    self.canon_rhs(dst, line)
                } else {
                    let path = self.path_from(first)?;
                    self.expect(&Tok::Eq)?;
                    let rline = self.line();
                    let kw = self.ident()?;
                    let rhs = match kw.as_str() {
                        "new" => Rhs::New(self.ident()?),
                        "null" => Rhs::Null,
                        "call" => Rhs::Call(self.ident()?),
                        _ => {
                            if Self::local_of(&kw).is_some() {
                                return Err(ParseError::new(
                                    rline,
                                    "locals cannot be assigned to fields in sugar; use canonical `store`",
                                ));
                            }
                            Rhs::Path(self.path_from(kw)?)
                        }
                    };
                    Ok(AstStmt::SAssign { path, rhs })
                }
            }
        }
    }

    fn canon_rhs(&mut self, dst: Local, line: u32) -> Result<AstStmt> {
        let kw = self.ident()?;
        match kw.as_str() {
            "new" => Ok(AstStmt::CNew {
                dst,
                class: self.ident()?,
            }),
            "static" => Ok(AstStmt::CStatic {
                dst,
                class: self.ident()?,
            }),
            "load" => {
                let base = self.local()?;
                let (class, field) = self.qfield()?;
                Ok(AstStmt::CLoad {
                    dst,
                    base,
                    class,
                    field,
                })
            }
            "move" => Ok(AstStmt::CMove {
                dst,
                src: self.local()?,
            }),
            "null" => Ok(AstStmt::CNull { dst }),
            "call" => self.call_stmt(Some(dst)),
            other => Err(ParseError::new(
                line,
                format!("unknown assignment rhs `{other}`"),
            )),
        }
    }

    fn call_stmt(&mut self, dst: Option<Local>) -> Result<AstStmt> {
        let line = self.line();
        let name = self.ident()?;
        if name == "opaque" {
            let (recv, args) = self.call_args()?;
            return Ok(AstStmt::CCall {
                dst,
                target: None,
                recv,
                args,
            });
        }
        if self.eat(&Tok::Dot) {
            let method = self.ident()?;
            let (recv, args) = self.call_args()?;
            return Ok(AstStmt::CCall {
                dst,
                target: Some((name, method)),
                recv,
                args,
            });
        }
        if matches!(self.peek(), Some(Tok::LParen)) {
            return Err(ParseError::new(
                line,
                "canonical calls need a qualified target (`Class.method`) or `opaque`",
            ));
        }
        if dst.is_some() {
            return Err(ParseError::new(
                line,
                "sugar `call <name>` cannot assign to a local",
            ));
        }
        Ok(AstStmt::SCall { name })
    }

    fn call_args(&mut self) -> Result<(Option<Local>, Vec<Local>)> {
        self.expect(&Tok::LParen)?;
        let mut recv = None;
        let mut args = Vec::new();
        let mut first = true;
        while !self.eat(&Tok::RParen) {
            if !first {
                self.expect(&Tok::Comma)?;
            }
            first = false;
            if self.eat_ident("recv") {
                self.expect(&Tok::Eq)?;
                recv = Some(self.local()?);
            } else {
                args.push(self.local()?);
            }
        }
        Ok((recv, args))
    }

    fn if_stmt(&mut self, line: u32) -> Result<AstStmt> {
        let cond = if self.eat(&Tok::Question) {
            AstCond::Opaque
        } else if self.eat_ident("notnull") {
            let base = self.local()?;
            let (class, field) = self.qfield()?;
            AstCond::Canon {
                non_null: true,
                base,
                class,
                field,
            }
        } else if self.eat_ident("isnull") {
            let base = self.local()?;
            let (class, field) = self.qfield()?;
            AstCond::Canon {
                non_null: false,
                base,
                class,
                field,
            }
        } else {
            // Sugar: `if <path> != null` / `if <path> == null`.
            let id = self.ident()?;
            let path = self.path_from(id)?;
            let l = self.line();
            let op = self.next()?;
            let non_null = match op {
                Tok::NotEq => true,
                Tok::EqEq => false,
                other => {
                    return Err(ParseError::new(
                        l,
                        format!("expected `!=` or `==`, found {other}"),
                    ))
                }
            };
            if !self.eat_ident("null") {
                return Err(ParseError::new(
                    l,
                    "null-check conditions must compare against `null`",
                ));
            }
            AstCond::Sugar { non_null, path }
        };
        self.expect(&Tok::LBrace)?;
        let then_blk = self.block()?;
        let else_blk = if self.eat_ident("else") {
            self.expect(&Tok::LBrace)?;
            self.block()?
        } else {
            Vec::new()
        };
        Ok(AstStmt::If {
            cond,
            then_blk,
            else_blk,
            line,
        })
    }
}

// ---------------------------------------------------------------------------
// Lowering (AST -> Program)
// ---------------------------------------------------------------------------

struct Lowerer {
    classes: HashMap<String, ClassId>,
    /// (class, field name) -> id, including `$outer` fields.
    fields: HashMap<(ClassId, String), FieldId>,
    methods: HashMap<(ClassId, String), MethodId>,
    roles: HashMap<ClassId, ClassRole>,
    outers: HashMap<ClassId, ClassId>,
}

impl Lowerer {
    fn field(&self, class: ClassId, name: &str, line: u32) -> Result<FieldId> {
        self.fields
            .get(&(class, name.to_owned()))
            .copied()
            .ok_or_else(|| ParseError::new(line, format!("unknown field `{name}`")))
    }

    fn class(&self, name: &str, line: u32) -> Result<ClassId> {
        self.classes
            .get(name)
            .copied()
            .ok_or_else(|| ParseError::new(line, format!("unknown class `{name}`")))
    }
}

/// Parse DSL text into a [`Program`].
///
/// # Errors
///
/// Returns [`ParseError`] with the offending line when the text is
/// lexically or grammatically malformed, or names an unknown class,
/// field, or method.
pub fn parse_program(src: &str) -> Result<Program> {
    let toks = lex(src)?;
    let mut parser = Parser { toks, pos: 0 };
    let ast = parser.program()?;
    if parser.pos != parser.toks.len() {
        return Err(ParseError::new(
            parser.line(),
            "trailing input after program",
        ));
    }
    lower(ast)
}

fn lower(ast: AstProgram) -> Result<Program> {
    let mut b = ProgramBuilder::new(ast.name.clone());
    let mut lo = Lowerer {
        classes: HashMap::new(),
        fields: HashMap::new(),
        methods: HashMap::new(),
        roles: HashMap::new(),
        outers: HashMap::new(),
    };

    // Pass 1a: classes (outer links resolved in a second sweep so an inner
    // class may precede its outer).
    for c in &ast.classes {
        if lo.classes.contains_key(&c.name) {
            return Err(ParseError::new(
                c.line,
                format!("duplicate class `{}`", c.name),
            ));
        }
        let id = b.add_class(c.name.clone(), c.role);
        lo.classes.insert(c.name.clone(), id);
        lo.roles.insert(id, c.role);
    }
    for c in &ast.classes {
        if let Some(outer_name) = &c.outer {
            let inner = lo.classes[&c.name];
            let outer = lo.class(outer_name, c.line)?;
            b.set_outer(inner, outer);
            lo.outers.insert(inner, outer);
        }
        if let Some(looper_name) = &c.looper {
            let class = lo.classes[&c.name];
            let looper = lo.class(looper_name, c.line)?;
            if lo.roles.get(&looper) != Some(&ClassRole::LooperThread) {
                return Err(ParseError::new(
                    c.line,
                    format!("`on {looper_name}`: target must be a looperthread class"),
                ));
            }
            b.set_looper(class, looper);
        }
    }

    // Pass 1b: fields (types may reference any class). Framework-helper
    // classes get their implicit `$outer` back-reference created here, in
    // class order, so field numbering is stable under print/parse
    // round-trips.
    for c in &ast.classes {
        let cid = lo.classes[&c.name];
        for (fname, ty) in &c.fields {
            let ty = match ty {
                Some(t) => Some(lo.class(t, c.line)?),
                None => None,
            };
            if lo.fields.contains_key(&(cid, fname.clone())) {
                return Err(ParseError::new(
                    c.line,
                    format!("duplicate field `{fname}`"),
                ));
            }
            let fid = b.add_field(cid, fname.clone(), ty);
            lo.fields.insert((cid, fname.clone()), fid);
        }
        if c.role.is_framework_helper() && !lo.fields.contains_key(&(cid, OUTER_FIELD.to_owned())) {
            let fid = b.outer_field(cid);
            lo.fields.insert((cid, OUTER_FIELD.to_owned()), fid);
        }
    }

    // Pass 1c: method declarations (so calls may reference forward).
    for c in &ast.classes {
        let cid = lo.classes[&c.name];
        for m in &c.methods {
            if lo.methods.contains_key(&(cid, m.name.clone())) {
                return Err(ParseError::new(
                    m.line,
                    format!("duplicate method `{}`", m.name),
                ));
            }
            let mid = b.declare_method(cid, m.name.clone());
            lo.methods.insert((cid, m.name.clone()), mid);
        }
    }

    // Pass 2: method bodies.
    for c in &ast.classes {
        let cid = lo.classes[&c.name];
        for m in &c.methods {
            let mid = lo.methods[&(cid, m.name.clone())];
            let callback = if m.is_cb {
                Some(
                    CallbackKind::from_method_name(&m.name, c.role).ok_or_else(|| {
                        ParseError::new(
                            m.line,
                            format!("`{}` is not a known callback for role `{}`", m.name, c.role),
                        )
                    })?,
                )
            } else {
                None
            };
            let mut mb = b.body(mid);
            if m.params > 0 {
                mb.params(m.params);
            }
            if let Some(n) = m.locals {
                mb.reserve_locals(n);
            }
            let ctx = BodyCtx {
                class: cid,
                lo: &lo,
            };
            lower_block(&mut mb, &ctx, &m.body)?;
            match callback {
                Some(k) => mb.finish_callback(k),
                None => mb.finish(),
            };
        }
    }

    // Manifest.
    if let Some(main) = &ast.main_activity {
        let id = lo.class(main, 0)?;
        b.set_main_activity(id);
    }
    for r in &ast.receivers {
        let id = lo.class(r, 0)?;
        b.declare_receiver(id);
    }

    Ok(b.build())
}

struct BodyCtx<'a> {
    class: ClassId,
    lo: &'a Lowerer,
}

impl BodyCtx<'_> {
    /// Resolve a sugar path to (base local, field id), emitting any loads
    /// needed to materialize the base.
    fn resolve_path(
        &self,
        mb: &mut crate::builder::MethodBuilder<'_>,
        path: &Path,
        line: u32,
    ) -> Result<(Local, FieldId)> {
        match path {
            Path::This(f) => Ok((Local::THIS, self.lo.field(self.class, f, line)?)),
            Path::Outer(f) => {
                let outer_cls = self.lo.outers.get(&self.class).copied().ok_or_else(|| {
                    ParseError::new(
                        line,
                        "`outer.` used in a class without an `in <Outer>` clause",
                    )
                })?;
                let outer_f = self.lo.field(self.class, OUTER_FIELD, line).map_err(|_| {
                    ParseError::new(
                        line,
                        "class has no `$outer` field (is it a framework helper?)",
                    )
                })?;
                let t = mb.new_local();
                mb.load(t, Local::THIS, outer_f);
                Ok((t, self.lo.field(outer_cls, f, line)?))
            }
            Path::Static(cname, f) => {
                let cls = self.lo.class(cname, line)?;
                let t = mb.new_local();
                mb.load_static(t, cls);
                Ok((t, self.lo.field(cls, f, line)?))
            }
        }
    }

    /// Resolve an Android-op operand into a local, creating wired instances
    /// for class operands and loading fields for field operands.
    fn resolve_operand(
        &self,
        mb: &mut crate::builder::MethodBuilder<'_>,
        op: &Operand,
        line: u32,
    ) -> Result<Local> {
        match op {
            Operand::Local(l) => Ok(*l),
            Operand::Class(name) => {
                let cls = self.lo.class(name, line)?;
                Ok(mb.new_wired(cls))
            }
            Operand::Field(name) => {
                let f = self.lo.field(self.class, name, line)?;
                let t = mb.new_local();
                mb.load(t, Local::THIS, f);
                Ok(t)
            }
        }
    }
}

fn lower_block(
    mb: &mut crate::builder::MethodBuilder<'_>,
    ctx: &BodyCtx<'_>,
    stmts: &[(u32, AstStmt)],
) -> Result<()> {
    for (line, s) in stmts {
        lower_stmt(mb, ctx, s, *line)?;
    }
    Ok(())
}

fn lower_stmt(
    mb: &mut crate::builder::MethodBuilder<'_>,
    ctx: &BodyCtx<'_>,
    stmt: &AstStmt,
    line: u32,
) -> Result<()> {
    let lo = ctx.lo;
    match stmt {
        AstStmt::CNew { dst, class } => {
            let c = lo.class(class, line)?;
            mb.new_obj(*dst, c);
        }
        AstStmt::CStatic { dst, class } => {
            let c = lo.class(class, line)?;
            mb.load_static(*dst, c);
        }
        AstStmt::CLoad {
            dst,
            base,
            class,
            field,
        } => {
            let c = lo.class(class, line)?;
            let f = lo.field(c, field, line)?;
            mb.load(*dst, *base, f);
        }
        AstStmt::CStore {
            base,
            class,
            field,
            src,
        } => {
            let c = lo.class(class, line)?;
            let f = lo.field(c, field, line)?;
            mb.store(*base, f, *src);
        }
        AstStmt::CFree { base, class, field } => {
            let c = lo.class(class, line)?;
            let f = lo.field(c, field, line)?;
            mb.store_null(*base, f);
        }
        AstStmt::CMove { dst, src } => {
            mb.mov(*dst, *src);
        }
        AstStmt::CNull { dst } => {
            mb.null(*dst);
        }
        AstStmt::CCall {
            dst,
            target,
            recv,
            args,
        } => match target {
            Some((cname, mname)) => {
                let c = lo.class(cname, line)?;
                let m = lo
                    .methods
                    .get(&(c, mname.clone()))
                    .copied()
                    .ok_or_else(|| {
                        ParseError::new(line, format!("unknown method `{cname}.{mname}`"))
                    })?;
                mb.invoke(*dst, m, *recv, args.clone());
            }
            None => {
                mb.invoke_opaque(*dst, *recv, args.clone());
            }
        },
        AstStmt::CReturn { val } => {
            mb.ret(*val);
        }
        AstStmt::CAndroid { op, operand, api } => {
            let l = match operand {
                Some(o) => Some(ctx.resolve_operand(mb, o, line)?),
                None => None,
            };
            let aop = match *op {
                "post" => AndroidOp::Post {
                    runnable: l.expect("post operand"),
                },
                "send" => AndroidOp::SendMessage {
                    handler: l.expect("send operand"),
                },
                "execute" => AndroidOp::Execute {
                    task: l.expect("execute operand"),
                },
                "start" => AndroidOp::Start {
                    thread: l.expect("start operand"),
                },
                "bind" => AndroidOp::BindService {
                    connection: l.expect("bind operand"),
                },
                "unbind" => AndroidOp::UnbindService {
                    connection: l.expect("unbind operand"),
                },
                "register" => AndroidOp::RegisterReceiver {
                    receiver: l.expect("register operand"),
                },
                "unregister" => AndroidOp::UnregisterReceiver {
                    receiver: l.expect("unregister operand"),
                },
                "removeposts" => AndroidOp::RemoveCallbacksAndMessages {
                    handler: l.expect("removeposts operand"),
                },
                "acquire" => AndroidOp::AcquireWakeLock {
                    lock: l.expect("acquire operand"),
                },
                "release" => AndroidOp::ReleaseWakeLock {
                    lock: l.expect("release operand"),
                },
                "show" => AndroidOp::ShowDialog {
                    dialog: l.expect("show operand"),
                },
                "dismiss" => AndroidOp::DismissDialog {
                    dialog: l.expect("dismiss operand"),
                },
                "schedule" => AndroidOp::ScheduleAlarm {
                    target: l.expect("schedule operand"),
                },
                "cancelalarm" => AndroidOp::CancelAlarm {
                    target: l.expect("cancelalarm operand"),
                },
                "startactivity" => AndroidOp::StartActivity {
                    activity: l.expect("startactivity operand"),
                },
                "publish" => AndroidOp::PublishProgress,
                "finish" => AndroidOp::Finish,
                "listen" => AndroidOp::RegisterListener {
                    api: api.expect("listen api"),
                    listener: l.expect("listen operand"),
                },
                other => unreachable!("unhandled android op {other}"),
            };
            mb.android(aop);
        }
        AstStmt::SAssign { path, rhs } => match rhs {
            Rhs::New(cname) => {
                let cls = lo.class(cname, line)?;
                let (base, f) = ctx.resolve_path(mb, path, line)?;
                let t = mb.new_wired(cls);
                mb.store(base, f, t);
            }
            Rhs::Null => {
                let (base, f) = ctx.resolve_path(mb, path, line)?;
                mb.store_null(base, f);
            }
            Rhs::Call(mname) => {
                let m = lo
                    .methods
                    .get(&(ctx.class, mname.clone()))
                    .copied()
                    .ok_or_else(|| ParseError::new(line, format!("unknown method `{mname}`")))?;
                let (base, f) = ctx.resolve_path(mb, path, line)?;
                let t = mb.new_local();
                mb.invoke(Some(t), m, Some(Local::THIS), vec![]);
                mb.store(base, f, t);
            }
            Rhs::Path(src) => {
                let (sbase, sf) = ctx.resolve_path(mb, src, line)?;
                let t = mb.new_local();
                mb.load(t, sbase, sf);
                let (dbase, df) = ctx.resolve_path(mb, path, line)?;
                mb.store(dbase, df, t);
            }
        },
        AstStmt::SUse { path, mode } => {
            let (base, f) = ctx.resolve_path(mb, path, line)?;
            let t = mb.new_local();
            mb.load(t, base, f);
            match mode {
                UseMode::Deref => {
                    mb.deref(t);
                }
                UseMode::Ret => {
                    mb.ret(Some(t));
                }
                UseMode::Arg => {
                    mb.invoke_opaque(None, None, vec![t]);
                }
            }
        }
        AstStmt::SCall { name } => {
            let m = lo
                .methods
                .get(&(ctx.class, name.clone()))
                .copied()
                .ok_or_else(|| ParseError::new(line, format!("unknown method `{name}`")))?;
            mb.invoke(None, m, Some(Local::THIS), vec![]);
        }
        AstStmt::If {
            cond,
            then_blk,
            else_blk,
            line,
        } => {
            let cond = match cond {
                AstCond::Opaque => Cond::Opaque,
                AstCond::Canon {
                    non_null,
                    base,
                    class,
                    field,
                } => {
                    let c = lo.class(class, *line)?;
                    let f = lo.field(c, field, *line)?;
                    if *non_null {
                        Cond::NotNull {
                            base: *base,
                            field: f,
                        }
                    } else {
                        Cond::IsNull {
                            base: *base,
                            field: f,
                        }
                    }
                }
                AstCond::Sugar { non_null, path } => {
                    let (base, f) = ctx.resolve_path(mb, path, *line)?;
                    if *non_null {
                        Cond::NotNull { base, field: f }
                    } else {
                        Cond::IsNull { base, field: f }
                    }
                }
            };
            mb.try_if_cond(
                cond,
                |mb| lower_block(mb, ctx, then_blk),
                |mb| lower_block(mb, ctx, else_blk),
            )?;
        }
        AstStmt::Loop { body } => {
            mb.try_loop(|mb| lower_block(mb, ctx, body))?;
        }
        AstStmt::Sync { lock, body, line } => {
            let lock = ctx.resolve_operand(mb, lock, *line)?;
            mb.try_sync(lock, |mb| lower_block(mb, ctx, body))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Op;
    use crate::print::print_program;

    fn parse_ok(src: &str) -> Program {
        parse_program(src).unwrap_or_else(|e| panic!("{e}\nsource:\n{src}"))
    }

    #[test]
    fn parses_minimal_app() {
        let p = parse_ok("app A\nactivity M { }");
        assert_eq!(p.name(), "A");
        assert_eq!(p.classes().count(), 1);
    }

    #[test]
    fn sugar_lowering_produces_expected_ops() {
        let p = parse_ok(
            r#"
            app A
            activity M {
                field f: M
                cb onCreate { f = new M }
                cb onClick { use f }
                cb onDestroy { f = null }
            }
            "#,
        );
        let ops: Vec<_> = p.instrs().into_iter().map(|(_, i)| i.op.clone()).collect();
        assert!(ops.iter().any(|o| matches!(o, Op::New { .. })));
        assert!(ops.iter().any(|o| matches!(o, Op::Load { .. })));
        assert!(ops.iter().any(|o| matches!(o, Op::StoreNull { .. })));
        assert!(ops.iter().any(|o| matches!(
            o,
            Op::Invoke {
                recv: Some(_),
                callee: crate::instr::Callee::Opaque,
                ..
            }
        )));
    }

    #[test]
    fn guard_sugar() {
        let p = parse_ok(
            r#"
            app A
            activity M {
                field f
                cb onClick { if f != null { use f } else { f = new M } }
            }
            "#,
        );
        let m = p
            .method_by_name(p.class_by_name("M").unwrap(), "onClick")
            .unwrap();
        match &p.method(m).body().0[0] {
            crate::instr::Stmt::If {
                cond: Cond::NotNull { .. },
                then_blk,
                else_blk,
            } => {
                assert_eq!(then_blk.instr_count(), 2);
                assert_eq!(else_blk.instr_count(), 2);
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn android_sugar_wires_outer() {
        let p = parse_ok(
            r#"
            app A
            activity M {
                field f
                cb onClick { post R }
            }
            runnable R in M {
                cb run { use outer.f }
            }
            "#,
        );
        let r = p.class_by_name("R").unwrap();
        let outer = p.field_by_name(r, OUTER_FIELD).expect("$outer pre-created");
        assert_eq!(p.field(outer).owner(), r);
        // post R lowered to: new R; store R.$outer = this; post.
        let m = p.class_by_name("M").unwrap();
        let onclick = p.method(p.method_by_name(m, "onClick").unwrap());
        assert_eq!(onclick.body().instr_count(), 3);
    }

    #[test]
    fn unknown_outer_field_errors() {
        let err = parse_program(
            r#"
            app A
            activity M { cb onClick { post R } }
            runnable R in M { cb run { use outer.missing } }
            "#,
        )
        .unwrap_err();
        assert!(err.message().contains("unknown field"), "{err}");
    }

    #[test]
    fn cross_class_static_access() {
        let p = parse_ok(
            r#"
            app A
            activity M { field f }
            service S { cb onStartCommand { M.f = null } }
            "#,
        );
        let ops: Vec<_> = p.instrs().into_iter().map(|(_, i)| i.op.clone()).collect();
        assert!(ops.iter().any(|o| matches!(o, Op::LoadStatic { .. })));
        assert!(ops.iter().any(|o| matches!(o, Op::StoreNull { .. })));
    }

    #[test]
    fn canonical_round_trip() {
        let src = r#"
            app RT
            activity Main {
                field svc: Helper
                cb onCreate { svc = new Helper  bind Conn }
                cb onClick {
                    if svc != null { use svc }
                    post Work
                }
                cb onDestroy { svc = null }
                fn getSvc { useret svc }
            }
            class Helper { }
            connection Conn in Main {
                cb onServiceConnected { outer.svc = new Helper }
                cb onServiceDisconnected { outer.svc = null }
            }
            runnable Work in Main {
                cb run { use outer.svc }
            }
            manifest { main Main }
        "#;
        let p1 = parse_ok(src);
        let printed1 = print_program(&p1);
        let p2 = parse_ok(&printed1);
        assert_eq!(p1, p2, "parse(print(p)) == p\n{printed1}");
        assert_eq!(print_program(&p2), printed1);
    }

    #[test]
    fn lowering_errors_carry_statement_lines() {
        let err =
            parse_program("app A\nactivity M {\n  cb onClick {\n    use missing\n  }\n}")
                .unwrap_err();
        assert_eq!(err.line(), 4, "{err}");
        let err = parse_program(
            "app A\nactivity M {\n  cb onClick {\n    t1 = new Nope\n  }\n}",
        )
        .unwrap_err();
        assert_eq!(err.line(), 4, "{err}");
        assert!(err.message().contains("unknown class"), "{err}");
    }

    #[test]
    fn errors_carry_lines() {
        let err =
            parse_program("app A\nactivity M {\n  field f\n  cb bogusCallback { }\n}").unwrap_err();
        assert_eq!(err.line(), 4);
        assert!(err.message().contains("not a known callback"));
    }

    #[test]
    fn sync_and_loop_parse() {
        let p = parse_ok(
            r#"
            app A
            activity M {
                field f
                field lock
                cb onClick { sync lock { use f } loop { f = null } }
            }
            "#,
        );
        let m = p
            .method_by_name(p.class_by_name("M").unwrap(), "onClick")
            .unwrap();
        let body = &p.method(m).body().0;
        // load lock; sync; loop
        assert!(body
            .iter()
            .any(|s| matches!(s, crate::instr::Stmt::Sync { .. })));
        assert!(body
            .iter()
            .any(|s| matches!(s, crate::instr::Stmt::Loop { .. })));
    }

    #[test]
    fn asynctask_shape() {
        let p = parse_ok(
            r#"
            app A
            activity M {
                field data
                cb onClick { execute T }
            }
            asynctask T in M {
                cb onPreExecute { outer.data = new M }
                cb doInBackground { publish }
                cb onProgressUpdate { use outer.data }
                cb onPostExecute { outer.data = null }
            }
            "#,
        );
        let t = p.class_by_name("T").unwrap();
        assert_eq!(p.class(t).methods().len(), 4);
    }

    #[test]
    fn opaque_calls_and_params() {
        let p = parse_ok(
            r#"
            app A
            class C {
                fn helper(params=2, locals=5) {
                    t3 = move t1
                    call opaque(recv=t3, t2)
                    return t3
                }
            }
            "#,
        );
        let c = p.class_by_name("C").unwrap();
        let m = p.method(p.method_by_name(c, "helper").unwrap());
        assert_eq!(m.param_count(), 2);
        assert_eq!(m.num_locals(), 5);
    }

    #[test]
    fn looper_clause_parses_and_round_trips() {
        let p = parse_ok(
            r#"
            app L
            activity M { cb onClick { send H } }
            looperthread Worker { }
            handler H in M on Worker { cb handleMessage { } }
            "#,
        );
        let worker = p.class_by_name("Worker").unwrap();
        let h = p.class_by_name("H").unwrap();
        assert_eq!(p.class(h).looper(), Some(worker));
        let printed = print_program(&p);
        assert!(printed.contains("handler H in M on Worker {"), "{printed}");
        assert_eq!(parse_ok(&printed), p);
    }

    #[test]
    fn looper_target_must_be_looperthread() {
        let err = parse_program(
            "app L
activity M { }
handler H on M { cb handleMessage { } }",
        )
        .unwrap_err();
        assert!(err.message().contains("looperthread"), "{err}");
    }

    #[test]
    fn wake_lock_ops_parse_and_round_trip() {
        let p = parse_ok(
            r#"
            app W
            activity M {
                field wl: M
                cb onResume { t1 = load this M.wl  acquire t1 }
                cb onPause { t1 = load this M.wl  release t1 }
            }
            "#,
        );
        let printed = print_program(&p);
        assert!(printed.contains("acquire t1"), "{printed}");
        assert!(printed.contains("release t1"), "{printed}");
        assert_eq!(parse_ok(&printed), p);
    }

    #[test]
    fn predicate_ops_parse_and_round_trip() {
        let p = parse_ok(
            r#"
            app P
            activity M {
                field dlg: D
                field rcv: R
                cb onCreate { show dlg  schedule rcv  startactivity B }
                cb onPause { dismiss dlg  cancelalarm rcv }
            }
            dialog D in M { cb onShow { } }
            receiver R { cb onAlarm { } }
            activity B { }
            "#,
        );
        let printed = print_program(&p);
        for op in ["show ", "dismiss ", "schedule ", "cancelalarm ", "startactivity "] {
            assert!(printed.contains(op), "missing {op:?} in:\n{printed}");
        }
        assert_eq!(parse_ok(&printed), p);
    }

    #[test]
    fn launch_is_sugar_for_startactivity() {
        let p = parse_ok(
            r#"
            app L
            activity M { cb onClick { launch B } }
            activity B { }
            "#,
        );
        let printed = print_program(&p);
        assert!(printed.contains("startactivity"), "{printed}");
        assert_eq!(parse_ok(&printed), p);
    }

    #[test]
    fn manifest_receiver() {
        let p = parse_ok(
            r#"
            app A
            activity M { }
            receiver R { cb onReceive { } }
            manifest { main M receiver R }
            "#,
        );
        assert_eq!(p.manifest().declared_receivers().len(), 1);
        assert!(p.manifest().main_activity().is_some());
    }
}
