//! The program model: arenas of classes, fields, and methods, plus the
//! manifest.

use crate::ids::{ClassId, FieldId, InstrId, Local, MethodId};
use crate::instr::{Block, Instr, Op};
use nadroid_android::{CallbackKind, ClassRole};

/// The name of the implicit field that links a framework-helper object
/// (Runnable, Handler, AsyncTask, Thread, Listener, ...) back to the
/// instance of the class that created it — the IR's model of Java's
/// captured outer-class reference.
pub const OUTER_FIELD: &str = "$outer";

/// A class of the analyzed application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Class {
    pub(crate) name: String,
    pub(crate) role: ClassRole,
    pub(crate) outer: Option<ClassId>,
    pub(crate) looper: Option<ClassId>,
    pub(crate) fields: Vec<FieldId>,
    pub(crate) methods: Vec<MethodId>,
}

impl Class {
    /// The class name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The framework role of the class.
    #[must_use]
    pub fn role(&self) -> ClassRole {
        self.role
    }

    /// The lexically enclosing class, if this is an inner class.
    ///
    /// DEvA's read/write-set analysis is restricted to a class and its
    /// inner classes; this link is what makes that restriction expressible.
    #[must_use]
    pub fn outer(&self) -> Option<ClassId> {
        self.outer
    }

    /// The custom looper this class's callbacks run on, when declared
    /// (`handler H in M on Worker`): a `LooperThread` class. `None` means
    /// the main looper.
    #[must_use]
    pub fn looper(&self) -> Option<ClassId> {
        self.looper
    }

    /// Ids of the fields declared by this class.
    #[must_use]
    pub fn fields(&self) -> &[FieldId] {
        &self.fields
    }

    /// Ids of the methods declared by this class.
    #[must_use]
    pub fn methods(&self) -> &[MethodId] {
        &self.methods
    }
}

/// A reference-typed instance field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub(crate) name: String,
    pub(crate) owner: ClassId,
    pub(crate) ty: Option<ClassId>,
}

impl Field {
    /// The field name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The class declaring the field.
    #[must_use]
    pub fn owner(&self) -> ClassId {
        self.owner
    }

    /// The declared reference type, when it is an application class.
    #[must_use]
    pub fn ty(&self) -> Option<ClassId> {
        self.ty
    }
}

/// A method body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Method {
    pub(crate) name: String,
    pub(crate) owner: ClassId,
    pub(crate) callback: Option<CallbackKind>,
    pub(crate) param_count: u16,
    pub(crate) num_locals: u16,
    pub(crate) body: Block,
}

impl Method {
    /// The method name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declaring class.
    #[must_use]
    pub fn owner(&self) -> ClassId {
        self.owner
    }

    /// The callback kind, if this method is a framework callback.
    #[must_use]
    pub fn callback(&self) -> Option<CallbackKind> {
        self.callback
    }

    /// Number of reference parameters (locals `1..=param_count`).
    #[must_use]
    pub fn param_count(&self) -> u16 {
        self.param_count
    }

    /// Total number of local slots used by the body.
    #[must_use]
    pub fn num_locals(&self) -> u16 {
        self.num_locals
    }

    /// The structured body.
    #[must_use]
    pub fn body(&self) -> &Block {
        &self.body
    }

    /// If the body is exactly `t = this.f; return t`, the field `f`.
    ///
    /// Getter detection feeds the unsound maybe-allocation (MA) and
    /// used-for-return (UR) filters.
    #[must_use]
    pub fn getter_of(&self) -> Option<FieldId> {
        let stmts = &self.body.0;
        if stmts.len() != 2 {
            return None;
        }
        let (crate::instr::Stmt::Instr(a), crate::instr::Stmt::Instr(b)) = (&stmts[0], &stmts[1])
        else {
            return None;
        };
        match (&a.op, &b.op) {
            (
                Op::Load {
                    dst,
                    base: Local::THIS,
                    field,
                },
                Op::Return { val: Some(v) },
            ) if v == dst => Some(*field),
            _ => None,
        }
    }
}

/// The application manifest: declared components and the main activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    pub(crate) main_activity: Option<ClassId>,
    pub(crate) declared_receivers: Vec<ClassId>,
}

impl Manifest {
    /// The launcher activity, if declared.
    #[must_use]
    pub fn main_activity(&self) -> Option<ClassId> {
        self.main_activity
    }

    /// Receivers declared in the manifest (armed from process start,
    /// without an imperative `registerReceiver`).
    #[must_use]
    pub fn declared_receivers(&self) -> &[ClassId] {
        &self.declared_receivers
    }
}

/// A complete application model.
///
/// Construct programs with [`crate::ProgramBuilder`] or by parsing the
/// textual DSL with [`crate::parse_program`].
///
/// # Example
///
/// ```
/// use nadroid_ir::parse_program;
///
/// let program = parse_program(
///     r#"
///     app Demo
///     activity Main {
///         field svc: Main
///         onCreate { svc = new Main }
///         onClick  { use svc }
///         onDestroy { svc = null }
///     }
///     "#,
/// )?;
/// assert_eq!(program.name(), "Demo");
/// assert_eq!(program.classes().count(), 1);
/// # Ok::<(), nadroid_ir::ParseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    pub(crate) name: String,
    pub(crate) classes: Vec<Class>,
    pub(crate) fields: Vec<Field>,
    pub(crate) methods: Vec<Method>,
    pub(crate) manifest: Manifest,
    /// Map from instruction id to its enclosing method.
    pub(crate) instr_owner: Vec<MethodId>,
}

impl Program {
    /// The application name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The manifest.
    #[must_use]
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Look up a class by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    #[must_use]
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.index()]
    }

    /// Look up a field by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    #[must_use]
    pub fn field(&self, id: FieldId) -> &Field {
        &self.fields[id.index()]
    }

    /// Look up a method by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    #[must_use]
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.index()]
    }

    /// Iterate over all class ids.
    pub fn class_ids(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.classes.len() as u32).map(ClassId::from_raw)
    }

    /// Iterate over all classes with their ids.
    pub fn classes(&self) -> impl Iterator<Item = (ClassId, &Class)> + '_ {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, c)| (ClassId::from_raw(i as u32), c))
    }

    /// Iterate over all field ids.
    pub fn field_ids(&self) -> impl Iterator<Item = FieldId> + '_ {
        (0..self.fields.len() as u32).map(FieldId::from_raw)
    }

    /// Iterate over all fields with their ids.
    pub fn fields(&self) -> impl Iterator<Item = (FieldId, &Field)> + '_ {
        self.fields
            .iter()
            .enumerate()
            .map(|(i, f)| (FieldId::from_raw(i as u32), f))
    }

    /// Iterate over all method ids.
    pub fn method_ids(&self) -> impl Iterator<Item = MethodId> + '_ {
        (0..self.methods.len() as u32).map(MethodId::from_raw)
    }

    /// Iterate over all methods with their ids.
    pub fn methods(&self) -> impl Iterator<Item = (MethodId, &Method)> + '_ {
        self.methods
            .iter()
            .enumerate()
            .map(|(i, m)| (MethodId::from_raw(i as u32), m))
    }

    /// Total number of instructions in the program.
    #[must_use]
    pub fn instr_count(&self) -> usize {
        self.instr_owner.len()
    }

    /// The method containing an instruction.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    #[must_use]
    pub fn instr_method(&self, id: InstrId) -> MethodId {
        self.instr_owner[id.index()]
    }

    /// Find a class by name.
    #[must_use]
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.classes()
            .find(|(_, c)| c.name == name)
            .map(|(id, _)| id)
    }

    /// Find a field by owner class and name.
    #[must_use]
    pub fn field_by_name(&self, owner: ClassId, name: &str) -> Option<FieldId> {
        self.class(owner)
            .fields
            .iter()
            .copied()
            .find(|&f| self.field(f).name == name)
    }

    /// Find a method by owner class and name.
    #[must_use]
    pub fn method_by_name(&self, owner: ClassId, name: &str) -> Option<MethodId> {
        self.class(owner)
            .methods
            .iter()
            .copied()
            .find(|&m| self.method(m).name == name)
    }

    /// Find the instruction with the given id by walking its method body.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    #[must_use]
    pub fn instr(&self, id: InstrId) -> &Instr {
        let m = self.instr_method(id);
        let mut found = None;
        self.method(m).body.for_each_instr(&mut |i| {
            if i.id == id {
                found = Some(i);
            }
        });
        found.expect("instr_owner table inconsistent with method body")
    }

    /// Iterate over every instruction in the program together with its
    /// enclosing method, in (method, program-order) order.
    pub fn instrs(&self) -> Vec<(MethodId, &Instr)> {
        let mut out = Vec::with_capacity(self.instr_count());
        for (mid, m) in self.methods() {
            m.body.for_each_instr(&mut |i| out.push((mid, i)));
        }
        out
    }

    /// The top-level class for DEvA's *intra-class* scope: follows `outer`
    /// links to the outermost enclosing class.
    #[must_use]
    pub fn outermost_class(&self, mut id: ClassId) -> ClassId {
        while let Some(o) = self.class(id).outer {
            id = o;
        }
        id
    }

    /// A printable, human-oriented location string for an instruction:
    /// `Class.method#instr`.
    #[must_use]
    pub fn describe_instr(&self, id: InstrId) -> String {
        let m = self.instr_method(id);
        let method = self.method(m);
        let class = self.class(method.owner);
        format!("{}.{}#{}", class.name, method.name, id.raw())
    }

    /// Whether a component is reachable from the manifest: it is the
    /// main activity, a declared receiver, referenced from another
    /// class's code, or the program declares no manifest at all (then
    /// everything is assumed reachable). Non-components are always
    /// reachable. This drives both the §8.5 "not reachable"
    /// false-positive bucket and the dynamic interpreter's event
    /// enablement.
    #[must_use]
    pub fn component_reachable(&self, component: ClassId) -> bool {
        let Some(main) = self.manifest.main_activity else {
            return true;
        };
        if component == main || self.manifest.declared_receivers.contains(&component) {
            return true;
        }
        if !self.class(component).role().is_component() {
            return true;
        }
        for (mid, i) in self.instrs() {
            let from = self.outermost_class(self.method(mid).owner);
            if from == component {
                continue;
            }
            let references = match i.op {
                crate::instr::Op::New { class, .. }
                | crate::instr::Op::LoadStatic { class, .. } => class == component,
                _ => false,
            };
            if references {
                return true;
            }
        }
        false
    }

    /// Approximate source-lines-of-code metric: the number of non-blank
    /// lines of the canonical printed form (used for the LOC column of
    /// Table 1).
    #[must_use]
    pub fn loc(&self) -> usize {
        crate::print::print_program(self)
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn tiny() -> Program {
        let mut b = ProgramBuilder::new("Tiny");
        let act = b.add_class("Main", ClassRole::Activity);
        let f = b.add_field(act, "svc", None);
        let mut m = b.method(act, "onCreate");
        let t = m.new_local();
        m.new_obj(t, act);
        m.store(Local::THIS, f, t);
        m.finish_callback(CallbackKind::OnCreate);
        b.set_main_activity(act);
        b.build()
    }

    #[test]
    fn lookups_by_name() {
        let p = tiny();
        let act = p.class_by_name("Main").unwrap();
        assert_eq!(p.class(act).name(), "Main");
        assert!(p.field_by_name(act, "svc").is_some());
        assert!(p.method_by_name(act, "onCreate").is_some());
        assert!(p.class_by_name("Nope").is_none());
    }

    #[test]
    fn instr_owner_table() {
        let p = tiny();
        assert_eq!(p.instr_count(), 2);
        let act = p.class_by_name("Main").unwrap();
        let m = p.method_by_name(act, "onCreate").unwrap();
        for (mid, i) in p.instrs() {
            assert_eq!(mid, m);
            assert_eq!(p.instr_method(i.id), m);
            assert_eq!(p.instr(i.id), i);
        }
    }

    #[test]
    fn describe_instr_is_readable() {
        let p = tiny();
        let desc = p.describe_instr(InstrId::from_raw(0));
        assert!(desc.starts_with("Main.onCreate#"), "{desc}");
    }

    #[test]
    fn getter_detection() {
        let mut b = ProgramBuilder::new("G");
        let c = b.add_class("C", ClassRole::Plain);
        let f = b.add_field(c, "x", None);
        let mut m = b.method(c, "getX");
        let t = m.new_local();
        m.load(t, Local::THIS, f);
        m.ret(Some(t));
        let getter = m.finish();
        let mut m2 = b.method(c, "notGetter");
        let t2 = m2.new_local();
        m2.load(t2, Local::THIS, f);
        m2.deref(t2);
        m2.ret(None);
        let other = m2.finish();
        let p = b.build();
        assert_eq!(p.method(getter).getter_of(), Some(f));
        assert_eq!(p.method(other).getter_of(), None);
    }

    #[test]
    fn outermost_follows_chain() {
        let mut b = ProgramBuilder::new("O");
        let outer = b.add_class("Outer", ClassRole::Activity);
        let inner = b.add_inner_class("Inner", ClassRole::Runnable, outer);
        let inner2 = b.add_inner_class("Inner2", ClassRole::Runnable, inner);
        let p = b.build();
        assert_eq!(p.outermost_class(inner2), outer);
        assert_eq!(p.outermost_class(outer), outer);
    }
}
