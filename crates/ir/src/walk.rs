//! Context-carrying traversal of method bodies.
//!
//! Filters need to know, for each instruction, the structured context it
//! executes under: which null-check guards dominate it and which locks are
//! held. [`walk_method`] visits every instruction of a method in program
//! order with that context, and [`InstrCtx`] captures it.

use crate::ids::{FieldId, Local, MethodId};
use crate::instr::{Block, Cond, Instr, Stmt};
use crate::program::Program;

/// A null-check guard active at an instruction: the branch taken implies
/// `base.field` was (non-)null when checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Guard {
    /// Local holding the base object of the checked field.
    pub base: Local,
    /// The checked field.
    pub field: FieldId,
    /// True in the `!= null` arm, false in the `== null` arm.
    pub non_null: bool,
}

/// The structured context of one instruction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstrCtx {
    /// Null-check guards dominating the instruction, outermost first.
    pub guards: Vec<Guard>,
    /// Locals holding the lock objects of enclosing `sync` regions,
    /// outermost first.
    pub locks: Vec<Local>,
    /// Whether the instruction sits inside at least one loop body.
    pub in_loop: bool,
    /// Number of enclosing opaque-condition branches (a non-zero depth
    /// marks path-insensitivity territory, the top false-positive source
    /// in §8.5).
    pub opaque_depth: u32,
}

impl InstrCtx {
    /// Whether a non-null guard on `(base, field)` dominates the
    /// instruction.
    #[must_use]
    pub fn guarded_non_null(&self, base: Local, field: FieldId) -> bool {
        self.guards
            .iter()
            .any(|g| g.non_null && g.base == base && g.field == field)
    }
}

/// Visit every instruction of `method` in program order, passing its
/// structured context.
pub fn walk_method<'p>(
    program: &'p Program,
    method: MethodId,
    f: &mut impl FnMut(&'p Instr, &InstrCtx),
) {
    let mut ctx = InstrCtx::default();
    walk_block(program.method(method).body(), &mut ctx, f);
}

fn walk_block<'b>(block: &'b Block, ctx: &mut InstrCtx, f: &mut impl FnMut(&'b Instr, &InstrCtx)) {
    for stmt in block {
        match stmt {
            Stmt::Instr(i) => f(i, ctx),
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let pushed = match *cond {
                    Cond::NotNull { base, field } => {
                        ctx.guards.push(Guard {
                            base,
                            field,
                            non_null: true,
                        });
                        true
                    }
                    Cond::IsNull { base, field } => {
                        ctx.guards.push(Guard {
                            base,
                            field,
                            non_null: false,
                        });
                        true
                    }
                    Cond::Opaque => {
                        ctx.opaque_depth += 1;
                        false
                    }
                };
                walk_block(then_blk, ctx, f);
                if pushed {
                    let g = ctx.guards.last_mut().expect("guard just pushed");
                    g.non_null = !g.non_null;
                }
                walk_block(else_blk, ctx, f);
                if pushed {
                    ctx.guards.pop();
                } else if matches!(cond, Cond::Opaque) {
                    ctx.opaque_depth -= 1;
                }
            }
            Stmt::Loop { body } => {
                let was = ctx.in_loop;
                ctx.in_loop = true;
                walk_block(body, ctx, f);
                ctx.in_loop = was;
            }
            Stmt::Sync { lock, body } => {
                ctx.locks.push(*lock);
                walk_block(body, ctx, f);
                ctx.locks.pop();
            }
        }
    }
}

/// Collect every instruction of `method` with a clone of its context.
#[must_use]
pub fn instrs_with_ctx(program: &Program, method: MethodId) -> Vec<(Instr, InstrCtx)> {
    let mut out = Vec::new();
    walk_method(program, method, &mut |i, ctx| {
        out.push((i.clone(), ctx.clone()))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::Op;
    use nadroid_android::ClassRole;

    #[test]
    fn guards_and_locks_are_tracked() {
        let mut b = ProgramBuilder::new("W");
        let c = b.add_class("C", ClassRole::Activity);
        let f = b.add_field(c, "x", None);
        let mut m = b.method(c, "m");
        let lock = m.new_local();
        m.if_not_null(Local::THIS, f, |m| {
            m.use_field(f);
        });
        m.sync(lock, |m| {
            m.free_field(f);
        });
        let mid = m.finish();
        let p = b.build();

        let all = instrs_with_ctx(&p, mid);
        // load, deref inside the guard; free inside the sync.
        let (load, load_ctx) = all
            .iter()
            .find(|(i, _)| matches!(i.op, Op::Load { .. }))
            .expect("load");
        assert!(
            load_ctx.guarded_non_null(Local::THIS, f),
            "load guarded: {load:?}"
        );
        assert!(load_ctx.locks.is_empty());

        let (_, free_ctx) = all
            .iter()
            .find(|(i, _)| matches!(i.op, Op::StoreNull { .. }))
            .expect("free");
        assert!(!free_ctx.guarded_non_null(Local::THIS, f));
        assert_eq!(free_ctx.locks, vec![lock]);
    }

    #[test]
    fn else_arm_sees_negated_guard() {
        let mut b = ProgramBuilder::new("W");
        let c = b.add_class("C", ClassRole::Activity);
        let f = b.add_field(c, "x", None);
        let mut m = b.method(c, "m");
        m.if_cond(
            Cond::NotNull {
                base: Local::THIS,
                field: f,
            },
            |m| {
                m.use_field(f);
            },
            |m| {
                m.free_field(f);
            },
        );
        let mid = m.finish();
        let p = b.build();

        let all = instrs_with_ctx(&p, mid);
        let (_, then_ctx) = all
            .iter()
            .find(|(i, _)| matches!(i.op, Op::Load { .. }))
            .unwrap();
        assert!(then_ctx.guarded_non_null(Local::THIS, f));
        let (_, else_ctx) = all
            .iter()
            .find(|(i, _)| matches!(i.op, Op::StoreNull { .. }))
            .unwrap();
        assert!(!else_ctx.guarded_non_null(Local::THIS, f));
        assert_eq!(else_ctx.guards.len(), 1);
        assert!(!else_ctx.guards[0].non_null);
    }

    #[test]
    fn loop_flag() {
        let mut b = ProgramBuilder::new("W");
        let c = b.add_class("C", ClassRole::Activity);
        let f = b.add_field(c, "x", None);
        let mut m = b.method(c, "m");
        m.loop_(|m| {
            m.use_field(f);
        });
        m.free_field(f);
        let mid = m.finish();
        let p = b.build();
        let all = instrs_with_ctx(&p, mid);
        let (_, in_loop) = all
            .iter()
            .find(|(i, _)| matches!(i.op, Op::Load { .. }))
            .unwrap();
        assert!(in_loop.in_loop);
        let (_, outside) = all
            .iter()
            .find(|(i, _)| matches!(i.op, Op::StoreNull { .. }))
            .unwrap();
        assert!(!outside.in_loop);
    }
}
