//! Programmatic construction of IR programs.
//!
//! [`ProgramBuilder`] owns the arenas; [`MethodBuilder`] emits instructions
//! into one method body, with helpers for the common Android patterns
//! (allocate-into-field, use, free, post, bind, spawn, ...).
//!
//! # Example
//!
//! ```
//! use nadroid_ir::{ProgramBuilder, Local};
//! use nadroid_android::{CallbackKind, ClassRole};
//!
//! let mut b = ProgramBuilder::new("ConnectBotMini");
//! let act = b.add_class("ConsoleActivity", ClassRole::Activity);
//! let bound = b.add_field(act, "bound", None);
//!
//! let mut m = b.method(act, "onServiceDisconnected");
//! m.free_field(bound);
//! m.finish_callback(CallbackKind::OnServiceDisconnected);
//!
//! let mut m = b.method(act, "onCreateContextMenu");
//! m.use_field(bound);
//! m.finish_callback(CallbackKind::OnCreateContextMenu);
//!
//! let program = b.build();
//! assert_eq!(program.instr_count(), 3); // free, load, deref
//! ```

use crate::ids::{ClassId, FieldId, InstrId, Local, MethodId};
use crate::instr::{AndroidOp, Block, Callee, Cond, Instr, Op, Stmt};
use crate::program::{Class, Field, Manifest, Method, Program, OUTER_FIELD};
use nadroid_android::listeners::RegistrationApi;
use nadroid_android::{CallbackKind, ClassRole};

/// Incremental builder for a [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    classes: Vec<Class>,
    fields: Vec<Field>,
    methods: Vec<MethodSlot>,
    manifest: Manifest,
    next_instr: u32,
    instr_owner: Vec<MethodId>,
}

/// A method arena slot: declared (id reserved, body pending) or built.
#[derive(Debug)]
enum MethodSlot {
    Declared { name: String, owner: ClassId },
    Built(Method),
}

impl ProgramBuilder {
    /// Start building a program with the given application name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Add a top-level class.
    ///
    /// # Panics
    ///
    /// Panics if a class with the same name already exists.
    pub fn add_class(&mut self, name: impl Into<String>, role: ClassRole) -> ClassId {
        self.add_class_inner(name.into(), role, None)
    }

    /// Add an inner class lexically nested in `outer`.
    ///
    /// # Panics
    ///
    /// Panics if a class with the same name already exists or `outer` is
    /// not a class of this builder.
    pub fn add_inner_class(
        &mut self,
        name: impl Into<String>,
        role: ClassRole,
        outer: ClassId,
    ) -> ClassId {
        assert!(
            outer.index() < self.classes.len(),
            "unknown outer class {outer}"
        );
        self.add_class_inner(name.into(), role, Some(outer))
    }

    fn add_class_inner(
        &mut self,
        name: String,
        role: ClassRole,
        outer: Option<ClassId>,
    ) -> ClassId {
        assert!(
            !self.classes.iter().any(|c| c.name == name),
            "duplicate class name {name:?}"
        );
        let id = ClassId::from_raw(self.classes.len() as u32);
        self.classes.push(Class {
            name,
            role,
            outer,
            looper: None,
            fields: Vec::new(),
            methods: Vec::new(),
        });
        id
    }

    /// Set the lexical `outer` link of an existing class (used by the
    /// parser, which may see an inner class before its outer).
    ///
    /// # Panics
    ///
    /// Panics if either id is unknown.
    pub fn set_outer(&mut self, inner: ClassId, outer: ClassId) {
        assert!(inner.index() < self.classes.len(), "unknown class {inner}");
        assert!(outer.index() < self.classes.len(), "unknown class {outer}");
        self.classes[inner.index()].outer = Some(outer);
    }

    /// Declare that a class's callbacks run on a custom looper — a class
    /// with the `LooperThread` role (Android's `HandlerThread`).
    ///
    /// # Panics
    ///
    /// Panics if either id is unknown or `looper` is not a `LooperThread`.
    pub fn set_looper(&mut self, class: ClassId, looper: ClassId) {
        assert!(class.index() < self.classes.len(), "unknown class {class}");
        assert!(
            looper.index() < self.classes.len(),
            "unknown class {looper}"
        );
        assert_eq!(
            self.classes[looper.index()].role,
            ClassRole::LooperThread,
            "`on` target must be a looperthread class"
        );
        self.classes[class.index()].looper = Some(looper);
    }

    /// Add a reference-typed field to a class.
    ///
    /// # Panics
    ///
    /// Panics if the owner is unknown or already declares a field with the
    /// same name.
    pub fn add_field(
        &mut self,
        owner: ClassId,
        name: impl Into<String>,
        ty: Option<ClassId>,
    ) -> FieldId {
        let name = name.into();
        assert!(owner.index() < self.classes.len(), "unknown class {owner}");
        assert!(
            !self.classes[owner.index()]
                .fields
                .iter()
                .any(|&f| self.fields[f.index()].name == name),
            "duplicate field {name:?} on class {owner}"
        );
        let id = FieldId::from_raw(self.fields.len() as u32);
        self.fields.push(Field { name, owner, ty });
        self.classes[owner.index()].fields.push(id);
        id
    }

    /// Get or create the implicit `$outer` back-reference field of a class.
    pub fn outer_field(&mut self, class: ClassId) -> FieldId {
        if let Some(f) = self.classes.get(class.index()).and_then(|c| {
            c.fields
                .iter()
                .copied()
                .find(|&f| self.fields[f.index()].name == OUTER_FIELD)
        }) {
            return f;
        }
        self.add_field(class, OUTER_FIELD, None)
    }

    /// Reserve a method id on `owner` without building its body yet, so
    /// call sites in other methods can reference it (the parser uses this
    /// for forward references). Build the body later with
    /// [`ProgramBuilder::body`].
    ///
    /// # Panics
    ///
    /// Panics if the owner is unknown or already declares a method with
    /// the same name.
    pub fn declare_method(&mut self, owner: ClassId, name: impl Into<String>) -> MethodId {
        let name = name.into();
        assert!(owner.index() < self.classes.len(), "unknown class {owner}");
        assert!(
            self.classes[owner.index()]
                .methods
                .iter()
                .all(|&m| self.method_name(m) != name),
            "duplicate method {name:?} on class {owner}"
        );
        let id = MethodId::from_raw(self.methods.len() as u32);
        self.methods.push(MethodSlot::Declared { name, owner });
        self.classes[owner.index()].methods.push(id);
        id
    }

    fn method_name(&self, id: MethodId) -> &str {
        match &self.methods[id.index()] {
            MethodSlot::Declared { name, .. } => name,
            MethodSlot::Built(m) => &m.name,
        }
    }

    /// Begin building the body of a previously declared method.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown or the body was already built.
    pub fn body(&mut self, id: MethodId) -> MethodBuilder<'_> {
        let MethodSlot::Declared { owner, .. } = self.methods[id.index()] else {
            panic!("method {id} already has a body");
        };
        MethodBuilder {
            program: self,
            id,
            owner,
            param_count: 0,
            next_local: 1,
            blocks: vec![Vec::new()],
        }
    }

    /// Declare a method and begin building its body in one step. The
    /// returned [`MethodBuilder`] must be finished with
    /// [`MethodBuilder::finish`] or [`MethodBuilder::finish_callback`].
    ///
    /// # Panics
    ///
    /// Panics if the owner is unknown or already declares a method with
    /// the same name.
    pub fn method(&mut self, owner: ClassId, name: impl Into<String>) -> MethodBuilder<'_> {
        let id = self.declare_method(owner, name);
        self.body(id)
    }

    /// Declare the launcher activity in the manifest.
    ///
    /// # Panics
    ///
    /// Panics if `activity` is unknown or not an Activity.
    pub fn set_main_activity(&mut self, activity: ClassId) {
        assert!(
            activity.index() < self.classes.len(),
            "unknown class {activity}"
        );
        assert_eq!(
            self.classes[activity.index()].role,
            ClassRole::Activity,
            "main activity must have the Activity role"
        );
        self.manifest.main_activity = Some(activity);
    }

    /// Declare a receiver in the manifest (armed without imperative
    /// registration).
    ///
    /// # Panics
    ///
    /// Panics if `receiver` is unknown or not a Receiver.
    pub fn declare_receiver(&mut self, receiver: ClassId) {
        assert!(
            receiver.index() < self.classes.len(),
            "unknown class {receiver}"
        );
        assert_eq!(
            self.classes[receiver.index()].role,
            ClassRole::Receiver,
            "declared receiver must have the Receiver role"
        );
        self.manifest.declared_receivers.push(receiver);
    }

    /// Finish and return the program.
    ///
    /// # Panics
    ///
    /// Panics if any started method was not finished.
    #[must_use]
    pub fn build(self) -> Program {
        let methods: Vec<Method> = self
            .methods
            .into_iter()
            .enumerate()
            .map(|(i, slot)| match slot {
                MethodSlot::Built(m) => m,
                MethodSlot::Declared { name, .. } => {
                    panic!("method m{i} ({name:?}) was declared but never built")
                }
            })
            .collect();
        Program {
            name: self.name,
            classes: self.classes,
            fields: self.fields,
            methods,
            manifest: self.manifest,
            instr_owner: self.instr_owner,
        }
    }

    fn alloc_instr(&mut self, owner: MethodId) -> InstrId {
        let id = InstrId::from_raw(self.next_instr);
        self.next_instr += 1;
        self.instr_owner.push(owner);
        id
    }
}

/// Builder for one method body. Created by [`ProgramBuilder::method`].
#[derive(Debug)]
pub struct MethodBuilder<'p> {
    program: &'p mut ProgramBuilder,
    id: MethodId,
    owner: ClassId,
    param_count: u16,
    next_local: u16,
    /// Stack of open blocks; the innermost is last.
    blocks: Vec<Vec<Stmt>>,
}

impl<'p> MethodBuilder<'p> {
    /// The id the method will have once finished.
    #[must_use]
    pub fn id(&self) -> MethodId {
        self.id
    }

    /// The declaring class.
    #[must_use]
    pub fn owner(&self) -> ClassId {
        self.owner
    }

    /// Declare `n` reference parameters (must be called before emitting
    /// instructions that allocate temporaries). Returns their locals.
    ///
    /// # Panics
    ///
    /// Panics if temporaries were already allocated.
    pub fn params(&mut self, n: u16) -> Vec<Local> {
        assert_eq!(self.next_local, 1, "declare parameters before temporaries");
        self.param_count = n;
        self.next_local = n + 1;
        (1..=n).map(Local).collect()
    }

    /// Allocate a fresh temporary local.
    pub fn new_local(&mut self) -> Local {
        let l = Local(self.next_local);
        self.next_local += 1;
        l
    }

    fn emit(&mut self, op: Op) -> InstrId {
        // Keep the local count ahead of every referenced slot, so bodies
        // written with explicit `tN` locals (the parser's canonical form)
        // still produce a consistent `num_locals`.
        for l in op.def().into_iter().chain(op.uses()) {
            self.next_local = self.next_local.max(l.0 + 1);
        }
        let id = self.program.alloc_instr(self.id);
        self.blocks
            .last_mut()
            .expect("block stack is never empty")
            .push(Stmt::Instr(Instr { id, op }));
        id
    }

    fn note_local(&mut self, l: Local) {
        self.next_local = self.next_local.max(l.0 + 1);
    }

    // --- raw instruction emitters -----------------------------------------

    /// Emit `dst = new class`.
    pub fn new_obj(&mut self, dst: Local, class: ClassId) -> InstrId {
        self.emit(Op::New { dst, class })
    }

    /// Emit `dst = static instance of component class`.
    pub fn load_static(&mut self, dst: Local, class: ClassId) -> InstrId {
        self.emit(Op::LoadStatic { dst, class })
    }

    /// Emit `dst = base.field` (a use).
    pub fn load(&mut self, dst: Local, base: Local, field: FieldId) -> InstrId {
        self.emit(Op::Load { dst, base, field })
    }

    /// Emit `base.field = src`.
    pub fn store(&mut self, base: Local, field: FieldId, src: Local) -> InstrId {
        self.emit(Op::Store { base, field, src })
    }

    /// Emit `base.field = null` (a free).
    pub fn store_null(&mut self, base: Local, field: FieldId) -> InstrId {
        self.emit(Op::StoreNull { base, field })
    }

    /// Emit `dst = src`.
    pub fn mov(&mut self, dst: Local, src: Local) -> InstrId {
        self.emit(Op::Move { dst, src })
    }

    /// Emit `dst = null`.
    pub fn null(&mut self, dst: Local) -> InstrId {
        self.emit(Op::Null { dst })
    }

    /// Emit an invocation of an application method.
    pub fn invoke(
        &mut self,
        dst: Option<Local>,
        callee: MethodId,
        recv: Option<Local>,
        args: Vec<Local>,
    ) -> InstrId {
        self.emit(Op::Invoke {
            dst,
            callee: Callee::Method(callee),
            recv,
            args,
        })
    }

    /// Emit a call into unanalyzed (framework/library) code.
    pub fn invoke_opaque(
        &mut self,
        dst: Option<Local>,
        recv: Option<Local>,
        args: Vec<Local>,
    ) -> InstrId {
        self.emit(Op::Invoke {
            dst,
            callee: Callee::Opaque,
            recv,
            args,
        })
    }

    /// Emit a dereference of `local`: an opaque instance call on it,
    /// throwing NPE at runtime if the value is null.
    pub fn deref(&mut self, local: Local) -> InstrId {
        self.invoke_opaque(None, Some(local), vec![])
    }

    /// Emit `return [val]`.
    pub fn ret(&mut self, val: Option<Local>) -> InstrId {
        self.emit(Op::Return { val })
    }

    /// Emit an Android intrinsic.
    pub fn android(&mut self, op: AndroidOp) -> InstrId {
        self.emit(Op::Android(op))
    }

    // --- structured statements --------------------------------------------

    /// Emit `if (cond) { then } else { else }` with builder closures.
    pub fn if_cond(
        &mut self,
        cond: Cond,
        then_blk: impl FnOnce(&mut Self),
        else_blk: impl FnOnce(&mut Self),
    ) {
        let r: Result<(), std::convert::Infallible> = self.try_if_cond(
            cond,
            |m| {
                then_blk(m);
                Ok(())
            },
            |m| {
                else_blk(m);
                Ok(())
            },
        );
        match r {
            Ok(()) => {}
        }
    }

    /// Fallible variant of [`MethodBuilder::if_cond`]: either closure may
    /// abort block construction with an error (used by the parser).
    ///
    /// # Errors
    ///
    /// Propagates the first error returned by a closure; the partially
    /// built arms are still attached so the builder stays balanced.
    pub fn try_if_cond<E>(
        &mut self,
        cond: Cond,
        then_blk: impl FnOnce(&mut Self) -> Result<(), E>,
        else_blk: impl FnOnce(&mut Self) -> Result<(), E>,
    ) -> Result<(), E> {
        match cond {
            Cond::NotNull { base, .. } | Cond::IsNull { base, .. } => self.note_local(base),
            Cond::Opaque => {}
        }
        self.blocks.push(Vec::new());
        let r1 = then_blk(self);
        let t = Block(self.blocks.pop().expect("then block"));
        self.blocks.push(Vec::new());
        let r2 = if r1.is_ok() { else_blk(self) } else { Ok(()) };
        let e = Block(self.blocks.pop().expect("else block"));
        self.blocks
            .last_mut()
            .expect("block stack is never empty")
            .push(Stmt::If {
                cond,
                then_blk: t,
                else_blk: e,
            });
        r1.and(r2)
    }

    /// Emit `if (base.field != null) { then }` — the if-guard pattern.
    pub fn if_not_null(&mut self, base: Local, field: FieldId, then_blk: impl FnOnce(&mut Self)) {
        self.if_cond(Cond::NotNull { base, field }, then_blk, |_| {});
    }

    /// Emit an opaque-condition branch.
    pub fn if_opaque(
        &mut self,
        then_blk: impl FnOnce(&mut Self),
        else_blk: impl FnOnce(&mut Self),
    ) {
        self.if_cond(Cond::Opaque, then_blk, else_blk);
    }

    /// Emit a loop with an opaque exit condition.
    pub fn loop_(&mut self, body: impl FnOnce(&mut Self)) {
        let r: Result<(), std::convert::Infallible> = self.try_loop(|m| {
            body(m);
            Ok(())
        });
        match r {
            Ok(()) => {}
        }
    }

    /// Fallible variant of [`MethodBuilder::loop_`].
    ///
    /// # Errors
    ///
    /// Propagates the closure's error; the partial body stays attached.
    pub fn try_loop<E>(&mut self, body: impl FnOnce(&mut Self) -> Result<(), E>) -> Result<(), E> {
        self.blocks.push(Vec::new());
        let r = body(self);
        let b = Block(self.blocks.pop().expect("loop block"));
        self.blocks
            .last_mut()
            .expect("block stack is never empty")
            .push(Stmt::Loop { body: b });
        r
    }

    /// Emit `synchronized (lock) { body }`.
    pub fn sync(&mut self, lock: Local, body: impl FnOnce(&mut Self)) {
        let r: Result<(), std::convert::Infallible> = self.try_sync(lock, |m| {
            body(m);
            Ok(())
        });
        match r {
            Ok(()) => {}
        }
    }

    /// Fallible variant of [`MethodBuilder::sync`].
    ///
    /// # Errors
    ///
    /// Propagates the closure's error; the partial body stays attached.
    pub fn try_sync<E>(
        &mut self,
        lock: Local,
        body: impl FnOnce(&mut Self) -> Result<(), E>,
    ) -> Result<(), E> {
        self.note_local(lock);
        self.blocks.push(Vec::new());
        let r = body(self);
        let b = Block(self.blocks.pop().expect("sync block"));
        self.blocks
            .last_mut()
            .expect("block stack is never empty")
            .push(Stmt::Sync { lock, body: b });
        r
    }

    // --- Android-pattern sugar ---------------------------------------------

    /// `this.field = new class`, returning the temp holding the object.
    pub fn alloc_field(&mut self, field: FieldId, class: ClassId) -> Local {
        let t = self.new_local();
        self.new_obj(t, class);
        self.store(Local::THIS, field, t);
        t
    }

    /// Load `this.field` and dereference it — the harmful-use pattern.
    /// Returns the temp holding the loaded value.
    pub fn use_field(&mut self, field: FieldId) -> Local {
        let t = self.new_local();
        self.load(t, Local::THIS, field);
        self.deref(t);
        t
    }

    /// Load `this.field` and return it — the getter pattern (UR filter).
    pub fn use_field_for_return(&mut self, field: FieldId) {
        let t = self.new_local();
        self.load(t, Local::THIS, field);
        self.ret(Some(t));
    }

    /// Load `this.field` and pass it as an argument to an opaque call —
    /// the pass-as-parameter pattern (UR filter).
    pub fn use_field_as_arg(&mut self, field: FieldId) {
        let t = self.new_local();
        self.load(t, Local::THIS, field);
        self.invoke_opaque(None, None, vec![t]);
    }

    /// `this.field = null`.
    pub fn free_field(&mut self, field: FieldId) {
        self.store_null(Local::THIS, field);
    }

    /// Create an instance of a class, wiring its `$outer` back-reference to
    /// `this` when the class is a framework helper (Runnable, Handler,
    /// AsyncTask, Thread, ServiceConnection, Listener) — the IR's model of
    /// Java inner-class capture. Returns the temp holding the instance.
    pub fn new_wired(&mut self, class: ClassId) -> Local {
        let t = self.new_local();
        self.new_obj(t, class);
        if self.program.classes[class.index()]
            .role
            .is_framework_helper()
        {
            let f = self.program.outer_field(class);
            self.store(t, f, Local::THIS);
        }
        t
    }

    /// Raise the number of reserved local slots to at least `n`
    /// (used by the parser when a method header declares `locals=N`).
    pub fn reserve_locals(&mut self, n: u16) {
        self.next_local = self.next_local.max(n);
    }

    /// Load `this.$outer` into a fresh temp (access to the enclosing
    /// instance from a helper class).
    ///
    /// # Panics
    ///
    /// Panics if the class has no `$outer` field yet (create instances with
    /// [`MethodBuilder::new_wired`] first, or call
    /// [`ProgramBuilder::outer_field`]).
    pub fn load_outer(&mut self) -> Local {
        let f = self.program.outer_field(self.owner);
        let t = self.new_local();
        self.load(t, Local::THIS, f);
        t
    }

    /// `post(new R())` with `$outer` wiring.
    pub fn post_new(&mut self, runnable: ClassId) -> Local {
        let t = self.new_wired(runnable);
        self.android(AndroidOp::Post { runnable: t });
        t
    }

    /// `sendMessage` to a fresh handler of class `handler`.
    pub fn send_new(&mut self, handler: ClassId) -> Local {
        let t = self.new_wired(handler);
        self.android(AndroidOp::SendMessage { handler: t });
        t
    }

    /// `bindService` with `this` as the connection (the enclosing class
    /// implements `ServiceConnection`).
    pub fn bind_self(&mut self) {
        self.android(AndroidOp::BindService {
            connection: Local::THIS,
        });
    }

    /// `bindService` with a fresh connection instance of `conn`.
    pub fn bind_new(&mut self, conn: ClassId) -> Local {
        let t = self.new_wired(conn);
        self.android(AndroidOp::BindService { connection: t });
        t
    }

    /// `new T().execute()` for an AsyncTask class.
    pub fn execute_new(&mut self, task: ClassId) -> Local {
        let t = self.new_wired(task);
        self.android(AndroidOp::Execute { task: t });
        t
    }

    /// `new T().start()` for a native thread class.
    pub fn spawn_new(&mut self, thread: ClassId) -> Local {
        let t = self.new_wired(thread);
        self.android(AndroidOp::Start { thread: t });
        t
    }

    /// `registerReceiver(new R())`.
    pub fn register_new(&mut self, receiver: ClassId) -> Local {
        let t = self.new_wired(receiver);
        self.android(AndroidOp::RegisterReceiver { receiver: t });
        t
    }

    /// Register a UI/system listener instance of `listener` via `api`.
    pub fn listen_new(&mut self, api: RegistrationApi, listener: ClassId) -> Local {
        let t = self.new_wired(listener);
        self.android(AndroidOp::RegisterListener { api, listener: t });
        t
    }

    /// `new D().show()` for a dialog class, with `$outer` wiring.
    pub fn show_new(&mut self, dialog: ClassId) -> Local {
        let t = self.new_wired(dialog);
        self.android(AndroidOp::ShowDialog { dialog: t });
        t
    }

    /// `AlarmManager.set(...)` arming a fresh instance of `target`.
    pub fn schedule_new(&mut self, target: ClassId) -> Local {
        let t = self.new_wired(target);
        self.android(AndroidOp::ScheduleAlarm { target: t });
        t
    }

    /// `startActivity(new Intent(..., B.class))` — the launch site loads
    /// the target component's static instance, matching how components are
    /// addressed elsewhere in the IR.
    pub fn launch(&mut self, activity: ClassId) -> Local {
        let t = self.new_local();
        self.load_static(t, activity);
        self.android(AndroidOp::StartActivity { activity: t });
        t
    }

    /// Load `this.field` and apply an Android intrinsic to the loaded
    /// value. Enable/disable pairs (`show`/`dismiss`, `register`/
    /// `unregister`, ...) must route both sites through the same field so
    /// they act on the same runtime object.
    pub fn android_field(&mut self, field: FieldId, op: impl FnOnce(Local) -> AndroidOp) -> Local {
        let t = self.new_local();
        self.load(t, Local::THIS, field);
        self.android(op(t));
        t
    }

    // --- termination --------------------------------------------------------

    /// Finish the method as a plain (non-callback) method.
    ///
    /// # Panics
    ///
    /// Panics if called inside an open nested block.
    pub fn finish(self) -> MethodId {
        self.finish_inner(None)
    }

    /// Finish the method as a framework callback of the given kind.
    ///
    /// # Panics
    ///
    /// Panics if called inside an open nested block.
    pub fn finish_callback(self, kind: CallbackKind) -> MethodId {
        self.finish_inner(Some(kind))
    }

    fn finish_inner(mut self, callback: Option<CallbackKind>) -> MethodId {
        let name = self.program.method_name(self.id).to_owned();
        assert_eq!(self.blocks.len(), 1, "unbalanced nested blocks in {name}");
        let body = Block(self.blocks.pop().expect("root block"));
        let method = Method {
            name,
            owner: self.owner,
            callback,
            param_count: self.param_count,
            num_locals: self.next_local,
            body,
        };
        self.program.methods[self.id.index()] = MethodSlot::Built(method);
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_structured_bodies() {
        let mut b = ProgramBuilder::new("T");
        let c = b.add_class("A", ClassRole::Activity);
        let f = b.add_field(c, "x", None);
        let mut m = b.method(c, "onClick");
        m.if_not_null(Local::THIS, f, |m| {
            m.use_field(f);
        });
        let mid = m.finish_callback(CallbackKind::OnClick);
        let p = b.build();
        let body = p.method(mid).body();
        assert_eq!(body.len(), 1);
        match &body.0[0] {
            Stmt::If {
                cond: Cond::NotNull { .. },
                then_blk,
                else_blk,
            } => {
                assert_eq!(then_blk.instr_count(), 2);
                assert!(else_blk.is_empty());
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn new_wired_links_outer() {
        let mut b = ProgramBuilder::new("T");
        let act = b.add_class("A", ClassRole::Activity);
        let run = b.add_class("R", ClassRole::Runnable);
        let mut m = b.method(act, "onClick");
        m.post_new(run);
        m.finish_callback(CallbackKind::OnClick);
        let p = b.build();
        // new R; store R.$outer = this; post
        assert_eq!(p.instr_count(), 3);
        let outer = p
            .field_by_name(run, OUTER_FIELD)
            .expect("outer field created");
        assert_eq!(p.field(outer).owner(), run);
    }

    #[test]
    fn instr_ids_are_dense_and_owned() {
        let mut b = ProgramBuilder::new("T");
        let c = b.add_class("A", ClassRole::Activity);
        let f = b.add_field(c, "x", None);
        let mut m = b.method(c, "m1");
        m.use_field(f);
        let m1 = m.finish();
        let mut m = b.method(c, "m2");
        m.free_field(f);
        let m2 = m.finish();
        let p = b.build();
        assert_eq!(p.instr_count(), 3);
        assert_eq!(p.instr_method(InstrId::from_raw(0)), m1);
        assert_eq!(p.instr_method(InstrId::from_raw(2)), m2);
    }

    #[test]
    #[should_panic(expected = "duplicate class name")]
    fn duplicate_class_panics() {
        let mut b = ProgramBuilder::new("T");
        b.add_class("A", ClassRole::Activity);
        b.add_class("A", ClassRole::Service);
    }

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn unbalanced_blocks_panics() {
        let mut b = ProgramBuilder::new("T");
        let c = b.add_class("A", ClassRole::Activity);
        let mut m = b.method(c, "bad");
        m.blocks.push(Vec::new()); // simulate an unbalanced open block
        let _ = m.finish();
    }

    #[test]
    fn params_come_before_temps() {
        let mut b = ProgramBuilder::new("T");
        let c = b.add_class("A", ClassRole::Plain);
        let mut m = b.method(c, "f");
        let ps = m.params(2);
        assert_eq!(ps, vec![Local(1), Local(2)]);
        assert_eq!(m.new_local(), Local(3));
        m.ret(None);
        m.finish();
        let _ = b.build();
    }
}
