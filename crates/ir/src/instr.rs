//! Instructions, operations, conditions, and statements of the IR.
//!
//! The IR is a structured, three-address representation at the granularity
//! nAdroid reads out of Dalvik bytecode:
//!
//! - a **use** is a [`Op::Load`] (`getfield`);
//! - a **free** is a [`Op::StoreNull`] (`putfield null`);
//! - Android framework interactions are explicit [`AndroidOp`] intrinsics;
//! - control flow is structured ([`Stmt::If`], [`Stmt::Loop`],
//!   [`Stmt::Sync`]), which keeps the if-guard and intra-allocation
//!   dataflow analyses direct.

use crate::ids::{ClassId, FieldId, InstrId, Local, MethodId};
use nadroid_android::listeners::RegistrationApi;

/// The target of an [`Op::Invoke`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Callee {
    /// A call to an application method, statically resolved.
    Method(MethodId),
    /// A call into unanalyzed code (the Android framework or a library).
    ///
    /// Opaque calls are the IR's model for code outside the analysis scope;
    /// values passed to them may flow anywhere the framework pleases, which
    /// is the source of the false negatives the paper reports in §8.6
    /// (the `IBinder` case in `Mms`).
    Opaque,
}

/// An Android framework intrinsic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AndroidOp {
    /// `handler.post(runnable)` / `View.post` / `runOnUiThread`: enqueue a
    /// `Runnable` whose `run` executes later on the receiving looper.
    Post {
        /// Local holding the `Runnable` instance.
        runnable: Local,
    },
    /// `handler.sendMessage(msg)`: the handler's `handleMessage` runs later
    /// on the receiving looper.
    SendMessage {
        /// Local holding the `Handler` instance.
        handler: Local,
    },
    /// `bindService(intent, conn, flags)`: arms `onServiceConnected` /
    /// `onServiceDisconnected` on the connection object.
    BindService {
        /// Local holding the `ServiceConnection` instance.
        connection: Local,
    },
    /// `unbindService(conn)`: cancels the connection's callbacks.
    UnbindService {
        /// Local holding the `ServiceConnection` instance.
        connection: Local,
    },
    /// `registerReceiver(r, filter)`: arms `onReceive` on the receiver.
    RegisterReceiver {
        /// Local holding the `BroadcastReceiver` instance.
        receiver: Local,
    },
    /// `unregisterReceiver(r)`: cancels the receiver's deliveries.
    UnregisterReceiver {
        /// Local holding the `BroadcastReceiver` instance.
        receiver: Local,
    },
    /// `task.execute(...)`: runs the AsyncTask protocol
    /// (`onPreExecute` → `doInBackground` → `onPostExecute`).
    Execute {
        /// Local holding the `AsyncTask` instance.
        task: Local,
    },
    /// `publishProgress(...)` inside `doInBackground`: posts
    /// `onProgressUpdate` to the parent looper.
    PublishProgress,
    /// `thread.start()`: spawns a native thread running the target's `run`.
    Start {
        /// Local holding the `Thread` instance.
        thread: Local,
    },
    /// `Activity.finish()`: closes the activity (CHB source).
    Finish,
    /// `handler.removeCallbacksAndMessages(null)` (CHB source).
    RemoveCallbacksAndMessages {
        /// Local holding the `Handler` instance.
        handler: Local,
    },
    /// A FlowDroid-table listener registration, e.g. `setOnClickListener`.
    RegisterListener {
        /// Which registration API was called.
        api: RegistrationApi,
        /// Local holding the listener instance.
        listener: Local,
    },
    /// `PowerManager.WakeLock.acquire()` — keeps the device awake. The
    /// no-sleep-bug client (§9) reports acquires with no ordered release.
    AcquireWakeLock {
        /// Local holding the wake-lock object.
        lock: Local,
    },
    /// `PowerManager.WakeLock.release()`.
    ReleaseWakeLock {
        /// Local holding the wake-lock object.
        lock: Local,
    },
    /// `dialog.show()`: arms the dialog's callbacks (`onShow`, ...) —
    /// the enabling half of the Dialog predicate pair.
    ShowDialog {
        /// Local holding the dialog instance.
        dialog: Local,
    },
    /// `dialog.dismiss()`: silences the dialog's callbacks — the
    /// disabling half of the Dialog predicate pair.
    DismissDialog {
        /// Local holding the dialog instance.
        dialog: Local,
    },
    /// `AlarmManager.set(..., intent)`: arms the target's `onAlarm`
    /// delivery — the enabling half of the Alarm predicate pair.
    ScheduleAlarm {
        /// Local holding the alarm-target instance.
        target: Local,
    },
    /// `AlarmManager.cancel(intent)`: silences the target's `onAlarm`
    /// delivery — the disabling half of the Alarm predicate pair.
    CancelAlarm {
        /// Local holding the alarm-target instance.
        target: Local,
    },
    /// `Context.startActivity(intent)`: launches another activity,
    /// enabling the target's lifecycle callback family (the
    /// multi-activity task-stack model).
    StartActivity {
        /// Local holding an instance identifying the target activity
        /// class.
        activity: Local,
    },
}

impl AndroidOp {
    /// The operand local of the intrinsic, if it has one.
    #[must_use]
    pub fn operand(&self) -> Option<Local> {
        match *self {
            AndroidOp::Post { runnable } => Some(runnable),
            AndroidOp::SendMessage { handler } => Some(handler),
            AndroidOp::BindService { connection } => Some(connection),
            AndroidOp::UnbindService { connection } => Some(connection),
            AndroidOp::RegisterReceiver { receiver } => Some(receiver),
            AndroidOp::UnregisterReceiver { receiver } => Some(receiver),
            AndroidOp::Execute { task } => Some(task),
            AndroidOp::Start { thread } => Some(thread),
            AndroidOp::RemoveCallbacksAndMessages { handler } => Some(handler),
            AndroidOp::RegisterListener { listener, .. } => Some(listener),
            AndroidOp::AcquireWakeLock { lock } | AndroidOp::ReleaseWakeLock { lock } => Some(lock),
            AndroidOp::ShowDialog { dialog } | AndroidOp::DismissDialog { dialog } => Some(dialog),
            AndroidOp::ScheduleAlarm { target } | AndroidOp::CancelAlarm { target } => Some(target),
            AndroidOp::StartActivity { activity } => Some(activity),
            AndroidOp::PublishProgress | AndroidOp::Finish => None,
        }
    }
}

/// A three-address operation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Op {
    /// `dst = new C`: heap allocation. The instruction's [`InstrId`] is the
    /// allocation site used by the points-to abstraction.
    New {
        /// Destination local.
        dst: Local,
        /// The class being instantiated.
        class: ClassId,
    },
    /// `dst = the framework singleton instance of component class C`.
    ///
    /// Android instantiates components itself; cross-class accesses to a
    /// component's fields go through this op.
    LoadStatic {
        /// Destination local.
        dst: Local,
        /// The component class.
        class: ClassId,
    },
    /// `dst = base.field` — a **use** (`getfield`).
    Load {
        /// Destination local.
        dst: Local,
        /// Local holding the base object.
        base: Local,
        /// The field read.
        field: FieldId,
    },
    /// `base.field = src` (`putfield`).
    Store {
        /// Local holding the base object.
        base: Local,
        /// The field written.
        field: FieldId,
        /// Local holding the stored value.
        src: Local,
    },
    /// `base.field = null` — a **free** (`putfield null`).
    StoreNull {
        /// Local holding the base object.
        base: Local,
        /// The field nulled.
        field: FieldId,
    },
    /// `dst = src`: local move.
    Move {
        /// Destination local.
        dst: Local,
        /// Source local.
        src: Local,
    },
    /// `dst = null`.
    Null {
        /// Destination local.
        dst: Local,
    },
    /// Method invocation. A non-`None` `recv` models `recv.m(...)`, which
    /// dereferences the receiver (NPE if null).
    Invoke {
        /// Local receiving the return value, if used.
        dst: Option<Local>,
        /// The call target.
        callee: Callee,
        /// Receiver local (dereferenced), if an instance call.
        recv: Option<Local>,
        /// Argument locals.
        args: Vec<Local>,
    },
    /// Return from the method, optionally with a value.
    Return {
        /// Returned local, if any.
        val: Option<Local>,
    },
    /// An Android framework intrinsic.
    Android(AndroidOp),
}

impl Op {
    /// The local this op defines, if any.
    #[must_use]
    pub fn def(&self) -> Option<Local> {
        match *self {
            Op::New { dst, .. }
            | Op::LoadStatic { dst, .. }
            | Op::Load { dst, .. }
            | Op::Move { dst, .. }
            | Op::Null { dst } => Some(dst),
            Op::Invoke { dst, .. } => dst,
            _ => None,
        }
    }

    /// The locals this op reads.
    #[must_use]
    pub fn uses(&self) -> Vec<Local> {
        match self {
            Op::New { .. } | Op::LoadStatic { .. } | Op::Null { .. } => vec![],
            Op::Load { base, .. } => vec![*base],
            Op::Store { base, src, .. } => vec![*base, *src],
            Op::StoreNull { base, .. } => vec![*base],
            Op::Move { src, .. } => vec![*src],
            Op::Invoke { recv, args, .. } => {
                let mut v: Vec<Local> = recv.iter().copied().collect();
                v.extend(args.iter().copied());
                v
            }
            Op::Return { val } => val.iter().copied().collect(),
            Op::Android(a) => a.operand().into_iter().collect(),
        }
    }
}

/// A numbered instruction: an [`Op`] with its program-wide [`InstrId`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Instr {
    /// Program-wide unique id (also the allocation site for `New`).
    pub id: InstrId,
    /// The operation.
    pub op: Op,
}

/// A branch condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// `base.field != null` — the if-guard pattern (IG filter).
    NotNull {
        /// Local holding the base object.
        base: Local,
        /// The field checked.
        field: FieldId,
    },
    /// `base.field == null`.
    IsNull {
        /// Local holding the base object.
        base: Local,
        /// The field checked.
        field: FieldId,
    },
    /// An opaque condition the analysis cannot interpret
    /// (path-insensitivity source, §8.5).
    Opaque,
}

impl Cond {
    /// The negation of the condition (opaque stays opaque).
    #[must_use]
    pub fn negate(self) -> Cond {
        match self {
            Cond::NotNull { base, field } => Cond::IsNull { base, field },
            Cond::IsNull { base, field } => Cond::NotNull { base, field },
            Cond::Opaque => Cond::Opaque,
        }
    }
}

/// A structured statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// A straight-line instruction.
    Instr(Instr),
    /// A two-armed conditional.
    If {
        /// The branch condition.
        cond: Cond,
        /// Statements executed when the condition holds.
        then_blk: Block,
        /// Statements executed otherwise (may be empty).
        else_blk: Block,
    },
    /// A loop with an opaque exit condition (executes zero or more times).
    Loop {
        /// The loop body.
        body: Block,
    },
    /// A `synchronized (lock) { ... }` region.
    Sync {
        /// Local holding the lock object.
        lock: Local,
        /// The protected statements.
        body: Block,
    },
}

/// A sequence of statements.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Block(pub Vec<Stmt>);

impl Block {
    /// An empty block.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the block contains no statements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of top-level statements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Iterate over the top-level statements.
    pub fn iter(&self) -> std::slice::Iter<'_, Stmt> {
        self.0.iter()
    }

    /// Visit every instruction in the block, depth-first, in program order.
    pub fn for_each_instr<'a>(&'a self, f: &mut impl FnMut(&'a Instr)) {
        for stmt in &self.0 {
            match stmt {
                Stmt::Instr(i) => f(i),
                Stmt::If {
                    then_blk, else_blk, ..
                } => {
                    then_blk.for_each_instr(f);
                    else_blk.for_each_instr(f);
                }
                Stmt::Loop { body } | Stmt::Sync { body, .. } => body.for_each_instr(f),
            }
        }
    }

    /// Count of instructions in the block, including nested ones.
    #[must_use]
    pub fn instr_count(&self) -> usize {
        let mut n = 0;
        self.for_each_instr(&mut |_| n += 1);
        n
    }
}

impl<'a> IntoIterator for &'a Block {
    type Item = &'a Stmt;
    type IntoIter = std::slice::Iter<'a, Stmt>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl FromIterator<Stmt> for Block {
    fn from_iter<T: IntoIterator<Item = Stmt>>(iter: T) -> Self {
        Block(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instr(id: u32, op: Op) -> Instr {
        Instr {
            id: InstrId::from_raw(id),
            op,
        }
    }

    #[test]
    fn def_use_sets() {
        let ld = Op::Load {
            dst: Local(2),
            base: Local::THIS,
            field: FieldId::from_raw(0),
        };
        assert_eq!(ld.def(), Some(Local(2)));
        assert_eq!(ld.uses(), vec![Local::THIS]);

        let inv = Op::Invoke {
            dst: None,
            callee: Callee::Opaque,
            recv: Some(Local(2)),
            args: vec![Local(3)],
        };
        assert_eq!(inv.def(), None);
        assert_eq!(inv.uses(), vec![Local(2), Local(3)]);
    }

    #[test]
    fn cond_negation_round_trips() {
        let c = Cond::NotNull {
            base: Local::THIS,
            field: FieldId::from_raw(1),
        };
        assert_eq!(c.negate().negate(), c);
        assert_eq!(Cond::Opaque.negate(), Cond::Opaque);
    }

    #[test]
    fn nested_instr_walk_is_in_order() {
        let blk = Block(vec![
            Stmt::Instr(instr(0, Op::Null { dst: Local(1) })),
            Stmt::If {
                cond: Cond::Opaque,
                then_blk: Block(vec![Stmt::Instr(instr(1, Op::Null { dst: Local(2) }))]),
                else_blk: Block(vec![Stmt::Instr(instr(2, Op::Null { dst: Local(3) }))]),
            },
            Stmt::Sync {
                lock: Local(1),
                body: Block(vec![Stmt::Instr(instr(3, Op::Null { dst: Local(4) }))]),
            },
        ]);
        let mut ids = Vec::new();
        blk.for_each_instr(&mut |i| ids.push(i.id.raw()));
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(blk.instr_count(), 4);
    }

    #[test]
    fn android_operands() {
        assert_eq!(AndroidOp::Finish.operand(), None);
        assert_eq!(
            AndroidOp::Post { runnable: Local(5) }.operand(),
            Some(Local(5))
        );
    }
}
