//! Program intermediate representation for nAdroid-rs.
//!
//! nAdroid analyzes Dalvik bytecode lifted to Jimple through Soot. This
//! crate is the equivalent substrate for the Rust reproduction: a compact,
//! three-address IR carrying exactly the information the analyses consume —
//!
//! - field **uses** ([`Op::Load`], i.e. `getfield`) and **frees**
//!   ([`Op::StoreNull`], i.e. `putfield null`);
//! - heap allocation sites ([`Op::New`]) for the points-to abstraction;
//! - Android framework interactions as explicit intrinsics
//!   ([`AndroidOp`]): posting, binding, registering, spawning, cancelling;
//! - structured control flow ([`Stmt::If`] with null-check conditions,
//!   [`Stmt::Sync`], [`Stmt::Loop`]) so the if-guard / intra-allocation /
//!   lockset analyses are direct.
//!
//! Programs are built programmatically with [`ProgramBuilder`] or parsed
//! from a textual DSL with [`parse_program`]; [`print_program`] renders
//! the canonical form back (the two round-trip).
//!
//! # Example
//!
//! ```
//! use nadroid_ir::parse_program;
//!
//! let app = parse_program(
//!     r#"
//!     app ConnectBotMini
//!     activity Console {
//!         field bound: Console
//!         cb onServiceConnected    { bound = new Console }
//!         cb onServiceDisconnected { bound = null }
//!         cb onCreateContextMenu   { use bound }
//!     }
//!     "#,
//! )?;
//! assert_eq!(app.classes().count(), 1);
//! let printed = nadroid_ir::print_program(&app);
//! let reparsed = nadroid_ir::parse_program(&printed)?;
//! assert_eq!(app, reparsed);
//! # Ok::<(), nadroid_ir::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod ids;
mod instr;
mod parse;
mod program;

pub mod print;
pub mod walk;

pub use builder::{MethodBuilder, ProgramBuilder};
pub use ids::{ClassId, FieldId, InstrId, Local, MethodId};
pub use instr::{AndroidOp, Block, Callee, Cond, Instr, Op, Stmt};
pub use parse::{parse_program, ParseError};
pub use print::print_program;
pub use program::{Class, Field, Manifest, Method, Program, OUTER_FIELD};
