//! Interned identifier newtypes for IR entities.
//!
//! All program entities live in arenas on [`crate::Program`] and are
//! addressed by dense `u32` indices wrapped in newtypes ([C-NEWTYPE]), so
//! analyses can use them directly as relation columns in the Datalog layer.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Construct from a raw arena index.
            #[must_use]
            pub fn from_raw(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw arena index.
            #[must_use]
            pub fn raw(self) -> u32 {
                self.0
            }

            /// The raw index as `usize`, for arena indexing.
            #[must_use]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a class in a [`crate::Program`].
    ClassId,
    "c"
);
id_type!(
    /// Identifier of a field in a [`crate::Program`].
    FieldId,
    "f"
);
id_type!(
    /// Identifier of a method in a [`crate::Program`].
    MethodId,
    "m"
);
id_type!(
    /// Program-wide unique identifier of an instruction.
    ///
    /// Instruction ids double as allocation-site identifiers for `new`
    /// instructions, mirroring Chord's site-based heap abstraction.
    InstrId,
    "i"
);

/// A method-local slot (register). Slot 0 is `this` for instance methods;
/// slots `1..=param_count` hold reference parameters; higher slots are
/// temporaries introduced by the builder or parser.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Local(pub u16);

impl Local {
    /// The `this` receiver slot.
    pub const THIS: Local = Local(0);

    /// The raw slot index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Local {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Local::THIS {
            write!(f, "this")
        } else {
            write!(f, "t{}", self.0)
        }
    }
}

impl fmt::Display for Local {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_round_trip() {
        let c = ClassId::from_raw(7);
        assert_eq!(c.raw(), 7);
        assert_eq!(c.index(), 7);
        assert_eq!(format!("{c}"), "c7");
    }

    #[test]
    fn this_prints_specially() {
        assert_eq!(format!("{}", Local::THIS), "this");
        assert_eq!(format!("{}", Local(3)), "t3");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(InstrId::from_raw(1) < InstrId::from_raw(2));
    }
}
