//! Parser robustness: the parser must return `Err` (never panic) on
//! arbitrary input, including mutated versions of valid programs.

use nadroid_ir::{parse_program, print_program, ParseError};
use proptest::prelude::*;

const SEED_PROGRAM: &str = r#"
app Seed
activity Main {
    field f: Main
    cb onCreate { f = new Main  bind this }
    cb onServiceConnected { use f }
    cb onServiceDisconnected { f = null }
    cb onClick { if f != null { use f }  post R }
    fn getF { useret f }
}
runnable R in Main { cb run { use outer.f } }
looperthread Worker { }
handler H in Main on Worker { cb handleMessage { outer.f = null } }
manifest { main Main }
"#;

proptest! {
    /// Arbitrary ASCII never panics the parser.
    #[test]
    fn arbitrary_input_never_panics(s in "[ -~\\n]{0,400}") {
        let _: Result<_, ParseError> = parse_program(&s);
    }

    /// Deleting an arbitrary byte range from a valid program never
    /// panics; either it still parses or it errors with a line number.
    #[test]
    fn mutated_programs_never_panic(start in 0usize..400, len in 0usize..80) {
        let src = SEED_PROGRAM;
        let bytes = src.as_bytes();
        let start = start.min(bytes.len());
        let end = (start + len).min(bytes.len());
        let mut mutated = Vec::new();
        mutated.extend_from_slice(&bytes[..start]);
        mutated.extend_from_slice(&bytes[end..]);
        if let Ok(s) = String::from_utf8(mutated) {
            match parse_program(&s) {
                Ok(p) => {
                    // Whatever still parses must round-trip.
                    let printed = print_program(&p);
                    let again = parse_program(&printed).expect("canonical form parses");
                    prop_assert_eq!(p, again);
                }
                Err(e) => {
                    prop_assert!(e.line() as usize <= s.lines().count() + 1);
                }
            }
        }
    }

    /// Splicing random tokens into a valid program never panics.
    #[test]
    fn token_splices_never_panic(
        pos in 0usize..400,
        tok in prop::sample::select(vec![
            "{", "}", "(", ")", "=", "null", "use", "cb", "fn", "if", "sync",
            "post", "t1", "this", "outer.", "field", "activity", "on", "in",
            "!=", "?", "9999", "$",
        ]),
    ) {
        let src = SEED_PROGRAM;
        let pos = pos.min(src.len());
        if !src.is_char_boundary(pos) {
            return Ok(());
        }
        let mutated = format!("{} {} {}", &src[..pos], tok, &src[pos..]);
        let _ = parse_program(&mutated);
    }
}

#[test]
fn empty_and_junk_inputs_error_cleanly() {
    assert!(parse_program("").is_err());
    assert!(parse_program("app").is_err());
    assert!(parse_program("app A trailing").is_err());
    assert!(parse_program("app A\nactivity M {").is_err());
    assert!(parse_program("app A\nactivity M { cb onClick { use missing } }").is_err());
    assert!(parse_program("app A\nactivity M { cb onClick { t1 = } }").is_err());
}
