//! Chord-style static analyses for the threadified program (§5):
//! k-object-sensitive points-to, heap modeling, lock must-aliasing, and
//! thread-escape analysis — all built on the [`nadroid_datalog`] engine.
//!
//! # Example
//!
//! ```
//! use nadroid_ir::{parse_program, Local};
//! use nadroid_threadify::ThreadModel;
//! use nadroid_pointsto::{Escape, PointsTo};
//!
//! let p = parse_program(
//!     r#"
//!     app Pts
//!     activity Main {
//!         field worker: Work
//!         cb onCreate { worker = new Work }
//!         cb onClick  { use worker }
//!     }
//!     thread Work in Main { cb run { } }
//!     "#,
//! ).unwrap();
//! let threads = ThreadModel::build(&p);
//! let pts = PointsTo::run(&p, &threads, 2);
//! let esc = Escape::compute(&p, &threads, &pts);
//! // The Work object is stored in an activity field: both callbacks reach
//! // it, so it escapes.
//! let main = p.class_by_name("Main").unwrap();
//! let on_click = p.method_by_name(main, "onClick").unwrap();
//! let loaded = pts.pts(on_click, Local(1));
//! assert_eq!(loaded.len(), 1);
//! assert!(esc.is_shared(loaded[0]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod escape;
mod solver;
mod tables;

pub use analysis::{datalog_baseline, PointsTo};
pub use escape::Escape;
pub use tables::{AllocKey, ObjId, ObjTable, VarId, VarTable};

#[cfg(test)]
mod tests {
    use super::*;
    use nadroid_ir::{parse_program, Local, Program};
    use nadroid_threadify::ThreadModel;

    fn setup(src: &str, k: u32) -> (Program, ThreadModel, PointsTo) {
        let p = parse_program(src).unwrap_or_else(|e| panic!("{e}"));
        let t = ThreadModel::build(&p);
        let pts = PointsTo::run(&p, &t, k);
        (p, t, pts)
    }

    const FIELD_FLOW: &str = r#"
        app F
        activity Main {
            field a: Helper
            field b: Helper
            cb onCreate { a = new Helper  b = a }
            cb onClick  { use a }
            cb onPause  { use b }
        }
        class Helper { }
    "#;

    #[test]
    fn field_flow_aliases() {
        let (p, _t, pts) = setup(FIELD_FLOW, 0);
        let main = p.class_by_name("Main").unwrap();
        let click = p.method_by_name(main, "onClick").unwrap();
        let pause = p.method_by_name(main, "onPause").unwrap();
        // Both `use` loads read the same Helper object.
        assert!(pts.may_alias((click, Local(1)), (pause, Local(1))));
    }

    #[test]
    fn distinct_allocations_do_not_alias() {
        let (p, _t, pts) = setup(
            r#"
            app D
            activity Main {
                field a: Helper
                field b: Helper
                cb onCreate { a = new Helper  b = new Helper }
                cb onClick  { use a }
                cb onPause  { use b }
            }
            class Helper { }
            "#,
            0,
        );
        let main = p.class_by_name("Main").unwrap();
        let click = p.method_by_name(main, "onClick").unwrap();
        let pause = p.method_by_name(main, "onPause").unwrap();
        assert!(!pts.may_alias((click, Local(1)), (pause, Local(1))));
    }

    #[test]
    fn callback_this_binds_to_component_singleton() {
        let (p, _t, pts) = setup(FIELD_FLOW, 0);
        let main = p.class_by_name("Main").unwrap();
        let click = p.method_by_name(main, "onClick").unwrap();
        let this_pts = pts.pts(click, Local::THIS);
        assert_eq!(this_pts.len(), 1);
        assert_eq!(pts.objs().key(this_pts[0]), AllocKey::Singleton(main));
    }

    #[test]
    fn posted_runnable_this_binds_to_allocation() {
        let (p, _t, pts) = setup(
            r#"
            app P
            activity Main {
                field f: Main
                cb onClick { post R }
            }
            runnable R in Main { cb run { use outer.f } }
            "#,
            0,
        );
        let r = p.class_by_name("R").unwrap();
        let run = p.method_by_name(r, "run").unwrap();
        let this_pts = pts.pts(run, Local::THIS);
        assert_eq!(this_pts.len(), 1, "run's this = the posted R instance");
        assert_eq!(pts.objs().class(this_pts[0]), Some(r));
        // outer.f load resolves through the $outer edge to Main's singleton.
        let outer_local = Local(1); // first temp: load of $outer
        let outer_pts = pts.pts(run, outer_local);
        let main = p.class_by_name("Main").unwrap();
        assert_eq!(outer_pts.len(), 1);
        assert_eq!(pts.objs().key(outer_pts[0]), AllocKey::Singleton(main));
    }

    /// A factory helper shared by two components: context-insensitive
    /// analysis merges the two products; k ≥ 1 clones them apart.
    const FACTORY: &str = r#"
        app K
        activity A1 {
            field p: Prod
            cb onCreate { p = call make }
            fn make(params=0, locals=2) {
                t1 = new Prod
                return t1
            }
        }
        activity A2 {
            field p: Prod
            cb onCreate { p = call make }
            fn make(params=0, locals=2) {
                t1 = new Prod
                return t1
            }
        }
        class Prod { }
    "#;

    // NOTE: each activity has its own `make`, so even k=0 keeps them apart.
    // The interesting case is a *shared* helper class:
    const SHARED_FACTORY: &str = r#"
        app K2
        activity A1 {
            field fac: Factory
            field p: Prod
            cb onCreate {
                fac = new Factory
                t3 = load this A1.fac
                t4 = call Factory.make(recv=t3)
                store this A1.p = t4
            }
            cb onClick { use p }
        }
        activity A2 {
            field fac: Factory
            field p: Prod
            cb onCreate {
                fac = new Factory
                t3 = load this A2.fac
                t4 = call Factory.make(recv=t3)
                store this A2.p = t4
            }
            cb onClick { use p }
        }
        class Factory {
            fn make(params=0, locals=2) {
                t1 = new Prod
                return t1
            }
        }
        class Prod { }
    "#;

    #[test]
    fn k0_merges_shared_factory_products() {
        let (p, _t, pts) = setup(SHARED_FACTORY, 0);
        let a1 = p.class_by_name("A1").unwrap();
        let a2 = p.class_by_name("A2").unwrap();
        let c1 = p.method_by_name(a1, "onClick").unwrap();
        let c2 = p.method_by_name(a2, "onClick").unwrap();
        assert!(pts.may_alias((c1, Local(1)), (c2, Local(1))));
    }

    #[test]
    fn k2_clones_shared_factory_products() {
        let (p, _t, pts) = setup(SHARED_FACTORY, 2);
        let a1 = p.class_by_name("A1").unwrap();
        let a2 = p.class_by_name("A2").unwrap();
        let c1 = p.method_by_name(a1, "onClick").unwrap();
        let c2 = p.method_by_name(a2, "onClick").unwrap();
        assert!(
            !pts.may_alias((c1, Local(1)), (c2, Local(1))),
            "k=2 separates products by their creating factory's creator"
        );
    }

    #[test]
    fn per_activity_factories_separate_even_at_k0() {
        let (p, _t, pts) = setup(FACTORY, 0);
        let a1 = p.class_by_name("A1").unwrap();
        let a2 = p.class_by_name("A2").unwrap();
        let m1 = p.method_by_name(a1, "make").unwrap();
        let m2 = p.method_by_name(a2, "make").unwrap();
        assert!(!pts.may_alias((m1, Local(1)), (m2, Local(1))));
    }

    #[test]
    fn escape_marks_shared_fields_not_locals() {
        let (p, t, pts) = setup(
            r#"
            app E
            activity Main {
                field shared: Obj
                cb onCreate { shared = new Obj }
                cb onClick {
                    t2 = new Obj
                    use shared
                }
            }
            class Obj { }
            "#,
            0,
        );
        let esc = Escape::compute(&p, &t, &pts);
        let main = p.class_by_name("Main").unwrap();
        let create = p.method_by_name(main, "onCreate").unwrap();
        let click = p.method_by_name(main, "onClick").unwrap();
        let shared_obj = pts.pts(create, Local(1))[0];
        let local_obj = pts.pts(click, Local(2))[0];
        assert!(esc.is_shared(shared_obj), "field-stored object escapes");
        assert!(
            !esc.is_shared(local_obj),
            "never-stored local stays confined"
        );
    }

    #[test]
    fn must_lock_requires_singleton_pts() {
        let (p, _t, pts) = setup(
            r#"
            app L
            activity Main {
                field lock: Obj
                field dual: Obj
                cb onCreate {
                    lock = new Obj
                    if ? { dual = new Obj } else { dual = new Obj }
                }
                cb onClick {
                    sync lock { use lock }
                    sync dual { }
                }
            }
            class Obj { }
            "#,
            0,
        );
        let main = p.class_by_name("Main").unwrap();
        let click = p.method_by_name(main, "onClick").unwrap();
        // first sync lock local is t1 (load of `lock`), second is t3.
        assert!(pts.must_lock(click, Local(1)).is_some());
        assert!(
            pts.must_lock(click, Local(3)).is_none(),
            "two-site field is not must-alias"
        );
    }

    #[test]
    fn worklist_k0_matches_datalog_baseline() {
        for src in [FIELD_FLOW, SHARED_FACTORY, FACTORY] {
            let (p, t, pts) = setup(src, 0);
            let baseline = datalog_baseline(&p, &t);
            for (mid, m) in p.methods() {
                for l in 0..m.num_locals() {
                    let solver_keys: std::collections::BTreeSet<AllocKey> = pts
                        .pts(mid, Local(l))
                        .iter()
                        .map(|&o| pts.objs().key(o))
                        .collect();
                    let base_keys = baseline.get(&(mid, Local(l))).cloned().unwrap_or_default();
                    assert_eq!(
                        solver_keys,
                        base_keys,
                        "k=0 solver vs datalog at {}.{} local {l}",
                        p.class(m.owner()).name(),
                        m.name()
                    );
                }
            }
        }
    }

    #[test]
    fn heap_field_edges_are_queryable() {
        let (p, _t, pts) = setup(FIELD_FLOW, 0);
        let main = p.class_by_name("Main").unwrap();
        let create = p.method_by_name(main, "onCreate").unwrap();
        let singleton = pts.pts(create, Local::THIS)[0];
        let fa = p.field_by_name(main, "a").unwrap();
        let fb = p.field_by_name(main, "b").unwrap();
        let a_objs = pts.field_pts(singleton, fa.raw());
        let b_objs = pts.field_pts(singleton, fb.raw());
        assert_eq!(a_objs, b_objs, "b = a aliases the heap cells");
        assert_eq!(a_objs.len(), 1);
    }

    #[test]
    fn outer_chain_resolves_at_k2() {
        // runnable -> $outer -> activity singleton -> field, two hops.
        let (p, _t, pts) = setup(
            r#"
            app O2
            activity Main {
                field data: Holder
                cb onCreate { data = new Holder }
                cb onClick { post R }
            }
            runnable R in Main {
                cb run { use outer.data }
            }
            class Holder { }
            "#,
            2,
        );
        let r = p.class_by_name("R").unwrap();
        let run = p.method_by_name(r, "run").unwrap();
        // run body: t1 = load $outer; t2 = load t1.data; deref t2.
        let holder = pts.pts(run, Local(2));
        assert_eq!(holder.len(), 1);
        let holder_class = p.class_by_name("Holder").unwrap();
        assert_eq!(pts.objs().class(holder[0]), Some(holder_class));
    }

    #[test]
    fn singletons_are_identical_across_methods() {
        let (p, _t, pts) = setup(FIELD_FLOW, 2);
        let main = p.class_by_name("Main").unwrap();
        let click = p.method_by_name(main, "onClick").unwrap();
        let pause = p.method_by_name(main, "onPause").unwrap();
        assert_eq!(
            pts.pts(click, Local::THIS),
            pts.pts(pause, Local::THIS),
            "one framework-managed instance per component"
        );
    }

    #[test]
    fn opaque_call_results_are_unknown() {
        let (p, _t, pts) = setup(
            r#"
            app O
            activity Main {
                cb onClick {
                    t1 = call opaque()
                }
            }
            "#,
            0,
        );
        let main = p.class_by_name("Main").unwrap();
        let click = p.method_by_name(main, "onClick").unwrap();
        assert!(pts.pts(click, Local(1)).is_empty());
    }
}
