//! Public points-to API plus the Datalog baseline used for
//! cross-validation.
//!
//! nAdroid runs Chord's k-object-sensitive points-to analysis (k = 2 by
//! default) on the threadified program (§5). [`PointsTo::run`] delegates
//! to the context-sensitive worklist solver (`solver` module); the
//! [`datalog_baseline`] function solves the same constraints
//! context-insensitively on the [`nadroid_datalog`] engine, and the test
//! suite asserts both agree at k = 0 — the same architecture-validation
//! role bddbddb played for Chord.

use crate::solver;
use crate::tables::{AllocKey, ObjId, ObjTable};
use nadroid_datalog::{Database, RuleSet, Term};
use nadroid_ir::{Callee, FieldId, Local, MethodId, Op, Program};
use nadroid_threadify::{SpawnVia, ThreadModel};
use std::collections::{BTreeSet, HashMap};

/// Result of the points-to analysis.
#[derive(Debug)]
pub struct PointsTo {
    objs: ObjTable,
    var_pts: HashMap<(MethodId, Local), Vec<ObjId>>,
    heap: HashMap<(ObjId, u32), Vec<ObjId>>,
    k: u32,
}

impl PointsTo {
    /// Run the analysis at sensitivity `k` (0 = context-insensitive; the
    /// paper's default is 2).
    #[must_use]
    pub fn run(program: &Program, threads: &ThreadModel, k: u32) -> PointsTo {
        let s = solver::solve(program, threads, k);
        PointsTo {
            objs: s.objs,
            var_pts: s.var_pts,
            heap: s.heap,
            k,
        }
    }

    /// The sensitivity the analysis ran at.
    #[must_use]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The abstract-object table.
    #[must_use]
    pub fn objs(&self) -> &ObjTable {
        &self.objs
    }

    /// Objects a method-local may point to (merged over receiver
    /// contexts).
    #[must_use]
    pub fn pts(&self, method: MethodId, local: Local) -> &[ObjId] {
        self.var_pts
            .get(&(method, local))
            .map_or(&[], Vec::as_slice)
    }

    /// Objects stored in field `f` of object `o`.
    #[must_use]
    pub fn field_pts(&self, o: ObjId, field: u32) -> &[ObjId] {
        self.heap.get(&(o, field)).map_or(&[], Vec::as_slice)
    }

    /// All populated heap cells, for clients (like the escape analysis)
    /// that need the object graph without caring about field identity.
    pub(crate) fn heap_entries(&self) -> impl Iterator<Item = (ObjId, &[ObjId])> + '_ {
        self.heap.iter().map(|(&(o, _), v)| (o, v.as_slice()))
    }

    /// Whether two locals may point to a common object.
    #[must_use]
    pub fn may_alias(&self, a: (MethodId, Local), b: (MethodId, Local)) -> bool {
        let pa = self.pts(a.0, a.1);
        let pb = self.pts(b.0, b.1);
        pa.iter().any(|o| pb.contains(o))
    }

    /// The common objects of two locals' points-to sets.
    #[must_use]
    pub fn common_objs(&self, a: (MethodId, Local), b: (MethodId, Local)) -> Vec<ObjId> {
        let pb = self.pts(b.0, b.1);
        self.pts(a.0, a.1)
            .iter()
            .copied()
            .filter(|o| pb.contains(o))
            .collect()
    }

    /// The *must* lock object of a lock variable: defined only when the
    /// variable's points-to set is a singleton (Chord's selective lockset
    /// use in the IG filter requires must-alias on locks).
    #[must_use]
    pub fn must_lock(&self, method: MethodId, lock: Local) -> Option<ObjId> {
        match self.pts(method, lock) {
            [only] => Some(*only),
            _ => None,
        }
    }
}

/// Context-insensitive Andersen analysis solved on the Datalog engine.
///
/// Returns, for each (method, local), the set of allocation keys of the
/// objects it may point to — directly comparable with
/// [`PointsTo::run`] at `k = 0`.
#[must_use]
pub fn datalog_baseline(
    program: &Program,
    threads: &ThreadModel,
) -> HashMap<(MethodId, Local), BTreeSet<AllocKey>> {
    // Dense variable numbering: locals plus a return pseudo-var per method.
    let mut base = Vec::new();
    let mut next = 0u32;
    for (_, m) in program.methods() {
        base.push(next);
        next += u32::from(m.num_locals()) + 1;
    }
    let var = |m: MethodId, l: Local| base[m.index()] + u32::from(l.0);
    let ret = |m: MethodId| base[m.index()] + u32::from(program.method(m).num_locals());

    // Object numbering: one per allocation key.
    let mut keys: Vec<AllocKey> = Vec::new();
    let mut key_ids: HashMap<AllocKey, u32> = HashMap::new();
    let obj = |k: AllocKey, keys: &mut Vec<AllocKey>, key_ids: &mut HashMap<AllocKey, u32>| {
        *key_ids.entry(k).or_insert_with(|| {
            keys.push(k);
            keys.len() as u32 - 1
        })
    };

    let mut db = Database::new();
    let r_alloc = db.relation("alloc", 2);
    let r_move = db.relation("move", 2);
    let r_load = db.relation("load", 3);
    let r_store = db.relation("store", 3);
    let r_vp = db.relation("vP", 2);
    let r_hp = db.relation("hP", 3);

    let field = FieldId::raw;
    for (mid, i) in program.instrs() {
        match &i.op {
            Op::New { dst, .. } => {
                let o = obj(AllocKey::Site(i.id), &mut keys, &mut key_ids);
                db.insert(r_alloc, &[var(mid, *dst), o]);
            }
            Op::LoadStatic { dst, class } => {
                let o = obj(AllocKey::Singleton(*class), &mut keys, &mut key_ids);
                db.insert(r_alloc, &[var(mid, *dst), o]);
            }
            Op::Move { dst, src } => {
                db.insert(r_move, &[var(mid, *dst), var(mid, *src)]);
            }
            Op::Load {
                dst,
                base: b,
                field: f,
            } => {
                db.insert(r_load, &[var(mid, *dst), var(mid, *b), field(*f)]);
            }
            Op::Store {
                base: b,
                field: f,
                src,
            } => {
                db.insert(r_store, &[var(mid, *b), field(*f), var(mid, *src)]);
            }
            Op::Invoke {
                dst,
                callee: Callee::Method(callee),
                recv,
                args,
            } => {
                if let Some(r) = recv {
                    db.insert(r_move, &[var(*callee, Local::THIS), var(mid, *r)]);
                }
                let nparams = program.method(*callee).param_count();
                for (i, a) in args.iter().enumerate() {
                    if (i as u16) < nparams {
                        db.insert(r_move, &[var(*callee, Local(i as u16 + 1)), var(mid, *a)]);
                    }
                }
                if let Some(d) = dst {
                    db.insert(r_move, &[var(mid, *d), ret(*callee)]);
                }
            }
            Op::Return { val: Some(v) } => {
                db.insert(r_move, &[ret(mid), var(mid, *v)]);
            }
            _ => {}
        }
    }

    // Thread-root receiver bindings, as in the solver.
    for (_, t) in threads.threads() {
        let Some(root) = t.root() else { continue };
        match t.via() {
            SpawnVia::Component | SpawnVia::Manifest => {
                if let Some(c) = t.class() {
                    let o = obj(AllocKey::Singleton(c), &mut keys, &mut key_ids);
                    db.insert(r_alloc, &[var(root, Local::THIS), o]);
                }
            }
            SpawnVia::Root => {}
            _ => {
                if let Some(site) = t.origin_site() {
                    let m = program.instr_method(site);
                    if let Op::Android(a) = &program.instr(site).op {
                        if let Some(operand) = a.operand() {
                            db.insert(r_move, &[var(root, Local::THIS), var(m, operand)]);
                        }
                    }
                }
            }
        }
    }

    let v = Term::var;
    let mut rules = RuleSet::new();
    rules
        .add(r_vp, vec![v(0), v(1)])
        .when(r_alloc, vec![v(0), v(1)]);
    rules
        .add(r_vp, vec![v(0), v(2)])
        .when(r_move, vec![v(0), v(1)])
        .when(r_vp, vec![v(1), v(2)]);
    rules
        .add(r_hp, vec![v(3), v(1), v(4)])
        .when(r_store, vec![v(0), v(1), v(2)])
        .when(r_vp, vec![v(0), v(3)])
        .when(r_vp, vec![v(2), v(4)]);
    rules
        .add(r_vp, vec![v(0), v(4)])
        .when(r_load, vec![v(0), v(1), v(2)])
        .when(r_vp, vec![v(1), v(3)])
        .when(r_hp, vec![v(3), v(2), v(4)]);
    db.run(&rules);

    // Invert the variable numbering.
    let mut var_of: HashMap<u32, (MethodId, Local)> = HashMap::new();
    for (mid, m) in program.methods() {
        for l in 0..m.num_locals() {
            var_of.insert(var(mid, Local(l)), (mid, Local(l)));
        }
    }
    let mut out: HashMap<(MethodId, Local), BTreeSet<AllocKey>> = HashMap::new();
    for t in db.tuples(r_vp) {
        if let Some(&ml) = var_of.get(&t[0]) {
            out.entry(ml).or_default().insert(keys[t[1] as usize]);
        }
    }
    out
}
