//! Interning tables for analysis domains: variables and abstract objects.

use nadroid_ir::{ClassId, InstrId, Local, MethodId, Program};
use std::collections::HashMap;

/// A program-global variable id: one per (method, local) pair plus one
/// pseudo-variable per method for its return value. Used directly as a
/// Datalog term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

/// Dense numbering of all variables of a program.
#[derive(Debug, Clone)]
pub struct VarTable {
    /// Base var id of each method's locals.
    base: Vec<u32>,
    total: u32,
}

impl VarTable {
    /// Number all locals and return-value pseudo-vars of the program.
    #[must_use]
    pub fn new(program: &Program) -> Self {
        let mut base = Vec::with_capacity(program.method_ids().count());
        let mut next = 0u32;
        for (_, m) in program.methods() {
            base.push(next);
            next += u32::from(m.num_locals()) + 1; // +1 for the return var
        }
        VarTable { base, total: next }
    }

    /// The variable for a local slot of a method.
    #[must_use]
    pub fn var(&self, method: MethodId, local: Local) -> VarId {
        VarId(self.base[method.index()] + u32::from(local.0))
    }

    /// The pseudo-variable holding a method's return value.
    #[must_use]
    pub fn ret(&self, program: &Program, method: MethodId) -> VarId {
        VarId(self.base[method.index()] + u32::from(program.method(method).num_locals()))
    }

    /// Total number of variables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.total as usize
    }

    /// Whether the program has no variables.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

/// The allocation key of an abstract object: a `new` site or a
/// framework-managed component singleton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AllocKey {
    /// A `new` instruction.
    Site(InstrId),
    /// The framework-managed instance of a component class.
    Singleton(ClassId),
}

/// An abstract object id, usable as a Datalog term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(pub u32);

/// Interning table for abstract objects named by allocation-site chains:
/// `[own key, creator key, creator's creator key, ...]` truncated to the
/// analysis depth `k` — the heap-cloning form of k-object-sensitivity
/// (§5: Chord's k-object-sensitive naming, k = 2 by default).
#[derive(Debug, Clone, Default)]
pub struct ObjTable {
    chains: Vec<Vec<AllocKey>>,
    classes: Vec<Option<ClassId>>,
    by_chain: HashMap<Vec<AllocKey>, ObjId>,
}

impl ObjTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern an object named by `chain` (first element is its own
    /// allocation key), recording the allocated class.
    pub fn intern(&mut self, chain: Vec<AllocKey>, class: Option<ClassId>) -> ObjId {
        if let Some(&id) = self.by_chain.get(&chain) {
            return id;
        }
        let id = ObjId(self.chains.len() as u32);
        self.by_chain.insert(chain.clone(), id);
        self.chains.push(chain);
        self.classes.push(class);
        id
    }

    /// The naming chain of an object.
    ///
    /// # Panics
    ///
    /// Panics if `o` is not interned here.
    #[must_use]
    pub fn chain(&self, o: ObjId) -> &[AllocKey] {
        &self.chains[o.0 as usize]
    }

    /// The object's own allocation key (head of its chain).
    #[must_use]
    pub fn key(&self, o: ObjId) -> AllocKey {
        self.chains[o.0 as usize][0]
    }

    /// The allocated class, when known.
    #[must_use]
    pub fn class(&self, o: ObjId) -> Option<ClassId> {
        self.classes[o.0 as usize]
    }

    /// Number of interned objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chains.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chains.is_empty()
    }

    /// Iterate all object ids.
    pub fn iter(&self) -> impl Iterator<Item = ObjId> + '_ {
        (0..self.chains.len() as u32).map(ObjId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadroid_android::ClassRole;
    use nadroid_ir::ProgramBuilder;

    #[test]
    fn var_numbering_is_dense_and_disjoint() {
        let mut b = ProgramBuilder::new("V");
        let c = b.add_class("C", ClassRole::Plain);
        let mut m1 = b.method(c, "a");
        let t = m1.new_local();
        m1.null(t);
        let a = m1.finish();
        let mut m2 = b.method(c, "b");
        m2.ret(None);
        let bb = m2.finish();
        let p = b.build();
        let vt = VarTable::new(&p);
        // method a: this + t + ret = 3 vars; method b: this + ret = 2.
        assert_eq!(vt.len(), 5);
        assert_ne!(vt.var(a, Local::THIS), vt.var(bb, Local::THIS));
        assert_eq!(vt.ret(&p, a).0, 2);
        assert_eq!(vt.var(bb, Local::THIS).0, 3);
    }

    #[test]
    fn obj_interning_dedups_chains() {
        let mut t = ObjTable::new();
        let s = AllocKey::Site(InstrId::from_raw(7));
        let a = t.intern(vec![s], None);
        let b = t.intern(vec![s], None);
        assert_eq!(a, b);
        let c = t.intern(vec![s, AllocKey::Singleton(ClassId::from_raw(0))], None);
        assert_ne!(a, c);
        assert_eq!(t.len(), 2);
        assert_eq!(t.key(c), s);
    }
}
