//! The context-sensitive inclusion-constraint solver.
//!
//! Implements k-object-sensitivity as in Chord (§5, following Milanova et
//! al.): a method is analyzed once per *receiver-object context* — the
//! allocation chain of its receiver truncated to length `k` — and objects
//! are named by their allocation site extended with the allocating
//! context. Contexts are discovered on the fly while the inclusion
//! constraints propagate (pure Datalog cannot create contexts
//! existentially, which is why bddbddb pre-materializes domains; this
//! solver creates them during the fixpoint instead).

use crate::tables::{AllocKey, ObjId, ObjTable};
use nadroid_ir::{Callee, ClassId, Local, MethodId, Op, Program};
use nadroid_obs as obs;
use nadroid_threadify::{SpawnVia, ThreadModel};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;

/// An interned receiver context: an allocation chain of length ≤ k.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CtxId(u32);

/// A propagation node: a context-cloned variable or a heap cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum NodeKey {
    Var {
        method: MethodId,
        local: Local,
        ctx: CtxId,
    },
    Ret {
        method: MethodId,
        ctx: CtxId,
    },
    Heap {
        obj: ObjId,
        field: u32,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct NodeId(u32);

#[derive(Debug, Default)]
struct Interner {
    ctxs: Vec<Vec<AllocKey>>,
    ctx_ids: HashMap<Vec<AllocKey>, CtxId>,
    nodes: Vec<NodeKey>,
    node_ids: HashMap<NodeKey, NodeId>,
}

impl Interner {
    fn ctx(&mut self, chain: Vec<AllocKey>) -> CtxId {
        if let Some(&c) = self.ctx_ids.get(&chain) {
            return c;
        }
        let id = CtxId(self.ctxs.len() as u32);
        self.ctx_ids.insert(chain.clone(), id);
        self.ctxs.push(chain);
        id
    }

    fn ctx_chain(&self, c: CtxId) -> &[AllocKey] {
        &self.ctxs[c.0 as usize]
    }

    fn node(&mut self, key: NodeKey) -> NodeId {
        if let Some(&n) = self.node_ids.get(&key) {
            return n;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.node_ids.insert(key, id);
        self.nodes.push(key);
        id
    }
}

/// Solver output: merged (context-insensitive view) points-to sets plus
/// the object table.
#[derive(Debug)]
pub(crate) struct Solution {
    pub objs: ObjTable,
    /// (method, local) -> objects, merged over contexts.
    pub var_pts: HashMap<(MethodId, Local), Vec<ObjId>>,
    /// (obj, field) -> objects.
    pub heap: HashMap<(ObjId, u32), Vec<ObjId>>,
}

pub(crate) fn solve(program: &Program, threads: &ThreadModel, k: u32) -> Solution {
    Solver::new(program, threads, k).run()
}

struct Solver<'p> {
    program: &'p Program,
    threads: &'p ThreadModel,
    k: usize,
    intern: Interner,
    objs: ObjTable,
    /// pts per node.
    pts: Vec<HashSet<ObjId>>,
    /// copy edges (subset constraints) out of each node.
    succ: Vec<Vec<NodeId>>,
    /// membership mirror of `succ`, so edge insertion is O(1) instead of
    /// an O(degree) scan of the successor list.
    edge_set: HashSet<(NodeId, NodeId)>,
    /// pending (node, obj) facts.
    queue: VecDeque<(NodeId, ObjId)>,
    /// (method, ctx) pairs already expanded.
    reached: HashSet<(MethodId, CtxId)>,
    /// Dynamic behaviors triggered when a node's pts grows:
    /// loads with this node as base: (field, dst node).
    load_uses: HashMap<NodeId, Vec<(u32, NodeId)>>,
    /// stores with this node as base: (field, src node).
    store_uses: HashMap<NodeId, Vec<(u32, NodeId)>>,
    /// invoke sites with this node as receiver:
    /// (callee, args nodes, param count, dst node).
    invoke_uses: HashMap<NodeId, Vec<InvokeUse>>,
    /// thread-root subscriptions on (method, local): objects arriving at
    /// any context clone of that variable seed the root's receiver.
    root_subs: HashMap<(MethodId, Local), Vec<MethodId>>,
}

#[derive(Debug, Clone)]
struct InvokeUse {
    callee: MethodId,
    /// Shared so re-dispatching the use for each new receiver object is a
    /// refcount bump, not a fresh argument-vector allocation.
    args: Rc<[NodeId]>,
    dst: Option<NodeId>,
}

impl<'p> Solver<'p> {
    fn new(program: &'p Program, threads: &'p ThreadModel, k: u32) -> Self {
        Solver {
            program,
            threads,
            k: k as usize,
            intern: Interner::default(),
            objs: ObjTable::new(),
            pts: Vec::new(),
            succ: Vec::new(),
            edge_set: HashSet::new(),
            queue: VecDeque::new(),
            reached: HashSet::new(),
            load_uses: HashMap::new(),
            store_uses: HashMap::new(),
            invoke_uses: HashMap::new(),
            root_subs: HashMap::new(),
        }
    }

    fn node(&mut self, key: NodeKey) -> NodeId {
        let id = self.intern.node(key);
        while self.pts.len() <= id.0 as usize {
            self.pts.push(HashSet::new());
            self.succ.push(Vec::new());
        }
        id
    }

    fn add_obj(&mut self, node: NodeId, obj: ObjId) {
        if self.pts[node.0 as usize].insert(obj) {
            self.queue.push_back((node, obj));
        }
    }

    fn add_edge(&mut self, from: NodeId, to: NodeId) {
        if !self.edge_set.insert((from, to)) {
            return;
        }
        self.succ[from.0 as usize].push(to);
        let existing: Vec<ObjId> = self.pts[from.0 as usize].iter().copied().collect();
        for o in existing {
            self.add_obj(to, o);
        }
    }

    fn singleton_obj(&mut self, class: ClassId) -> ObjId {
        self.objs
            .intern(vec![AllocKey::Singleton(class)], Some(class))
    }

    /// The receiver context for a callee invoked on object `o`: the
    /// object's chain truncated to k.
    fn ctx_of_obj(&mut self, o: ObjId) -> CtxId {
        let chain: Vec<AllocKey> = self.objs.chain(o).iter().copied().take(self.k).collect();
        self.intern.ctx(chain)
    }

    fn run(mut self) -> Solution {
        self.seed_thread_roots();
        let (pops, max_worklist) = self.propagate();
        if obs::recording() {
            obs::counter("pointsto.queue_pops", pops);
            obs::gauge_max("pointsto.max_worklist", max_worklist as u64);
            obs::counter("pointsto.nodes", self.intern.nodes.len() as u64);
            obs::counter("pointsto.contexts", self.intern.ctxs.len() as u64);
            obs::counter("pointsto.copy_edges", self.edge_set.len() as u64);
            obs::counter("pointsto.reached_method_contexts", self.reached.len() as u64);
            obs::counter("pointsto.objects", self.objs.len() as u64);
        }
        self.finish()
    }

    fn seed_thread_roots(&mut self) {
        // Collect seeds first to avoid borrowing `self.threads` across
        // mutations.
        let mut singleton_roots: Vec<(MethodId, ClassId)> = Vec::new();
        let mut posted_roots: Vec<(MethodId, MethodId, Local)> = Vec::new();
        for (_, t) in self.threads.threads() {
            let Some(root) = t.root() else { continue };
            match t.via() {
                SpawnVia::Component | SpawnVia::Manifest => {
                    if let Some(c) = t.class() {
                        singleton_roots.push((root, c));
                    }
                }
                SpawnVia::Root => {}
                _ => {
                    if let Some(site) = t.origin_site() {
                        let m = self.program.instr_method(site);
                        if let Op::Android(a) = &self.program.instr(site).op {
                            if let Some(operand) = a.operand() {
                                posted_roots.push((root, m, operand));
                            }
                        }
                    }
                }
            }
        }
        for (root, class) in singleton_roots {
            let o = self.singleton_obj(class);
            self.spawn_method(root, o);
        }
        for (root, m, operand) in posted_roots {
            self.root_subs.entry((m, operand)).or_default().push(root);
        }
    }

    /// Reach `method` with receiver object `recv`: expand its body under
    /// the receiver's context and bind `this`.
    fn spawn_method(&mut self, method: MethodId, recv: ObjId) {
        let ctx = self.ctx_of_obj(recv);
        let this = self.node(NodeKey::Var {
            method,
            local: Local::THIS,
            ctx,
        });
        self.expand(method, ctx);
        self.add_obj(this, recv);
    }

    /// Generate the constraint graph of one (method, context) clone.
    fn expand(&mut self, method: MethodId, ctx: CtxId) {
        if !self.reached.insert((method, ctx)) {
            return;
        }
        let var = |s: &mut Self, l: Local| {
            s.node(NodeKey::Var {
                method,
                local: l,
                ctx,
            })
        };
        // Copy the `&'p Program` reference out of `self` so the body
        // borrow is independent of the `&mut self` the closure needs —
        // the old `body().clone()` here showed up in profiles, paid once
        // per (method, context) clone.
        let program = self.program;
        let body = program.method(method).body();
        body.for_each_instr(&mut |i| match &i.op {
            Op::New { dst, class } => {
                let mut chain = vec![AllocKey::Site(i.id)];
                chain.extend(self.intern.ctx_chain(ctx).to_vec());
                chain.truncate(self.k + 1);
                let o = self.objs.intern(chain, Some(*class));
                let d = var(self, *dst);
                self.add_obj(d, o);
            }
            Op::LoadStatic { dst, class } => {
                let o = self.singleton_obj(*class);
                let d = var(self, *dst);
                self.add_obj(d, o);
            }
            Op::Move { dst, src } => {
                let s = var(self, *src);
                let d = var(self, *dst);
                self.add_edge(s, d);
            }
            Op::Load { dst, base, field } => {
                let b = var(self, *base);
                let d = var(self, *dst);
                self.load_uses.entry(b).or_default().push((field.raw(), d));
                let existing: Vec<ObjId> = self.pts[b.0 as usize].iter().copied().collect();
                for o in existing {
                    let h = self.node(NodeKey::Heap {
                        obj: o,
                        field: field.raw(),
                    });
                    self.add_edge(h, d);
                }
            }
            Op::Store { base, field, src } => {
                let b = var(self, *base);
                let s = var(self, *src);
                self.store_uses.entry(b).or_default().push((field.raw(), s));
                let existing: Vec<ObjId> = self.pts[b.0 as usize].iter().copied().collect();
                for o in existing {
                    let h = self.node(NodeKey::Heap {
                        obj: o,
                        field: field.raw(),
                    });
                    self.add_edge(s, h);
                }
            }
            Op::Invoke {
                dst,
                callee: Callee::Method(callee),
                recv,
                args,
            } => {
                let arg_nodes: Rc<[NodeId]> =
                    args.iter().map(|a| var(self, *a)).collect();
                let dst_node = dst.map(|d| var(self, d));
                match recv {
                    Some(r) => {
                        let rn = var(self, *r);
                        let u = InvokeUse {
                            callee: *callee,
                            args: arg_nodes,
                            dst: dst_node,
                        };
                        self.invoke_uses.entry(rn).or_default().push(u.clone());
                        let existing: Vec<ObjId> =
                            self.pts[rn.0 as usize].iter().copied().collect();
                        for o in existing {
                            self.bind_call(u.callee, o, rn, &u.args, u.dst);
                        }
                    }
                    None => {
                        // Static-style call: single empty context.
                        let empty = self.intern.ctx(Vec::new());
                        self.expand(*callee, empty);
                        self.wire_call(*callee, empty, &arg_nodes, dst_node);
                    }
                }
            }
            Op::Return { val: Some(v) } => {
                let s = var(self, *v);
                let r = self.node(NodeKey::Ret { method, ctx });
                self.add_edge(s, r);
            }
            _ => {}
        });
    }

    /// Bind one receiver object at a virtual call: expand the callee in
    /// the object's context, seed `this`, and wire args/return.
    fn bind_call(
        &mut self,
        callee: MethodId,
        recv_obj: ObjId,
        _recv_node: NodeId,
        args: &[NodeId],
        dst: Option<NodeId>,
    ) {
        let cctx = self.ctx_of_obj(recv_obj);
        self.expand(callee, cctx);
        let this = self.node(NodeKey::Var {
            method: callee,
            local: Local::THIS,
            ctx: cctx,
        });
        self.add_obj(this, recv_obj);
        self.wire_call(callee, cctx, args, dst);
    }

    fn wire_call(&mut self, callee: MethodId, cctx: CtxId, args: &[NodeId], dst: Option<NodeId>) {
        let nparams = self.program.method(callee).param_count();
        for (i, &a) in args.iter().enumerate() {
            if (i as u16) < nparams {
                let p = self.node(NodeKey::Var {
                    method: callee,
                    local: Local(i as u16 + 1),
                    ctx: cctx,
                });
                self.add_edge(a, p);
            }
        }
        if let Some(d) = dst {
            let r = self.node(NodeKey::Ret {
                method: callee,
                ctx: cctx,
            });
            self.add_edge(r, d);
        }
    }

    /// Returns (queue pops, max observed worklist length) — cheap local
    /// tallies so the hot loop carries no recorder lookups.
    fn propagate(&mut self) -> (u64, usize) {
        let mut pops = 0u64;
        let mut max_worklist = self.queue.len();
        // Cooperative cancellation: once before draining (so an
        // already-expired deadline never pays for even a small fixpoint)
        // and then once per 512-pop batch — cheap enough to be invisible
        // in profiles, frequent enough that a deadline or Ctrl-C stops
        // the solve promptly instead of finishing the fixpoint.
        obs::cancel::checkpoint();
        // Every per-event `.clone()` of a use list in this loop used to be
        // a heap allocation on the solver's hottest path. The lists are
        // append-only (handlers may grow them mid-iteration via `expand`),
        // so index loops that re-check the length each step are both
        // borrow-safe and allocation-free; processing entries appended
        // mid-loop is harmless because `bind_call`/`add_edge`/`add_obj`
        // are idempotent.
        //
        // The drain proceeds in *epochs*: the items queued at epoch start
        // form the frontier, and a parallel read-only plan pass
        // pre-computes, for each frontier item, which snapshot copy-edge
        // targets still need its object inserted. The apply loop below
        // then pops items in exact FIFO order — pops, max_worklist,
        // checkpoint cadence, and every mutation (hence ObjId interning
        // order) are identical to the sequential drain; the plan only
        // lets it skip membership probes that were already satisfied at
        // the snapshot (pts sets only grow, so a satisfied probe stays a
        // no-op). See docs/parallelism.md for the determinism argument.
        while !self.queue.is_empty() {
            let frontier = self.queue.len();
            let plan = self.plan_epoch(frontier);
            for f in 0..frontier {
                let (node, obj) = self.queue.pop_front().expect("frontier item queued");
                pops += 1;
                if pops & 0x1FF == 0 {
                    obs::cancel::checkpoint();
                }
                max_worklist = max_worklist.max(self.queue.len() + 1);
                // Copy edges. With a plan, entries up to the snapshot
                // length are replaced by the pre-filtered target list;
                // entries appended to `succ[node]` since the snapshot
                // (by earlier items of this epoch) are walked live, as
                // the sequential loop would.
                let mut i = 0;
                if let Some(plan) = &plan {
                    let (snap_len, need_insert) = &plan[f];
                    for &s in need_insert {
                        self.add_obj(s, obj);
                    }
                    i = *snap_len;
                }
                while i < self.succ[node.0 as usize].len() {
                    let s = self.succ[node.0 as usize][i];
                    self.add_obj(s, obj);
                    i += 1;
                }
                // Loads with this node as base.
                let mut i = 0;
                while let Some(&(field, dst)) =
                    self.load_uses.get(&node).and_then(|uses| uses.get(i))
                {
                    let h = self.node(NodeKey::Heap { obj, field });
                    self.add_edge(h, dst);
                    i += 1;
                }
                // Stores with this node as base.
                let mut i = 0;
                while let Some(&(field, src)) =
                    self.store_uses.get(&node).and_then(|uses| uses.get(i))
                {
                    let h = self.node(NodeKey::Heap { obj, field });
                    self.add_edge(src, h);
                    i += 1;
                }
                // Virtual calls with this node as receiver. The `InvokeUse`
                // clone is a refcount bump on the shared argument slice.
                let mut i = 0;
                while let Some(u) = self
                    .invoke_uses
                    .get(&node)
                    .and_then(|uses| uses.get(i))
                    .cloned()
                {
                    self.bind_call(u.callee, obj, node, &u.args, u.dst);
                    i += 1;
                }
                // Thread-root subscriptions on this variable.
                if let NodeKey::Var { method, local, .. } = self.intern.nodes[node.0 as usize] {
                    let mut i = 0;
                    while let Some(&root) = self
                        .root_subs
                        .get(&(method, local))
                        .and_then(|roots| roots.get(i))
                    {
                        self.spawn_method(root, obj);
                        i += 1;
                    }
                }
            }
        }
        (pops, max_worklist)
    }

    /// Parallel read-only pre-pass over the current epoch's frontier.
    ///
    /// For each of the first `frontier` queued `(node, obj)` items, records
    /// the snapshot length of `succ[node]` and the subset of those snapshot
    /// targets whose points-to set does not yet contain `obj`. The apply
    /// loop inserts exactly that subset (same order as a sequential scan)
    /// and skips the satisfied targets — a pure no-op elision, because
    /// points-to sets only grow, so a target satisfied at the snapshot is
    /// still satisfied when its item is popped.
    ///
    /// Returns `None` when planning cannot pay for itself: a single
    /// ambient thread, or a frontier too small to amortise the pass.
    fn plan_epoch(&self, frontier: usize) -> Option<Vec<(usize, Vec<NodeId>)>> {
        const PLAN_MIN_FRONTIER: usize = 256;
        const PLAN_GRAIN: usize = 128;
        if nadroid_par::current() <= 1 || frontier < PLAN_MIN_FRONTIER {
            return None;
        }
        let (queue, succ, pts) = (&self.queue, &self.succ, &self.pts);
        let chunks = nadroid_par::map_chunks(frontier, PLAN_GRAIN, |range| {
            range
                .map(|f| {
                    let (node, obj) = queue[f];
                    let targets = &succ[node.0 as usize];
                    let need: Vec<NodeId> = targets
                        .iter()
                        .copied()
                        .filter(|s| !pts[s.0 as usize].contains(&obj))
                        .collect();
                    (targets.len(), need)
                })
                .collect::<Vec<_>>()
        });
        Some(chunks.into_iter().flatten().collect())
    }

    fn finish(self) -> Solution {
        let mut var_pts: HashMap<(MethodId, Local), Vec<ObjId>> = HashMap::new();
        let mut heap: HashMap<(ObjId, u32), Vec<ObjId>> = HashMap::new();
        for (i, key) in self.intern.nodes.iter().enumerate() {
            let set = &self.pts[i];
            if set.is_empty() {
                continue;
            }
            match *key {
                NodeKey::Var { method, local, .. } => match var_pts.entry((method, local)) {
                    Entry::Occupied(mut e) => e.get_mut().extend(set.iter().copied()),
                    Entry::Vacant(e) => {
                        e.insert(set.iter().copied().collect());
                    }
                },
                NodeKey::Ret { .. } => {}
                NodeKey::Heap { obj, field } => match heap.entry((obj, field)) {
                    Entry::Occupied(mut e) => e.get_mut().extend(set.iter().copied()),
                    Entry::Vacant(e) => {
                        e.insert(set.iter().copied().collect());
                    }
                },
            }
        }
        for v in var_pts.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        for v in heap.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        Solution {
            objs: self.objs,
            var_pts,
            heap,
        }
    }
}
