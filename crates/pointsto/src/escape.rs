//! Thread-escape analysis: which abstract objects are reachable from more
//! than one modeled thread.
//!
//! Chord's race detector only reports pairs on *escaped* objects; after
//! threadification the same check applies with modeled threads (§5). An
//! object is shared when at least two modeled threads can reach it — from
//! a local of one of the thread's methods, or transitively through heap
//! field edges.

use crate::analysis::PointsTo;
use crate::tables::ObjId;
use nadroid_ir::{Local, Program};
use nadroid_threadify::{ThreadId, ThreadModel};
use std::collections::HashSet;

/// Result of the thread-escape analysis.
#[derive(Debug, Clone)]
pub struct Escape {
    /// Number of distinct modeled threads reaching each object.
    reach_count: Vec<u32>,
}

impl Escape {
    /// Compute reachability of every object from every modeled thread.
    #[must_use]
    pub fn compute(program: &Program, threads: &ThreadModel, pts: &PointsTo) -> Escape {
        let nobjs = pts.objs().len();
        let mut reach_count = vec![0u32; nobjs];
        let fields: Vec<u32> = program.field_ids().map(|f| f.raw()).collect();

        for (tid, _) in threads.threads() {
            let reached = Self::reach_of(program, threads, pts, tid, &fields);
            for o in reached {
                reach_count[o.0 as usize] += 1;
            }
        }
        Escape { reach_count }
    }

    /// The set of objects one thread can reach.
    fn reach_of(
        program: &Program,
        threads: &ThreadModel,
        pts: &PointsTo,
        tid: ThreadId,
        fields: &[u32],
    ) -> HashSet<ObjId> {
        let mut seen: HashSet<ObjId> = HashSet::new();
        let mut stack: Vec<ObjId> = Vec::new();
        for &m in threads.methods_of(tid) {
            let n = program.method(m).num_locals();
            for l in 0..n {
                for &o in pts.pts(m, Local(l)) {
                    if seen.insert(o) {
                        stack.push(o);
                    }
                }
            }
        }
        while let Some(o) = stack.pop() {
            for &f in fields {
                for &o2 in pts.field_pts(o, f) {
                    if seen.insert(o2) {
                        stack.push(o2);
                    }
                }
            }
        }
        seen
    }

    /// Whether an object is reachable from at least two modeled threads
    /// (thread-escaping).
    #[must_use]
    pub fn is_shared(&self, o: ObjId) -> bool {
        self.reach_count.get(o.0 as usize).copied().unwrap_or(0) >= 2
    }

    /// Number of modeled threads reaching the object.
    #[must_use]
    pub fn reach_count(&self, o: ObjId) -> u32 {
        self.reach_count.get(o.0 as usize).copied().unwrap_or(0)
    }
}
