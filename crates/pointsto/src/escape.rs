//! Thread-escape analysis: which abstract objects are reachable from more
//! than one modeled thread.
//!
//! Chord's race detector only reports pairs on *escaped* objects; after
//! threadification the same check applies with modeled threads (§5). An
//! object is shared when at least two modeled threads can reach it — from
//! a local of one of the thread's methods, or transitively through heap
//! field edges.

use crate::analysis::PointsTo;
use crate::tables::ObjId;
use nadroid_ir::{Local, Program};
use nadroid_threadify::{ThreadId, ThreadModel};

/// Result of the thread-escape analysis.
#[derive(Debug, Clone)]
pub struct Escape {
    /// Number of distinct modeled threads reaching each object.
    reach_count: Vec<u32>,
}

impl Escape {
    /// Compute reachability of every object from every modeled thread.
    #[must_use]
    pub fn compute(program: &Program, threads: &ThreadModel, pts: &PointsTo) -> Escape {
        let nobjs = pts.objs().len();
        let mut reach_count = vec![0u32; nobjs];

        // Field identity is irrelevant to escape, so collapse the heap
        // into one adjacency list per object up front. The previous
        // formulation probed (object × every program field) in a hash
        // map per traversal step — by far the suite's hottest loop.
        let mut heap_succ: Vec<Vec<ObjId>> = vec![Vec::new(); nobjs];
        for (o, targets) in pts.heap_entries() {
            heap_succ[o.0 as usize].extend_from_slice(targets);
        }

        let mut seen = vec![false; nobjs];
        let mut stack: Vec<ObjId> = Vec::new();
        for (tid, _) in threads.threads() {
            seen.fill(false);
            Self::reach_of(program, threads, pts, tid, &heap_succ, &mut seen, &mut stack);
            for (o, s) in seen.iter().enumerate() {
                reach_count[o] += u32::from(*s);
            }
        }
        if nadroid_obs::recording() {
            nadroid_obs::counter("escape.objects", nobjs as u64);
            let shared = reach_count.iter().filter(|&&c| c >= 2).count();
            nadroid_obs::counter("escape.shared", shared as u64);
        }
        Escape { reach_count }
    }

    /// Mark the objects one thread can reach in `seen` (pre-cleared).
    fn reach_of(
        program: &Program,
        threads: &ThreadModel,
        pts: &PointsTo,
        tid: ThreadId,
        heap_succ: &[Vec<ObjId>],
        seen: &mut [bool],
        stack: &mut Vec<ObjId>,
    ) {
        for &m in threads.methods_of(tid) {
            let n = program.method(m).num_locals();
            for l in 0..n {
                for &o in pts.pts(m, Local(l)) {
                    if !seen[o.0 as usize] {
                        seen[o.0 as usize] = true;
                        stack.push(o);
                    }
                }
            }
        }
        while let Some(o) = stack.pop() {
            for &o2 in &heap_succ[o.0 as usize] {
                if !seen[o2.0 as usize] {
                    seen[o2.0 as usize] = true;
                    stack.push(o2);
                }
            }
        }
    }

    /// Whether an object is reachable from at least two modeled threads
    /// (thread-escaping).
    #[must_use]
    pub fn is_shared(&self, o: ObjId) -> bool {
        self.reach_count.get(o.0 as usize).copied().unwrap_or(0) >= 2
    }

    /// Number of modeled threads reaching the object.
    #[must_use]
    pub fn reach_count(&self, o: ObjId) -> u32 {
        self.reach_count.get(o.0 as usize).copied().unwrap_or(0)
    }
}
