//! Soundness fuzzer: generate random applications and check the paper's
//! central claim — the sound filters (MHB, IG, IA) never prune a
//! (use, free) pair the schedule explorer can witness.
//!
//! Run with `cargo run --release -p nadroid-bench --bin soundness_fuzz [iterations]`.

use nadroid_core::{analyze, AnalysisConfig};
use nadroid_corpus::{generate, AppSpec, PatternKind};
use nadroid_dynamic::{explore, ExploreConfig, Goal};
use rand::{Rng, SeedableRng};

fn main() {
    let iterations: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xda7a);
    let mut pairs_checked = 0usize;
    let mut violations = 0usize;

    for i in 0..iterations {
        // Random small app: a mix of every pattern kind, 0-2 instances.
        let mut spec = AppSpec::new(format!("Fuzz{i}"), rng.r#gen());
        for &kind in PatternKind::all() {
            spec = spec.with(kind, rng.gen_range(0..=1));
        }
        let app = generate(&spec);
        let analysis = analyze(&app.program, &AnalysisConfig::default());
        for outcome in analysis.sound_outcomes() {
            let Some(filter) = outcome.pruned_by else {
                continue;
            };
            let w = &outcome.warning;
            pairs_checked += 1;
            let witness = explore(
                &app.program,
                Goal::Pair {
                    use_instr: w.use_access.instr,
                    free_instr: w.free_access.instr,
                },
                ExploreConfig::default(),
            );
            if let Some(witness) = witness {
                violations += 1;
                eprintln!(
                    "SOUNDNESS VIOLATION: {filter} pruned {} / {} but a witness exists:",
                    app.program.describe_instr(w.use_access.instr),
                    app.program.describe_instr(w.free_access.instr)
                );
                for line in &witness.trace {
                    eprintln!("  {line}");
                }
            }
        }
        if (i + 1) % 10 == 0 {
            println!(
                "{} apps fuzzed, {pairs_checked} sound-pruned pairs checked ...",
                i + 1
            );
        }
    }
    println!(
        "done: {iterations} apps, {pairs_checked} sound-pruned pairs, {violations} violation(s)"
    );
    assert_eq!(violations, 0, "the sound filters must be sound");
}
