//! The §2.3 coverage argument, quantified: a CAFA-style trace-based
//! dynamic detector only finds races its input generator happens to
//! exercise, while the static pipeline sees all of them. This binary
//! compares the dynamic detector's coverage (union of races over N
//! random schedules) against the static detector's findings on the
//! paper-example models and a generated multi-race app.
//!
//! Run with `cargo run --release -p nadroid-bench --bin coverage`.

use nadroid_bench::render_table;
use nadroid_core::{analyze, AnalysisConfig};
use nadroid_corpus::{generate, paper, AppSpec, PatternKind};
use nadroid_dynamic::cafa;
use nadroid_ir::Program;

fn static_pairs(program: &Program) -> Vec<(nadroid_ir::InstrId, nadroid_ir::InstrId)> {
    let analysis = analyze(program, &AnalysisConfig::default());
    let mut pairs: Vec<_> = analysis.survivors().iter().map(|w| w.pair()).collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

fn main() {
    let many_races = generate(
        &AppSpec::new("ManyRaces", 3)
            .with(PatternKind::HarmfulEcEc, 4)
            .with(PatternKind::HarmfulEcPc, 3)
            .with(PatternKind::HarmfulCNt, 3),
    );
    let apps: Vec<(&str, Program)> = vec![
        ("ConnectBot", paper::connectbot()),
        ("FireFox", paper::firefox()),
        ("ManyRaces", many_races.program),
    ];

    let mut rows = Vec::new();
    for (name, program) in &apps {
        let statically = static_pairs(program);
        // Larger apps need bigger per-schedule budgets before random
        // exploration reaches any racy pair at all.
        let (steps, events) = if *name == "ManyRaces" {
            (1500, 30)
        } else {
            (400, 10)
        };
        for schedules in [1u64, 5, 20, 100] {
            let dynamic = cafa::coverage(program, schedules, 42, steps, events);
            let covered = statically
                .iter()
                .filter(|(u, f)| {
                    dynamic
                        .iter()
                        .any(|r| r.use_instr == *u && r.free_instr == *f)
                })
                .count();
            rows.push(vec![
                (*name).to_owned(),
                schedules.to_string(),
                format!("{covered}/{}", statically.len()),
            ]);
        }
    }
    println!("Dynamic (CAFA-style) coverage vs static findings (§2.3):");
    println!("(races found by the trace-based detector over N random schedules,");
    println!(" out of the pairs the static pipeline reports)");
    println!();
    println!(
        "{}",
        render_table(&["app", "schedules", "covered/static"], &rows)
    );
    println!(
        "The paper's instance of this gap: CAFA reported no harmful callback races in\n\
         ConnectBot, while nAdroid found 13 (§2.3)."
    );
}
