//! Refutation-study bench: analyze the dedicated refutation corpus
//! ([`nadroid_corpus::refute_specs`]) and write `BENCH_refute.json`
//! (schema `nadroid-refute-bench/1`).
//!
//! The document records a Figure-5-style stage tally extended by the
//! refutation stage (potential → after sound → after unsound →
//! refuted → after refutation), the per-reason refutation counts, and
//! one row per app with its post-refutation surviving warning ids and
//! their `wp:` digest — all deterministic, so the perf gate compares
//! them exactly. The run is also appended to `Result/ledger.jsonl` as
//! a `refute` record.
//!
//! Self-checks (exit nonzero on violation):
//! - every planted `Refute*` cluster is refuted, with exactly the
//!   reason its certified expectation declares,
//! - every kept control and harmful cluster survives refutation,
//! - all six refutable pattern kinds are exercised corpus-wide.
//!
//! Usage: `refute_bench [--threads <N>] [--out <file>]`

use nadroid_bench::analyze_program;
use nadroid_core::warning_population_digest;
use nadroid_corpus::{generate, refute_specs, AppSpec, Expectation, PatternKind};
use nadroid_detector::warning_id;
use nadroid_filters::refute::RefutationReason;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// One app's refutation sweep.
struct AppRow {
    name: String,
    potential: usize,
    after_sound: usize,
    after_unsound: usize,
    refuted: usize,
    after_refutation: usize,
    reasons: BTreeMap<&'static str, usize>,
    micros: u128,
    /// Sorted post-refutation surviving ids and their digest.
    surviving_ids: Vec<String>,
    digest: String,
}

/// What a spec's certified expectations predict for its sweep.
struct Expected {
    refuted: usize,
    survivors: usize,
    reasons: BTreeMap<&'static str, usize>,
    refute_kinds: Vec<PatternKind>,
}

fn expected_of(spec: &AppSpec) -> Expected {
    let mut e = Expected {
        refuted: 0,
        survivors: 0,
        reasons: BTreeMap::new(),
        refute_kinds: Vec::new(),
    };
    for &(kind, n) in &spec.counts {
        match kind.expectation() {
            Expectation::Refuted(reason) => {
                e.refuted += n;
                *e.reasons.entry(reason.name()).or_insert(0) += n;
                e.refute_kinds.push(kind);
            }
            Expectation::Harmful(_) | Expectation::FalsePositive(_) => e.survivors += n,
            _ => {}
        }
    }
    e
}

/// Analyze one refutation-corpus app and check it against its spec's
/// certified expectations. Returns the row plus any violations.
fn run_app(spec: &AppSpec) -> (AppRow, Vec<String>) {
    let app = generate(spec);
    let start = Instant::now();
    let analysis = analyze_program(&app.program);
    let micros = start.elapsed().as_micros();
    let s = analysis.summary();

    let mut reasons: BTreeMap<&'static str, usize> = BTreeMap::new();
    for (_, r) in analysis.refutations() {
        *reasons.entry(r.reason.name()).or_insert(0) += 1;
    }
    let program = analysis.program();
    let threads = analysis.threads();
    let mut surviving_ids: Vec<String> = analysis
        .survivors()
        .iter()
        .map(|w| warning_id(program, threads, w))
        .collect();
    surviving_ids.sort_unstable();
    let digest = warning_population_digest(&surviving_ids);

    let expected = expected_of(spec);
    let mut violations = Vec::new();
    if s.refuted != expected.refuted {
        violations.push(format!(
            "{}: {} warning(s) refuted, expected {} (one per planted Refute* cluster)",
            spec.name, s.refuted, expected.refuted
        ));
    }
    if s.after_refutation != expected.survivors {
        violations.push(format!(
            "{}: {} survivor(s) after refutation, expected {} (kept controls must stand)",
            spec.name, s.after_refutation, expected.survivors
        ));
    }
    if reasons != expected.reasons {
        violations.push(format!(
            "{}: refutation reasons {reasons:?}, expected {:?}",
            spec.name, expected.reasons
        ));
    }

    (
        AppRow {
            name: spec.name.clone(),
            potential: s.potential,
            after_sound: s.after_sound,
            after_unsound: s.after_unsound,
            refuted: s.refuted,
            after_refutation: s.after_refutation,
            reasons,
            micros,
            surviving_ids,
            digest,
        },
        violations,
    )
}

fn main() {
    let mut threads = 1usize;
    let mut out_path = "BENCH_refute.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads <N>");
            }
            "--out" => out_path = args.next().expect("--out <file>"),
            other => panic!("unknown argument `{other}`"),
        }
    }

    let specs = refute_specs();
    eprintln!("refute_bench: {} apps, threads {threads}", specs.len());

    let wall_start = Instant::now();
    let (apps, violations): (Vec<AppRow>, Vec<Vec<String>>) =
        nadroid_par::with_threads(threads, || {
            specs
                .iter()
                .map(|spec| {
                    let (a, v) = run_app(spec);
                    eprintln!(
                        "  {}: {} potential -> {} after unsound -> {} refuted -> {} reported, {}ms",
                        a.name,
                        a.potential,
                        a.after_unsound,
                        a.refuted,
                        a.after_refutation,
                        a.micros / 1000
                    );
                    (a, v)
                })
                .unzip()
        });
    let wall_secs = wall_start.elapsed().as_secs_f64();
    let mut violations: Vec<String> = violations.into_iter().flatten().collect();

    // Corpus-wide coverage: every refutable pattern kind must actually
    // be exercised, or the study quantifies less than it claims.
    let exercised: Vec<PatternKind> = specs
        .iter()
        .flat_map(|s| expected_of(s).refute_kinds)
        .collect();
    for &kind in PatternKind::all() {
        if matches!(kind.expectation(), Expectation::Refuted(_)) && !exercised.contains(&kind) {
            violations.push(format!("pattern {kind:?} is never planted in refute_specs()"));
        }
    }

    let potential: usize = apps.iter().map(|a| a.potential).sum();
    let after_sound: usize = apps.iter().map(|a| a.after_sound).sum();
    let after_unsound: usize = apps.iter().map(|a| a.after_unsound).sum();
    let refuted: usize = apps.iter().map(|a| a.refuted).sum();
    let after_refutation: usize = apps.iter().map(|a| a.after_refutation).sum();
    let mut reasons: BTreeMap<&'static str, usize> = BTreeMap::new();
    for r in RefutationReason::ALL {
        reasons.insert(r.name(), 0);
    }
    for a in &apps {
        for (k, n) in &a.reasons {
            *reasons.entry(k).or_insert(0) += n;
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"nadroid-refute-bench/1\",");
    let _ = writeln!(out, "  \"apps\": {},", apps.len());
    let _ = writeln!(out, "  \"cores\": {cores},");
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(out, "  \"wall_secs\": {wall_secs:.6},");
    let _ = writeln!(
        out,
        "  \"tally\": {{ \"potential\": {potential}, \"after_sound\": {after_sound}, \
         \"after_unsound\": {after_unsound}, \"refuted\": {refuted}, \
         \"after_refutation\": {after_refutation} }},"
    );
    let reason_fields = reasons
        .iter()
        .map(|(k, n)| format!("\"{k}\": {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(out, "  \"reasons\": {{ {reason_fields} }},");
    let _ = writeln!(out, "  \"per_app\": [");
    for (i, a) in apps.iter().enumerate() {
        let ids = a
            .surviving_ids
            .iter()
            .map(|id| format!("\"{id}\""))
            .collect::<Vec<_>>()
            .join(", ");
        let comma = if i + 1 < apps.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{ \"app\": \"{}\", \"potential\": {}, \"after_sound\": {}, \
             \"after_unsound\": {}, \"refuted\": {}, \"after_refutation\": {}, \
             \"micros\": {}, \"digest\": \"{}\", \"surviving_ids\": [{ids}] }}{comma}",
            a.name,
            a.potential,
            a.after_sound,
            a.after_unsound,
            a.refuted,
            a.after_refutation,
            a.micros,
            a.digest
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    std::fs::write(&out_path, &out).expect("write bench json");

    // One step: regenerate the BENCH document *and* append the run to
    // the longitudinal ledger.
    match nadroid_core::parse_json(&out).and_then(|v| nadroid_ledger::record_from_bench_refute(&v))
    {
        Ok(mut rec) => {
            rec.note = format!("refute_bench --threads {threads}");
            let ledger_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(nadroid_ledger::DEFAULT_PATH);
            match nadroid_ledger::append(&ledger_path, &rec) {
                Ok(()) => eprintln!("appended refute record to {}", ledger_path.display()),
                Err(e) => eprintln!("could not append ledger record: {e}"),
            }
        }
        Err(e) => eprintln!("could not build ledger record: {e}"),
    }

    eprintln!(
        "refute_bench: {potential} potential -> {after_sound} after sound -> {after_unsound} \
         after unsound -> {refuted} refuted -> {after_refutation} reported, {wall_secs:.2}s"
    );
    println!("wrote {out_path}");

    if !violations.is_empty() {
        for v in &violations {
            eprintln!("refute_bench: FAIL — {v}");
        }
        std::process::exit(1);
    }
}
