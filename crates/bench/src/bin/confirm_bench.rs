//! Schedule-synthesis bench: confirm every surviving warning of the
//! 27-app Table 1 corpus and write `BENCH_confirm.json` (schema
//! `nadroid-confirm-bench/1`).
//!
//! The document records the corpus-wide verdict tally, total explored
//! states, wall clock, and one row per app with its verdict counts and
//! the `wp:`-digested population of *confirmed* warning ids — all
//! deterministic, so the perf gate compares them exactly. The run is
//! also appended to `Result/ledger.jsonl` as a `confirm` record.
//!
//! Self-checks (exit nonzero on violation):
//! - at least one warning corpus-wide is `confirmed`,
//! - at least one warning corpus-wide is `infeasible`,
//! - every confirmed witness schedule, replayed from scratch on a
//!   freshly generated program, reproduces an NPE whose null load and
//!   null store are exactly the warning's use and free instructions.
//!
//! Usage: `confirm_bench [--threads <N>] [--out <file>] [--only <substr>]`
//! (`--only` restricts the sweep to matching app names for debugging;
//! restricted runs skip the corpus-wide self-checks and the ledger.)

use nadroid_bench::analyze_program;
use nadroid_confirm::{confirm_survivors, ConfirmConfig, ConfirmOutcome};
use nadroid_core::warning_population_digest;
use nadroid_corpus::{generate, spec_for, table1_rows, PaperRow};
use nadroid_detector::warning_id;
use nadroid_dynamic::{decode_schedule, replay};
use std::fmt::Write as _;
use std::time::Instant;

/// One app's confirmation sweep.
struct AppRow {
    name: &'static str,
    survivors: usize,
    confirmed: usize,
    unconfirmed: usize,
    infeasible: usize,
    states: u64,
    micros: u128,
    /// Sorted confirmed warning ids and their order-invariant digest.
    confirmed_ids: Vec<String>,
    digest: String,
}

/// Confirm one corpus row and replay-verify every confirmed witness.
/// Returns the row plus any replay failures (empty on a clean run).
fn run_app(row: &PaperRow, cfg: &ConfirmConfig) -> (AppRow, Vec<String>) {
    let app = generate(&spec_for(row));
    let start = Instant::now();
    let analysis = analyze_program(&app.program);
    let outcome: ConfirmOutcome = confirm_survivors(&analysis, cfg);
    let micros = start.elapsed().as_micros();

    let mut failures = Vec::new();
    let mut confirmed_ids = Vec::new();
    let (mut confirmed, mut unconfirmed, mut infeasible) = (0usize, 0usize, 0usize);
    let mut states = 0u64;
    for r in &outcome.results {
        states += r.confirmation.states_explored;
        match r.confirmation.verdict {
            nadroid_core::ConfirmVerdict::Confirmed => {
                confirmed += 1;
                confirmed_ids.push(r.id.clone());
                // Cross-check the witness: the attached schedule must
                // replay to the exact (use, free) pair it claims.
                if let Err(e) = verify_replay(&analysis, r) {
                    failures.push(format!("{}/{}: {e}", row.name, r.id));
                }
            }
            nadroid_core::ConfirmVerdict::Unconfirmed => unconfirmed += 1,
            nadroid_core::ConfirmVerdict::Infeasible => infeasible += 1,
        }
    }
    confirmed_ids.sort_unstable();
    let digest = warning_population_digest(&confirmed_ids);
    (
        AppRow {
            name: row.name,
            survivors: outcome.results.len(),
            confirmed,
            unconfirmed,
            infeasible,
            states,
            micros,
            confirmed_ids,
            digest,
        },
        failures,
    )
}

/// Replay one confirmed witness schedule and check the manifested NPE
/// against the warning's static use/free sites.
fn verify_replay(
    analysis: &nadroid_core::Analysis<'_>,
    r: &nadroid_confirm::WarningConfirmation,
) -> Result<(), String> {
    let program = analysis.program();
    let threads = analysis.threads();
    let w = analysis
        .warnings()
        .iter()
        .find(|w| warning_id(program, threads, w) == r.id)
        .ok_or("confirmed id not among the analysis warnings")?;
    let text = r
        .confirmation
        .schedule
        .as_deref()
        .ok_or("confirmed verdict without a schedule")?;
    let steps = decode_schedule(text).map_err(|e| format!("schedule does not decode: {e}"))?;
    let world = replay(program, &steps);
    let npe = world
        .npe
        .ok_or_else(|| format!("schedule replayed {} step(s) without an NPE", steps.len()))?;
    if npe.loaded_from != Some(w.use_access.instr) || npe.freed_by != Some(w.free_access.instr) {
        return Err(format!(
            "NPE does not match the warning: loaded_from {:?} freed_by {:?}, \
             expected use {:?} / free {:?}",
            npe.loaded_from, npe.freed_by, w.use_access.instr, w.free_access.instr
        ));
    }
    Ok(())
}

fn main() {
    let mut threads = 1usize;
    let mut out_path = "BENCH_confirm.json".to_owned();
    let mut only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads <N>");
            }
            "--out" => out_path = args.next().expect("--out <file>"),
            "--only" => only = Some(args.next().expect("--only <substr>")),
            other => panic!("unknown argument `{other}`"),
        }
    }

    let mut rows = table1_rows();
    if let Some(pat) = &only {
        rows.retain(|r| r.name.to_ascii_lowercase().contains(&pat.to_ascii_lowercase()));
        assert!(!rows.is_empty(), "--only {pat:?} matched no corpus app");
    }
    let cfg = ConfirmConfig::default();
    eprintln!(
        "confirm_bench: {} apps, threads {threads}",
        rows.len()
    );

    let wall_start = Instant::now();
    let (apps, failures): (Vec<AppRow>, Vec<Vec<String>>) = nadroid_par::with_threads(threads, || {
        rows.iter()
            .map(|row| {
                let (a, f) = run_app(row, &cfg);
                eprintln!(
                    "  {}: {} survivor(s) -> {}/{}/{} c/u/i, {} state(s), {}ms",
                    a.name,
                    a.survivors,
                    a.confirmed,
                    a.unconfirmed,
                    a.infeasible,
                    a.states,
                    a.micros / 1000
                );
                (a, f)
            })
            .unzip()
    });
    let wall_secs = wall_start.elapsed().as_secs_f64();
    let failures: Vec<String> = failures.into_iter().flatten().collect();

    let confirmed: usize = apps.iter().map(|a| a.confirmed).sum();
    let unconfirmed: usize = apps.iter().map(|a| a.unconfirmed).sum();
    let infeasible: usize = apps.iter().map(|a| a.infeasible).sum();
    let survivors: usize = apps.iter().map(|a| a.survivors).sum();
    let states: u64 = apps.iter().map(|a| a.states).sum();
    let replays_verified = confirmed - failures.len();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let throughput = if wall_secs > 0.0 {
        survivors as f64 / wall_secs
    } else {
        0.0
    };

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"nadroid-confirm-bench/1\",");
    let _ = writeln!(out, "  \"apps\": {},", apps.len());
    let _ = writeln!(out, "  \"cores\": {cores},");
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(out, "  \"wall_secs\": {wall_secs:.6},");
    let _ = writeln!(out, "  \"throughput_warnings_per_sec\": {throughput:.2},");
    let _ = writeln!(out, "  \"survivors\": {survivors},");
    let _ = writeln!(
        out,
        "  \"tally\": {{ \"confirmed\": {confirmed}, \"unconfirmed\": {unconfirmed}, \"infeasible\": {infeasible} }},"
    );
    let _ = writeln!(out, "  \"states\": {states},");
    let _ = writeln!(out, "  \"replays_verified\": {replays_verified},");
    let _ = writeln!(out, "  \"per_app\": [");
    for (i, a) in apps.iter().enumerate() {
        let ids = a
            .confirmed_ids
            .iter()
            .map(|id| format!("\"{id}\""))
            .collect::<Vec<_>>()
            .join(", ");
        let comma = if i + 1 < apps.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{ \"app\": \"{}\", \"survivors\": {}, \"confirmed\": {}, \"unconfirmed\": {}, \
             \"infeasible\": {}, \"states\": {}, \"micros\": {}, \"digest\": \"{}\", \
             \"confirmed_ids\": [{ids}] }}{comma}",
            a.name, a.survivors, a.confirmed, a.unconfirmed, a.infeasible, a.states, a.micros,
            a.digest
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    std::fs::write(&out_path, &out).expect("write bench json");

    // One step: regenerate the BENCH document *and* append the run to
    // the longitudinal ledger. Restricted (`--only`) runs never land in
    // the ledger — their tallies are not comparable to full sweeps.
    match only.is_some() {
        true => eprintln!("confirm_bench: --only run, skipping the ledger"),
        false => match nadroid_core::parse_json(&out)
            .and_then(|v| nadroid_ledger::record_from_bench_confirm(&v))
        {
            Ok(mut rec) => {
                rec.note = format!("confirm_bench --threads {threads}");
                let ledger_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                    .join("../..")
                    .join(nadroid_ledger::DEFAULT_PATH);
                match nadroid_ledger::append(&ledger_path, &rec) {
                    Ok(()) => eprintln!("appended confirm record to {}", ledger_path.display()),
                    Err(e) => eprintln!("could not append ledger record: {e}"),
                }
            }
            Err(e) => eprintln!("could not build ledger record: {e}"),
        },
    }

    eprintln!(
        "confirm_bench: {confirmed} confirmed / {unconfirmed} unconfirmed / {infeasible} infeasible \
         over {survivors} survivor(s), {states} state(s), {wall_secs:.2}s"
    );
    println!("wrote {out_path}");

    let mut failed = false;
    for f in &failures {
        eprintln!("confirm_bench: FAIL — replay mismatch: {f}");
        failed = true;
    }
    if only.is_none() && confirmed == 0 {
        eprintln!("confirm_bench: FAIL — no warning confirmed anywhere in the corpus");
        failed = true;
    }
    if only.is_none() && infeasible == 0 {
        eprintln!("confirm_bench: FAIL — no warning proven infeasible anywhere in the corpus");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
