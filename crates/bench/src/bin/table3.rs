//! Regenerate Table 3: comparison with DEvA on the train-group models.
//!
//! For every warning DEvA reports, the harness checks whether nAdroid
//! detects the same (use, free) pair and whether its happens-before
//! filters prune it; it then lists the harmful UAFs nAdroid finds that
//! DEvA misses entirely (the Figure 1 examples).
//!
//! Run with `cargo run --release -p nadroid-bench --bin table3`.

use nadroid_bench::render_table;
use nadroid_core::{analyze, AnalysisConfig};
use nadroid_corpus::paper;
use nadroid_deva::run_deva;
use nadroid_ir::Program;

fn main() {
    let apps: Vec<(&str, Program)> = vec![
        ("Music", paper::table3_music()),
        ("ConnectBot", paper::connectbot()),
        ("FireFox", paper::firefox()),
        // The paper's prototype reported "Not detected" here (no Fragment
        // support); the fragment extension detects and MHB-filters it.
        ("Browser", paper::browser_fragment()),
    ];

    let mut rows = Vec::new();
    let mut deva_total = 0usize;
    let mut deva_filtered = 0usize;
    for (name, program) in &apps {
        let deva = run_deva(program);
        let analysis = analyze(program, &AnalysisConfig::default());
        let nadroid_pairs: Vec<_> = analysis.warnings().iter().map(|w| w.pair()).collect();
        let surviving: Vec<_> = analysis.survivors().iter().map(|w| w.pair()).collect();
        for w in &deva {
            deva_total += 1;
            let detected = nadroid_pairs.contains(&w.pair());
            let filtered = detected && !surviving.contains(&w.pair());
            if filtered {
                deva_filtered += 1;
            }
            rows.push(vec![
                (*name).to_owned(),
                format!(
                    "{}.{}",
                    program.class(program.field(w.field).owner()).name(),
                    program.field(w.field).name()
                ),
                program.method(w.use_handler).name().to_owned(),
                program.method(w.free_handler).name().to_owned(),
                if detected {
                    if filtered {
                        "Detected & Filtered"
                    } else {
                        "Detected & Reported"
                    }
                } else {
                    "Not detected"
                }
                .to_owned(),
            ]);
        }
    }
    println!("Table 3 — DEvA warnings vs nAdroid's verdicts (train-group models).");
    println!();
    println!(
        "{}",
        render_table(
            &["app", "field", "use callback", "free callback", "nAdroid"],
            &rows
        )
    );
    println!(
        "DEvA reported {deva_total} warnings; nAdroid's happens-before filters prune {deva_filtered} of them."
    );
    println!();

    // The other direction: harmful UAFs nAdroid reports that DEvA misses.
    println!("Harmful UAFs nAdroid reports that DEvA misses (Figure 1 examples):");
    let mut missed_rows = Vec::new();
    for (name, program) in &apps {
        let deva_pairs: Vec<_> = run_deva(program)
            .iter()
            .map(nadroid_deva::DevaWarning::pair)
            .collect();
        let analysis = analyze(program, &AnalysisConfig::default());
        for r in analysis.rendered_survivors() {
            missed_rows.push(vec![
                (*name).to_owned(),
                r.field.clone(),
                r.use_site.clone(),
                r.free_site.clone(),
                r.pair_type.to_string(),
            ]);
        }
        let _ = deva_pairs;
    }
    println!(
        "{}",
        render_table(&["app", "field", "use", "free", "type"], &missed_rows)
    );
}
