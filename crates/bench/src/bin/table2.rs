//! Regenerate Table 2: the false-negative study. 28 artificial UAF
//! ordering violations are injected into the 8 DroidRacer apps at the
//! pair types the paper reports; the harness checks which injections
//! nAdroid misses and why (unanalyzed code vs unsound filters).
//!
//! Run with `cargo run --release -p nadroid-bench --bin table2`.

use nadroid_bench::{cluster_of, render_table};
use nadroid_core::{analyze, AnalysisConfig};
use nadroid_corpus::{generate, table2_rows, Expectation, PatternKind};

fn main() {
    let mut rows_out = Vec::new();
    let mut totals = (0usize, 0usize, 0usize);
    for row in table2_rows() {
        eprintln!("injecting into {} ...", row.name);
        let spec = row.spec();
        let app = generate(&spec);
        let analysis = analyze(&app.program, &AnalysisConfig::default());

        // Ground truth: which clusters are injected UAFs.
        let injected: Vec<(usize, PatternKind)> = app
            .planted
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, k)| k.is_real_uaf() || *k == PatternKind::MissedOpaque)
            .collect();

        // Which clusters produced at least one detected pair.
        let detected: Vec<usize> = analysis
            .warnings()
            .iter()
            .filter_map(|w| cluster_of(&app.program, w))
            .collect();
        // Which clusters survived all filters.
        let survived: Vec<usize> = analysis
            .survivors()
            .iter()
            .filter_map(|w| cluster_of(&app.program, w))
            .collect();

        let mut missed_detection = 0usize;
        let mut pruned_unsound = 0usize;
        let mut found = 0usize;
        for &(idx, kind) in &injected {
            if !detected.contains(&idx) {
                missed_detection += 1;
                assert_eq!(
                    kind,
                    PatternKind::MissedOpaque,
                    "only opaque shapes are missed"
                );
            } else if !survived.contains(&idx) {
                pruned_unsound += 1;
                assert!(
                    matches!(kind.expectation(), Expectation::PrunedBy(f) if !f.is_sound()),
                    "real injected UAFs are only lost to unsound filters"
                );
            } else {
                found += 1;
            }
        }
        totals.0 += injected.len();
        totals.1 += missed_detection;
        totals.2 += pruned_unsound;
        rows_out.push(vec![
            row.name.to_owned(),
            injected.len().to_string(),
            found.to_string(),
            format!("{missed_detection} ({})", row.missed_by_detection),
            format!("{pruned_unsound} ({})", row.pruned_by_unsound),
        ]);
    }
    println!("Table 2 — false-negative analysis with injected UAF violations.");
    println!("Paper values in parentheses (28 injected; 2 missed by detection; 3 pruned by unsound filters).");
    println!();
    println!(
        "{}",
        render_table(
            &[
                "app",
                "injected",
                "found",
                "missed-by-detection",
                "pruned-by-unsound"
            ],
            &rows_out
        )
    );
    println!(
        "totals: injected={} missed-by-detection={} pruned-by-unsound={}",
        totals.0, totals.1, totals.2
    );
}
