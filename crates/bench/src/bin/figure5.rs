//! Regenerate Figure 5: effectiveness of the sound and unsound filters,
//! each applied individually, over the 20 test applications.
//!
//! Run with `cargo run --release -p nadroid-bench --bin figure5`.

use nadroid_bench::{analyze_program, filter_effectiveness, render_table, FilterEffect};
use nadroid_corpus::{generate, spec_for, table1_rows, AppGroup};
use nadroid_detector::warning_id;
use nadroid_filters::FilterKind;

fn main() {
    let rows = table1_rows();
    let test_rows: Vec<_> = rows
        .iter()
        .filter(|r| r.group == AppGroup::Test)
        .collect();
    // Generate, then analyze, each app on its own thread — apps are
    // independent, and the two scopes keep `apps` alive for the
    // program-borrowing `Analysis` values.
    let apps: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = test_rows
            .iter()
            .map(|r| {
                scope.spawn(move || {
                    eprintln!("generating {} ...", r.name);
                    generate(&spec_for(r))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("generation thread panicked"))
            .collect::<Vec<_>>()
    });
    let analyses: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = apps
            .iter()
            .map(|a| scope.spawn(move || analyze_program(&a.program)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("analysis thread panicked"))
            .collect::<Vec<_>>()
    });
    let eff = filter_effectiveness(&analyses);

    println!("Figure 5 — filter effectiveness (20 test apps, each filter applied individually).");
    println!();
    println!(
        "(a) Sound filters, % of {} potential UAF pairs (paper: MHB 21, IG 66, IA 13, all 88):",
        eff.potential
    );
    let mut rows_a = Vec::new();
    for (i, &k) in FilterKind::sound().iter().enumerate() {
        rows_a.push(vec![
            k.to_string(),
            eff.sound_counts[i].to_string(),
            format!(
                "{:.1}%",
                FilterEffect::pct(eff.sound_counts[i], eff.potential)
            ),
        ]);
    }
    let all_sound = eff.potential - eff.after_sound;
    rows_a.push(vec![
        "All".into(),
        all_sound.to_string(),
        format!("{:.1}%", FilterEffect::pct(all_sound, eff.potential)),
    ]);
    println!("{}", render_table(&["filter", "pruned", "share"], &rows_a));

    println!(
        "(b) Unsound filters, % of {} remaining pairs (paper: mayHB 13, MA 26, UR 29, TT 15, all 70):",
        eff.after_sound
    );
    let mut rows_b = Vec::new();
    rows_b.push(vec![
        "mayHB".into(),
        eff.mayhb.to_string(),
        format!("{:.1}%", FilterEffect::pct(eff.mayhb, eff.after_sound)),
    ]);
    for (i, &k) in FilterKind::unsound().iter().enumerate() {
        if FilterKind::may_hb().contains(&k) {
            continue; // folded into the mayHB bar, as in the paper
        }
        rows_b.push(vec![
            k.to_string(),
            eff.unsound_counts[i].to_string(),
            format!(
                "{:.1}%",
                FilterEffect::pct(eff.unsound_counts[i], eff.after_sound)
            ),
        ]);
    }
    let all_unsound = eff.after_sound - eff.after_unsound;
    rows_b.push(vec![
        "All".into(),
        all_unsound.to_string(),
        format!("{:.1}%", FilterEffect::pct(all_unsound, eff.after_sound)),
    ]);
    println!("{}", render_table(&["filter", "pruned", "share"], &rows_b));

    println!(
        "combined reduction: {:.1}% of potential pairs pruned (paper: 96%)",
        FilterEffect::pct(eff.potential - eff.after_unsound, eff.potential)
    );

    // Stable ids of the surviving warnings — the handles `nadroid
    // explain` and the provenance JSON key everything on. Content-hashed,
    // so they are identical across reruns and parallel orderings.
    println!();
    println!("surviving warning ids (explain with `nadroid explain <app.dsl> <id>`):");
    for (app, analysis) in apps.iter().zip(&analyses) {
        for w in analysis.survivors() {
            println!(
                "  {}  {}",
                warning_id(&app.program, analysis.threads(), w),
                app.program.name()
            );
        }
    }

    // Per-app population digests — the same order-invariant hash the
    // run ledger records, so a `perf gate` population-drift verdict can
    // be matched against this driver's output by eye.
    println!();
    println!("per-app population digests (as recorded in Result/ledger.jsonl):");
    for (app, analysis) in apps.iter().zip(&analyses) {
        let mut ids: Vec<String> = analysis
            .survivors()
            .iter()
            .map(|w| warning_id(&app.program, analysis.threads(), w))
            .collect();
        ids.sort_unstable();
        println!(
            "  {}  {} ({} warning(s))",
            nadroid_core::warning_population_digest(&ids),
            app.program.name(),
            ids.len()
        );
    }
}
