//! Regenerate Table 1: the per-app result of nAdroid's UAF analysis —
//! filters, type of remaining UAFs, true harmful UAFs, and false-positive
//! causes — over the 27-app suite.
//!
//! Run with `cargo run --release -p nadroid-bench --bin table1`.

use nadroid_bench::{render_table, run_rows_parallel, write_csv, write_reports};
use nadroid_corpus::{table1_rows, AppGroup};

fn main() {
    let rows = table1_rows();
    eprintln!("analyzing {} apps in parallel ...", rows.len());
    let all_runs = run_rows_parallel(&rows);
    let mut out_rows = Vec::new();
    let mut runs = Vec::new();
    let mut totals = (0usize, 0usize, 0usize, 0usize);
    for (row, run) in rows.iter().zip(all_runs) {
        let types = run
            .types
            .iter()
            .map(|(t, n)| format!("{t}:{n}"))
            .collect::<Vec<_>>()
            .join(" ");
        let fp = run
            .fp
            .iter()
            .map(|(c, n)| format!("{c}:{n}"))
            .collect::<Vec<_>>()
            .join(" ");
        totals.0 += run.summary.potential;
        totals.1 += run.summary.after_sound;
        totals.2 += run.summary.after_unsound;
        totals.3 += run.harmful;
        let run_for_csv = run;
        let run = &run_for_csv;
        out_rows.push(vec![
            match row.group {
                AppGroup::Train => "train".to_owned(),
                AppGroup::Test => "test".to_owned(),
            },
            row.name.to_owned(),
            run.summary.loc.to_string(),
            run.summary.ec.to_string(),
            run.summary.pc.to_string(),
            run.summary.threads.to_string(),
            format!("{} ({})", run.summary.potential, row.potential),
            format!("{} ({})", run.summary.after_sound, row.after_sound),
            format!("{} ({})", run.summary.after_unsound, row.after_unsound),
            format!("{} ({})", run.harmful, row.harmful),
            types,
            fp,
        ]);
        runs.push(run_for_csv);
    }
    println!("Table 1 — nAdroid's UAF analysis per app.");
    println!(
        "Counts are on the sqrt-scaled synthetic models; the paper's values are in parentheses."
    );
    println!();
    println!(
        "{}",
        render_table(
            &[
                "grp",
                "app",
                "LOC",
                "EC",
                "PC",
                "T",
                "potential",
                "after-sound",
                "after-unsound",
                "harmful",
                "types",
                "FP causes"
            ],
            &out_rows
        )
    );
    println!(
        "totals: potential={} after-sound={} after-unsound={} harmful={} (paper harmful: 88)",
        totals.0, totals.1, totals.2, totals.3
    );
    let csv = std::path::Path::new("Result/ResultAnalysis.csv");
    match write_csv(&runs, csv) {
        Ok(()) => println!("wrote {}", csv.display()),
        Err(e) => eprintln!("could not write {}: {e}", csv.display()),
    }
    let reports = std::path::Path::new("Result/reports");
    match write_reports(&runs, reports) {
        Ok(()) => println!(
            "wrote {} per-app run reports under {}",
            runs.len(),
            reports.display()
        ),
        Err(e) => eprintln!("could not write reports under {}: {e}", reports.display()),
    }
}
