//! Artifact-style `run-all` (appendix A.4 of the paper): regenerate
//! every table and figure in one go, writing the CSV artifact.
//!
//! Run with `cargo run --release -p nadroid-bench --bin run_all`.

use std::process::Command;

fn main() {
    let bins = [
        "table1", "figure5", "table2", "table3", "timing", "ablate", "coverage", "harmful",
    ];
    let me = std::env::current_exe().expect("current exe");
    let dir = me.parent().expect("bin dir");
    for bin in bins {
        println!("===================== {bin} =====================");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to run {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
        println!();
    }
    println!("run-all complete; Result/ResultAnalysis.csv regenerated.");
}
