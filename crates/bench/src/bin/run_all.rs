//! Artifact-style `run-all` (appendix A.4 of the paper): regenerate
//! every table and figure in one go, writing the CSV artifact.
//!
//! The child binaries are independent, so they run concurrently (one OS
//! thread each, capturing output) and their reports are printed in the
//! canonical order once all complete.
//!
//! Run with `cargo run --release -p nadroid-bench --bin run_all`.

use std::process::{Command, Output};

fn main() {
    let bins = [
        "table1", "figure5", "table2", "table3", "timing", "ablate", "coverage", "harmful",
    ];
    let me = std::env::current_exe().expect("current exe");
    let dir = me.parent().expect("bin dir");
    let outputs: Vec<Output> = std::thread::scope(|scope| {
        let handles: Vec<_> = bins
            .iter()
            .map(|bin| {
                let path = dir.join(bin);
                scope.spawn(move || {
                    Command::new(&path)
                        .output()
                        .unwrap_or_else(|e| panic!("failed to run {bin}: {e}"))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("driver thread panicked"))
            .collect()
    });
    for (bin, out) in bins.iter().zip(&outputs) {
        println!("===================== {bin} =====================");
        print!("{}", String::from_utf8_lossy(&out.stdout));
        eprint!("{}", String::from_utf8_lossy(&out.stderr));
        assert!(out.status.success(), "{bin} failed");
        println!();
    }
    println!(
        "run-all complete; Result/ResultAnalysis.csv, Result/reports/, and \
         BENCH_timing.json regenerated."
    );
}
