//! §8.4 / §7 demonstration: dynamically confirm the harmful UAFs of the
//! paper-example models by searching for NullPointerException witnesses,
//! and print the callback/thread lineage report a programmer would see.
//!
//! Run with `cargo run --release -p nadroid-bench --bin harmful`.

use nadroid_bench::render_table;
use nadroid_core::{analyze, AnalysisConfig};
use nadroid_corpus::paper;
use nadroid_dynamic::{minimize_schedule, replay, ExploreConfig};

fn main() {
    for program in [paper::connectbot(), paper::firefox()] {
        println!("=== {} ===", program.name());
        let analysis = analyze(&program, &AnalysisConfig::default());
        let s = analysis.summary();
        println!(
            "potential={} after-sound={} after-unsound={}",
            s.potential, s.after_sound, s.after_unsound
        );

        let rendered = analysis.rendered_survivors();
        let rows: Vec<Vec<String>> = rendered
            .iter()
            .map(|r| {
                vec![
                    r.field.clone(),
                    r.use_site.clone(),
                    r.free_site.clone(),
                    r.pair_type.to_string(),
                    r.use_lineage.clone(),
                    r.free_lineage.clone(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "field",
                    "use",
                    "free",
                    "type",
                    "use lineage",
                    "free lineage"
                ],
                &rows
            )
        );

        let v = analysis.validate_survivors(ExploreConfig::default());
        println!(
            "dynamic validation: {} harmful, {} unconfirmed",
            v.harmful(),
            v.false_positives.len()
        );
        for (w, witness) in &v.confirmed {
            let min = minimize_schedule(&program, &witness.schedule, &witness.npe);
            let minimal = replay(&program, &min);
            println!(
                "  CONFIRMED {} / {} — minimal schedule ({} of {} steps, {} states explored):",
                program.describe_instr(w.use_access.instr),
                program.describe_instr(w.free_access.instr),
                min.len(),
                witness.schedule.len(),
                witness.states_explored
            );
            for line in &minimal.trace {
                println!("    {line}");
            }
        }
        println!();
    }
}
