//! Regenerate the §8.8 phase-time breakdown: modeling vs detection vs
//! filtering, summed over the whole suite, with the detection sub-phases
//! (points-to / escape / pair enumeration) broken out — plus a
//! machine-readable `BENCH_timing.json` at the repo root for
//! before/after comparisons.
//!
//! The paper reports modeling at 1.19%, static detection at 95.73%, and
//! filtering at 3.08% of the analysis time. Our detection phase (the
//! k-object-sensitive points-to + escape + pair enumeration) similarly
//! dominates; absolute times are not comparable (simulator substrate).
//!
//! `BENCH_timing.json` schema (`nadroid-timing/4`):
//!
//! - `suite.wall_secs` — elapsed wall-clock for the parallel suite run;
//! - `suite.cpu_secs` — per-app phase totals summed across all (parallel)
//!   app runs, so it exceeds `wall_secs` on a multi-core host;
//! - `phase_cpu_secs` — the same CPU-semantics sum broken down by phase,
//!   encoded by `nadroid_core::phase_timings_json` (the encoder the CLI
//!   run-report also uses);
//! - `counters` — suite-wide sums of a few recorder counters, including
//!   `hb.edges` and `detector.mhp_prepruned` (the timed run enables the
//!   HB-closure MHP pre-prune, so its savings are visible here);
//! - `hb.closure_secs` — total HB Datalog closure time across apps;
//! - `datalog_closure` — the isolated engine workload below;
//! - `scale` — the corpus-scale thread-scaling curve (new in /4): the
//!   deterministic 1000-app population analyzed once per inner-thread
//!   count (1/2/4/8), with `cores` recording how much hardware
//!   parallelism the measuring machine actually had (speedups are
//!   machine-bound; the deterministic counters are not). Per-curve-row
//!   keys carry a `_t<N>` suffix so the flat `extract_num` scanner can
//!   address them individually.
//!
//! Run with `cargo run --release -p nadroid-bench --bin timing`; add
//! `--scale [N]` to (re-)measure the corpus-scale curve too (a plain
//! run carries the committed curve forward unchanged — it is far more
//! expensive than the suite). With `--check <tolerance>` it instead
//! re-measures the suite, compares against the committed
//! `BENCH_timing.json`, and validates the committed scale block
//! structurally (curve rows present for threads 1/2/4/8, deterministic
//! counters identical across the curve), exiting nonzero if any guarded
//! time blew past `tolerance ×` the baseline (plus a small absolute
//! slack for scheduler jitter) or a deterministic invariant changed —
//! the CI bench-regression guard.

use nadroid_bench::measure::measure_suite;
use nadroid_ledger as ledger;

/// Extract the first `"key": <number>` value from a JSON document.
fn extract_num(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The inner-thread counts the scaling curve covers. Thread counts
/// beyond the machine's cores are deliberately included: they prove the
/// determinism claim under real oversubscription, and `cores` in the
/// artifact tells readers which rows could physically speed up.
const CURVE_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Measure the corpus-scale thread-scaling curve and render the `scale`
/// JSON block (everything between `"scale":` and its closing brace,
/// newline-terminated, ready for [`with_scale_block`]).
///
/// Asserts the deterministic-counter invariant on the spot: the
/// aggregate `detector.pairs_examined` and `pointsto.queue_pops` (and
/// the warning total) must be identical at every thread count.
fn measure_scale(total: usize) -> String {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut runs = Vec::new();
    for &t in &CURVE_THREADS {
        let run = nadroid_bench::run_scale(total, t);
        println!(
            "scale: {} apps at threads={t}: {:?} wall, {} pairs examined, {} queue pops, {} warnings",
            run.apps, run.wall, run.pairs_examined, run.queue_pops, run.warnings
        );
        runs.push(run);
    }
    let first = &runs[0];
    for run in &runs[1..] {
        assert_eq!(
            (run.pairs_examined, run.queue_pops, run.warnings),
            (first.pairs_examined, first.queue_pops, first.warnings),
            "thread count changed a deterministic aggregate (threads={})",
            run.threads
        );
    }
    let rows: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "      {{\n",
                    "        \"threads\": {},\n",
                    "        \"wall_secs_t{}\": {:.6},\n",
                    "        \"pairs_examined_t{}\": {},\n",
                    "        \"queue_pops_t{}\": {},\n",
                    "        \"warnings_t{}\": {}\n",
                    "      }}"
                ),
                r.threads,
                r.threads,
                r.wall.as_secs_f64(),
                r.threads,
                r.pairs_examined,
                r.threads,
                r.queue_pops,
                r.threads,
                r.warnings,
            )
        })
        .collect();
    format!(
        "  \"scale\": {{\n    \"scale_apps\": {total},\n    \"cores\": {cores},\n    \"curve\": [\n{}\n    ]\n  }}\n",
        rows.join(",\n")
    )
}

/// Splice a `scale` block into a suite document as its last member.
fn with_scale_block(json: &str, block: &str) -> String {
    let body = json
        .trim_end()
        .strip_suffix('}')
        .expect("suite json ends with the top-level brace")
        .trim_end();
    format!("{body},\n{block}}}\n")
}

/// Pull the `scale` block back out of a committed document (it is
/// always the last top-level member), so a plain suite re-measure can
/// carry the expensive curve forward unchanged.
fn extract_scale_block(doc: &str) -> Option<String> {
    let start = doc.find("  \"scale\": {")?;
    let end = doc.trim_end().strip_suffix('}')?.trim_end().len();
    let block = doc.get(start..end)?;
    block.ends_with('}').then(|| format!("{block}\n"))
}

/// Structural validation of the committed scale block: curve rows for
/// every [`CURVE_THREADS`] entry, and deterministic aggregates that do
/// not move across the curve. Machine-independent — `--check` never
/// re-measures the corpus-scale population. Returns the violation count.
fn check_scale(baseline: &str) -> usize {
    let mut violations = 0;
    for key in ["scale_apps", "cores"] {
        if extract_num(baseline, key).is_none() {
            println!("bench-check FAIL: scale key \"{key}\" missing from baseline");
            violations += 1;
        }
    }
    let mut pairs = Vec::new();
    let mut pops = Vec::new();
    for t in CURVE_THREADS {
        if extract_num(baseline, &format!("wall_secs_t{t}")).is_none() {
            println!("bench-check FAIL: scale curve row for threads={t} missing");
            violations += 1;
        }
        pairs.push(extract_num(baseline, &format!("pairs_examined_t{t}")));
        pops.push(extract_num(baseline, &format!("queue_pops_t{t}")));
    }
    for (name, series) in [("pairs_examined", &pairs), ("queue_pops", &pops)] {
        if series.iter().any(Option::is_none) || series.windows(2).any(|w| w[0] != w[1]) {
            println!("bench-check FAIL: \"{name}\" varies across the thread curve: {series:?}");
            violations += 1;
        } else {
            println!(
                "bench-check ok: \"{name}\" identical across threads {CURVE_THREADS:?} ({:.0})",
                series[0].unwrap_or(0.0)
            );
        }
    }
    violations
}

fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_timing.json")
}

/// Compare a fresh measurement against the committed baseline. Returns
/// the number of violations (printed as they are found).
fn check(current: &str, baseline: &str, tol: f64) -> usize {
    // Wall/CPU-time keys: noisy, so guarded with a multiplicative
    // tolerance plus an absolute slack (tiny phases jitter wildly in
    // relative terms).
    const SLACK_SECS: f64 = 0.25;
    let mut violations = 0;
    for key in ["wall_secs", "cpu_secs", "total", "run_secs"] {
        let (Some(base), Some(cur)) = (extract_num(baseline, key), extract_num(current, key))
        else {
            println!("bench-check FAIL: key \"{key}\" missing from baseline or current run");
            violations += 1;
            continue;
        };
        let limit = base * tol + SLACK_SECS;
        if cur > limit {
            println!(
                "bench-check FAIL: \"{key}\" = {cur:.6}s exceeds {tol}x baseline {base:.6}s (+{SLACK_SECS}s slack)"
            );
            violations += 1;
        } else {
            println!(
                "bench-check ok: \"{key}\" {cur:.6}s vs baseline {base:.6}s (limit {limit:.6}s)"
            );
        }
    }
    // Deterministic keys: exact equality.
    for key in ["derived_tuples", "apps"] {
        let (base, cur) = (extract_num(baseline, key), extract_num(current, key));
        if base == cur && base.is_some() {
            println!("bench-check ok: \"{key}\" = {:.0}", base.unwrap_or(0.0));
        } else {
            println!("bench-check FAIL: \"{key}\" changed: baseline {base:?}, current {cur:?}");
            violations += 1;
        }
    }
    // The schema/4 scale block: validated structurally, never re-run.
    violations += check_scale(baseline);
    violations
}

fn main() {
    const USAGE: &str = "usage: timing [--check <tolerance>] [--scale [N]]";
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check_tol: Option<f64> = None;
    let mut scale_apps: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => {
                check_tol = Some(
                    args.get(i + 1)
                        .and_then(|t| t.parse::<f64>().ok())
                        .unwrap_or_else(|| {
                            eprintln!("{USAGE}");
                            std::process::exit(2);
                        }),
                );
                i += 2;
            }
            "--scale" => {
                // Optional count; defaults to the 1000-app population.
                if let Some(n) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                    scale_apps = Some(n);
                    i += 2;
                } else {
                    scale_apps = Some(1000);
                    i += 1;
                }
            }
            other => {
                eprintln!("unknown argument {other}; {USAGE}");
                std::process::exit(2);
            }
        }
    }
    if check_tol.is_some() && scale_apps.is_some() {
        eprintln!("--check validates the committed scale block; it cannot re-measure it. {USAGE}");
        std::process::exit(2);
    }

    let m = measure_suite();

    if let Some(tol) = check_tol {
        let path = baseline_path();
        let baseline = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("could not read baseline {}: {e}", path.display());
            std::process::exit(2);
        });
        let violations = check(&m.json, &baseline, tol);
        if violations > 0 {
            println!(
                "bench-check: {violations} violation(s) against {}",
                path.display()
            );
            std::process::exit(1);
        }
        println!("bench-check: all keys within {tol}x of {}", path.display());
        return;
    }

    println!("Phase times per app:");
    println!("{}", m.table);
    print!("{}", m.breakdown);

    let out = baseline_path();
    // A fresh scale curve when asked; otherwise carry the committed one
    // forward so a plain suite re-measure never drops the (expensive)
    // corpus-scale artifact.
    let json = if let Some(n) = scale_apps {
        with_scale_block(&m.json, &measure_scale(n))
    } else if let Some(block) = std::fs::read_to_string(&out)
        .ok()
        .as_deref()
        .and_then(extract_scale_block)
    {
        println!("carrying forward the committed scale block (re-measure with --scale)");
        with_scale_block(&m.json, &block)
    } else {
        m.json
    };
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }

    // Regenerating the BENCH document and appending the run to the
    // ledger are one step: the longitudinal history never misses a
    // baseline refresh.
    match nadroid_core::parse_json(&json).and_then(|v| ledger::record_from_bench_timing(&v)) {
        Ok((mut rec, _violations)) => {
            rec.note = "timing driver".to_string();
            let ledger_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(ledger::DEFAULT_PATH);
            match ledger::append(&ledger_path, &rec) {
                Ok(()) => println!("appended {} record to {}", rec.kind.as_str(), ledger_path.display()),
                Err(e) => eprintln!("could not append ledger record: {e}"),
            }
        }
        Err(e) => eprintln!("could not build ledger record: {e}"),
    }
}
