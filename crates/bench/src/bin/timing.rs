//! Regenerate the §8.8 phase-time breakdown: modeling vs detection vs
//! filtering, summed over the whole suite, with the detection sub-phases
//! (points-to / escape / pair enumeration) broken out — plus a
//! machine-readable `BENCH_timing.json` at the repo root for
//! before/after comparisons.
//!
//! The paper reports modeling at 1.19%, static detection at 95.73%, and
//! filtering at 3.08% of the analysis time. Our detection phase (the
//! k-object-sensitive points-to + escape + pair enumeration) similarly
//! dominates; absolute times are not comparable (simulator substrate).
//!
//! Run with `cargo run --release -p nadroid-bench --bin timing`.

use nadroid_bench::{render_table, run_rows_parallel};
use nadroid_corpus::table1_rows;
use nadroid_datalog::{Database, RuleSet, Term};
use std::time::{Duration, Instant};

/// A fixed Datalog closure workload (chain + shortcut edges, n = 200)
/// measuring the engine in isolation; tuples/sec comes straight from the
/// engine's own run counters.
fn datalog_throughput() -> (u64, f64, Duration) {
    let mut db = Database::new();
    let edge = db.relation("edge", 2);
    let path = db.relation("path", 2);
    let n = 200u32;
    for i in 0..n {
        db.insert(edge, &[i, (i + 1) % n]);
        db.insert(edge, &[i, (i + 7) % n]);
    }
    let v = Term::var;
    let mut rules = RuleSet::new();
    rules
        .add(path, vec![v(0), v(1)])
        .when(edge, vec![v(0), v(1)]);
    rules
        .add(path, vec![v(0), v(2)])
        .when(path, vec![v(0), v(1)])
        .when(edge, vec![v(1), v(2)]);
    db.run(&rules);
    let stats = db.stats();
    (stats.derived, stats.tuples_per_sec(), stats.duration)
}

fn main() {
    let suite_start = Instant::now();
    let runs = run_rows_parallel(&table1_rows());
    let suite_wall = suite_start.elapsed();

    let mut modeling = Duration::ZERO;
    let mut detection = Duration::ZERO;
    let mut filtering = Duration::ZERO;
    let mut pointsto = Duration::ZERO;
    let mut escape = Duration::ZERO;
    let mut detect = Duration::ZERO;
    let mut rows = Vec::new();
    for run in &runs {
        modeling += run.timings.modeling;
        detection += run.timings.detection;
        filtering += run.timings.filtering;
        pointsto += run.timings.pointsto;
        escape += run.timings.escape;
        detect += run.timings.detect;
        rows.push(vec![
            run.row.name.to_owned(),
            format!("{:?}", run.timings.modeling),
            format!("{:?}", run.timings.detection),
            format!("{:?}", run.timings.filtering),
        ]);
    }
    println!("Phase times per app:");
    println!(
        "{}",
        render_table(&["app", "modeling", "detection", "filtering"], &rows)
    );

    let total = modeling + detection + filtering;
    let pct = |d: Duration| d.as_secs_f64() / total.as_secs_f64() * 100.0;
    println!("§8.8 breakdown over the 27-app suite (paper: 1.19% / 95.73% / 3.08%):");
    println!("  modeling  : {modeling:>12?}  {:5.2}%", pct(modeling));
    println!("  detection : {detection:>12?}  {:5.2}%", pct(detection));
    println!("    pointsto: {pointsto:>12?}  {:5.2}%", pct(pointsto));
    println!("    escape  : {escape:>12?}  {:5.2}%", pct(escape));
    println!("    detect  : {detect:>12?}  {:5.2}%", pct(detect));
    println!("  filtering : {filtering:>12?}  {:5.2}%", pct(filtering));
    println!("  total     : {total:>12?}  (suite wall-clock {suite_wall:?}, parallel)");

    let (derived, tps, engine_time) = datalog_throughput();
    println!("datalog closure workload (n=200): {derived} tuples in {engine_time:?} = {tps:.0} tuples/sec");

    // Machine-readable record for before/after comparisons, at the repo
    // root (two levels above this crate's manifest).
    let json = format!(
        concat!(
            "{{\n",
            "  \"suite_wall_clock_secs\": {:.6},\n",
            "  \"phase_secs\": {{\n",
            "    \"modeling\": {:.6},\n",
            "    \"detection\": {:.6},\n",
            "    \"pointsto\": {:.6},\n",
            "    \"escape\": {:.6},\n",
            "    \"detect\": {:.6},\n",
            "    \"filtering\": {:.6},\n",
            "    \"total\": {:.6}\n",
            "  }},\n",
            "  \"datalog_closure\": {{\n",
            "    \"n\": 200,\n",
            "    \"derived_tuples\": {},\n",
            "    \"run_secs\": {:.6},\n",
            "    \"tuples_per_sec\": {:.0}\n",
            "  }},\n",
            "  \"apps\": {}\n",
            "}}\n"
        ),
        suite_wall.as_secs_f64(),
        modeling.as_secs_f64(),
        detection.as_secs_f64(),
        pointsto.as_secs_f64(),
        escape.as_secs_f64(),
        detect.as_secs_f64(),
        filtering.as_secs_f64(),
        total.as_secs_f64(),
        derived,
        engine_time.as_secs_f64(),
        tps,
        runs.len(),
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_timing.json");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}
