//! Regenerate the §8.8 phase-time breakdown: modeling vs detection vs
//! filtering, summed over the whole suite.
//!
//! The paper reports modeling at 1.19%, static detection at 95.73%, and
//! filtering at 3.08% of the analysis time. Our detection phase (the
//! k-object-sensitive points-to + escape + pair enumeration) similarly
//! dominates; absolute times are not comparable (simulator substrate).
//!
//! Run with `cargo run --release -p nadroid-bench --bin timing`.

use nadroid_bench::{render_table, run_row};
use nadroid_corpus::table1_rows;
use std::time::Duration;

fn main() {
    let mut modeling = Duration::ZERO;
    let mut detection = Duration::ZERO;
    let mut filtering = Duration::ZERO;
    let mut rows = Vec::new();
    for row in table1_rows() {
        eprintln!("analyzing {} ...", row.name);
        let run = run_row(&row);
        modeling += run.timings.modeling;
        detection += run.timings.detection;
        filtering += run.timings.filtering;
        rows.push(vec![
            row.name.to_owned(),
            format!("{:?}", run.timings.modeling),
            format!("{:?}", run.timings.detection),
            format!("{:?}", run.timings.filtering),
        ]);
    }
    println!("Phase times per app:");
    println!(
        "{}",
        render_table(&["app", "modeling", "detection", "filtering"], &rows)
    );

    let total = modeling + detection + filtering;
    let pct = |d: Duration| d.as_secs_f64() / total.as_secs_f64() * 100.0;
    println!("§8.8 breakdown over the 27-app suite (paper: 1.19% / 95.73% / 3.08%):");
    println!("  modeling  : {modeling:>12?}  {:5.2}%", pct(modeling));
    println!("  detection : {detection:>12?}  {:5.2}%", pct(detection));
    println!("  filtering : {filtering:>12?}  {:5.2}%", pct(filtering));
    println!("  total     : {total:>12?}");
}
