//! Load generator for `nadroid serve`: replay the 27-app Table 1 corpus
//! against an in-process server, cold then warm, from N concurrent
//! clients — and write `BENCH_serve.json` at the repo root.
//!
//! Measured quantities:
//!
//! - **client latency** (wall µs around each round trip, per pass):
//!   p50/p95/p99 and throughput;
//! - **server handling time** (the `micros` field of each response):
//!   for the warm pass this is the cache-lookup cost — the
//!   "warm requests in microseconds" claim;
//! - **cache hit rate** from the server's `stats` op;
//! - **ConnectBot cold vs warm**: the gate. The warm request must be at
//!   least 20× faster (server handling time) than the cold solve, or
//!   the binary exits nonzero.
//!
//! `BENCH_serve.json` schema (`nadroid-serve-bench/1`): see the fields
//! written below; all times are microseconds.
//!
//! Run with `cargo run --release -p nadroid-bench --bin serve_bench`
//! (`--concurrency <N>`, `--out <file>`).

use nadroid_corpus::{generate, spec_for, table1_rows};
use nadroid_ir::print_program;
use nadroid_serve::client::Client;
use nadroid_serve::protocol::{AnalyzeOpts, Request, Response};
use nadroid_serve::server::{ServeConfig, Server};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One request's measurement.
#[derive(Debug)]
struct Sample {
    app: usize,
    client_us: u64,
    server_us: u64,
    cached: bool,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Replay every app once across `concurrency` client connections.
fn run_pass(addr: std::net::SocketAddr, programs: &Arc<Vec<String>>, concurrency: usize) -> (Vec<Sample>, f64) {
    let next = Arc::new(AtomicUsize::new(0));
    let samples = Arc::new(Mutex::new(Vec::new()));
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..concurrency.max(1) {
            let next = Arc::clone(&next);
            let samples = Arc::clone(&samples);
            let programs = Arc::clone(programs);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect to bench server");
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(program) = programs.get(i) else { break };
                    let req = Request::Analyze {
                        program: program.clone(),
                        opts: AnalyzeOpts::default(),
                    };
                    let t = Instant::now();
                    let resp = client
                        .request_with_retry(&req, 1000)
                        .expect("analyze request");
                    let client_us = u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX);
                    let Response::Analyze { micros, cached, .. } = resp else {
                        panic!("unexpected response for app {i}: {resp:?}");
                    };
                    samples.lock().expect("samples lock").push(Sample {
                        app: i,
                        client_us,
                        server_us: micros,
                        cached,
                    });
                }
            });
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    let samples = Arc::try_unwrap(samples)
        .expect("all threads joined")
        .into_inner()
        .expect("samples lock");
    (samples, wall)
}

fn pass_json(out: &mut String, label: &str, samples: &[Sample], wall_secs: f64) {
    let mut client: Vec<u64> = samples.iter().map(|s| s.client_us).collect();
    client.sort_unstable();
    let mut server: Vec<u64> = samples.iter().map(|s| s.server_us).collect();
    server.sort_unstable();
    let throughput = if wall_secs > 0.0 {
        samples.len() as f64 / wall_secs
    } else {
        0.0
    };
    let _ = writeln!(out, "  \"{label}\": {{");
    let _ = writeln!(out, "    \"requests\": {},", samples.len());
    let _ = writeln!(out, "    \"wall_secs\": {wall_secs:.6},");
    let _ = writeln!(out, "    \"throughput_rps\": {throughput:.2},");
    let _ = writeln!(
        out,
        "    \"client_p50_us\": {}, \"client_p95_us\": {}, \"client_p99_us\": {},",
        percentile(&client, 0.50),
        percentile(&client, 0.95),
        percentile(&client, 0.99)
    );
    let _ = writeln!(
        out,
        "    \"server_p50_us\": {}, \"server_p95_us\": {}, \"server_p99_us\": {}",
        percentile(&server, 0.50),
        percentile(&server, 0.95),
        percentile(&server, 0.99)
    );
    let _ = writeln!(out, "  }},");
}

fn main() {
    let mut concurrency = 4usize;
    let mut out_path = "BENCH_serve.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--concurrency" => {
                concurrency = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--concurrency <N>");
            }
            "--out" => out_path = args.next().expect("--out <file>"),
            other => panic!("unknown argument `{other}`"),
        }
    }

    let rows = table1_rows();
    let programs: Arc<Vec<String>> = Arc::new(
        rows.iter()
            .map(|row| print_program(&generate(&spec_for(row)).program))
            .collect(),
    );
    let connectbot = rows
        .iter()
        .position(|r| r.name.eq_ignore_ascii_case("connectbot"))
        .expect("ConnectBot row in the corpus");

    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: concurrency.max(1),
        queue_cap: concurrency.max(1) * 4,
        ..ServeConfig::default()
    })
    .expect("start bench server");
    let addr = server.local_addr();

    eprintln!(
        "serve_bench: {} apps, concurrency {concurrency}, server {addr}",
        programs.len()
    );
    let (cold, cold_wall) = run_pass(addr, &programs, concurrency);
    assert!(
        cold.iter().all(|s| !s.cached),
        "first pass must be all cache misses"
    );
    let (warm, warm_wall) = run_pass(addr, &programs, concurrency);
    assert!(
        warm.iter().all(|s| s.cached),
        "second pass must be all cache hits"
    );

    let stats = {
        let mut client = Client::connect(addr).expect("connect");
        let Response::Stats { fields } = client.stats().expect("stats op") else {
            panic!("expected stats response");
        };
        let _ = client.shutdown();
        fields
    };
    let stat = |name: &str| {
        stats
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    let hits = stat("cache_hits");
    let lookups = hits + stat("cache_misses");
    let hit_rate = if lookups > 0 {
        hits as f64 / lookups as f64
    } else {
        0.0
    };

    let cb_cold = cold
        .iter()
        .find(|s| s.app == connectbot)
        .expect("connectbot cold sample")
        .server_us;
    let cb_warm = warm
        .iter()
        .find(|s| s.app == connectbot)
        .expect("connectbot warm sample")
        .server_us;
    let speedup = cb_cold as f64 / (cb_warm.max(1)) as f64;

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"nadroid-serve-bench/1\",");
    let _ = writeln!(out, "  \"apps\": {},", programs.len());
    let _ = writeln!(out, "  \"concurrency\": {concurrency},");
    pass_json(&mut out, "cold", &cold, cold_wall);
    pass_json(&mut out, "warm", &warm, warm_wall);
    let _ = writeln!(out, "  \"cache_hit_rate\": {hit_rate:.4},");
    let _ = writeln!(out, "  \"cache_bytes\": {},", stat("cache_bytes"));
    let _ = writeln!(out, "  \"cache_entries\": {},", stat("cache_entries"));
    let _ = writeln!(out, "  \"rejected\": {},", stat("rejected"));
    let _ = writeln!(
        out,
        "  \"connectbot\": {{ \"cold_us\": {cb_cold}, \"warm_us\": {cb_warm}, \"speedup\": {speedup:.1} }}"
    );
    out.push_str("}\n");
    std::fs::write(&out_path, &out).expect("write bench json");

    eprintln!(
        "serve_bench: cold p50 {}us, warm p50 {}us, hit rate {:.0}%, connectbot {cb_cold}us -> {cb_warm}us ({speedup:.0}x)",
        percentile(
            &{
                let mut v: Vec<u64> = cold.iter().map(|s| s.server_us).collect();
                v.sort_unstable();
                v
            },
            0.5
        ),
        percentile(
            &{
                let mut v: Vec<u64> = warm.iter().map(|s| s.server_us).collect();
                v.sort_unstable();
                v
            },
            0.5
        ),
        hit_rate * 100.0
    );
    println!("wrote {out_path}");

    if speedup < 20.0 {
        eprintln!("serve_bench: FAIL — warm ConnectBot only {speedup:.1}x faster than cold (< 20x)");
        std::process::exit(1);
    }
}
