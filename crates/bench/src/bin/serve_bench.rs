//! Load generator for `nadroid serve`: replay the 27-app Table 1 corpus
//! against an in-process server, cold then warm, from N concurrent
//! clients — and write `BENCH_serve.json` at the repo root.
//!
//! Measured quantities:
//!
//! - **client latency** (wall µs around each round trip, per pass):
//!   p50/p95/p99 and throughput, computed with the same log-bucketed
//!   [`Histogram`] the server uses (relative error ≤ 1/32);
//! - **server handling time** (the `micros` field of each response):
//!   for the warm pass this is the cache-lookup cost — the
//!   "warm requests in microseconds" claim;
//! - **server-side distributions** from the `metrics` op: per-endpoint
//!   latency and queue-wait percentiles as the server itself saw them;
//! - **cache hit rate** from the server's `stats` op;
//! - **ConnectBot cold vs warm**: the gate. The warm request must be at
//!   least 20× faster (server handling time) than the cold solve, or
//!   the binary exits nonzero.
//!
//! Two self-checks also gate the run:
//!
//! 1. warm `client_p50 >= server_p50` — a round trip can never be
//!    faster than the handling time it contains;
//! 2. the `serve.latency.analyze.miss` percentiles reported by the
//!    `metrics` op must **exactly** equal a histogram this bench builds
//!    from the cold responses' `micros` fields. The server records the
//!    same value it echoes, into the same histogram implementation, so
//!    any drift means the telemetry plumbing is lying.
//!
//! `BENCH_serve.json` schema (`nadroid-serve-bench/3`): see the fields
//! written below; all times are microseconds. Schema /3 added the host
//! fingerprint (`cores`, `threads`, `workers`) so serve numbers are
//! comparable across machines, and every run also appends a
//! `serve_bench` record to the `Result/ledger.jsonl` run ledger.
//!
//! Run with `cargo run --release -p nadroid-bench --bin serve_bench`
//! (`--concurrency <N>`, `--out <file>`).

use nadroid_core::{parse_json, JsonValue};
use nadroid_corpus::{generate, spec_for, table1_rows};
use nadroid_ir::print_program;
use nadroid_obs::Histogram;
use nadroid_serve::client::Client;
use nadroid_serve::protocol::{AnalyzeOpts, Request, Response};
use nadroid_serve::server::{ServeConfig, Server};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One request's measurement.
#[derive(Debug)]
struct Sample {
    app: usize,
    client_us: u64,
    server_us: u64,
    cached: bool,
}

fn hist_of<I: IntoIterator<Item = u64>>(values: I) -> Histogram {
    let mut h = Histogram::new();
    for v in values {
        h.record(v);
    }
    h
}

/// Replay every app once across `concurrency` client connections.
fn run_pass(addr: std::net::SocketAddr, programs: &Arc<Vec<String>>, concurrency: usize) -> (Vec<Sample>, f64) {
    let next = Arc::new(AtomicUsize::new(0));
    let samples = Arc::new(Mutex::new(Vec::new()));
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..concurrency.max(1) {
            let next = Arc::clone(&next);
            let samples = Arc::clone(&samples);
            let programs = Arc::clone(programs);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect to bench server");
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(program) = programs.get(i) else { break };
                    let req = Request::Analyze {
                        program: program.clone(),
                        opts: AnalyzeOpts::default(),
                    };
                    let t = Instant::now();
                    let resp = client
                        .request_with_retry(&req, 1000)
                        .expect("analyze request");
                    let client_us = u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX);
                    let Response::Analyze { micros, cached, .. } = resp else {
                        panic!("unexpected response for app {i}: {resp:?}");
                    };
                    samples.lock().expect("samples lock").push(Sample {
                        app: i,
                        client_us,
                        server_us: micros,
                        cached,
                    });
                }
            });
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    let samples = Arc::try_unwrap(samples)
        .expect("all threads joined")
        .into_inner()
        .expect("samples lock");
    (samples, wall)
}

fn pass_json(out: &mut String, label: &str, samples: &[Sample], wall_secs: f64) {
    let client = hist_of(samples.iter().map(|s| s.client_us));
    let server = hist_of(samples.iter().map(|s| s.server_us));
    let throughput = if wall_secs > 0.0 {
        samples.len() as f64 / wall_secs
    } else {
        0.0
    };
    let _ = writeln!(out, "  \"{label}\": {{");
    let _ = writeln!(out, "    \"requests\": {},", samples.len());
    let _ = writeln!(out, "    \"wall_secs\": {wall_secs:.6},");
    let _ = writeln!(out, "    \"throughput_rps\": {throughput:.2},");
    let _ = writeln!(
        out,
        "    \"client_p50_us\": {}, \"client_p95_us\": {}, \"client_p99_us\": {},",
        client.percentile(0.50),
        client.percentile(0.95),
        client.percentile(0.99)
    );
    let _ = writeln!(
        out,
        "    \"server_p50_us\": {}, \"server_p95_us\": {}, \"server_p99_us\": {}",
        server.percentile(0.50),
        server.percentile(0.95),
        server.percentile(0.99)
    );
    let _ = writeln!(out, "  }},");
}

/// Pull `count`/percentile fields for one histogram series out of the
/// parsed `nadroid-serve-metrics/1` document.
fn series_stats(metrics: &JsonValue, name: &str) -> Option<(u64, u64, u64, u64, u64)> {
    let h = metrics.get("histograms")?.get(name)?;
    let f = |k: &str| h.get(k).and_then(JsonValue::as_u64);
    Some((
        f("count")?,
        f("p50_us")?,
        f("p95_us")?,
        f("p99_us")?,
        f("max_us")?,
    ))
}

fn server_block(out: &mut String, metrics: &JsonValue) {
    let _ = writeln!(out, "  \"server\": {{");
    let series = [
        "serve.latency.analyze.miss",
        "serve.latency.analyze.hit",
        "serve.queue_wait.analyze",
    ];
    for (i, name) in series.iter().enumerate() {
        let (count, p50, p95, p99, max) =
            series_stats(metrics, name).unwrap_or_else(|| panic!("metrics series `{name}` missing"));
        let comma = if i + 1 < series.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    \"{name}\": {{ \"count\": {count}, \"p50_us\": {p50}, \"p95_us\": {p95}, \"p99_us\": {p99}, \"max_us\": {max} }}{comma}"
        );
    }
    let _ = writeln!(out, "  }},");
}

fn main() {
    let mut concurrency = 4usize;
    let mut out_path = "BENCH_serve.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--concurrency" => {
                concurrency = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--concurrency <N>");
            }
            "--out" => out_path = args.next().expect("--out <file>"),
            other => panic!("unknown argument `{other}`"),
        }
    }

    let rows = table1_rows();
    let programs: Arc<Vec<String>> = Arc::new(
        rows.iter()
            .map(|row| print_program(&generate(&spec_for(row)).program))
            .collect(),
    );
    let connectbot = rows
        .iter()
        .position(|r| r.name.eq_ignore_ascii_case("connectbot"))
        .expect("ConnectBot row in the corpus");

    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: concurrency.max(1),
        queue_cap: concurrency.max(1) * 4,
        ..ServeConfig::default()
    })
    .expect("start bench server");
    let addr = server.local_addr();

    eprintln!(
        "serve_bench: {} apps, concurrency {concurrency}, server {addr}",
        programs.len()
    );
    let (cold, cold_wall) = run_pass(addr, &programs, concurrency);
    assert!(
        cold.iter().all(|s| !s.cached),
        "first pass must be all cache misses"
    );
    let (warm, warm_wall) = run_pass(addr, &programs, concurrency);
    assert!(
        warm.iter().all(|s| s.cached),
        "second pass must be all cache hits"
    );

    let (stats, metrics) = {
        let mut client = Client::connect(addr).expect("connect");
        let Response::Stats { fields } = client.stats().expect("stats op") else {
            panic!("expected stats response");
        };
        let Response::Metrics { json } = client.metrics().expect("metrics op") else {
            panic!("expected metrics response");
        };
        let _ = client.shutdown();
        let metrics = parse_json(&json).expect("metrics document parses");
        (fields, metrics)
    };
    let stat = |name: &str| {
        stats
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    let hits = stat("cache_hits");
    let lookups = hits + stat("cache_misses");
    let hit_rate = if lookups > 0 {
        hits as f64 / lookups as f64
    } else {
        0.0
    };

    let cb_cold = cold
        .iter()
        .find(|s| s.app == connectbot)
        .expect("connectbot cold sample")
        .server_us;
    let cb_warm = warm
        .iter()
        .find(|s| s.app == connectbot)
        .expect("connectbot warm sample")
        .server_us;
    let speedup = cb_cold as f64 / (cb_warm.max(1)) as f64;

    // Host fingerprint (new in /3): serve latencies are only comparable
    // across runs when the hardware and thread config are on record.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let threads = stat("threads");
    let workers = stat("workers");

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"nadroid-serve-bench/3\",");
    let _ = writeln!(out, "  \"apps\": {},", programs.len());
    let _ = writeln!(out, "  \"concurrency\": {concurrency},");
    let _ = writeln!(out, "  \"cores\": {cores},");
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(out, "  \"workers\": {workers},");
    pass_json(&mut out, "cold", &cold, cold_wall);
    pass_json(&mut out, "warm", &warm, warm_wall);
    server_block(&mut out, &metrics);
    let _ = writeln!(out, "  \"cache_hit_rate\": {hit_rate:.4},");
    let _ = writeln!(out, "  \"cache_bytes\": {},", stat("cache_bytes"));
    let _ = writeln!(out, "  \"cache_entries\": {},", stat("cache_entries"));
    let _ = writeln!(out, "  \"cache_evictions\": {},", stat("cache_evictions"));
    let _ = writeln!(out, "  \"rejected\": {},", stat("rejected"));
    let _ = writeln!(
        out,
        "  \"connectbot\": {{ \"cold_us\": {cb_cold}, \"warm_us\": {cb_warm}, \"speedup\": {speedup:.1} }}"
    );
    out.push_str("}\n");
    std::fs::write(&out_path, &out).expect("write bench json");

    // One step: regenerate the BENCH document *and* append the run to
    // the longitudinal ledger.
    match parse_json(&out).and_then(|v| nadroid_ledger::record_from_bench_serve(&v)) {
        Ok(mut rec) => {
            rec.note = format!("serve_bench --concurrency {concurrency}");
            let ledger_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(nadroid_ledger::DEFAULT_PATH);
            match nadroid_ledger::append(&ledger_path, &rec) {
                Ok(()) => eprintln!("appended serve_bench record to {}", ledger_path.display()),
                Err(e) => eprintln!("could not append ledger record: {e}"),
            }
        }
        Err(e) => eprintln!("could not build ledger record: {e}"),
    }

    let cold_server = hist_of(cold.iter().map(|s| s.server_us));
    let warm_client = hist_of(warm.iter().map(|s| s.client_us));
    let warm_server = hist_of(warm.iter().map(|s| s.server_us));
    eprintln!(
        "serve_bench: cold p50 {}us, warm p50 {}us, hit rate {:.0}%, connectbot {cb_cold}us -> {cb_warm}us ({speedup:.0}x)",
        cold_server.percentile(0.5),
        warm_server.percentile(0.5),
        hit_rate * 100.0
    );
    println!("wrote {out_path}");

    let mut failed = false;
    if speedup < 20.0 {
        eprintln!("serve_bench: FAIL — warm ConnectBot only {speedup:.1}x faster than cold (< 20x)");
        failed = true;
    }

    // Self-check 1: a round trip contains the handling time it reports.
    let (cp50, sp50) = (warm_client.percentile(0.5), warm_server.percentile(0.5));
    if cp50 < sp50 {
        eprintln!("serve_bench: FAIL — warm client_p50 {cp50}us < server_p50 {sp50}us");
        failed = true;
    }

    // Self-check 2: the server's own `serve.latency.analyze.miss`
    // histogram must agree exactly with one rebuilt from the cold
    // responses — same samples, same histogram implementation.
    let (count, p50, p95, p99, max) = series_stats(&metrics, "serve.latency.analyze.miss")
        .expect("metrics exposes serve.latency.analyze.miss");
    let want = (
        cold_server.count(),
        cold_server.percentile(0.50),
        cold_server.percentile(0.95),
        cold_server.percentile(0.99),
        cold_server.max(),
    );
    if (count, p50, p95, p99, max) != want {
        eprintln!(
            "serve_bench: FAIL — metrics analyze.miss (count {count}, p50 {p50}, p95 {p95}, p99 {p99}, max {max}) \
             != bench-side {want:?}"
        );
        failed = true;
    }

    if failed {
        std::process::exit(1);
    }
}
