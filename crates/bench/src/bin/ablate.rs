//! Ablation studies for the DESIGN.md design decisions:
//!
//! 1. points-to sensitivity sweep (k = 0..3) — precision vs cost;
//! 2. eager lockset pruning (the §5 modification the paper argues
//!    against) — how many real UAFs it would hide;
//! 3. filter stages on/off — detector-only vs sound vs sound+unsound.
//!
//! Run with `cargo run --release -p nadroid-bench --bin ablate`.

use nadroid_bench::render_table;
use nadroid_core::{analyze, AnalysisConfig};
use nadroid_corpus::{generate, spec_for, table1_rows, AppGroup};
use nadroid_detector::DetectorOptions;
use nadroid_filters::FilterKind;
use std::time::Instant;

fn main() {
    let rows = table1_rows();
    let apps: Vec<_> = rows
        .iter()
        .filter(|r| r.group == AppGroup::Test)
        .map(|r| generate(&spec_for(r)))
        .collect();

    // --- 1. k sweep -------------------------------------------------------
    // A shared-factory workload: N activities all obtain their payload
    // through one Factory class. Context-insensitive analysis merges all
    // payloads (cross-activity pairs explode); k >= 2 clones them apart.
    println!("Ablation 1 — points-to sensitivity sweep (shared-factory workload, 8 activities):");
    let factory_app = shared_factory_app(8);
    let mut out = Vec::new();
    for k in 0..=3u32 {
        let cfg = AnalysisConfig {
            k,
            ..AnalysisConfig::default()
        };
        let t = Instant::now();
        let s = analyze(&factory_app, &cfg).summary();
        out.push(vec![
            k.to_string(),
            s.potential.to_string(),
            s.after_unsound.to_string(),
            format!("{:?}", t.elapsed()),
        ]);
    }
    println!(
        "{}",
        render_table(&["k", "potential pairs", "survivors", "time"], &out)
    );
    println!("(k=0 merges the factory products: quadratic cross-activity pairs; k>=2 keeps one pair per activity.)");
    println!();

    // --- 2. eager lockset ---------------------------------------------------
    // A harmful locked UAF: both accesses hold the same lock, but locks
    // provide atomicity, not ordering — the free can still precede the
    // use. Eager lockset pruning (what §5 removes from Chord) hides it.
    println!("Ablation 2 — eager lockset pruning (§5 argues against it):");
    let locked = locked_uaf_app();
    let mut out = Vec::new();
    for eager in [false, true] {
        let cfg = AnalysisConfig {
            detector: DetectorOptions {
                eager_lockset: eager,
                ..DetectorOptions::default()
            },
            ..AnalysisConfig::default()
        };
        let s = analyze(&locked, &cfg).summary();
        out.push(vec![
            if eager {
                "eager (Chord default)".into()
            } else {
                "off (paper)".into()
            },
            s.potential.to_string(),
            s.after_unsound.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["lockset", "potential pairs", "survivors"], &out)
    );
    println!("(the locked pair is a real UAF; eager lockset pruning is a false negative.)");
    println!();

    // --- 3. filter stages -----------------------------------------------------
    println!("Ablation 3 — filter stages:");
    let stages: Vec<(&str, Vec<FilterKind>, Vec<FilterKind>)> = vec![
        ("detector only", vec![], vec![]),
        ("sound only", FilterKind::sound().to_vec(), vec![]),
        (
            "sound + unsound",
            FilterKind::sound().to_vec(),
            FilterKind::unsound().to_vec(),
        ),
    ];
    let mut out = Vec::new();
    for (name, sound, unsound) in stages {
        let cfg = AnalysisConfig {
            sound_filters: sound,
            unsound_filters: unsound,
            ..AnalysisConfig::default()
        };
        let mut reported = 0usize;
        for app in &apps {
            reported += analyze(&app.program, &cfg).summary().after_unsound;
        }
        out.push(vec![name.to_owned(), reported.to_string()]);
    }
    println!(
        "{}",
        render_table(&["configuration", "reported pairs"], &out)
    );
}

/// N activities sharing one factory; each activity uses its own product
/// while another callback frees it.
fn shared_factory_app(n: usize) -> nadroid_ir::Program {
    use std::fmt::Write as _;
    let mut src = String::from(
        "app SharedFactory
",
    );
    for i in 0..n {
        let _ = write!(
            src,
            r"
            activity A{i} {{
                field fac{i}: Factory
                field p{i}: Prod
                cb onCreate {{
                    fac{i} = new Factory
                    t3 = load this A{i}.fac{i}
                    t4 = call Factory.make(recv=t3)
                    store this A{i}.p{i} = t4
                    t5 = new Obj
                    store t4 Prod.v = t5
                }}
                cb onClick {{
                    t3 = load this A{i}.p{i}
                    t4 = load t3 Prod.v
                    call opaque(recv=t4)
                }}
                cb onStop {{
                    t3 = load this A{i}.p{i}
                    free t3 Prod.v
                }}
            }}
            "
        );
    }
    src.push_str(
        r"
        class Factory {
            fn make(params=0, locals=2) {
                t1 = new Prod
                return t1
            }
        }
        class Prod { field v: Obj }
        class Obj { }
        ",
    );
    nadroid_ir::parse_program(&src).expect("factory workload parses")
}

/// A real UAF where both accesses hold the same lock.
fn locked_uaf_app() -> nadroid_ir::Program {
    nadroid_ir::parse_program(
        r"
        app LockedUaf
        activity Main {
            field f: Main
            field lock: Obj
            cb onCreate { f = new Main  lock = new Obj  spawn W }
            cb onClick { sync lock { use f } }
        }
        thread W in Main {
            cb run {
                t1 = load this W.$outer
                t2 = load t1 Main.lock
                sync t2 {
                    free t1 Main.f
                }
            }
        }
        class Obj { }
        ",
    )
    .expect("locked workload parses")
}
