//! Suite measurement shared by the `timing` driver and the `nadroid
//! perf` family: the §8.8 phase-time breakdown as a `nadroid-timing/4`
//! document, and full ledger records for the run ledger.

use crate::{run_rows_parallel, run_rows_parallel_timed, render_table, AppRun};
use nadroid_core::{phase_timings_json, PhaseTimings};
use nadroid_corpus::table1_rows;
use nadroid_datalog::{Database, RuleSet, Term};
use nadroid_ledger as ledger;
use nadroid_obs::Histogram;
use std::time::{Duration, Instant};

/// A fixed Datalog closure workload (chain + shortcut edges, n = 200)
/// measuring the engine in isolation; tuples/sec comes straight from
/// the engine's own run counters.
#[must_use]
pub fn datalog_throughput() -> (u64, f64, Duration) {
    let mut db = Database::new();
    let edge = db.relation("edge", 2);
    let path = db.relation("path", 2);
    let n = 200u32;
    for i in 0..n {
        db.insert(edge, &[i, (i + 1) % n]);
        db.insert(edge, &[i, (i + 7) % n]);
    }
    let v = Term::var;
    let mut rules = RuleSet::new();
    rules
        .add(path, vec![v(0), v(1)])
        .when(edge, vec![v(0), v(1)]);
    rules
        .add(path, vec![v(0), v(2)])
        .when(path, vec![v(0), v(1)])
        .when(edge, vec![v(1), v(2)]);
    db.run(&rules);
    let stats = db.stats();
    (stats.derived, stats.tuples_per_sec(), stats.duration)
}

/// Sum a recorder counter across all app runs.
fn counter_sum(runs: &[AppRun], name: &str) -> u64 {
    runs.iter().map(|r| r.recorder.counter_value(name)).sum()
}

fn sum_timings(runs: &[AppRun]) -> PhaseTimings {
    let mut sum = PhaseTimings::default();
    for run in runs {
        sum.modeling += run.timings.modeling;
        sum.hb += run.timings.hb;
        sum.detection += run.timings.detection;
        sum.filtering += run.timings.filtering;
        sum.pointsto += run.timings.pointsto;
        sum.escape += run.timings.escape;
        sum.detect += run.timings.detect;
    }
    sum
}

/// The result of one timed suite run: the `nadroid-timing/4` JSON
/// document (without a `scale` block) plus human-readable renderings.
pub struct SuiteMeasurement {
    /// The machine-readable document.
    pub json: String,
    /// Per-app phase-time table.
    pub table: String,
    /// The §8.8 percentage breakdown plus the Datalog workload line.
    pub breakdown: String,
}

/// Run the timed suite (provenance off, MHP pre-prune on — the §8.8
/// baseline workload) and render the `nadroid-timing/4` document the
/// `timing` driver commits as `BENCH_timing.json`. The gate's fresh
/// measurements use this too, so current and baseline always describe
/// the same workload.
#[must_use]
pub fn measure_suite() -> SuiteMeasurement {
    let suite_start = Instant::now();
    // The timed variant skips provenance capture: wall_secs guards the
    // analysis pipeline, not the post-run debugging exporter.
    let runs = run_rows_parallel_timed(&table1_rows());
    let suite_wall = suite_start.elapsed();

    let sum = sum_timings(&runs);
    let mut rows = Vec::new();
    for run in &runs {
        rows.push(vec![
            run.row.name.to_owned(),
            format!("{:?}", run.timings.modeling),
            format!("{:?}", run.timings.hb),
            format!("{:?}", run.timings.detection),
            format!("{:?}", run.timings.pointsto),
            format!("{:?}", run.timings.escape),
            format!("{:?}", run.timings.detect),
            format!("{:?}", run.timings.filtering),
        ]);
    }
    let table = render_table(
        &[
            "app",
            "modeling",
            "hb",
            "detection",
            "pointsto",
            "escape",
            "detect",
            "filtering",
        ],
        &rows,
    );

    let total = sum.total();
    let pct = |d: Duration| d.as_secs_f64() / total.as_secs_f64() * 100.0;
    let mut breakdown = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(
        breakdown,
        "§8.8 breakdown over the {}-app suite (paper: 1.19% / 95.73% / 3.08%):",
        runs.len()
    );
    let _ = writeln!(
        breakdown,
        "  modeling  : {:>12?}  {:5.2}%",
        sum.modeling,
        pct(sum.modeling)
    );
    let _ = writeln!(breakdown, "  hb        : {:>12?}  {:5.2}%", sum.hb, pct(sum.hb));
    let _ = writeln!(
        breakdown,
        "  detection : {:>12?}  {:5.2}%",
        sum.detection,
        pct(sum.detection)
    );
    let _ = writeln!(
        breakdown,
        "    pointsto: {:>12?}  {:5.2}%",
        sum.pointsto,
        pct(sum.pointsto)
    );
    let _ = writeln!(
        breakdown,
        "    escape  : {:>12?}  {:5.2}%",
        sum.escape,
        pct(sum.escape)
    );
    let _ = writeln!(
        breakdown,
        "    detect  : {:>12?}  {:5.2}%",
        sum.detect,
        pct(sum.detect)
    );
    let _ = writeln!(
        breakdown,
        "  filtering : {:>12?}  {:5.2}%",
        sum.filtering,
        pct(sum.filtering)
    );
    let _ = writeln!(
        breakdown,
        "  total(cpu): {total:>12?}  (suite wall-clock {suite_wall:?}, parallel)"
    );

    let (derived, tps, engine_time) = datalog_throughput();
    let _ = writeln!(
        breakdown,
        "datalog closure workload (n=200): {derived} tuples in {engine_time:?} = {tps:.0} tuples/sec"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"nadroid-timing/4\",\n",
            "  \"apps\": {},\n",
            "  \"suite\": {{\n",
            "    \"wall_secs\": {:.6},\n",
            "    \"cpu_secs\": {:.6}\n",
            "  }},\n",
            "  \"phase_cpu_secs\": {},\n",
            "  \"counters\": {{\n",
            "    \"pointsto.queue_pops\": {},\n",
            "    \"detector.pairs_examined\": {},\n",
            "    \"detector.racy_pairs\": {},\n",
            "    \"detector.mhp_prepruned\": {},\n",
            "    \"hb.edges\": {}\n",
            "  }},\n",
            "  \"hb\": {{\n",
            "    \"closure_secs\": {:.6}\n",
            "  }},\n",
            "  \"datalog_closure\": {{\n",
            "    \"n\": 200,\n",
            "    \"derived_tuples\": {},\n",
            "    \"run_secs\": {:.6},\n",
            "    \"tuples_per_sec\": {:.0}\n",
            "  }}\n",
            "}}\n"
        ),
        runs.len(),
        suite_wall.as_secs_f64(),
        total.as_secs_f64(),
        phase_timings_json(&sum, "  "),
        counter_sum(&runs, "pointsto.queue_pops"),
        counter_sum(&runs, "detector.pairs_examined"),
        counter_sum(&runs, "detector.racy_pairs"),
        counter_sum(&runs, "detector.mhp_prepruned"),
        counter_sum(&runs, "hb.edges"),
        counter_sum(&runs, "hb.closure_micros") as f64 / 1e6,
        derived,
        engine_time.as_secs_f64(),
        tps,
    );
    SuiteMeasurement {
        json,
        table,
        breakdown,
    }
}

/// Run the full suite (provenance *on*, so surviving warning ids are
/// available) and build a complete ledger record: per-phase times,
/// every deterministic counter, per-phase latency histograms across the
/// 27 apps, and the warning population with per-app digests and the
/// Figure-5 tallies. Time-valued `*_micros` counters are folded into
/// `times` so the counter section stays exactly comparable.
#[must_use]
pub fn suite_ledger_record(kind: ledger::Kind) -> ledger::Record {
    let start = Instant::now();
    let runs = run_rows_parallel(&table1_rows());
    let wall = start.elapsed();
    let sum = sum_timings(&runs);

    let mut rec = ledger::Record::new(kind);
    rec.times.insert("suite.wall_secs".into(), wall.as_secs_f64());
    rec.times
        .insert("suite.cpu_secs".into(), sum.total().as_secs_f64());
    for (name, d) in [
        ("modeling", sum.modeling),
        ("hb", sum.hb),
        ("detection", sum.detection),
        ("pointsto", sum.pointsto),
        ("escape", sum.escape),
        ("detect", sum.detect),
        ("filtering", sum.filtering),
    ] {
        rec.times.insert(format!("phase.{name}"), d.as_secs_f64());
    }

    rec.counters.insert("apps".into(), runs.len() as u64);
    let mut counter_totals: std::collections::BTreeMap<String, u64> = Default::default();
    for run in &runs {
        for (name, v) in run.recorder.counters() {
            *counter_totals.entry(name).or_insert(0) += v;
        }
    }
    for (name, v) in counter_totals {
        if let Some(stem) = name.strip_suffix("_micros") {
            // Time-valued counters are times, not deterministic counts.
            rec.times.insert(format!("{stem}_secs"), v as f64 / 1e6);
        } else {
            rec.counters.insert(name, v);
        }
    }

    for (name, pick) in [
        ("modeling", (|t: &PhaseTimings| t.modeling) as fn(&PhaseTimings) -> Duration),
        ("hb", |t| t.hb),
        ("detection", |t| t.detection),
        ("pointsto", |t| t.pointsto),
        ("escape", |t| t.escape),
        ("detect", |t| t.detect),
        ("filtering", |t| t.filtering),
    ] {
        let mut h = Histogram::new();
        for run in &runs {
            h.record(u64::try_from(pick(&run.timings).as_micros()).unwrap_or(u64::MAX));
        }
        rec.hists.insert(format!("phase_us.{name}"), h);
    }

    let mut tallies = std::collections::BTreeMap::new();
    for (name, pick) in [
        ("potential", (|r: &AppRun| r.summary.potential) as fn(&AppRun) -> usize),
        ("after_sound", |r| r.summary.after_sound),
        ("after_unsound", |r| r.summary.after_unsound),
    ] {
        tallies.insert(
            name.to_string(),
            runs.iter().map(|r| pick(r) as u64).sum(),
        );
    }
    for (name, v) in &rec.counters {
        if name.starts_with("filter.") && name.ends_with(".killed") {
            tallies.insert(name.clone(), *v);
        }
    }
    let apps = runs
        .iter()
        .map(|run| {
            let mut ids = run.surviving_ids.clone();
            ids.sort_unstable();
            ledger::AppPopulation {
                app: run.row.name.to_string(),
                digest: nadroid_core::warning_population_digest(&ids),
                ids,
            }
        })
        .collect();
    rec.population = Some(ledger::Population { apps, tallies });
    rec
}
