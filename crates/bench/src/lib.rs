//! Shared harness for the evaluation binaries and Criterion benches:
//! suite execution, ground-truth accounting, and plain-text table
//! rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod measure;

use nadroid_core::{analyze, Analysis, AnalysisConfig, FpCause, PairType, Summary};
use nadroid_corpus::{generate, spec_for, Expectation, GeneratedApp, PaperRow, PatternKind};
use nadroid_detector::UafWarning;
use nadroid_filters::FilterKind;
use nadroid_ir::Program;
use nadroid_obs as obs;

/// One evaluated application: the generated program, its planted ground
/// truth, and the pipeline's results.
pub struct AppRun {
    /// The Table 1 reference row.
    pub row: PaperRow,
    /// The generated app (program + planted patterns).
    pub app: GeneratedApp,
    /// The analysis summary.
    pub summary: Summary,
    /// Surviving pair types.
    pub types: Vec<(PairType, usize)>,
    /// Planted true-harmful count (ground truth; certified per pattern).
    pub harmful: usize,
    /// False-positive cause histogram over the surviving non-harmful
    /// pairs (from planted ground truth).
    pub fp: Vec<(FpCause, usize)>,
    /// Phase timings.
    pub timings: nadroid_core::PhaseTimings,
    /// This app's recorder (installed around `analyze` on the running
    /// thread only, so parallel rows never share metrics).
    pub recorder: obs::Recorder,
    /// The rendered JSON run report for this app.
    pub report: String,
    /// The `nadroid-provenance/3` JSON document: stable warning ids,
    /// derivation trees, per-filter audit trail, and HB evidence.
    pub provenance: String,
    /// Stable ids of the warnings surviving all filters, in report order.
    pub surviving_ids: Vec<String>,
}

/// Generate and analyze one Table 1 app, capturing spans and metrics
/// into a per-app recorder, plus the warning-provenance summary.
#[must_use]
pub fn run_row(row: &PaperRow) -> AppRun {
    run_row_inner(row, true, &AnalysisConfig::default())
}

/// [`run_row`] minus the provenance capture: deriving every warning's
/// racy pair through the Datalog engine with recording on is real work,
/// and the §8.8 timing baseline measures the analysis pipeline, not the
/// debugging exporter. `provenance` and `surviving_ids` come back empty.
/// The timed run also opts into the HB-closure MHP pre-prune, so the
/// `detector.mhp_prepruned` delta is visible in `BENCH_timing.json`
/// without perturbing the Table 1 / Figure 5 populations the other
/// drivers pin.
#[must_use]
pub fn run_row_timed(row: &PaperRow) -> AppRun {
    let config = AnalysisConfig {
        mhp_preprune: true,
        ..AnalysisConfig::default()
    };
    run_row_inner(row, false, &config)
}

fn run_row_inner(row: &PaperRow, capture_provenance: bool, config: &AnalysisConfig) -> AppRun {
    let app = generate(&spec_for(row));
    let recorder = obs::Recorder::new();
    let (summary, types, timings, report, provenance, surviving_ids) = {
        let analysis = {
            let _guard = recorder.install();
            analyze(&app.program, config)
        };
        // Provenance capture happens after the timed pipeline (outside
        // PhaseTimings), and the timing driver skips it entirely.
        let (provenance, surviving_ids) = if capture_provenance {
            let provs = analysis.warning_provenances();
            let ids = provs
                .iter()
                .filter(|p| p.survived)
                .map(|p| p.id.clone())
                .collect();
            (
                nadroid_core::render_provenance_json_with(&analysis, &provs),
                ids,
            )
        } else {
            (String::new(), Vec::new())
        };
        (
            analysis.summary(),
            analysis.survivor_types(),
            *analysis.timings(),
            nadroid_core::render_run_report(&analysis, &recorder),
            provenance,
            surviving_ids,
        )
    };
    let harmful = app
        .planted
        .iter()
        .filter(|k| matches!(k.expectation(), Expectation::Harmful(_)))
        .count();
    let mut fp: Vec<(FpCause, usize)> = FpCause::all()
        .iter()
        .map(|&c| {
            (
                c,
                app.planted
                    .iter()
                    .filter(|k| k.expectation() == Expectation::FalsePositive(c))
                    .count(),
            )
        })
        .collect();
    fp.retain(|(_, n)| *n > 0);
    AppRun {
        row: row.clone(),
        app,
        summary,
        types,
        harmful,
        fp,
        timings,
        recorder,
        report,
        provenance,
        surviving_ids,
    }
}

/// Write each app's JSON run report and provenance summary under `dir`
/// (`<app>.report.json` and `<app>.provenance.json` per app; the app
/// name is sanitized to a filesystem-safe slug).
///
/// # Errors
///
/// Propagates I/O errors from creating the directory or writing a file.
pub fn write_reports(runs: &[AppRun], dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for run in runs {
        let slug = app_slug(run.row.name);
        std::fs::write(dir.join(format!("{slug}.report.json")), &run.report)?;
        std::fs::write(
            dir.join(format!("{slug}.provenance.json")),
            &run.provenance,
        )?;
    }
    Ok(())
}

/// Filesystem-safe slug for an app name (non-alphanumerics become `_`).
#[must_use]
pub fn app_slug(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Run all suite rows in parallel (one OS thread per row; the analyses
/// are independent). Results come back in row order.
#[must_use]
pub fn run_rows_parallel(rows: &[PaperRow]) -> Vec<AppRun> {
    run_rows_parallel_inner(rows, run_row)
}

/// [`run_rows_parallel`] built on [`run_row_timed`] — for the timing
/// driver, whose `suite.wall_secs` wraps the whole parallel run.
#[must_use]
pub fn run_rows_parallel_timed(rows: &[PaperRow]) -> Vec<AppRun> {
    run_rows_parallel_inner(rows, run_row_timed)
}

fn run_rows_parallel_inner(rows: &[PaperRow], one: fn(&PaperRow) -> AppRun) -> Vec<AppRun> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = rows
            .iter()
            .map(|row| scope.spawn(move || one(row)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("analysis thread panicked"))
            .collect()
    })
}

/// Run the analysis (without the reporting extras) on a program —
/// Criterion's unit of work.
#[must_use]
pub fn analyze_program(program: &Program) -> Analysis<'_> {
    analyze(program, &AnalysisConfig::default())
}

/// One corpus-scale measurement: the deterministic [`scale_specs`]
/// population analyzed at one inner-thread count.
///
/// [`scale_specs`]: nadroid_corpus::scale_specs
#[derive(Debug, Clone)]
pub struct ScaleRun {
    /// Population size.
    pub apps: usize,
    /// `AnalysisConfig::threads` every analysis ran with.
    pub threads: usize,
    /// Wall-clock for the analysis sweep (generation excluded).
    pub wall: std::time::Duration,
    /// Suite-wide `detector.pairs_examined` — must be identical at
    /// every thread count (the scale bench asserts it).
    pub pairs_examined: u64,
    /// Suite-wide `pointsto.queue_pops` — likewise thread-invariant.
    pub queue_pops: u64,
    /// Total surviving warnings — likewise thread-invariant.
    pub warnings: u64,
}

/// Analyze the corpus-scale population sequentially (one app after
/// another — the *inner* parallelism under test is `threads`, so apps
/// must not also race each other for cores) and return the aggregate
/// measurement. Generation happens up front, outside the clock: the
/// scaling curve should compare analysis work, not DSL parsing.
#[must_use]
pub fn run_scale(total: usize, threads: usize) -> ScaleRun {
    let apps: Vec<GeneratedApp> = nadroid_corpus::scale_specs(total)
        .iter()
        .map(generate)
        .collect();
    let config = AnalysisConfig {
        threads,
        mhp_preprune: true,
        ..AnalysisConfig::default()
    };
    let recorder = obs::Recorder::new();
    let mut warnings = 0u64;
    let start = std::time::Instant::now();
    {
        let _guard = recorder.install();
        for app in &apps {
            warnings += analyze(&app.program, &config).summary().after_unsound as u64;
        }
    }
    ScaleRun {
        apps: total,
        threads,
        wall: start.elapsed(),
        pairs_examined: recorder.counter_value("detector.pairs_examined"),
        queue_pops: recorder.counter_value("pointsto.queue_pops"),
        warnings,
    }
}

/// Individual-filter effectiveness over a set of analyses (Figure 5):
/// for each filter, the number of distinct pairs it would prune on its
/// own, over the relevant base population.
///
/// Built on [`nadroid_filters::tally_outcomes`] — the same accounting
/// `analyze` records as `filter.<NAME>.killed` counters — so the
/// figure's bars and the run-report metrics agree by construction.
#[must_use]
pub fn filter_effectiveness(analyses: &[Analysis<'_>]) -> FilterEffect {
    let mut potential = 0usize;
    let mut after_sound = 0usize;
    let mut after_unsound = 0usize;
    let mut sound_counts = vec![0usize; FilterKind::sound().len()];
    let mut unsound_counts = vec![0usize; FilterKind::unsound().len()];
    let mut mayhb = 0usize;

    for a in analyses {
        let s = a.summary();
        potential += s.potential;
        after_sound += s.after_sound;
        after_unsound += s.after_unsound;
        // Individual sound filters over all potential pairs.
        let sound = nadroid_filters::tally_outcomes(a.sound_outcomes(), FilterKind::sound());
        for (i, t) in sound.iter().enumerate() {
            sound_counts[i] += t.killed;
        }
        // Individual unsound filters over the sound survivors.
        let unsound = nadroid_filters::tally_outcomes(a.unsound_outcomes(), FilterKind::unsound());
        for (i, t) in unsound.iter().enumerate() {
            unsound_counts[i] += t.killed;
        }
        mayhb += nadroid_filters::distinct_killed_by_any(a.unsound_outcomes(), FilterKind::may_hb());
    }
    FilterEffect {
        potential,
        after_sound,
        after_unsound,
        sound_counts,
        unsound_counts,
        mayhb,
    }
}

/// Aggregated Figure 5 data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterEffect {
    /// Total potential pairs.
    pub potential: usize,
    /// Pairs after the sound filters.
    pub after_sound: usize,
    /// Pairs after all filters.
    pub after_unsound: usize,
    /// Individual prune counts for MHB, IG, IA (over potential).
    pub sound_counts: Vec<usize>,
    /// Individual prune counts for RHB, CHB, PHB, MA, UR, TT (over the
    /// sound survivors).
    pub unsound_counts: Vec<usize>,
    /// mayHB = RHB ∪ CHB ∪ PHB prune count (over the sound survivors).
    pub mayhb: usize,
}

impl FilterEffect {
    /// Percentage helper.
    #[must_use]
    pub fn pct(num: usize, den: usize) -> f64 {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64 * 100.0
        }
    }
}

/// Map a warning back to its planted cluster index: pattern fields are
/// named `<x><idx>`, so the trailing digits of the racy field identify
/// the cluster.
#[must_use]
pub fn cluster_of(program: &Program, w: &UafWarning) -> Option<usize> {
    let name = program.field(w.field).name();
    let digits: String = name
        .chars()
        .rev()
        .take_while(char::is_ascii_digit)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    digits.parse().ok()
}

/// Render a plain-text table: a header row plus aligned data rows.
#[must_use]
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| (*s).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Write the Table 1 results as CSV — the shape of the original
/// artifact's `ResultAnalysis.csv` (appendix A.5).
///
/// # Errors
///
/// Propagates I/O errors from creating or writing the file.
pub fn write_csv(runs: &[AppRun], path: &std::path::Path) -> std::io::Result<()> {
    use std::io::Write as _;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "group,app,loc,ec,pc,threads,potential,after_sound,after_unsound,harmful,paper_potential,paper_after_sound,paper_after_unsound,paper_harmful"
    )?;
    for run in runs {
        writeln!(
            f,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            match run.row.group {
                nadroid_corpus::AppGroup::Train => "train",
                nadroid_corpus::AppGroup::Test => "test",
            },
            run.row.name,
            run.summary.loc,
            run.summary.ec,
            run.summary.pc,
            run.summary.threads,
            run.summary.potential,
            run.summary.after_sound,
            run.summary.after_unsound,
            run.harmful,
            run.row.potential,
            run.row.after_sound,
            run.row.after_unsound,
            run.row.harmful,
        )?;
    }
    Ok(())
}

/// The number of planted patterns of each kind in an app.
#[must_use]
pub fn planted_count(app: &GeneratedApp, kind: PatternKind) -> usize {
    app.planted.iter().filter(|&&k| k == kind).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadroid_corpus::AppSpec;

    #[test]
    fn run_row_matches_planted_ground_truth() {
        // A small real suite row end-to-end.
        let rows = nadroid_corpus::table1_rows();
        let row = rows.iter().find(|r| r.name == "Dns66").unwrap();
        let run = run_row(row);
        let detected_planted = run.app.planted.iter().filter(|k| k.detected()).count();
        assert_eq!(run.summary.potential, detected_planted);
        let surviving_planted = run
            .app
            .planted
            .iter()
            .filter(|k| {
                matches!(
                    k.expectation(),
                    Expectation::Harmful(_) | Expectation::FalsePositive(_)
                )
            })
            .count();
        assert_eq!(run.summary.after_unsound, surviving_planted);
    }

    #[test]
    fn figure5_counts_match_recorded_counters() {
        // The Figure 5 driver numbers and the `filter.<NAME>.*` counters
        // must agree exactly: both sides go through `tally_outcomes`.
        let rows = nadroid_corpus::table1_rows();
        let row = rows.iter().find(|r| r.name == "Dns66").unwrap();
        let run = run_row(row);
        let app = generate(&spec_for(row));
        let analysis = analyze_program(&app.program);
        let eff = filter_effectiveness(std::slice::from_ref(&analysis));
        for (i, &k) in FilterKind::sound().iter().enumerate() {
            assert_eq!(
                run.recorder.counter_value(&format!("filter.{k}.killed")),
                eff.sound_counts[i] as u64,
                "sound filter {k}"
            );
        }
        for (i, &k) in FilterKind::unsound().iter().enumerate() {
            assert_eq!(
                run.recorder.counter_value(&format!("filter.{k}.killed")),
                eff.unsound_counts[i] as u64,
                "unsound filter {k}"
            );
        }
        assert_eq!(
            run.recorder.counter_value("filter.mayHB.killed"),
            eff.mayhb as u64
        );
    }

    #[test]
    fn run_reports_write_one_file_per_app() {
        let rows = nadroid_corpus::table1_rows();
        let runs: Vec<AppRun> = rows
            .iter()
            .filter(|r| r.name == "Dns66")
            .map(run_row)
            .collect();
        let dir = std::env::temp_dir().join("nadroid_reports_test");
        write_reports(&runs, &dir).unwrap();
        let text = std::fs::read_to_string(dir.join("Dns66.report.json")).unwrap();
        assert!(text.contains("\"app\": \"Dns66\""), "{text}");
        assert!(text.contains("\"filter.MHB.examined\""), "{text}");
        assert!(text.contains("\"phase_secs\""), "{text}");
        let prov = std::fs::read_to_string(dir.join("Dns66.provenance.json")).unwrap();
        assert!(prov.contains("\"schema\": \"nadroid-provenance/4\""), "{prov}");
        assert!(prov.contains("racyPair"), "{prov}");
    }

    #[test]
    fn surviving_ids_are_stable_and_listed_in_the_provenance() {
        let rows = nadroid_corpus::table1_rows();
        let row = rows.iter().find(|r| r.name == "Dns66").unwrap();
        let a = run_row(row);
        let b = run_row(row);
        assert!(!a.surviving_ids.is_empty(), "Dns66 has survivors");
        assert_eq!(a.surviving_ids, b.surviving_ids, "ids survive reruns");
        for id in &a.surviving_ids {
            assert!(id.starts_with("w:") && id.len() == 18, "bad id {id}");
            assert!(a.provenance.contains(id), "{id} missing from JSON");
        }
    }

    #[test]
    fn escape_subphase_is_timed_per_app() {
        // The timing driver reports per-app sub-phases; the escape pass
        // must register nonzero time (it was previously swallowed by a
        // subtraction around the wrong boundary).
        let rows = nadroid_corpus::table1_rows();
        let row = rows.iter().find(|r| r.name == "K-9").unwrap();
        let run = run_row(row);
        assert!(run.timings.escape > std::time::Duration::ZERO);
        assert!(run.timings.pointsto + run.timings.escape + run.timings.detect <= run.timings.detection);
    }

    #[test]
    fn cluster_mapping_round_trips() {
        let app = generate(
            &AppSpec::new("C", 5)
                .with(PatternKind::HarmfulEcPc, 2)
                .with(PatternKind::Ig, 1),
        );
        let analysis = analyze_program(&app.program);
        for w in analysis.warnings() {
            let idx = cluster_of(&app.program, w).expect("cluster index");
            assert!(idx < app.planted.len());
        }
    }

    #[test]
    fn csv_writer_produces_one_row_per_app() {
        let rows = nadroid_corpus::table1_rows();
        let runs: Vec<AppRun> = rows
            .iter()
            .filter(|r| r.name == "Dns66" || r.name == "Aard")
            .map(run_row)
            .collect();
        let path = std::env::temp_dir()
            .join("nadroid_csv_test")
            .join("out.csv");
        write_csv(&runs, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3, "header + 2 rows:\n{text}");
        assert!(text.starts_with("group,app,loc"));
        assert!(text.contains("test,Aard"));
    }

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            &["app", "n"],
            &[
                vec!["Music".into(), "7".into()],
                vec!["K-9".into(), "123".into()],
            ],
        );
        assert!(t.contains("Music"));
        assert!(t.lines().count() == 4);
    }
}
