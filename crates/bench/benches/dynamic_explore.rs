//! Schedule-explorer cost: witness search on the paper-example models
//! (§7 validation, automated). The ConnectBot witnesses are shallow; the
//! FireFox one needs instruction-level thread interleaving.

use criterion::{criterion_group, criterion_main, Criterion};
use nadroid_corpus::paper;
use nadroid_dynamic::{explore, ExploreConfig, Goal};
use std::hint::black_box;

fn bench_explore(c: &mut Criterion) {
    let connectbot = paper::connectbot();
    let firefox = paper::firefox();
    let mut g = c.benchmark_group("dynamic_explore");
    g.sample_size(20);
    g.bench_function("connectbot_any_npe", |b| {
        b.iter(|| {
            black_box(explore(&connectbot, Goal::AnyNpe, ExploreConfig::default()))
                .expect("witness")
        });
    });
    g.bench_function("firefox_any_npe", |b| {
        b.iter(|| {
            black_box(explore(&firefox, Goal::AnyNpe, ExploreConfig::default())).expect("witness")
        });
    });
    // Exhaustive search on a safe program: the full (bounded) state space.
    let safe = nadroid_corpus::paper::figure4_gallery();
    g.bench_function("figure4_exhaustive_safe", |b| {
        b.iter(|| {
            // The gallery's filtered patterns include dynamically
            // unreachable frees, so restrict to a pair goal that never
            // matches — forcing full exploration.
            black_box(explore(
                &safe,
                Goal::Pair {
                    use_instr: nadroid_ir::InstrId::from_raw(0),
                    free_instr: nadroid_ir::InstrId::from_raw(0),
                },
                ExploreConfig {
                    max_events: 5,
                    max_states: 20_000,
                    ..ExploreConfig::default()
                },
            ))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_explore);
criterion_main!(benches);
