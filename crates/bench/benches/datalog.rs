//! Datalog engine scaling: semi-naive transitive closure over chains and
//! random graphs of growing size (the engine plays bddbddb's role in the
//! original system, so its scaling bounds the whole detection phase).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nadroid_datalog::{Database, RuleSet, Term};
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn closure(edges: &[(u32, u32)]) -> usize {
    let mut db = Database::new();
    let edge = db.relation("edge", 2);
    let path = db.relation("path", 2);
    for &(a, b) in edges {
        db.insert(edge, &[a, b]);
    }
    let v = Term::var;
    let mut rules = RuleSet::new();
    rules
        .add(path, vec![v(0), v(1)])
        .when(edge, vec![v(0), v(1)]);
    rules
        .add(path, vec![v(0), v(2)])
        .when(path, vec![v(0), v(1)])
        .when(edge, vec![v(1), v(2)]);
    db.run(&rules);
    db.len(path)
}

fn bench_datalog(c: &mut Criterion) {
    let mut g = c.benchmark_group("datalog_closure");
    g.sample_size(10);
    for n in [50usize, 100, 200] {
        // Chain: worst-case iteration count for semi-naive evaluation.
        let chain: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, i + 1)).collect();
        g.bench_with_input(BenchmarkId::new("chain", n), &chain, |b, edges| {
            b.iter(|| black_box(closure(edges)));
        });
        // Sparse random graph.
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let random: Vec<(u32, u32)> = (0..2 * n)
            .map(|_| {
                (
                    rng.gen_range(0..n as u32 * 4),
                    rng.gen_range(0..n as u32 * 4),
                )
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("random", n), &random, |b, edges| {
            b.iter(|| black_box(closure(edges)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_datalog);
criterion_main!(benches);
