//! Detector scaling over the warning population: full pair enumeration
//! on generated apps of growing cluster counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nadroid_corpus::{generate, AppSpec, GeneratedApp, PatternKind};
use nadroid_detector::{detect, DetectorOptions};
use nadroid_pointsto::{Escape, PointsTo};
use nadroid_threadify::ThreadModel;
use std::hint::black_box;

fn app_with(clusters: usize) -> GeneratedApp {
    generate(
        &AppSpec::new(format!("Scale{clusters}"), 11)
            .with(PatternKind::Ig, clusters / 2)
            .with(PatternKind::HarmfulEcPc, clusters / 4)
            .with(PatternKind::Tt, clusters / 4),
    )
}

fn bench_detector(c: &mut Criterion) {
    let mut g = c.benchmark_group("detector_scale");
    g.sample_size(10);
    for clusters in [16usize, 64, 128] {
        let app = app_with(clusters);
        let threads = ThreadModel::build(&app.program);
        let pts = PointsTo::run(&app.program, &threads, 2);
        let esc = Escape::compute(&app.program, &threads, &pts);
        g.bench_with_input(BenchmarkId::from_parameter(clusters), &clusters, |b, _| {
            b.iter(|| {
                black_box(detect(
                    &app.program,
                    &threads,
                    &pts,
                    &esc,
                    DetectorOptions::default(),
                ))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_detector);
criterion_main!(benches);
