//! §8.8 phase benchmark: modeling (threadification) vs detection
//! (points-to + escape + pair enumeration) vs filtering, measured
//! separately on a mid-size suite app. The paper reports detection
//! dominating at ~96% of analysis time; this bench shows the same shape.

use criterion::{criterion_group, criterion_main, Criterion};
use nadroid_corpus::{generate, spec_for, table1_rows};
use nadroid_detector::{detect, DetectorOptions};
use nadroid_filters::{FilterKind, Filters};
use nadroid_pointsto::{Escape, PointsTo};
use nadroid_threadify::ThreadModel;
use std::hint::black_box;

fn bench_phases(c: &mut Criterion) {
    let rows = table1_rows();
    let row = rows.iter().find(|r| r.name == "Mms").expect("Mms row");
    let app = generate(&spec_for(row));
    let program = &app.program;

    let mut g = c.benchmark_group("phases");
    g.sample_size(20);

    g.bench_function("modeling", |b| {
        b.iter(|| black_box(ThreadModel::build(black_box(program))));
    });

    let threads = ThreadModel::build(program);
    g.bench_function("detection", |b| {
        b.iter(|| {
            let pts = PointsTo::run(program, &threads, 2);
            let esc = Escape::compute(program, &threads, &pts);
            black_box(detect(
                program,
                &threads,
                &pts,
                &esc,
                DetectorOptions::default(),
            ))
        });
    });

    let pts = PointsTo::run(program, &threads, 2);
    let esc = Escape::compute(program, &threads, &pts);
    let warnings = detect(program, &threads, &pts, &esc, DetectorOptions::default());
    g.bench_function("filtering", |b| {
        b.iter(|| {
            let filters = Filters::new(program, &threads, &pts, &esc);
            let sound = filters.pipeline(warnings.clone(), FilterKind::sound());
            let survivors: Vec<_> = sound
                .iter()
                .filter(|o| o.survives())
                .map(|o| o.warning.clone())
                .collect();
            black_box(filters.pipeline(survivors, FilterKind::unsound()))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
