//! Full-pipeline benchmark on three representative suite apps (small /
//! medium / large by planted-cluster count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nadroid_bench::analyze_program;
use nadroid_corpus::{generate, spec_for, table1_rows};
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let rows = table1_rows();
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    for name in ["Dns66", "Mms", "K-9"] {
        let row = rows.iter().find(|r| r.name == name).expect("row");
        let app = generate(&spec_for(row));
        g.bench_with_input(BenchmarkId::from_parameter(name), &app, |b, app| {
            b.iter(|| black_box(analyze_program(&app.program).summary()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
