//! Points-to sensitivity cost: the k-object-sensitive solver swept over
//! k = 0..3 on a shared-factory workload (the shape where sensitivity
//! matters; see the `ablate` binary for the precision side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nadroid_ir::{parse_program, Program};
use nadroid_pointsto::PointsTo;
use nadroid_threadify::ThreadModel;
use std::fmt::Write as _;
use std::hint::black_box;

fn shared_factory_app(n: usize) -> Program {
    let mut src = String::from("app SharedFactory\n");
    for i in 0..n {
        let _ = write!(
            src,
            r"
            activity A{i} {{
                field fac{i}: Factory
                field p{i}: Prod
                cb onCreate {{
                    fac{i} = new Factory
                    t3 = load this A{i}.fac{i}
                    t4 = call Factory.make(recv=t3)
                    store this A{i}.p{i} = t4
                }}
                cb onClick {{ use p{i} }}
            }}
            "
        );
    }
    src.push_str(
        r"
        class Factory {
            fn make(params=0, locals=2) {
                t1 = new Prod
                return t1
            }
        }
        class Prod { }
        ",
    );
    parse_program(&src).expect("workload parses")
}

fn bench_pointsto(c: &mut Criterion) {
    let program = shared_factory_app(16);
    let threads = ThreadModel::build(&program);
    let mut g = c.benchmark_group("pointsto_k");
    g.sample_size(20);
    for k in 0..=3u32 {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(PointsTo::run(&program, &threads, k)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pointsto);
criterion_main!(benches);
