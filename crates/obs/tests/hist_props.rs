//! Property tests for the telemetry layer: histogram merge algebra,
//! percentile bounds, span-depth underflow tolerance, and a thread
//! sweep that pins histogram totals as thread-count invariant.

#[cfg(feature = "enabled")]
use nadroid_obs::{hist, span, Recorder};
use nadroid_obs::Histogram;
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Mixed magnitudes: exact low buckets, mid-range, and huge values.
fn samples_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec((0u64..3, 0u64..=u64::MAX), 0..200).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(kind, raw)| match kind {
                0 => raw % 64,
                1 => 64 + raw % 99_936,
                _ => raw,
            })
            .collect()
    })
}

proptest! {
    /// `merge` is associative and commutative, and merging equals
    /// recording the concatenated sample set — element-wise adds lose
    /// nothing beyond the resolution already paid at record time.
    #[test]
    fn merge_is_associative_commutative_and_exact(
        a in samples_strategy(),
        b in samples_strategy(),
        c in samples_strategy(),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut right_inner = hb.clone();
        right_inner.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_inner);
        prop_assert_eq!(&left, &right, "merge must be associative");

        let mut ba = hb.clone();
        ba.merge(&ha);
        let mut ab = ha.clone();
        ab.merge(&hb);
        prop_assert_eq!(&ab, &ba, "merge must be commutative");

        let union: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &hist_of(&union), "merge equals union");
    }

    /// Percentiles are monotone in `p`, never undershoot the true order
    /// statistic, and overshoot it by at most one sub-bucket width
    /// (relative error `1/32`); `percentile(1.0)` is exactly the max.
    #[test]
    fn percentiles_are_monotone_and_tightly_bounded(
        raw in prop::collection::vec(0u64..=u64::MAX / 2, 1..200),
    ) {
        let h = hist_of(&raw);
        let mut samples = raw;
        samples.sort_unstable();

        let grid = [0.0, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0];
        let readings: Vec<u64> = grid.iter().map(|&p| h.percentile(p)).collect();
        for w in readings.windows(2) {
            prop_assert!(w[0] <= w[1], "percentile must be monotone: {readings:?}");
        }
        prop_assert_eq!(readings[grid.len() - 1], *samples.last().unwrap());

        for (&p, &got) in grid.iter().zip(&readings) {
            #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
            #[allow(clippy::cast_possible_truncation)]
            let rank = ((p * samples.len() as f64).ceil() as usize).max(1);
            let truth = samples[rank - 1];
            prop_assert!(got >= truth, "p{p}: {got} undershoots {truth}");
            prop_assert!(
                got <= truth + truth / 32 + 1,
                "p{p}: {got} overshoots {truth} by more than a sub-bucket"
            );
        }
    }

    /// Derived scalars survive a merge exactly: count/total/min/max of
    /// the merged histogram equal those of the concatenated samples.
    #[test]
    fn merge_preserves_scalar_summaries(
        a in samples_strategy(),
        b in samples_strategy(),
    ) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let union: Vec<u64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(merged.count(), union.len() as u64);
        prop_assert_eq!(
            merged.total(),
            union.iter().fold(0u64, |acc, &v| acc.saturating_add(v))
        );
        prop_assert_eq!(merged.max(), union.iter().max().copied().unwrap_or(0));
        prop_assert_eq!(
            merged.min(),
            if union.is_empty() { 0 } else { *union.iter().min().unwrap() }
        );
        let rebucketed: u64 = merged.buckets().map(|(_, _, c)| c).sum();
        prop_assert_eq!(rebucketed, merged.count(), "buckets account for every sample");
    }
}

/// A span held across its recorder's uninstall must not panic or
/// corrupt the depth counter of whatever is installed afterwards.
#[cfg(feature = "enabled")]
#[test]
fn span_outliving_its_install_does_not_underflow_depth() {
    let first = Recorder::new();
    let guard = first.install();
    let straggler = span("straggler");
    drop(guard); // uninstalls while `straggler` is still open
    drop(straggler); // depth saturates at 0 instead of underflowing

    // A fresh installation afterwards starts clean: its first span is
    // top-level (depth 0), so `busy()` counts it.
    let second = Recorder::new();
    {
        let _g = second.install();
        let _s = span("top");
    }
    let spans = second.spans();
    assert_eq!(spans.len(), 1, "{spans:?}");
    assert_eq!(spans[0].depth, 0, "depth must restart at 0: {spans:?}");
}

/// Recording the same sample set from K threads (for several K) into
/// one shared recorder yields byte-identical histograms: totals are
/// thread-count invariant because histogram recording is a plain
/// element-wise accumulation under the registry lock.
#[cfg(feature = "enabled")]
#[test]
fn histogram_totals_are_thread_count_invariant() {
    let samples: Vec<u64> = (0..800u64).map(|i| i * i % 65_537).collect();
    let run = |threads: usize| -> Histogram {
        let rec = Recorder::new();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let rec = rec.clone();
                let samples = &samples;
                scope.spawn(move || {
                    let _g = rec.install();
                    for v in samples.iter().skip(t).step_by(threads) {
                        hist("sweep", *v);
                    }
                });
            }
        });
        rec.histogram("sweep").expect("sweep histogram recorded")
    };

    let baseline = run(1);
    assert_eq!(baseline.count(), 800);
    for k in [2usize, 4, 8] {
        let h = run(k);
        assert_eq!(h, baseline, "K={k} must reproduce the K=1 histogram");
    }
}
