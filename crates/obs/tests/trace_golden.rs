//! Golden-shape test for the Chrome trace exporter: the emitted
//! document must parse as JSON (checked by a small recursive-descent
//! parser — no serde in the workspace) and every event must carry
//! well-formed `ph`/`ts`/`dur` fields.

#![cfg(feature = "enabled")]

use nadroid_obs as obs;

/// Minimal JSON value for validation.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) {
        assert_eq!(self.peek(), Some(b), "expected {:?} at {}", b as char, self.pos);
        self.pos += 1;
    }

    fn value(&mut self) -> Json {
        match self.peek().expect("unexpected end of input") {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Json {
        assert!(
            self.bytes[self.pos..].starts_with(word.as_bytes()),
            "bad literal at {}",
            self.pos
        );
        self.pos += word.len();
        v
    }

    fn object(&mut self) -> Json {
        self.expect(b'{');
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Json::Obj(fields);
        }
        loop {
            self.skip_ws();
            let key = self.string();
            self.expect(b':');
            fields.push((key, self.value()));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Json::Obj(fields);
                }
                other => panic!("bad object separator {other:?} at {}", self.pos),
            }
        }
    }

    fn array(&mut self) -> Json {
        self.expect(b'[');
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Json::Arr(items);
        }
        loop {
            items.push(self.value());
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Json::Arr(items);
                }
                other => panic!("bad array separator {other:?} at {}", self.pos),
            }
        }
    }

    fn string(&mut self) -> String {
        self.expect(b'"');
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied().expect("unterminated string") {
                b'"' => {
                    self.pos += 1;
                    return out;
                }
                b'\\' => {
                    self.pos += 1;
                    let e = self.bytes[self.pos];
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).unwrap();
                            let code = u32::from_str_radix(hex, 16).expect("bad \\u escape");
                            out.push(char::from_u32(code).expect("bad code point"));
                            self.pos += 4;
                        }
                        other => panic!("unsupported escape \\{}", other as char),
                    }
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let s = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Json {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        Json::Num(text.parse().unwrap_or_else(|_| panic!("bad number `{text}`")))
    }
}

fn parse(s: &str) -> Json {
    let mut p = Parser::new(s);
    let v = p.value();
    p.skip_ws();
    assert_eq!(p.pos, p.bytes.len(), "trailing garbage after JSON value");
    v
}

/// The span names a traced sample run must produce — the golden list.
const GOLDEN_NAMES: &[&str] = &["analyze", "modeling", "detection", "pointsto", "escape"];

fn traced_sample() -> obs::Recorder {
    let rec = obs::Recorder::new();
    {
        let _g = rec.install();
        let _a = obs::span("analyze");
        {
            let _m = obs::span("modeling");
        }
        {
            let _d = obs::span("detection");
            {
                let _p = obs::span("pointsto");
                obs::counter("pointsto.queue_pops", 5);
            }
            let _e = obs::span("escape");
        }
    }
    rec
}

#[test]
fn chrome_trace_parses_and_events_are_well_formed() {
    let rec = traced_sample();
    let doc = parse(&rec.chrome_trace());
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        other => panic!("traceEvents missing or not an array: {other:?}"),
    };
    assert_eq!(events.len(), GOLDEN_NAMES.len());

    let mut names: Vec<String> = Vec::new();
    for ev in events {
        assert_eq!(
            ev.get("ph").and_then(Json::as_str),
            Some("X"),
            "complete events only: {ev:?}"
        );
        let ts = ev.get("ts").and_then(Json::as_num).expect("numeric ts");
        let dur = ev.get("dur").and_then(Json::as_num).expect("numeric dur");
        assert!(ts >= 0.0 && dur >= 0.0, "non-negative timestamps: {ev:?}");
        assert!(ts.fract() == 0.0 && dur.fract() == 0.0, "integral µs: {ev:?}");
        assert!(ev.get("pid").is_some() && ev.get("tid").is_some());
        names.push(ev.get("name").and_then(Json::as_str).unwrap().to_owned());
    }
    let mut sorted = names.clone();
    sorted.sort();
    let mut golden: Vec<String> = GOLDEN_NAMES.iter().map(|s| (*s).to_owned()).collect();
    golden.sort();
    assert_eq!(sorted, golden, "span names match the golden list");

    // Containment: children lie within their parent's [ts, ts+dur] —
    // exact, because durations are differences of epoch-relative
    // truncated offsets, so quantized ends are monotone.
    let ts_of = |name: &str| {
        events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some(name))
            .map(|e| {
                (
                    e.get("ts").and_then(Json::as_num).unwrap(),
                    e.get("dur").and_then(Json::as_num).unwrap(),
                )
            })
            .unwrap()
    };
    let (a_ts, a_dur) = ts_of("analyze");
    let (p_ts, p_dur) = ts_of("pointsto");
    assert!(a_ts <= p_ts && p_ts + p_dur <= a_ts + a_dur);
}

#[test]
fn report_json_parses_with_expected_fields() {
    let rec = traced_sample();
    let doc = parse(&rec.report_json());
    assert!(doc.get("wall_secs").and_then(Json::as_num).is_some());
    assert!(doc.get("busy_secs").and_then(Json::as_num).is_some());
    let counters = doc.get("counters").expect("counters object");
    assert_eq!(
        counters.get("pointsto.queue_pops").and_then(Json::as_num),
        Some(5.0)
    );
    match doc.get("spans") {
        Some(Json::Arr(spans)) => assert_eq!(spans.len(), GOLDEN_NAMES.len()),
        other => panic!("spans missing: {other:?}"),
    }
}

#[test]
fn escaped_span_names_round_trip() {
    let rec = obs::Recorder::new();
    {
        let _g = rec.install();
        let _s = obs::span("weird \"name\"\twith\nescapes\\");
    }
    let doc = parse(&rec.chrome_trace());
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(e)) => e,
        _ => panic!("no events"),
    };
    assert_eq!(
        events[0].get("name").and_then(Json::as_str),
        Some("weird \"name\"\twith\nescapes\\")
    );
}
