//! A dependency-free log-bucketed online histogram.
//!
//! HDR-style log-linear bucketing: values below 2^[`SUB_BITS`] get an
//! exact bucket each; above that, every power-of-two octave is split
//! into 2^[`SUB_BITS`] equal sub-buckets, so the relative quantization
//! error is bounded by `1 / 2^SUB_BITS` (~3.1%, comfortably inside the
//! ~5% the serving layer budgets for). Memory is constant — one `u64`
//! per bucket, [`BUCKETS`] total (~15 KiB) — regardless of how many
//! values are recorded, which is what lets `nadroid-serve` keep one
//! histogram per (endpoint, outcome) pair for the lifetime of the
//! process.
//!
//! Merging is an element-wise add and therefore exact, associative, and
//! commutative (the proptest suite pins this): per-thread or
//! per-request histograms can be combined into a process-wide one
//! without losing anything but the sub-bucket resolution already paid
//! at record time.

/// Sub-bucket resolution: each octave is split into `2^SUB_BITS`
/// linear buckets, bounding relative error at `1 / 2^SUB_BITS`.
pub const SUB_BITS: u32 = 5;

const SUB_COUNT: u64 = 1 << SUB_BITS; // 32 sub-buckets per octave

/// Total bucket count: 32 exact low buckets plus 59 octaves x 32.
pub const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_COUNT as usize;

/// The bucket index for a value.
fn index_of(v: u64) -> usize {
    if v < SUB_COUNT {
        return usize::try_from(v).expect("v < 32 fits usize");
    }
    let msb = 63 - u64::from(v.leading_zeros()); // >= SUB_BITS
    let shift = msb - u64::from(SUB_BITS);
    let sub = (v >> shift) & (SUB_COUNT - 1);
    let group = msb - u64::from(SUB_BITS) + 1;
    usize::try_from(group * SUB_COUNT + sub).expect("bucket index fits usize")
}

/// The `[lo, hi]` value range covered by bucket `i`.
fn bounds_of(i: usize) -> (u64, u64) {
    let i = i as u64;
    if i < SUB_COUNT {
        return (i, i);
    }
    let group = i / SUB_COUNT; // >= 1
    let sub = i % SUB_COUNT;
    let shift = group - 1;
    let lo = (SUB_COUNT + sub) << shift;
    // Parenthesized so the top bucket (`hi == u64::MAX`) cannot
    // overflow on the way there.
    let hi = lo + ((1u64 << shift) - 1);
    (lo, hi)
}

/// An online log-linear histogram of `u64` samples (the serving layer
/// records microseconds). Constant memory, exact merge, percentile
/// readout with bounded relative error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    total: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[index_of(v)] += 1;
        self.count += 1;
        self.total = self.total.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram in. Element-wise and therefore exact:
    /// `merge` is associative and commutative, and merging histograms
    /// of two sample sets equals the histogram of their union.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.total = self.total.saturating_add(other.total);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest recorded sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest recorded sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// The `p`-quantile (`p` in `[0, 1]`), read from the bucket holding
    /// the `ceil(p * count)`-th smallest sample. Returns the bucket's
    /// upper bound clamped into `[min, max]`, so the estimate never
    /// undershoots the true order statistic and overshoots it by at
    /// most `1/2^SUB_BITS` relative; `percentile` is monotone in `p`
    /// and `percentile(1.0)` is exactly `max`. Empty histograms read 0.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        #[allow(clippy::cast_possible_truncation)]
        let target = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let (_, hi) = bounds_of(i);
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(lo, hi, count)` triples in ascending
    /// value order — the exposition format of `nadroid-serve-metrics/1`
    /// and the `nadroid-ledger/1` histogram snapshots. Together with
    /// [`Histogram::total`], [`Histogram::min`] and [`Histogram::max`]
    /// this is a complete snapshot: [`Histogram::from_snapshot`]
    /// rebuilds an identical histogram from it.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bounds_of(i);
                (lo, hi, c)
            })
    }

    /// Rebuild a histogram from a snapshot: the `(lo, hi, count)`
    /// triples of [`Histogram::buckets`] plus the `total`/`min`/`max`
    /// scalars. The round trip is exact —
    /// `Histogram::from_snapshot(h.total(), h.min(), h.max(), h.buckets())`
    /// equals `h` for every histogram `h` — so percentile readouts
    /// survive serialization bit-for-bit (the ledger's diff math
    /// depends on this).
    ///
    /// # Errors
    ///
    /// Rejects triples whose `(lo, hi)` is not exactly one of this
    /// encoder's bucket boundary pairs, zero counts, out-of-order
    /// buckets, and scalars inconsistent with the buckets (an empty
    /// bucket list requires `total == min == max == 0`; a non-empty one
    /// requires `min <= max` with both inside the covered value range).
    pub fn from_snapshot<I>(total: u64, min: u64, max: u64, buckets: I) -> Result<Histogram, String>
    where
        I: IntoIterator<Item = (u64, u64, u64)>,
    {
        let mut h = Histogram::new();
        let mut last_index: Option<usize> = None;
        for (lo, hi, c) in buckets {
            let i = index_of(lo);
            if bounds_of(i) != (lo, hi) {
                return Err(format!("[{lo}, {hi}] is not a bucket of this encoder"));
            }
            if c == 0 {
                return Err(format!("bucket [{lo}, {hi}] has zero count"));
            }
            if last_index.is_some_and(|prev| prev >= i) {
                return Err(format!("bucket [{lo}, {hi}] out of ascending order"));
            }
            last_index = Some(i);
            h.counts[i] = c;
            h.count += c;
        }
        if h.count == 0 {
            if (total, min, max) != (0, 0, 0) {
                return Err("empty snapshot with nonzero total/min/max".into());
            }
            return Ok(h);
        }
        let first_index = h.counts.iter().position(|&c| c > 0).expect("non-empty");
        let last_index = last_index.expect("non-empty");
        if min > max || index_of(min) != first_index || index_of(max) != last_index {
            return Err(format!(
                "min/max [{min}, {max}] do not land in the first/last non-empty bucket"
            ));
        }
        h.total = total;
        h.min = min;
        h.max = max;
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32 {
            h.record(v);
        }
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets.len(), 32);
        for (i, (lo, hi, c)) in buckets.iter().enumerate() {
            assert_eq!((*lo, *hi, *c), (i as u64, i as u64, 1));
        }
    }

    #[test]
    fn bucket_bounds_partition_the_domain() {
        // Every bucket's lo is the previous bucket's hi + 1, and
        // index_of maps both endpoints back to the bucket.
        let mut expected_lo = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = bounds_of(i);
            assert_eq!(lo, expected_lo, "bucket {i} starts where {} ended", i - 1);
            assert!(hi >= lo);
            assert_eq!(index_of(lo), i);
            assert_eq!(index_of(hi), i);
            if hi == u64::MAX {
                assert_eq!(i, BUCKETS - 1, "only the last bucket reaches u64::MAX");
                return;
            }
            expected_lo = hi + 1;
        }
        panic!("last bucket must cover u64::MAX");
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [33u64, 100, 1000, 12_345, 1 << 20, u64::MAX / 3] {
            let (lo, hi) = bounds_of(index_of(v));
            assert!(lo <= v && v <= hi);
            let err = hi - lo;
            assert!(
                err <= lo / 32,
                "bucket width {err} exceeds lo/32 for v={v} (lo={lo})"
            );
        }
    }

    #[test]
    fn percentiles_track_the_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.percentile(1.0), 1000, "p100 is exactly max");
        let p50 = h.percentile(0.5);
        assert!((500..=516).contains(&p50), "p50 {p50} within bucket error");
        let p99 = h.percentile(0.99);
        assert!((990..=1000).contains(&p99), "p99 {p99} within bucket error");
        assert!(h.percentile(0.5) <= h.percentile(0.9));
        assert!(h.percentile(0.9) <= h.percentile(0.99));
    }

    #[test]
    fn single_value_reads_back_exactly() {
        let mut h = Histogram::new();
        h.record(777);
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(p), 777);
        }
        assert_eq!(h.total(), 777);
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [0u64, 1, 31, 32, 33, 100, 5000, 1 << 40] {
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all);
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 31, 32, 33, 777, 12_345, 1 << 40, u64::MAX / 3] {
            h.record(v);
        }
        let back = Histogram::from_snapshot(h.total(), h.min(), h.max(), h.buckets()).unwrap();
        assert_eq!(back, h, "decode(encode(h)) == h");
        for p in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(back.percentile(p), h.percentile(p));
        }

        let empty = Histogram::from_snapshot(0, 0, 0, std::iter::empty()).unwrap();
        assert_eq!(empty, Histogram::new());
    }

    #[test]
    fn snapshot_rejects_malformed_input() {
        // Not a bucket boundary pair.
        assert!(Histogram::from_snapshot(5, 5, 5, [(5u64, 6u64, 1u64)]).is_err());
        // Zero count.
        assert!(Histogram::from_snapshot(5, 5, 5, [(5, 5, 0)]).is_err());
        // Out of order.
        assert!(Histogram::from_snapshot(12, 5, 7, [(7, 7, 1), (5, 5, 1)]).is_err());
        // Scalars inconsistent with the buckets.
        assert!(Histogram::from_snapshot(1, 0, 0, std::iter::empty()).is_err());
        assert!(Histogram::from_snapshot(10, 9, 5, [(5, 5, 2)]).is_err());
        assert!(Histogram::from_snapshot(10, 4, 5, [(5, 5, 2)]).is_err());
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!((h.min(), h.max(), h.total()), (0, 0, 0));
        assert_eq!(h.buckets().count(), 0);
    }
}
