//! Cooperative cancellation for long-running analysis loops.
//!
//! This rides in `nadroid-obs` because it is the one dependency-free
//! substrate crate every compute layer (points-to solver, Datalog
//! engine) already links; like the recorder, a token is *installed* on a
//! thread and consulted through a cheap thread-local check. Unlike the
//! probes, cancellation is a correctness feature, so it is **not**
//! compiled out under `--no-default-features`.
//!
//! A [`CancelToken`] carries a manual flag plus an optional deadline.
//! Hot loops call [`checkpoint`] once per worklist drain batch; when the
//! installed token has been cancelled (or its deadline has passed) the
//! checkpoint unwinds the analysis with a [`Cancelled`] panic payload,
//! which the driver catches with `std::panic::catch_unwind` and turns
//! into a structured timeout. With no token installed, [`checkpoint`]
//! is a thread-local read and a branch.
//!
//! ```
//! use nadroid_obs::cancel::{self, CancelToken, Cancelled};
//!
//! let token = CancelToken::new();
//! token.cancel();
//! let hit = std::panic::catch_unwind(|| {
//!     let _scope = token.install();
//!     cancel::checkpoint(); // unwinds here
//! });
//! let payload = hit.unwrap_err();
//! assert!(payload.downcast_ref::<Cancelled>().is_some());
//! ```

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

/// The panic payload used to unwind a cancelled analysis. Catch with
/// `catch_unwind` and test via [`was_cancelled`] (or `downcast_ref`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("analysis cancelled")
    }
}

#[derive(Debug)]
struct TokenInner {
    flag: AtomicBool,
    deadline: Option<Instant>,
    // An opaque caller label (the serving layer threads its request id
    // through here) so a cancellation observed deep in a solver loop
    // can be attributed to the request that carried the deadline.
    tag: Option<String>,
}

/// A cancellation token: a manual flag plus an optional wall-clock
/// deadline. Cheap to clone; clones share the flag.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A token with no deadline; fires only via [`CancelToken::cancel`].
    #[must_use]
    pub fn new() -> Self {
        Self::build(None, None)
    }

    /// A token that additionally fires once `budget` has elapsed.
    #[must_use]
    pub fn with_deadline(budget: Duration) -> Self {
        Self::build(Some(Instant::now() + budget), None)
    }

    /// [`CancelToken::new`], carrying a caller label (e.g. a request
    /// id) readable via [`CancelToken::tag`].
    #[must_use]
    pub fn tagged(tag: &str) -> Self {
        Self::build(None, Some(tag.to_owned()))
    }

    /// [`CancelToken::with_deadline`], carrying a caller label.
    #[must_use]
    pub fn with_deadline_tagged(budget: Duration, tag: &str) -> Self {
        Self::build(Some(Instant::now() + budget), Some(tag.to_owned()))
    }

    fn build(deadline: Option<Instant>, tag: Option<String>) -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                flag: AtomicBool::new(false),
                deadline,
                tag,
            }),
        }
    }

    /// The caller label this token carries, if any. Clones share it.
    #[must_use]
    pub fn tag(&self) -> Option<&str> {
        self.inner.tag.as_deref()
    }

    /// Request cancellation (thread-safe; from any clone).
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the token has fired — manually or by deadline.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.inner.flag.load(Ordering::Relaxed)
            || self
                .inner
                .deadline
                .is_some_and(|d| Instant::now() >= d)
    }

    /// Install this token for the current thread. Checkpoints consult
    /// the most recently installed token until the scope drops.
    #[must_use]
    pub fn install(&self) -> CancelScope {
        INSTALLED.with(|stack| stack.borrow_mut().push(self.inner.clone()));
        CancelScope { _priv: () }
    }
}

thread_local! {
    static INSTALLED: RefCell<Vec<Arc<TokenInner>>> = const { RefCell::new(Vec::new()) };
}

/// The token installed on the current thread, if any. Scoped worker
/// pools use this to re-install the spawning thread's token on their
/// workers, so [`checkpoint`] keeps firing inside parallel regions.
#[must_use]
pub fn current_token() -> Option<CancelToken> {
    INSTALLED.with(|stack| {
        stack.borrow().last().map(|inner| CancelToken {
            inner: inner.clone(),
        })
    })
}

/// Guard returned by [`CancelToken::install`]; uninstalls on drop.
#[derive(Debug)]
pub struct CancelScope {
    _priv: (),
}

impl Drop for CancelScope {
    fn drop(&mut self) {
        INSTALLED.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// Whether the current thread's installed token (if any) has fired.
#[must_use]
pub fn should_stop() -> bool {
    INSTALLED.with(|stack| {
        stack.borrow().last().is_some_and(|t| {
            t.flag.load(Ordering::Relaxed)
                || t.deadline.is_some_and(|d| Instant::now() >= d)
        })
    })
}

/// The cooperative cancellation hook: call once per worklist drain
/// batch. Unwinds with a [`Cancelled`] payload when the installed token
/// has fired; a no-op (one thread-local read) otherwise.
///
/// # Panics
///
/// Panics with [`Cancelled`] when the current thread's token has fired
/// — by design; catch at the analysis boundary with `catch_unwind`.
pub fn checkpoint() {
    if should_stop() {
        std::panic::panic_any(Cancelled);
    }
}

/// Whether a `catch_unwind` payload is a cancellation unwind.
#[must_use]
pub fn was_cancelled(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.downcast_ref::<Cancelled>().is_some()
}

/// Install a process-wide panic-hook filter that silences the default
/// "thread panicked" stderr report for [`Cancelled`] unwinds (they are
/// control flow, not failures). Idempotent; other panics still reach
/// the previously installed hook.
pub fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<Cancelled>().is_none() {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_is_inert_without_a_token() {
        assert!(!should_stop());
        checkpoint(); // must not panic
    }

    #[test]
    fn manual_cancel_unwinds_with_the_marker_payload() {
        install_quiet_hook();
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        token.cancel();
        assert!(token.is_cancelled());
        let err = std::panic::catch_unwind(|| {
            let _scope = token.install();
            checkpoint();
        })
        .unwrap_err();
        assert!(was_cancelled(&*err));
        // The scope unwound: the thread is clean again.
        assert!(!should_stop());
        checkpoint();
    }

    #[test]
    fn zero_deadline_fires_immediately() {
        install_quiet_hook();
        let token = CancelToken::with_deadline(Duration::ZERO);
        assert!(token.is_cancelled());
        let _scope = token.install();
        assert!(should_stop());
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        let _scope = token.install();
        assert!(!should_stop());
        checkpoint();
    }

    #[test]
    fn tags_ride_the_token_through_install_and_clone() {
        let token = CancelToken::with_deadline_tagged(Duration::from_secs(3600), "r0000002a");
        assert_eq!(token.tag(), Some("r0000002a"));
        assert_eq!(token.clone().tag(), Some("r0000002a"));
        let _scope = token.install();
        let seen = current_token().expect("installed token visible");
        assert_eq!(seen.tag(), Some("r0000002a"));
        assert!(CancelToken::tagged("x").tag() == Some("x"));
        assert!(CancelToken::new().tag().is_none());
    }

    #[test]
    fn tokens_nest_and_clones_share_the_flag() {
        let outer = CancelToken::new();
        let inner = CancelToken::new();
        let _og = outer.install();
        {
            let _ig = inner.install();
            inner.clone().cancel();
            assert!(should_stop(), "innermost token governs");
        }
        assert!(!should_stop(), "outer token untouched after scope drop");
    }
}
