//! Structured tracing and pipeline metrics for nAdroid-rs.
//!
//! The paper's evaluation (§8, Table 1, Figure 5) is an observability
//! exercise: per-app pipeline counts, per-filter kill rates, and phase
//! timing. This crate is the dependency-free substrate every layer of
//! the pipeline reports through:
//!
//! - **Spans** ([`span`]): RAII scopes with wall timing and thread-safe
//!   nesting. Each thread that [`Recorder::install`]s a recorder gets
//!   its own nesting stack, so parallel suite drivers trace cleanly.
//! - **Metrics** ([`counter`], [`gauge`], [`hist`]): named monotonic
//!   counters, last-write-wins gauges, and log-bucketed online
//!   latency histograms ([`hist::Histogram`]) in a per-recorder
//!   registry.
//! - **Exporters** (on [`Recorder`]): Chrome `trace_event` JSON (load in
//!   `chrome://tracing` or Perfetto), a flat JSON run-report, and a
//!   human-readable `--stats` text tree.
//!
//! Instrumentation is *scoped*, not global: nothing is recorded on a
//! thread until a [`Recorder`] is installed there, so the uninstalled
//! fast path is one thread-local check. Building this crate with
//! `--no-default-features` compiles every entry point down to an empty
//! inline function.
//!
//! # Example
//!
//! ```
//! use nadroid_obs as obs;
//!
//! let rec = obs::Recorder::new();
//! {
//!     let _g = rec.install();
//!     let _phase = obs::span("detection");
//!     {
//!         let _sub = obs::span("pointsto");
//!         obs::counter("pointsto.queue_pops", 42);
//!     }
//! }
//! # #[cfg(feature = "enabled")]
//! assert_eq!(rec.counter_value("pointsto.queue_pops"), 42);
//! let trace = rec.chrome_trace();
//! assert!(trace.contains("\"traceEvents\""));
//! ```
//!
//! # Timing semantics
//!
//! Spans record **wall** time of their scope on the thread that opened
//! them. The exporters derive **cpu** (busy) time as the sum of
//! top-level span durations across threads — for compute-bound phases
//! run on scoped threads (the suite drivers) this is the summed
//! per-thread busy time, which is why suite aggregates are labeled
//! `cpu_secs` and can legitimately exceed the suite's `wall_secs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
mod export;
pub mod hist;

pub use export::SpanAgg;
pub use hist::Histogram;

/// Whether instrumentation was compiled in (the `enabled` cargo
/// feature, on by default). Environment fingerprints — the run ledger's
/// `env.features` — record it so runs with probes compiled out are
/// never compared against instrumented ones.
pub const ENABLED: bool = cfg!(feature = "enabled");

use std::collections::BTreeMap;
use std::sync::atomic::AtomicU32;
#[cfg(feature = "enabled")]
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One completed span, in recorder-relative microseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (dot-separated, see `docs/observability.md`).
    pub name: String,
    /// Recorder-scoped thread number (install order).
    pub tid: u32,
    /// Nesting depth at open time (0 = top level for its thread).
    pub depth: u32,
    /// Start offset from the recorder's epoch, microseconds.
    pub start_us: u64,
    /// Wall duration, microseconds.
    pub dur_us: u64,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, u64>>,
    hists: Mutex<BTreeMap<String, Histogram>>,
    // Only consulted by `install`, which is a no-op when instrumentation
    // is compiled out.
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    next_tid: AtomicU32,
}

impl Inner {
    fn new() -> Self {
        Inner {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            hists: Mutex::new(BTreeMap::new()),
            next_tid: AtomicU32::new(0),
        }
    }
}

/// A handle to one run's worth of spans and metrics. Cheap to clone;
/// clones share the same storage. Data is collected only on threads
/// where [`Recorder::install`] is active.
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A fresh, empty recorder. Its epoch (trace time zero) is now.
    #[must_use]
    pub fn new() -> Self {
        Recorder {
            inner: Arc::new(Inner::new()),
        }
    }

    /// Install this recorder as the current thread's collection target.
    /// Returns a guard; collection stops (and any previously installed
    /// recorder is restored) when the guard drops. Each installation
    /// gets a distinct `tid` in install order.
    ///
    /// Spans opened under an installation must not outlive its guard.
    #[must_use]
    pub fn install(&self) -> Installed {
        #[cfg(feature = "enabled")]
        {
            let tid = self.inner.next_tid.fetch_add(1, Ordering::Relaxed);
            enabled::install(self.inner.clone(), tid);
        }
        Installed { _priv: () }
    }

    /// Wall time since the recorder's epoch.
    #[must_use]
    pub fn wall(&self) -> Duration {
        self.inner.epoch.elapsed()
    }

    /// All completed spans, sorted by (thread, start, depth).
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut spans = self.inner.spans.lock().expect("obs spans lock").clone();
        spans.sort_by_key(|s| (s.tid, s.start_us, s.depth));
        spans
    }

    /// All counters, sorted by name.
    #[must_use]
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.inner
            .counters
            .lock()
            .expect("obs counters lock")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// All gauges, sorted by name.
    #[must_use]
    pub fn gauges(&self) -> Vec<(String, u64)> {
        self.inner
            .gauges
            .lock()
            .expect("obs gauges lock")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// The value of one counter (0 when never bumped).
    #[must_use]
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .counters
            .lock()
            .expect("obs counters lock")
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// All histograms, sorted by name (snapshots — cheap, constant
    /// size per histogram).
    #[must_use]
    pub fn histograms(&self) -> Vec<(String, Histogram)> {
        self.inner
            .hists
            .lock()
            .expect("obs hists lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// A snapshot of one histogram, if any sample was recorded into it.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner
            .hists
            .lock()
            .expect("obs hists lock")
            .get(name)
            .cloned()
    }

    /// Fold another recorder's **metrics** into this one: counters add,
    /// gauges keep the max, histograms merge exactly. Spans are *not*
    /// transferred — they stay with the recorder that captured them
    /// (the serving layer installs a per-request recorder to isolate a
    /// slow request's span tree, then merges its metrics back so
    /// process-wide counters and histograms stay complete).
    pub fn merge_from(&self, other: &Recorder) {
        {
            let mut c = self.inner.counters.lock().expect("obs counters lock");
            for (k, v) in other.counters() {
                *c.entry(k).or_insert(0) += v;
            }
        }
        {
            let mut g = self.inner.gauges.lock().expect("obs gauges lock");
            for (k, v) in other.gauges() {
                let e = g.entry(k).or_insert(0);
                *e = (*e).max(v);
            }
        }
        let mut h = self.inner.hists.lock().expect("obs hists lock");
        for (k, v) in other.histograms() {
            h.entry(k).or_default().merge(&v);
        }
    }
}

/// The recorder installed on the current thread, if any. Scoped worker
/// pools use this to re-install the spawning thread's collection target
/// on their workers, so counters bumped inside parallel regions land in
/// the same registry they would have sequentially (counter merges are
/// additive, so totals are exact at any thread count).
#[must_use]
pub fn current_recorder() -> Option<Recorder> {
    #[cfg(feature = "enabled")]
    {
        enabled::current().map(|inner| Recorder { inner })
    }
    #[cfg(not(feature = "enabled"))]
    None
}

/// Guard returned by [`Recorder::install`]; uninstalls on drop.
#[derive(Debug)]
pub struct Installed {
    _priv: (),
}

impl Drop for Installed {
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        enabled::uninstall();
    }
}

/// An open span; records itself into the recorder on drop. Obtained
/// from [`span`] / [`span_lazy`]; inert when no recorder is installed.
#[derive(Debug)]
#[must_use = "a span measures the scope it is alive for"]
pub struct Span {
    active: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    inner: Arc<Inner>,
    name: String,
    tid: u32,
    depth: u32,
    start_us: u64,
}

impl Span {
    /// An inert span (records nothing). Useful as an explicit disabled
    /// arm where [`span`] would be called conditionally.
    pub fn none() -> Span {
        Span { active: None }
    }

    /// Whether this span is actually recording.
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(s) = self.active.take() {
            #[cfg(feature = "enabled")]
            enabled::span_closed();
            // Duration is the difference of two epoch-relative truncated
            // offsets (not an independently truncated elapsed): quantized
            // span ends then stay monotone, so a child's `ts + dur` never
            // exceeds its parent's in the exported trace.
            #[allow(clippy::cast_possible_truncation)]
            let end_us = s.inner.epoch.elapsed().as_micros() as u64;
            let dur_us = end_us.saturating_sub(s.start_us);
            s.inner.spans.lock().expect("obs spans lock").push(SpanRecord {
                name: s.name,
                tid: s.tid,
                depth: s.depth,
                start_us: s.start_us,
                dur_us,
            });
        }
    }
}

/// Whether the current thread has a recorder installed. Use to guard
/// expensive metric computation (string formatting, distinct counts).
#[must_use]
pub fn recording() -> bool {
    #[cfg(feature = "enabled")]
    {
        enabled::current().is_some()
    }
    #[cfg(not(feature = "enabled"))]
    false
}

/// Open a span named `name` on the current thread. The name is copied
/// only when a recorder is installed.
pub fn span(name: &str) -> Span {
    span_lazy(|| name.to_owned())
}

/// Open a span whose name is computed only when a recorder is
/// installed — use on hot paths where the name is formatted.
pub fn span_lazy<F: FnOnce() -> String>(name: F) -> Span {
    #[cfg(feature = "enabled")]
    {
        if let Some((inner, tid, depth)) = enabled::span_opened() {
            #[allow(clippy::cast_possible_truncation)]
            let start_us = inner.epoch.elapsed().as_micros() as u64;
            return Span {
                active: Some(ActiveSpan {
                    name: name(),
                    tid,
                    depth,
                    start_us,
                    inner,
                }),
            };
        }
    }
    let _ = &name;
    Span::none()
}

/// Add `delta` to the named monotonic counter of the current thread's
/// recorder (no-op when none is installed).
pub fn counter(name: &str, delta: u64) {
    #[cfg(feature = "enabled")]
    {
        if let Some(inner) = enabled::current() {
            let mut c = inner.counters.lock().expect("obs counters lock");
            *c.entry(name.to_owned()).or_insert(0) += delta;
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (name, delta);
    }
}

/// Set the named gauge to `value` (last write wins; no-op when no
/// recorder is installed).
pub fn gauge(name: &str, value: u64) {
    #[cfg(feature = "enabled")]
    {
        if let Some(inner) = enabled::current() {
            let mut g = inner.gauges.lock().expect("obs gauges lock");
            g.insert(name.to_owned(), value);
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (name, value);
    }
}

/// Record one sample into the named histogram of the current thread's
/// recorder (no-op when none is installed). The serving layer feeds
/// request latencies and phase times in microseconds through this.
pub fn hist(name: &str, value: u64) {
    #[cfg(feature = "enabled")]
    {
        if let Some(inner) = enabled::current() {
            let mut h = inner.hists.lock().expect("obs hists lock");
            h.entry(name.to_owned())
                .or_default()
                .record(value);
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (name, value);
    }
}

/// Raise the named gauge to at least `value` (no-op when no recorder is
/// installed). Useful for high-water marks fed from several scopes.
pub fn gauge_max(name: &str, value: u64) {
    #[cfg(feature = "enabled")]
    {
        if let Some(inner) = enabled::current() {
            let mut g = inner.gauges.lock().expect("obs gauges lock");
            let e = g.entry(name.to_owned()).or_insert(0);
            *e = (*e).max(value);
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (name, value);
    }
}

#[cfg(feature = "enabled")]
mod enabled {
    use super::Inner;
    use std::cell::{Cell, RefCell};
    use std::sync::Arc;

    struct ThreadCtx {
        inner: Arc<Inner>,
        tid: u32,
        depth: Cell<u32>,
    }

    thread_local! {
        static CURRENT: RefCell<Vec<ThreadCtx>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn install(inner: Arc<Inner>, tid: u32) {
        CURRENT.with(|c| {
            c.borrow_mut().push(ThreadCtx {
                inner,
                tid,
                depth: Cell::new(0),
            });
        });
    }

    pub(super) fn uninstall() {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }

    pub(super) fn current() -> Option<Arc<Inner>> {
        CURRENT.with(|c| c.borrow().last().map(|ctx| ctx.inner.clone()))
    }

    /// Reserve a (recorder, tid, depth) slot for a new span and bump the
    /// thread's nesting depth.
    pub(super) fn span_opened() -> Option<(Arc<Inner>, u32, u32)> {
        CURRENT.with(|c| {
            c.borrow().last().map(|ctx| {
                let depth = ctx.depth.get();
                ctx.depth.set(depth + 1);
                (ctx.inner.clone(), ctx.tid, depth)
            })
        })
    }

    pub(super) fn span_closed() {
        CURRENT.with(|c| {
            if let Some(ctx) = c.borrow().last() {
                ctx.depth.set(ctx.depth.get().saturating_sub(1));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nothing_is_recorded_without_an_install() {
        let rec = Recorder::new();
        {
            let _s = span("orphan");
            counter("orphan.count", 3);
            hist("orphan.h", 7);
        }
        assert!(rec.spans().is_empty());
        assert!(rec.counters().is_empty());
        assert!(rec.histograms().is_empty());
        assert!(!recording());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn hist_records_into_the_installed_recorder() {
        let rec = Recorder::new();
        {
            let _g = rec.install();
            for v in [10u64, 20, 30] {
                hist("lat", v);
            }
        }
        let h = rec.histogram("lat").expect("histogram recorded");
        assert_eq!((h.count(), h.max(), h.total()), (3, 30, 60));
        assert!(rec.histogram("other").is_none());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn merge_from_folds_metrics_but_not_spans() {
        let shared = Recorder::new();
        let per_request = Recorder::new();
        {
            let _g = shared.install();
            counter("c", 1);
            gauge_max("g", 5);
            hist("h", 100);
        }
        {
            let _g = per_request.install();
            let _s = span("request");
            counter("c", 2);
            gauge_max("g", 3);
            hist("h", 200);
        }
        shared.merge_from(&per_request);
        assert_eq!(shared.counter_value("c"), 3);
        let gauges: std::collections::HashMap<String, u64> =
            shared.gauges().into_iter().collect();
        assert_eq!(gauges["g"], 5, "gauge merge keeps the max");
        let h = shared.histogram("h").unwrap();
        assert_eq!((h.count(), h.min(), h.max()), (2, 100, 200));
        assert!(shared.spans().is_empty(), "spans stay with their recorder");
        assert_eq!(per_request.spans().len(), 1);
        // The donor is untouched.
        assert_eq!(per_request.counter_value("c"), 2);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn spans_nest_and_record_depth() {
        let rec = Recorder::new();
        {
            let _g = rec.install();
            assert!(recording());
            let _a = span("a");
            {
                let _b = span("b");
                let _c = span("c");
                assert!(_c.is_recording());
            }
            let _d = span("d");
        }
        let spans = rec.spans();
        let by_name: std::collections::HashMap<&str, u32> =
            spans.iter().map(|s| (s.name.as_str(), s.depth)).collect();
        assert_eq!(by_name["a"], 0);
        assert_eq!(by_name["b"], 1);
        assert_eq!(by_name["c"], 2);
        assert_eq!(by_name["d"], 1, "depth recovers after siblings close");
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn nesting_is_thread_safe_under_scoped_threads() {
        let rec = Recorder::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let rec = rec.clone();
                scope.spawn(move || {
                    let _g = rec.install();
                    let _outer = span_lazy(|| format!("outer{t}"));
                    for i in 0..10 {
                        let _inner = span_lazy(|| format!("inner{t}.{i}"));
                        counter("spans.inner", 1);
                    }
                });
            }
        });
        let spans = rec.spans();
        assert_eq!(spans.len(), 8 * 11);
        assert_eq!(rec.counter_value("spans.inner"), 80);
        // Every thread's stack nested independently: each inner span is
        // depth 1 and starts at or after its thread's outer span.
        for s in &spans {
            if s.name.starts_with("inner") {
                assert_eq!(s.depth, 1);
                let outer = spans
                    .iter()
                    .find(|o| o.tid == s.tid && o.depth == 0)
                    .expect("outer span on same tid");
                assert!(outer.start_us <= s.start_us);
            }
        }
        let tids: std::collections::HashSet<u32> = spans.iter().map(|s| s.tid).collect();
        assert_eq!(tids.len(), 8, "one tid per installation");
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn counters_are_atomic_across_threads() {
        let rec = Recorder::new();
        std::thread::scope(|scope| {
            for _ in 0..16 {
                let rec = rec.clone();
                scope.spawn(move || {
                    let _g = rec.install();
                    for _ in 0..1000 {
                        counter("hits", 1);
                    }
                });
            }
        });
        assert_eq!(rec.counter_value("hits"), 16_000);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn gauges_set_and_max() {
        let rec = Recorder::new();
        {
            let _g = rec.install();
            gauge("g", 5);
            gauge("g", 3);
            gauge_max("m", 7);
            gauge_max("m", 2);
        }
        let gauges: std::collections::HashMap<String, u64> = rec.gauges().into_iter().collect();
        assert_eq!(gauges["g"], 3, "gauge is last-write-wins");
        assert_eq!(gauges["m"], 7, "gauge_max keeps the high-water mark");
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn install_restores_previous_recorder() {
        let outer = Recorder::new();
        let inner = Recorder::new();
        let _og = outer.install();
        counter("c", 1);
        {
            let _ig = inner.install();
            counter("c", 10);
        }
        counter("c", 1);
        assert_eq!(outer.counter_value("c"), 2);
        assert_eq!(inner.counter_value("c"), 10);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_build_collects_nothing() {
        let rec = Recorder::new();
        let _g = rec.install();
        let _s = span("x");
        counter("c", 1);
        gauge("g", 1);
        hist("h", 1);
        assert!(!recording());
        assert!(rec.spans().is_empty());
        assert!(rec.counters().is_empty());
        assert!(rec.histograms().is_empty());
    }
}
