//! Exporters: Chrome `trace_event` JSON, a flat JSON run-report, and
//! the human `--stats` text tree.
//!
//! All three render from the same [`Recorder`] snapshot, so a trace, a
//! report, and the on-terminal stats of one run always agree.

use crate::Recorder;
use std::fmt::Write as _;

/// Escape a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Aggregate of all spans sharing one name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanAgg {
    /// Span name.
    pub name: String,
    /// How many spans carried the name.
    pub count: u64,
    /// Summed wall duration, microseconds.
    pub total_us: u64,
    /// Longest single span, microseconds.
    pub max_us: u64,
}

impl Recorder {
    /// Spans aggregated by name, ordered by descending total time.
    #[must_use]
    pub fn span_aggregates(&self) -> Vec<SpanAgg> {
        let mut by_name: std::collections::BTreeMap<String, SpanAgg> =
            std::collections::BTreeMap::new();
        for s in self.spans() {
            let e = by_name.entry(s.name.clone()).or_insert_with(|| SpanAgg {
                name: s.name.clone(),
                count: 0,
                total_us: 0,
                max_us: 0,
            });
            e.count += 1;
            e.total_us += s.dur_us;
            e.max_us = e.max_us.max(s.dur_us);
        }
        let mut out: Vec<SpanAgg> = by_name.into_values().collect();
        out.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));
        out
    }

    /// Summed duration of each thread's top-level spans — the "busy"
    /// (cpu-like) time of the run, which exceeds wall time when work ran
    /// on parallel threads.
    #[must_use]
    pub fn busy(&self) -> std::time::Duration {
        let us: u64 = self
            .spans()
            .iter()
            .filter(|s| s.depth == 0)
            .map(|s| s.dur_us)
            .sum();
        std::time::Duration::from_micros(us)
    }

    /// Render the Chrome `trace_event` JSON document: one complete
    /// (`"ph": "X"`) event per span, timestamps in microseconds since
    /// the recorder's epoch. Load the file in `chrome://tracing` or
    /// <https://ui.perfetto.dev>.
    #[must_use]
    pub fn chrome_trace(&self) -> String {
        let spans = self.spans();
        let mut out = String::from("{\n\"traceEvents\": [");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n  {{\"name\": \"{}\", \"cat\": \"nadroid\", \"ph\": \"X\", \
                 \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}}}",
                esc(&s.name),
                s.start_us,
                s.dur_us,
                s.tid
            );
        }
        if !spans.is_empty() {
            out.push('\n');
        }
        out.push_str("],\n\"displayTimeUnit\": \"ms\"\n}\n");
        out
    }

    /// Render the metric/span portion of a run report as JSON object
    /// *fields* (no surrounding braces), for embedding into a larger
    /// document. `indent` prefixes every line.
    #[must_use]
    pub fn report_fields(&self, indent: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{indent}\"wall_secs\": {:.6},",
            self.wall().as_secs_f64()
        );
        let _ = writeln!(
            out,
            "{indent}\"busy_secs\": {:.6},",
            self.busy().as_secs_f64()
        );
        let _ = write!(out, "{indent}\"counters\": {{");
        let counters = self.counters();
        for (i, (k, v)) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n{indent}  \"{}\": {v}", esc(k));
        }
        if counters.is_empty() {
            out.push_str("},\n");
        } else {
            let _ = write!(out, "\n{indent}}},\n");
        }
        let _ = write!(out, "{indent}\"gauges\": {{");
        let gauges = self.gauges();
        for (i, (k, v)) in gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n{indent}  \"{}\": {v}", esc(k));
        }
        if gauges.is_empty() {
            out.push_str("},\n");
        } else {
            let _ = write!(out, "\n{indent}}},\n");
        }
        let _ = write!(out, "{indent}\"histograms\": {{");
        let hists = self.histograms();
        for (i, (k, h)) in hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n{indent}  \"{}\": {{\"count\": {}, \"p50_us\": {}, \"p90_us\": {}, \
                 \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
                esc(k),
                h.count(),
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.95),
                h.percentile(0.99),
                h.max()
            );
        }
        if hists.is_empty() {
            out.push_str("},\n");
        } else {
            let _ = write!(out, "\n{indent}}},\n");
        }
        let _ = write!(out, "{indent}\"spans\": [");
        let aggs = self.span_aggregates();
        for (i, a) in aggs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n{indent}  {{\"name\": \"{}\", \"count\": {}, \"total_secs\": {:.6}, \
                 \"max_secs\": {:.6}}}",
                esc(&a.name),
                a.count,
                a.total_us as f64 / 1e6,
                a.max_us as f64 / 1e6
            );
        }
        if aggs.is_empty() {
            out.push(']');
        } else {
            let _ = write!(out, "\n{indent}]");
        }
        out
    }

    /// Render a standalone flat JSON run-report (wall/busy seconds,
    /// counters, gauges, per-name span aggregates).
    #[must_use]
    pub fn report_json(&self) -> String {
        format!("{{\n{}\n}}\n", self.report_fields("  "))
    }

    /// Render the human-readable stats tree: spans nested per thread,
    /// then counters and gauges.
    #[must_use]
    pub fn stats_tree(&self) -> String {
        let spans = self.spans();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run stats: wall {:.3}ms, busy {:.3}ms",
            self.wall().as_secs_f64() * 1e3,
            self.busy().as_secs_f64() * 1e3
        );
        let mut tid = None;
        let many_tids = spans
            .first()
            .is_some_and(|f| spans.iter().any(|s| s.tid != f.tid));
        for s in &spans {
            if many_tids && tid != Some(s.tid) {
                tid = Some(s.tid);
                let _ = writeln!(out, "thread {}:", s.tid);
            }
            let pad = "  ".repeat(s.depth as usize + 1);
            let _ = writeln!(
                out,
                "{pad}{:<width$} {:>10.3}ms",
                s.name,
                s.dur_us as f64 / 1e3,
                width = 34usize.saturating_sub(pad.len())
            );
        }
        let counters = self.counters();
        if !counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (k, v) in &counters {
                let _ = writeln!(out, "  {k:<40} {v:>12}");
            }
        }
        let gauges = self.gauges();
        if !gauges.is_empty() {
            let _ = writeln!(out, "gauges:");
            for (k, v) in &gauges {
                let _ = writeln!(out, "  {k:<40} {v:>12}");
            }
        }
        let hists = self.histograms();
        if !hists.is_empty() {
            let _ = writeln!(out, "histograms:");
            for (k, h) in &hists {
                let _ = writeln!(
                    out,
                    "  {k:<40} n={} p50={}us p99={}us max={}us",
                    h.count(),
                    h.percentile(0.50),
                    h.percentile(0.99),
                    h.max()
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "enabled")]
    use crate::{counter, gauge, span};

    #[cfg(feature = "enabled")]
    fn sample() -> Recorder {
        let rec = Recorder::new();
        {
            let _g = rec.install();
            let _a = span("analyze");
            {
                let _d = span("detection");
                let _p = span("pointsto");
                counter("pointsto.queue_pops", 3);
            }
            gauge("pointsto.max_worklist", 9);
        }
        rec
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn chrome_trace_has_complete_events() {
        let trace = sample().chrome_trace();
        assert!(trace.contains("\"traceEvents\""), "{trace}");
        assert!(trace.contains("\"ph\": \"X\""), "{trace}");
        assert!(trace.contains("\"name\": \"pointsto\""), "{trace}");
        assert_eq!(trace.matches("\"ph\": \"X\"").count(), 3);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn report_json_is_balanced_and_flat() {
        let json = sample().report_json();
        assert!(json.contains("\"pointsto.queue_pops\": 3"), "{json}");
        assert!(json.contains("\"pointsto.max_worklist\": 9"), "{json}");
        assert!(json.contains("\"wall_secs\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn stats_tree_nests_by_depth() {
        let tree = sample().stats_tree();
        let analyze_line = tree.lines().find(|l| l.contains("analyze")).unwrap();
        let pointsto_line = tree.lines().find(|l| l.contains("pointsto ")).unwrap();
        let indent = |l: &str| l.len() - l.trim_start().len();
        assert!(indent(pointsto_line) > indent(analyze_line), "{tree}");
        assert!(tree.contains("counters:"), "{tree}");
    }

    #[test]
    fn empty_recorder_exports_cleanly() {
        let rec = Recorder::new();
        let trace = rec.chrome_trace();
        assert!(trace.contains("\"traceEvents\": []"), "{trace}");
        let json = rec.report_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"histograms\": {}"), "{json}");
        assert!(rec.span_aggregates().is_empty());
        assert!(rec.histograms().is_empty());
        assert!(rec.stats_tree().contains("run stats:"));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn histograms_appear_in_report_and_stats_tree() {
        let rec = Recorder::new();
        {
            let _g = rec.install();
            for v in [100u64, 200, 300] {
                crate::hist("serve.latency.analyze.miss", v);
            }
        }
        let json = rec.report_json();
        assert!(json.contains("\"serve.latency.analyze.miss\""), "{json}");
        assert!(json.contains("\"p99_us\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let tree = rec.stats_tree();
        assert!(tree.contains("histograms:"), "{tree}");
        assert!(tree.contains("n=3"), "{tree}");
    }
}
