//! Hand-modelled versions of the paper's running examples.
//!
//! These are the programs behind Figure 1 (the three real harmful UAFs
//! nAdroid found in ConnectBot and FireFox) and Figure 4 (the seven
//! filter examples), used by integration tests, the examples, and the
//! Table 3 comparison.

use nadroid_ir::{parse_program, Program};

/// ConnectBot model: Figure 1(a) and 1(b) in one app — an activity bound
/// to a terminal service, with a context-menu use, a guarded click that
/// posts a runnable, and the disconnect callback freeing both fields.
#[must_use]
pub fn connectbot() -> Program {
    parse_program(
        r#"
        app ConnectBot
        activity ConsoleActivity {
            field bound: TerminalManager
            field hostBridge: TerminalManager
            cb onCreate { bind this }
            cb onServiceConnected {
                bound = new TerminalManager
                hostBridge = new TerminalManager
            }
            cb onServiceDisconnected {
                bound = null
                hostBridge = null
            }
            cb onCreateContextMenu { use bound }
            cb onClick {
                if hostBridge != null { post PromptRunnable }
            }
        }
        runnable PromptRunnable in ConsoleActivity {
            cb run { use outer.hostBridge }
        }
        class TerminalManager { }
        manifest { main ConsoleActivity }
        "#,
    )
    .expect("connectbot model parses")
}

/// FireFox model: Figure 1(c) — `onResume` submits a background task
/// that nulls `jClient` while `onPause` checks-then-uses it without
/// atomicity.
#[must_use]
pub fn firefox() -> Program {
    parse_program(
        r#"
        app FireFox
        activity GeckoApp {
            field jClient: JavaClient
            cb onCreate { jClient = new JavaClient }
            cb onResume { spawn AbortTask }
            cb onPause {
                if jClient != null { use jClient }
            }
        }
        thread AbortTask in GeckoApp {
            cb run { outer.jClient = null }
        }
        class JavaClient { }
        manifest { main GeckoApp }
        "#,
    )
    .expect("firefox model parses")
}

/// The Figure 4 gallery: one app containing all seven filter examples
/// (a)–(g), each on its own activity so the pairs stay disjoint.
#[must_use]
pub fn figure4_gallery() -> Program {
    parse_program(
        r#"
        app Figure4
        // (a) MHB: use ordered before free by the service connection.
        activity FigA {
            field fa: FigA
            field srcA: FigA
            cb onCreate { bind this }
            fn getF { useret srcA }
            cb onServiceConnected { fa = call getF  use fa }
            cb onServiceDisconnected { fa = null }
        }
        // (b) IG: guarded atomic use.
        activity FigB {
            field fb: FigB
            cb onClick { if fb != null { use fb } }
            cb onLongClick { fb = null }
        }
        // (c) IA: allocation before use.
        activity FigC {
            field fc: FigC
            cb onClick { fc = new FigC  use fc }
            cb onLongClick { fc = null }
        }
        // (d) RHB: onResume re-allocates.
        activity FigD {
            field fd: FigD
            cb onResume { fd = new FigD }
            cb onPause { fd = null }
            cb onClick { use fd }
        }
        // (e) CHB: finish() cancels the use family.
        activity FigE {
            field fe: FigE
            cb onCreate { fe = new FigE }
            cb onClick { finish  fe = null }
            cb onLongClick { use fe }
        }
        // (f) PHB: the poster's use precedes the postee's free.
        activity FigF {
            field ff: FigF
            cb onCreate { ff = new FigF }
            cb onClick { send FigFH  use ff }
        }
        handler FigFH in FigF {
            cb handleMessage { outer.ff = null }
        }
        // (g) UR: return-only use.
        activity FigG {
            field fg: FigG
            fn getF { useret fg }
            cb onClick { t1 = call FigG.getF(recv=this) }
            cb onLongClick { fg = null }
        }
        manifest { main FigB }
        "#,
    )
    .expect("figure 4 gallery parses")
}

/// The Music-style app of Table 3: intra-class `onDestroy` anomalies
/// DEvA reports and nAdroid's MHB filter prunes.
#[must_use]
pub fn table3_music() -> Program {
    parse_program(
        r#"
        app Music
        activity AlbBrowActv {
            field mAdapter: AlbBrowActv
            cb onActivityResult { use mAdapter }
            cb onRetainNonConfigurationInstance { use mAdapter }
            cb onDestroy { mAdapter = null }
        }
        activity TrackBrowActv {
            field mAdapter2: TrackBrowActv
            cb onActivityResult { use mAdapter2 }
            cb onRetainNonConfigurationInstance { use mAdapter2 }
            cb onDestroy { mAdapter2 = null }
        }
        service MediaPlayServ {
            field mPlayer: MediaPlayServ
            cb onStartCommand { use mPlayer }
            cb onDestroy { mPlayer = null }
        }
        manifest { main AlbBrowActv }
        "#,
    )
    .expect("table 3 music model parses")
}

/// The Browser model of Table 3's last row: a `Fragment` holding a
/// controller that `onDestroy` frees. The paper's prototype could not
/// model fragments and reported "Not detected"; with the fragment
/// extension, nAdroid-rs detects the pair and the MHB-Lifecycle filter
/// prunes it (the verdict the paper predicted "with proper
/// implementation").
#[must_use]
pub fn browser_fragment() -> Program {
    parse_program(
        r#"
        app Browser
        activity BrowserActivity { }
        fragment AccessPrefFrag in BrowserActivity {
            field mCtrlWV: AccessPrefFrag
            cb onResume { use mCtrlWV }
            cb onDestroy { mCtrlWV = null }
        }
        manifest { main BrowserActivity }
        "#,
    )
    .expect("browser fragment model parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_parse_and_have_expected_shape() {
        let cb = connectbot();
        assert_eq!(cb.classes().count(), 3);
        let ff = firefox();
        assert_eq!(ff.classes().count(), 3);
        let g4 = figure4_gallery();
        assert_eq!(g4.classes().count(), 8); // 7 activities + the handler
        let m = table3_music();
        assert_eq!(m.classes().count(), 3);
        let b = browser_fragment();
        assert_eq!(b.classes().count(), 2);
    }
}
