//! The pattern library: every concurrency idiom the evaluation plants.
//!
//! Each [`PatternKind`] expands to a self-contained cluster of classes
//! (one activity plus helpers) racing on its own fields, so a generated
//! app's analysis outcome is the disjoint union of its patterns'
//! outcomes. The expected outcome of every pattern is certified by the
//! corpus test suite: the static pipeline must attribute it to the
//! expected filter (or survive), and the schedule explorer must agree on
//! harmfulness.

use nadroid_core::{FpCause, PairType};
use nadroid_filters::refute::RefutationReason;
use nadroid_filters::FilterKind;

/// What the pipeline is expected to do with a pattern's warning pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// Pruned by this filter (first pruner in pipeline order).
    PrunedBy(FilterKind),
    /// Survives all filters as a true harmful UAF of the given type.
    Harmful(PairType),
    /// Survives all filters but is a false positive of the given cause.
    FalsePositive(FpCause),
    /// Survives the §6 pipeline but the reachability-refutation filter
    /// contradicts every witness for the given reason.
    Refuted(RefutationReason),
    /// Not detected at all (the §8.6 unanalyzed-code false negative).
    Undetected,
    /// No warning pair (pure noise).
    Benign,
}

/// A plantable concurrency pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PatternKind {
    // --- harmful survivors, by Table 1 pair type ---
    /// Unordered UI use vs lifecycle free (EC-EC).
    HarmfulEcEc,
    /// Figure 1(a): UI use vs service-disconnect free (EC-PC).
    HarmfulEcPc,
    /// Figure 1(b): posted use vs service-disconnect free (PC-PC).
    HarmfulPcPc,
    /// Callback use vs free in a thread it spawned (C-RT).
    HarmfulCRt,
    /// Figure 1(c): guarded callback use vs unrelated-thread free (C-NT).
    HarmfulCNt,
    // --- pruned by sound filters ---
    /// Figure 4(a)-style lifecycle order (MHB).
    Mhb,
    /// Figure 4(b): guarded atomic use (IG).
    Ig,
    /// Figure 4(c): allocation before use (IA).
    Ia,
    /// MHB and IG both apply (guarded use in `onCreate`).
    MhbIg,
    /// MHB and IA both apply (allocation in `onCreate`).
    MhbIa,
    // --- pruned by unsound filters ---
    /// Figure 4(d): `onResume` re-allocates (RHB).
    Rhb,
    /// Figure 4(e): `finish()` cancels the use family (CHB).
    Chb,
    /// Figure 4(f): poster's use precedes postee's free (PHB).
    Phb,
    /// Figure 4(a) getter idiom (MA).
    Ma,
    /// Figure 4(g): return-only use (UR).
    Ur,
    /// MA and UR both apply (getter result passed as argument).
    MaUr,
    /// Thread-thread race (TT).
    Tt,
    // --- surviving false positives, by §8.5 cause ---
    /// Flag-guarded free immediately re-allocated (path insensitivity).
    FpPath,
    /// Same-site allocations merged by the heap abstraction (points-to).
    FpPointsTo,
    /// Both accesses in a component no intent reaches (not reachable).
    FpUnreachable,
    /// FIFO post order the static analysis misses (missing HB).
    FpMissingHb,
    /// A guarded use racing a free on a *different looper* (the §8.1
    /// multi-looper refinement: the guard gives no atomicity across
    /// loopers, so IG must not prune).
    HarmfulMultiLooper,
    // --- refuted by the predicate-aware reachability filter ---
    /// Dialog shown in `onCreate`, dismissed in `onStop` before the
    /// `onDestroy` free: the Dialog family is disabled (mustNotHb).
    RefuteDialogDismiss,
    /// Alarm scheduled in `onCreate`, cancelled in `onStop` before the
    /// `onDestroy` free: the Alarm family is disabled.
    RefuteAlarmCancel,
    /// Receiver registered in `onCreate`, unregistered in `onStop`
    /// before the `onDestroy` free: the Receiver family is disabled.
    RefuteReceiverUnregister,
    /// Service bound in `onCreate`, unbound in `onStop` before the
    /// `onDestroy` free: the Connection family is disabled.
    RefuteBindUnbind,
    /// Fragment use in `onCreateView`, free in its own `onDetach`: the
    /// fragment automaton orders use before free (predHb).
    RefuteFragmentLifecycle,
    /// Use before a unique `startActivity`; the launched target frees:
    /// the task-stack model orders use before free (predHb).
    RefuteTaskStack,
    // --- predicate-near controls the refuter must keep ---
    /// Dialog dismissed only in `onPause`: the skip path
    /// (`onStop` -> `onDestroy` without `onPause`) leaves the family
    /// armed, so the warning stands and is a real UAF.
    PredicateKeptSkipPath,
    /// Free in `onStop` but dismiss only in `onDestroy`: the disabler
    /// does not precede the free, so the warning stands.
    PredicateKeptLateDisable,
    // --- §8.6 false-negative shapes ---
    /// Object laundered through the framework (missed by detection).
    MissedOpaque,
    /// `finish()` on an error path only (pruned by the unsound CHB).
    ChbFalseNegative,
    // --- noise ---
    /// A benign activity with self-contained state.
    Benign,
}

impl PatternKind {
    /// All pattern kinds.
    #[must_use]
    pub fn all() -> &'static [PatternKind] {
        use PatternKind::*;
        &[
            HarmfulEcEc,
            HarmfulEcPc,
            HarmfulPcPc,
            HarmfulCRt,
            HarmfulCNt,
            Mhb,
            Ig,
            Ia,
            MhbIg,
            MhbIa,
            Rhb,
            Chb,
            Phb,
            Ma,
            Ur,
            MaUr,
            Tt,
            FpPath,
            FpPointsTo,
            FpUnreachable,
            FpMissingHb,
            HarmfulMultiLooper,
            RefuteDialogDismiss,
            RefuteAlarmCancel,
            RefuteReceiverUnregister,
            RefuteBindUnbind,
            RefuteFragmentLifecycle,
            RefuteTaskStack,
            PredicateKeptSkipPath,
            PredicateKeptLateDisable,
            MissedOpaque,
            ChbFalseNegative,
            Benign,
        ]
    }

    /// The certified expected pipeline outcome.
    #[must_use]
    pub fn expectation(self) -> Expectation {
        use Expectation::*;
        use PatternKind::*;
        match self {
            HarmfulEcEc => Harmful(PairType::EcEc),
            HarmfulEcPc => Harmful(PairType::EcPc),
            HarmfulPcPc => Harmful(PairType::PcPc),
            HarmfulCRt => Harmful(PairType::CRt),
            HarmfulCNt => Harmful(PairType::CNt),
            HarmfulMultiLooper => Harmful(PairType::EcPc),
            Mhb | MhbIg | MhbIa => PrunedBy(FilterKind::Mhb),
            Ig => PrunedBy(FilterKind::Ig),
            Ia => PrunedBy(FilterKind::Ia),
            Rhb => PrunedBy(FilterKind::Rhb),
            Chb | ChbFalseNegative => PrunedBy(FilterKind::Chb),
            Phb => PrunedBy(FilterKind::Phb),
            Ma | MaUr => PrunedBy(FilterKind::Ma),
            Ur => PrunedBy(FilterKind::Ur),
            Tt => PrunedBy(FilterKind::Tt),
            FpPath => FalsePositive(FpCause::PathInsensitivity),
            FpPointsTo => FalsePositive(FpCause::PointsTo),
            FpUnreachable => FalsePositive(FpCause::NotReachable),
            FpMissingHb => FalsePositive(FpCause::MissingHappensBefore),
            RefuteDialogDismiss | RefuteAlarmCancel | RefuteReceiverUnregister
            | RefuteBindUnbind => Refuted(RefutationReason::Disabled),
            RefuteFragmentLifecycle | RefuteTaskStack => {
                Refuted(RefutationReason::ExtendedOrder)
            }
            PredicateKeptSkipPath | PredicateKeptLateDisable => Harmful(PairType::EcPc),
            MissedOpaque => Undetected,
            PatternKind::Benign => Expectation::Benign,
        }
    }

    /// Whether the pattern contributes a warning pair before filtering.
    #[must_use]
    pub fn detected(self) -> bool {
        !matches!(
            self.expectation(),
            Expectation::Undetected | Expectation::Benign
        )
    }

    /// Whether the pattern is a real (dynamically witnessable) UAF.
    ///
    /// `ChbFalseNegative` is real *and* pruned — the §8.6 unsound-filter
    /// false negative.
    #[must_use]
    pub fn is_real_uaf(self) -> bool {
        matches!(
            self,
            PatternKind::HarmfulEcEc
                | PatternKind::HarmfulEcPc
                | PatternKind::HarmfulPcPc
                | PatternKind::HarmfulCRt
                | PatternKind::HarmfulCNt
                | PatternKind::HarmfulMultiLooper
                | PatternKind::PredicateKeptSkipPath
                | PatternKind::PredicateKeptLateDisable
                | PatternKind::ChbFalseNegative
        )
    }

    /// DSL source of one instance of this pattern, with `n` making all
    /// declared names unique within the app.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn dsl(self, n: usize) -> String {
        match self {
            PatternKind::HarmfulEcEc => format!(
                r"
                activity EcEc{n} {{
                    field f{n}: EcEc{n}
                    cb onCreate {{ f{n} = new EcEc{n} }}
                    cb onClick {{ use f{n} }}
                    cb onPause {{ f{n} = null }}
                }}
                "
            ),
            PatternKind::HarmfulEcPc => format!(
                r"
                activity EcPc{n} {{
                    field f{n}: EcPc{n}
                    cb onCreate {{ bind this }}
                    cb onServiceConnected {{ f{n} = new EcPc{n} }}
                    cb onServiceDisconnected {{ f{n} = null }}
                    cb onCreateContextMenu {{ use f{n} }}
                }}
                "
            ),
            PatternKind::HarmfulPcPc => format!(
                r"
                activity PcPc{n} {{
                    field f{n}: PcPc{n}
                    cb onCreate {{ bind this }}
                    cb onServiceConnected {{ f{n} = new PcPc{n} }}
                    cb onServiceDisconnected {{ f{n} = null }}
                    cb onClick {{ if f{n} != null {{ post PcPcR{n} }} }}
                }}
                runnable PcPcR{n} in PcPc{n} {{
                    cb run {{ use outer.f{n} }}
                }}
                "
            ),
            PatternKind::HarmfulCRt => format!(
                r"
                activity CRt{n} {{
                    field f{n}: CRt{n}
                    cb onCreate {{ f{n} = new CRt{n} }}
                    cb onClick {{ spawn CRtW{n}  use f{n} }}
                }}
                thread CRtW{n} in CRt{n} {{
                    cb run {{ outer.f{n} = null }}
                }}
                "
            ),
            PatternKind::HarmfulCNt => format!(
                r"
                activity CNt{n} {{
                    field f{n}: CNt{n}
                    cb onCreate {{ f{n} = new CNt{n} }}
                    cb onResume {{ spawn CNtW{n} }}
                    cb onPause {{ if f{n} != null {{ use f{n} }} }}
                }}
                thread CNtW{n} in CNt{n} {{
                    cb run {{ outer.f{n} = null }}
                }}
                "
            ),
            PatternKind::Mhb => format!(
                r"
                activity Mhb{n} {{
                    field f{n}: Mhb{n}
                    cb onCreate {{ bind this  f{n} = new Mhb{n} }}
                    cb onServiceConnected {{ use f{n} }}
                    cb onServiceDisconnected {{ f{n} = null }}
                }}
                "
            ),
            PatternKind::Ig => format!(
                r"
                activity Ig{n} {{
                    field f{n}: Ig{n}
                    cb onClick {{ if f{n} != null {{ use f{n} }} }}
                    cb onLongClick {{ f{n} = null }}
                }}
                "
            ),
            PatternKind::Ia => format!(
                r"
                activity Ia{n} {{
                    field f{n}: Ia{n}
                    cb onClick {{ f{n} = new Ia{n}  use f{n} }}
                    cb onLongClick {{ f{n} = null }}
                }}
                "
            ),
            PatternKind::MhbIg => format!(
                r"
                activity MhbIg{n} {{
                    field f{n}: MhbIg{n}
                    cb onCreate {{ if f{n} != null {{ use f{n} }} }}
                    cb onDestroy {{ f{n} = null }}
                }}
                "
            ),
            PatternKind::MhbIa => format!(
                r"
                activity MhbIa{n} {{
                    field f{n}: MhbIa{n}
                    cb onCreate {{ f{n} = new MhbIa{n}  use f{n} }}
                    cb onDestroy {{ f{n} = null }}
                }}
                "
            ),
            PatternKind::Rhb => format!(
                r"
                activity Rhb{n} {{
                    field f{n}: Rhb{n}
                    cb onResume {{ f{n} = new Rhb{n} }}
                    cb onPause {{ f{n} = null }}
                    cb onClick {{ use f{n} }}
                }}
                "
            ),
            PatternKind::Chb => format!(
                r"
                activity Chb{n} {{
                    field f{n}: Chb{n}
                    cb onCreate {{ f{n} = new Chb{n} }}
                    cb onClick {{ finish  f{n} = null }}
                    cb onLongClick {{ use f{n} }}
                }}
                "
            ),
            PatternKind::Phb => format!(
                r"
                activity Phb{n} {{
                    field f{n}: Phb{n}
                    cb onClick {{ send PhbH{n}  use f{n} }}
                    cb onCreate {{ f{n} = new Phb{n} }}
                }}
                handler PhbH{n} in Phb{n} {{
                    cb handleMessage {{ outer.f{n} = null }}
                }}
                "
            ),
            PatternKind::Ma => format!(
                r"
                activity Ma{n} {{
                    field f{n}: Ma{n}
                    field src{n}: Ma{n}
                    fn getF{n} {{ useret src{n} }}
                    cb onClick {{ f{n} = call getF{n}  use f{n} }}
                    cb onLongClick {{ f{n} = null }}
                }}
                "
            ),
            PatternKind::Ur => format!(
                r"
                activity Ur{n} {{
                    field f{n}: Ur{n}
                    fn getF{n} {{ useret f{n} }}
                    cb onClick {{ t1 = call Ur{n}.getF{n}(recv=this) }}
                    cb onLongClick {{ f{n} = null }}
                }}
                "
            ),
            PatternKind::MaUr => format!(
                r"
                activity MaUr{n} {{
                    field f{n}: MaUr{n}
                    field src{n}: MaUr{n}
                    fn getF{n} {{ useret src{n} }}
                    cb onClick {{ f{n} = call getF{n}  usearg f{n} }}
                    cb onLongClick {{ f{n} = null }}
                }}
                "
            ),
            PatternKind::Tt => format!(
                r"
                activity Tt{n} {{
                    field f{n}: Tt{n}
                    cb onCreate {{ f{n} = new Tt{n}  spawn TtA{n}  spawn TtB{n} }}
                }}
                thread TtA{n} in Tt{n} {{ cb run {{ use outer.f{n} }} }}
                thread TtB{n} in Tt{n} {{ cb run {{ outer.f{n} = null }} }}
                "
            ),
            PatternKind::FpPath => format!(
                r"
                activity FpP{n} {{
                    field f{n}: FpP{n}
                    cb onCreate {{ f{n} = new FpP{n} }}
                    cb onClick {{ if ? {{ }} else {{ use f{n} }} }}
                    cb onLongClick {{ if ? {{ f{n} = null  f{n} = new FpP{n} }} else {{ }} }}
                }}
                "
            ),
            PatternKind::FpPointsTo => format!(
                r"
                activity FpQ{n} {{
                    field first{n}: FpQh{n}
                    field cur{n}: FpQh{n}
                    cb onCreate {{
                        first{n} = new FpQh{n}
                        cur{n} = first{n}
                        cur{n} = new FpQh{n}
                        t3 = load this FpQ{n}.cur{n}
                        t4 = new FpQ{n}
                        store t3 FpQh{n}.v{n} = t4
                    }}
                    cb onClick {{
                        t3 = load this FpQ{n}.cur{n}
                        t4 = load t3 FpQh{n}.v{n}
                        call opaque(recv=t4)
                    }}
                    cb onPause {{
                        t3 = load this FpQ{n}.first{n}
                        free t3 FpQh{n}.v{n}
                    }}
                }}
                class FpQh{n} {{ field v{n}: FpQ{n} }}
                "
            ),
            PatternKind::FpUnreachable => format!(
                r"
                activity FpU{n} {{
                    field f{n}: FpU{n}
                    cb onCreate {{ f{n} = new FpU{n} }}
                    cb onClick {{ use f{n} }}
                    cb onStop {{ f{n} = null }}
                }}
                "
            ),
            PatternKind::FpMissingHb => format!(
                r"
                activity FpH{n} {{
                    field f{n}: FpH{n}
                    cb onCreate {{ f{n} = new FpH{n}  post FpHa{n}  post FpHb{n} }}
                }}
                runnable FpHa{n} in FpH{n} {{ cb run {{ use outer.f{n} }} }}
                runnable FpHb{n} in FpH{n} {{ cb run {{ outer.f{n} = null }} }}
                "
            ),
            PatternKind::HarmfulMultiLooper => format!(
                r"
                activity Ml{n} {{
                    field f{n}: Ml{n}
                    cb onCreate {{ f{n} = new Ml{n}  send MlH{n} }}
                    cb onClick {{ if f{n} != null {{ use f{n} }} }}
                }}
                looperthread MlL{n} {{ }}
                handler MlH{n} in Ml{n} on MlL{n} {{
                    cb handleMessage {{ outer.f{n} = null }}
                }}
                "
            ),
            PatternKind::RefuteDialogDismiss => format!(
                r"
                activity Rdd{n} {{
                    field dlg{n}: RddD{n}
                    field f{n}: Rdd{n}
                    cb onCreate {{ dlg{n} = new RddD{n}  show dlg{n}  f{n} = new Rdd{n} }}
                    cb onStop {{ dismiss dlg{n} }}
                    cb onDestroy {{ f{n} = null }}
                }}
                dialog RddD{n} in Rdd{n} {{
                    cb onShow {{ use outer.f{n} }}
                }}
                "
            ),
            PatternKind::RefuteAlarmCancel => format!(
                r"
                activity Rac{n} {{
                    field rcv{n}: RacR{n}
                    field f{n}: Rac{n}
                    cb onCreate {{ rcv{n} = new RacR{n}  schedule rcv{n}  f{n} = new Rac{n} }}
                    cb onStop {{ cancelalarm rcv{n} }}
                    cb onDestroy {{ f{n} = null }}
                }}
                receiver RacR{n} {{
                    cb onAlarm {{ use Rac{n}.f{n} }}
                }}
                "
            ),
            PatternKind::RefuteReceiverUnregister => format!(
                r"
                activity Rru{n} {{
                    field rcv{n}: RruR{n}
                    field f{n}: Rru{n}
                    cb onCreate {{ rcv{n} = new RruR{n}  register rcv{n}  f{n} = new Rru{n} }}
                    cb onStop {{ unregister rcv{n} }}
                    cb onDestroy {{ f{n} = null }}
                }}
                receiver RruR{n} {{
                    cb onReceive {{ use Rru{n}.f{n} }}
                }}
                "
            ),
            PatternKind::RefuteBindUnbind => format!(
                r"
                activity Rbu{n} {{
                    field f{n}: Rbu{n}
                    cb onCreate {{ bind this  f{n} = new Rbu{n} }}
                    cb onServiceConnected {{ use f{n} }}
                    cb onStop {{ unbind this }}
                    cb onDestroy {{ f{n} = null }}
                }}
                "
            ),
            PatternKind::RefuteFragmentLifecycle => format!(
                r"
                activity Rfl{n} {{
                    field f{n}: Rfl{n}
                    cb onCreate {{ f{n} = new Rfl{n} }}
                }}
                fragment RflF{n} in Rfl{n} {{
                    cb onCreateView {{ use Rfl{n}.f{n} }}
                    cb onDetach {{ Rfl{n}.f{n} = null }}
                }}
                "
            ),
            PatternKind::RefuteTaskStack => format!(
                r"
                activity Rts{n} {{
                    field f{n}: Rts{n}
                    cb onCreate {{ if ? {{ f{n} = new Rts{n} }}  use f{n}  startactivity RtsT{n} }}
                }}
                activity RtsT{n} {{
                    cb onCreate {{ Rts{n}.f{n} = null }}
                }}
                "
            ),
            PatternKind::PredicateKeptSkipPath => format!(
                r"
                activity Pks{n} {{
                    field dlg{n}: PksD{n}
                    field f{n}: Pks{n}
                    cb onCreate {{ dlg{n} = new PksD{n}  show dlg{n}  f{n} = new Pks{n} }}
                    cb onPause {{ dismiss dlg{n} }}
                    cb onDestroy {{ f{n} = null }}
                }}
                dialog PksD{n} in Pks{n} {{
                    cb onShow {{ use outer.f{n} }}
                }}
                "
            ),
            PatternKind::PredicateKeptLateDisable => format!(
                r"
                activity Pkl{n} {{
                    field dlg{n}: PklD{n}
                    field f{n}: Pkl{n}
                    cb onCreate {{ dlg{n} = new PklD{n}  show dlg{n}  f{n} = new Pkl{n} }}
                    cb onStop {{ f{n} = null }}
                    cb onDestroy {{ dismiss dlg{n} }}
                }}
                dialog PklD{n} in Pkl{n} {{
                    cb onShow {{ use outer.f{n} }}
                }}
                "
            ),
            PatternKind::MissedOpaque => format!(
                r"
                activity Mo{n} {{
                    field h{n}: Moh{n}
                    cb onCreate {{
                        t1 = new Moh{n}
                        call opaque(t1)
                    }}
                    cb onClick {{
                        t1 = call opaque()
                        t2 = load t1 Moh{n}.v{n}
                        call opaque(recv=t2)
                    }}
                    cb onPause {{
                        t1 = call opaque()
                        free t1 Moh{n}.v{n}
                    }}
                }}
                class Moh{n} {{ field v{n}: Mo{n} }}
                "
            ),
            PatternKind::ChbFalseNegative => format!(
                r"
                activity Cf{n} {{
                    field f{n}: Cf{n}
                    cb onCreate {{ f{n} = new Cf{n} }}
                    cb onClick {{
                        if ? {{ finish }}
                        f{n} = null
                    }}
                    cb onLongClick {{ use f{n} }}
                }}
                "
            ),
            PatternKind::Benign => format!(
                r"
                activity Noise{n} {{
                    field a{n}: Noise{n}
                    field b{n}: Noise{n}
                    fn helper{n} {{ a{n} = new Noise{n} }}
                    cb onCreate {{ call helper{n}  b{n} = new Noise{n} }}
                    cb onClick {{ use a{n}  use b{n} }}
                    cb onResume {{ a{n} = new Noise{n} }}
                }}
                "
            ),
        }
    }
}
