//! Seeded synthetic application generator.
//!
//! An [`AppSpec`] lists how many instances of each pattern to plant; the
//! generator emits DSL text (a hub activity referencing every reachable
//! pattern activity, the pattern clusters in a seeded shuffle order, and
//! a manifest) and parses it into a [`Program`]. Because clusters race
//! only on their own fields, the app's expected analysis outcome is the
//! multiset union of its patterns' certified expectations.

use crate::patterns::PatternKind;
use nadroid_ir::{parse_program, Program};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt::Write as _;

/// How many instances of each pattern an app contains.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AppSpec {
    /// Application name.
    pub name: String,
    /// Shuffle seed (layout only; the planted multiset fixes semantics).
    pub seed: u64,
    /// (pattern, instance count) pairs.
    pub counts: Vec<(PatternKind, usize)>,
}

impl AppSpec {
    /// A new empty spec.
    #[must_use]
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        AppSpec {
            name: name.into(),
            seed,
            counts: Vec::new(),
        }
    }

    /// Add `n` instances of a pattern (builder style).
    #[must_use]
    pub fn with(mut self, kind: PatternKind, n: usize) -> Self {
        if n > 0 {
            self.counts.push((kind, n));
        }
        self
    }

    /// Total planted pattern instances.
    #[must_use]
    pub fn total(&self) -> usize {
        self.counts.iter().map(|(_, n)| n).sum()
    }
}

/// A generated app with its planted ground truth.
#[derive(Debug)]
pub struct GeneratedApp {
    /// The parsed program.
    pub program: Program,
    /// The planted patterns, in cluster-index order (cluster `i` used
    /// suffix `i` for its names).
    pub planted: Vec<PatternKind>,
}

impl PatternKind {
    /// The name of the pattern's primary activity for suffix `n`.
    #[must_use]
    pub fn activity_name(self, n: usize) -> String {
        let prefix = match self {
            PatternKind::HarmfulEcEc => "EcEc",
            PatternKind::HarmfulEcPc => "EcPc",
            PatternKind::HarmfulPcPc => "PcPc",
            PatternKind::HarmfulCRt => "CRt",
            PatternKind::HarmfulCNt => "CNt",
            PatternKind::Mhb => "Mhb",
            PatternKind::Ig => "Ig",
            PatternKind::Ia => "Ia",
            PatternKind::MhbIg => "MhbIg",
            PatternKind::MhbIa => "MhbIa",
            PatternKind::Rhb => "Rhb",
            PatternKind::Chb => "Chb",
            PatternKind::Phb => "Phb",
            PatternKind::Ma => "Ma",
            PatternKind::Ur => "Ur",
            PatternKind::MaUr => "MaUr",
            PatternKind::Tt => "Tt",
            PatternKind::FpPath => "FpP",
            PatternKind::FpPointsTo => "FpQ",
            PatternKind::FpUnreachable => "FpU",
            PatternKind::FpMissingHb => "FpH",
            PatternKind::HarmfulMultiLooper => "Ml",
            PatternKind::RefuteDialogDismiss => "Rdd",
            PatternKind::RefuteAlarmCancel => "Rac",
            PatternKind::RefuteReceiverUnregister => "Rru",
            PatternKind::RefuteBindUnbind => "Rbu",
            PatternKind::RefuteFragmentLifecycle => "Rfl",
            PatternKind::RefuteTaskStack => "Rts",
            PatternKind::PredicateKeptSkipPath => "Pks",
            PatternKind::PredicateKeptLateDisable => "Pkl",
            PatternKind::MissedOpaque => "Mo",
            PatternKind::ChbFalseNegative => "Cf",
            PatternKind::Benign => "Noise",
        };
        format!("{prefix}{n}")
    }
}

/// Generate the program for a spec.
///
/// # Panics
///
/// Panics if the generated DSL fails to parse — a bug in the pattern
/// library, not in the caller.
#[must_use]
pub fn generate(spec: &AppSpec) -> GeneratedApp {
    let mut planted: Vec<PatternKind> = Vec::with_capacity(spec.total());
    for &(kind, n) in &spec.counts {
        planted.extend(std::iter::repeat_n(kind, n));
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
    planted.shuffle(&mut rng);

    // App names go through the DSL, which only allows identifier
    // characters; sanitize (e.g. "K-9" becomes "K_9").
    let ident: String = spec
        .name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let mut src = format!("app {ident}\n");
    // Hub activity referencing every reachable pattern activity, so the
    // manifest's reachability analysis sees them; FpUnreachable clusters
    // are deliberately left unreferenced.
    src.push_str("activity Hub {\n  cb onCreate {\n");
    for (i, kind) in planted.iter().enumerate() {
        if *kind != PatternKind::FpUnreachable {
            let _ = writeln!(src, "    t1 = static {}", kind.activity_name(i));
        }
    }
    src.push_str("  }\n}\n");

    for (i, kind) in planted.iter().enumerate() {
        src.push_str(&kind.dsl(i));
    }
    src.push_str("manifest { main Hub }\n");

    let program =
        parse_program(&src).unwrap_or_else(|e| panic!("generated DSL must parse: {e}\n{src}"));
    GeneratedApp { program, planted }
}

/// Distribute `total` units over `weights` with the largest-remainder
/// method (each count is ≥ 0 and the counts sum to `total`).
#[must_use]
pub fn distribute(total: usize, weights: &[f64]) -> Vec<usize> {
    let sum: f64 = weights.iter().sum();
    if total == 0 || sum <= 0.0 {
        return vec![0; weights.len()];
    }
    let exact: Vec<f64> = weights.iter().map(|w| w / sum * total as f64).collect();
    let mut counts: Vec<usize> = exact.iter().map(|e| e.floor() as usize).collect();
    let mut assigned: usize = counts.iter().sum();
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        let ra = exact[a] - exact[a].floor();
        let rb = exact[b] - exact[b].floor();
        rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut i = 0;
    while assigned < total {
        counts[order[i % order.len()]] += 1;
        assigned += 1;
        i += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = AppSpec::new("Det", 7)
            .with(PatternKind::Ig, 3)
            .with(PatternKind::HarmfulEcPc, 1)
            .with(PatternKind::Benign, 2);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.program, b.program);
        assert_eq!(a.planted, b.planted);
    }

    #[test]
    fn different_seeds_shuffle_layout_but_not_multiset() {
        let s1 = AppSpec::new("S", 1)
            .with(PatternKind::Ig, 2)
            .with(PatternKind::Ia, 2);
        let s2 = AppSpec {
            seed: 2,
            ..s1.clone()
        };
        let a = generate(&s1);
        let b = generate(&s2);
        let mut ma = a.planted.clone();
        let mut mb = b.planted.clone();
        ma.sort();
        mb.sort();
        assert_eq!(ma, mb);
    }

    #[test]
    fn hub_references_make_patterns_reachable() {
        let spec = AppSpec::new("R", 3)
            .with(PatternKind::Ig, 1)
            .with(PatternKind::FpUnreachable, 1);
        let app = generate(&spec);
        let p = &app.program;
        for (i, kind) in app.planted.iter().enumerate() {
            let act = p
                .class_by_name(&kind.activity_name(i))
                .expect("activity exists");
            let expect_reachable = *kind != PatternKind::FpUnreachable;
            assert_eq!(p.component_reachable(act), expect_reachable, "{kind:?}");
        }
    }

    #[test]
    fn distribute_sums_and_respects_zero() {
        assert_eq!(distribute(10, &[1.0, 1.0]), vec![5, 5]);
        let d = distribute(7, &[0.6, 0.3, 0.1]);
        assert_eq!(d.iter().sum::<usize>(), 7);
        assert_eq!(distribute(0, &[1.0]), vec![0]);
        assert_eq!(distribute(5, &[0.0, 0.0]), vec![0, 0]);
    }
}
