//! Mutation certification: every sound-filter pattern, with its
//! protection removed, must flip from *pruned* to *surviving and
//! dynamically witnessable*.
//!
//! This guards against a filter that prunes for the wrong reason (e.g.
//! an IG implementation that prunes any pair in a method containing any
//! `if`): the protected variant must be pruned by the expected filter,
//! and the unprotected mutant must sail through all filters and crash
//! under some schedule.

/// A (protected, mutated) DSL pair with the filter the protected variant
/// exercises.
#[derive(Debug, Clone, Copy)]
pub struct MutationCase {
    /// Name for diagnostics.
    pub name: &'static str,
    /// The filter expected to prune the protected variant.
    pub filter: &'static str,
    /// Protected program: the pair must be pruned.
    pub protected: &'static str,
    /// Mutant with the protection removed: the pair must survive and be
    /// witnessable.
    pub mutated: &'static str,
}

/// The mutation suite for the three sound filters.
#[must_use]
pub fn sound_mutations() -> Vec<MutationCase> {
    vec![
        MutationCase {
            name: "ig_guard_removed",
            filter: "IG",
            protected: r#"
                app IgProt
                activity M {
                    field f: M
                    cb onCreate { f = new M }
                    cb onClick { if f != null { use f } }
                    cb onLongClick { f = null }
                }
            "#,
            mutated: r#"
                app IgMut
                activity M {
                    field f: M
                    cb onCreate { f = new M }
                    cb onClick { use f }
                    cb onLongClick { f = null }
                }
            "#,
        },
        MutationCase {
            name: "ia_allocation_removed",
            filter: "IA",
            protected: r#"
                app IaProt
                activity M {
                    field f: M
                    cb onClick { f = new M  use f }
                    cb onLongClick { f = null }
                }
            "#,
            mutated: r#"
                app IaMut
                activity M {
                    field f: M
                    cb onCreate { f = new M }
                    cb onClick { use f }
                    cb onLongClick { f = null }
                }
            "#,
        },
        MutationCase {
            name: "mhb_order_removed",
            filter: "MHB",
            protected: r#"
                app MhbProt
                activity M {
                    field f: M
                    cb onCreate { f = new M  use f }
                    cb onDestroy { f = null }
                }
            "#,
            // The free moves from onDestroy (always after every use) to
            // onPause (unordered with onClick).
            mutated: r#"
                app MhbMut
                activity M {
                    field f: M
                    cb onCreate { f = new M }
                    cb onClick { use f }
                    cb onPause { f = null }
                }
            "#,
        },
        MutationCase {
            name: "ig_guard_useless_across_threads",
            filter: "IG",
            protected: r#"
                app IgT
                activity M {
                    field f: M
                    cb onCreate { f = new M }
                    cb onClick { if f != null { use f } }
                    cb onLongClick { f = null }
                }
            "#,
            // Same guard, but the free moves to a thread: the guard no
            // longer protects (atomicity gone), so IG must NOT prune.
            mutated: r#"
                app IgTMut
                activity M {
                    field f: M
                    cb onCreate { f = new M  spawn W }
                    cb onClick { if f != null { use f } }
                }
                thread W in M { cb run { outer.f = null } }
            "#,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadroid_core::{analyze, AnalysisConfig};
    use nadroid_dynamic::{explore, ExploreConfig, Goal};
    use nadroid_ir::parse_program;

    #[test]
    fn protections_prune_and_mutants_crash() {
        for case in sound_mutations() {
            // Protected: the pair is pruned by a sound filter.
            let prot = parse_program(case.protected).unwrap();
            let analysis = analyze(&prot, &AnalysisConfig::default());
            assert!(
                analysis.summary().potential >= 1,
                "{}: protected variant still has a detectable pair",
                case.name
            );
            assert_eq!(
                analysis.summary().after_sound,
                0,
                "{} ({}): protected variant pruned by a sound filter",
                case.name,
                case.filter
            );

            // Mutant: the pair survives and has an NPE witness.
            let mutant = parse_program(case.mutated).unwrap();
            let analysis = analyze(&mutant, &AnalysisConfig::default());
            let survivors = analysis.survivors();
            assert!(
                !survivors.is_empty(),
                "{}: mutant must survive all filters",
                case.name
            );
            let w = survivors[0];
            let witness = explore(
                &mutant,
                Goal::Pair {
                    use_instr: w.use_access.instr,
                    free_instr: w.free_access.instr,
                },
                ExploreConfig::default(),
            );
            assert!(
                witness.is_some(),
                "{}: mutant must be witnessable",
                case.name
            );
        }
    }
}
