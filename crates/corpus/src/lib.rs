//! Evaluation corpus: the paper-example models, a pattern library with
//! certified expected outcomes, a seeded app generator, and the 27-app
//! suite calibrated to Table 1 (plus the 8-app Table 2 injection study).
//!
//! # Example
//!
//! ```
//! use nadroid_corpus::{generate, AppSpec, PatternKind};
//! use nadroid_core::{analyze, AnalysisConfig};
//!
//! let spec = AppSpec::new("Mini", 42)
//!     .with(PatternKind::HarmfulEcPc, 1)
//!     .with(PatternKind::Ig, 2);
//! let app = generate(&spec);
//! let analysis = analyze(&app.program, &AnalysisConfig::default());
//! let s = analysis.summary();
//! assert_eq!(s.potential, 3);
//! assert_eq!(s.after_unsound, 1); // only the harmful pattern survives
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
pub mod mutation;
pub mod paper;
mod patterns;
pub mod suite;

pub use generator::{distribute, generate, AppSpec, GeneratedApp};
pub use patterns::{Expectation, PatternKind};
pub use suite::{
    refute_specs, scale_specs, spec_for, table1_rows, table2_rows, AppGroup, InjectedRow, PaperRow,
};

#[cfg(test)]
mod certification {
    //! Per-pattern certification: every pattern, generated standalone,
    //! must produce exactly its declared expectation — statically (the
    //! pipeline's first-pruner attribution / survival / pair type) and
    //! dynamically (harmful patterns have a pair witness; sound-pruned
    //! patterns have none).

    use super::*;
    use nadroid_core::{analyze, classify_fp, classify_pair, AnalysisConfig};
    use nadroid_dynamic::{explore, ExploreConfig, Goal};

    fn single(kind: PatternKind) -> GeneratedApp {
        generate(&AppSpec::new(format!("Cert{kind:?}"), 1).with(kind, 1))
    }

    #[test]
    fn every_pattern_matches_its_static_expectation() {
        for &kind in PatternKind::all() {
            let app = single(kind);
            let analysis = analyze(&app.program, &AnalysisConfig::default());
            let summary = analysis.summary();
            match kind.expectation() {
                Expectation::Benign | Expectation::Undetected => {
                    assert_eq!(summary.potential, 0, "{kind:?}: no pair expected");
                }
                Expectation::PrunedBy(f) => {
                    assert_eq!(summary.potential, 1, "{kind:?}: one pair expected");
                    assert_eq!(summary.after_unsound, 0, "{kind:?}: pruned");
                    // Find the first pruner across both stages.
                    let first = analysis
                        .sound_outcomes()
                        .iter()
                        .find_map(|o| o.pruned_by)
                        .or_else(|| analysis.unsound_outcomes().iter().find_map(|o| o.pruned_by));
                    assert_eq!(first, Some(f), "{kind:?}: pruned by the declared filter");
                }
                Expectation::Harmful(ty) => {
                    assert_eq!(summary.after_unsound, 1, "{kind:?}: survives");
                    let survivor = analysis.survivors()[0];
                    assert_eq!(
                        classify_pair(analysis.threads(), survivor),
                        ty,
                        "{kind:?}: pair type"
                    );
                }
                Expectation::FalsePositive(cause) => {
                    assert_eq!(summary.after_unsound, 1, "{kind:?}: survives");
                    let survivor = analysis.survivors()[0];
                    assert_eq!(
                        classify_fp(&app.program, analysis.pts(), survivor),
                        cause,
                        "{kind:?}: FP cause"
                    );
                }
                Expectation::Refuted(reason) => {
                    assert_eq!(summary.potential, 1, "{kind:?}: one pair expected");
                    assert_eq!(summary.after_unsound, 1, "{kind:?}: survives §6");
                    assert_eq!(summary.refuted, 1, "{kind:?}: refuted");
                    assert_eq!(summary.after_refutation, 0, "{kind:?}: not reported");
                    assert!(analysis.survivors().is_empty(), "{kind:?}");
                    let (_, refutation) = &analysis.refutations()[0];
                    assert_eq!(refutation.reason, reason, "{kind:?}: reason");
                    assert!(!refutation.chain.is_empty(), "{kind:?}: chain recorded");
                }
            }
        }
    }

    #[test]
    fn harmful_patterns_have_dynamic_witnesses() {
        for &kind in PatternKind::all() {
            if !matches!(kind.expectation(), Expectation::Harmful(_)) {
                continue;
            }
            let app = single(kind);
            let analysis = analyze(&app.program, &AnalysisConfig::default());
            let survivor = analysis.survivors()[0].clone();
            let witness = analysis.validate(&survivor, ExploreConfig::default());
            assert!(witness.is_some(), "{kind:?}: survivor must be witnessable");
        }
    }

    #[test]
    fn sound_pruned_patterns_have_no_pair_witness() {
        // The paper's central soundness claim: the sound filters never
        // prune a feasible UAF.
        for kind in [
            PatternKind::Mhb,
            PatternKind::Ig,
            PatternKind::Ia,
            PatternKind::MhbIg,
            PatternKind::MhbIa,
        ] {
            let app = single(kind);
            let analysis = analyze(&app.program, &AnalysisConfig::default());
            assert!(!analysis.warnings().is_empty(), "{kind:?}: pair detected");
            for w in analysis.warnings() {
                let witness = explore(
                    &app.program,
                    Goal::Pair {
                        use_instr: w.use_access.instr,
                        free_instr: w.free_access.instr,
                    },
                    ExploreConfig::default(),
                );
                assert!(
                    witness.is_none(),
                    "{kind:?}: sound filter pruned a feasible UAF"
                );
            }
        }
    }

    #[test]
    fn refuted_patterns_have_no_pair_witness() {
        // The refuter's soundness claim: a refutation means *no* witness
        // exists, so the schedule explorer must agree.
        for &kind in PatternKind::all() {
            if !matches!(kind.expectation(), Expectation::Refuted(_)) {
                continue;
            }
            let app = single(kind);
            let analysis = analyze(&app.program, &AnalysisConfig::default());
            let (w, _) = &analysis.refutations()[0];
            let witness = explore(
                &app.program,
                Goal::Pair {
                    use_instr: w.use_access.instr,
                    free_instr: w.free_access.instr,
                },
                ExploreConfig::default(),
            );
            assert!(
                witness.is_none(),
                "{kind:?}: the refuter contradicted a feasible UAF"
            );
        }
    }

    #[test]
    fn refuted_patterns_compose_with_the_rest_of_the_corpus() {
        // Refutation stays cluster-local: planting refuted clusters next
        // to harmful and pruned ones changes nothing but its own tally.
        let spec = AppSpec::new("RefAdd", 13)
            .with(PatternKind::RefuteDialogDismiss, 1)
            .with(PatternKind::RefuteTaskStack, 2)
            .with(PatternKind::PredicateKeptSkipPath, 1)
            .with(PatternKind::HarmfulEcPc, 1)
            .with(PatternKind::Ig, 2)
            .with(PatternKind::Benign, 1);
        let app = generate(&spec);
        let analysis = analyze(&app.program, &AnalysisConfig::default());
        let s = analysis.summary();
        assert_eq!(s.potential, 7);
        assert_eq!(s.after_sound, 5); // IG prunes its 2
        assert_eq!(s.after_unsound, 5);
        assert_eq!(s.refuted, 3); // the three Refute* clusters
        assert_eq!(s.after_refutation, 2); // kept control + HarmfulEcPc
    }

    #[test]
    fn chb_false_negative_is_pruned_yet_witnessable() {
        let app = single(PatternKind::ChbFalseNegative);
        let analysis = analyze(&app.program, &AnalysisConfig::default());
        assert_eq!(analysis.summary().after_unsound, 0, "CHB prunes it");
        let w = &analysis.warnings()[0];
        let witness = explore(
            &app.program,
            Goal::Pair {
                use_instr: w.use_access.instr,
                free_instr: w.free_access.instr,
            },
            ExploreConfig::default(),
        );
        assert!(witness.is_some(), "...but the UAF is real (§8.6)");
    }

    #[test]
    fn fp_patterns_have_no_witness() {
        for kind in [
            PatternKind::FpPath,
            PatternKind::FpPointsTo,
            PatternKind::FpUnreachable,
            PatternKind::FpMissingHb,
        ] {
            let app = single(kind);
            let analysis = analyze(&app.program, &AnalysisConfig::default());
            let v = analysis.validate_survivors(ExploreConfig::default());
            assert_eq!(
                v.harmful(),
                0,
                "{kind:?}: false positives are not witnessable"
            );
            assert_eq!(v.false_positives.len(), 1, "{kind:?}");
        }
    }

    #[test]
    fn patterns_compose_additively() {
        // Clusters race on disjoint fields, so analysis results add up.
        let spec = AppSpec::new("Add", 9)
            .with(PatternKind::HarmfulEcPc, 2)
            .with(PatternKind::Ig, 3)
            .with(PatternKind::Phb, 1)
            .with(PatternKind::Benign, 2);
        let app = generate(&spec);
        let analysis = analyze(&app.program, &AnalysisConfig::default());
        let s = analysis.summary();
        assert_eq!(s.potential, 6);
        assert_eq!(s.after_sound, 3); // IG prunes its 3
        assert_eq!(s.after_unsound, 2); // PHB prunes its 1
    }
}
