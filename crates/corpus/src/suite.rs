//! The 27-application evaluation suite, calibrated to Table 1.
//!
//! We cannot ship the original APKs (no Android runtime in this
//! reproduction), so each app is a synthetic model whose *pattern mix*
//! is derived from its Table 1 row: the potential-UAF count is scaled by
//! a square root (45k warnings in K-9 Mail become ~213 planted
//! clusters), the per-app sound/unsound pruning ratios are preserved,
//! the confirmed-harmful counts are planted verbatim (they are small),
//! and the pruned mass is split across filters with the global Figure 5
//! proportions. DESIGN.md documents this substitution.

use crate::generator::{distribute, AppSpec};
use crate::patterns::PatternKind;

/// Train/test split of §8.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppGroup {
    /// The 7 CAFA applications used to design the unsound filters.
    Train,
    /// The 20 applications all headline results are computed on.
    Test,
}

/// One application's reference row from Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct PaperRow {
    /// Application name.
    pub name: &'static str,
    /// Train or test group.
    pub group: AppGroup,
    /// Lines of code (paper).
    pub loc: usize,
    /// Entry callbacks (paper).
    pub ec: usize,
    /// Posted callbacks (paper).
    pub pc: usize,
    /// Threads (paper).
    pub threads: usize,
    /// Potential UAFs detected (paper).
    pub potential: usize,
    /// Remaining after sound filters (paper).
    pub after_sound: usize,
    /// Remaining after unsound filters (paper).
    pub after_unsound: usize,
    /// True harmful UAFs (paper).
    pub harmful: usize,
    /// Harmful pair-type mix `(EC-EC, EC-PC, PC-PC, C-RT, C-NT)` weights.
    pub harmful_mix: [f64; 5],
    /// False-positive cause mix `(path, points-to, not-reach, missing-HB)`.
    pub fp_mix: [f64; 4],
}

/// Default harmful mix (§8.4: most true UAFs involve PCs and NTs).
const HARMFUL_DEFAULT: [f64; 5] = [0.05, 0.30, 0.35, 0.05, 0.25];
/// Default FP-cause mix (§8.5: path insensitivity dominates).
const FP_DEFAULT: [f64; 4] = [0.50, 0.25, 0.10, 0.15];

macro_rules! row {
    ($name:literal, $group:ident, $loc:literal, $ec:literal, $pc:literal, $t:literal,
     $pot:literal, $sound:literal, $unsound:literal, $harm:literal) => {
        PaperRow {
            name: $name,
            group: AppGroup::$group,
            loc: $loc,
            ec: $ec,
            pc: $pc,
            threads: $t,
            potential: $pot,
            after_sound: $sound,
            after_unsound: $unsound,
            harmful: $harm,
            harmful_mix: HARMFUL_DEFAULT,
            fp_mix: FP_DEFAULT,
        }
    };
}

/// The 27 rows of Table 1.
#[must_use]
pub fn table1_rows() -> Vec<PaperRow> {
    vec![
        // --- train group (CAFA apps) ---
        row!("ToDoList", Train, 2637, 45, 1, 1, 54, 32, 0, 0),
        row!("Zxing", Train, 6453, 65, 15, 14, 263, 6, 2, 0),
        row!("Music", Train, 10518, 271, 41, 1, 19167, 2491, 207, 0),
        PaperRow {
            harmful_mix: [0.02, 0.05, 0.35, 0.08, 0.50],
            ..row!("MyTracks_1", Train, 27080, 280, 58, 38, 825, 173, 80, 29)
        },
        row!("Browser", Train, 30675, 216, 47, 53, 34185, 8077, 0, 0),
        PaperRow {
            // Table 1: 12 of 13 are PC-PC, 1 is EC-PC.
            harmful_mix: [0.0, 0.08, 0.92, 0.0, 0.0],
            ..row!("ConnectBot", Train, 32645, 105, 31, 19, 197, 33, 13, 13)
        },
        PaperRow {
            harmful_mix: [0.0, 0.0, 0.0, 0.0, 1.0],
            ..row!("FireFox", Train, 102_658, 748, 28, 135, 16546, 10004, 1540, 1)
        },
        // --- test group ---
        row!("SoundRecorder", Test, 1194, 14, 0, 1, 9, 0, 0, 0),
        row!("Swiftnotes", Test, 1571, 32, 1, 1, 0, 0, 0, 0),
        row!("PhotoAffix", Test, 1924, 52, 9, 2, 84, 10, 4, 0),
        row!("MLManager", Test, 2073, 153, 11, 10, 304, 38, 0, 0),
        row!("InstaMaterial", Test, 2248, 42, 29, 4, 6496, 544, 0, 0),
        row!("Tomdroid", Test, 2372, 24, 4, 3, 0, 0, 0, 0),
        row!("SGT_Puzzles", Test, 2944, 60, 14, 5, 591, 0, 0, 0),
        PaperRow {
            harmful_mix: [0.0, 0.2, 0.8, 0.0, 0.0],
            ..row!("Aard", Test, 3684, 53, 20, 25, 216, 111, 48, 8)
        },
        row!("ClipStack", Test, 3948, 106, 18, 2, 4, 0, 0, 0),
        row!("KissLauncher", Test, 5210, 66, 7, 13, 264, 42, 36, 0),
        row!("DashClock", Test, 10147, 67, 13, 1, 74, 1, 0, 0),
        row!("Dns66", Test, 10423, 22, 4, 6, 99, 13, 13, 0),
        row!("CleanMaster", Test, 11014, 117, 38, 12, 7, 0, 0, 0),
        row!("OmniNotes", Test, 13720, 764, 19, 22, 10360, 32, 0, 0),
        row!("Solitaire", Test, 15478, 47, 70, 2, 48, 31, 1, 0),
        row!("Mms", Test, 27578, 413, 37, 52, 10439, 3990, 1207, 0),
        PaperRow {
            harmful_mix: [0.0, 0.15, 0.85, 0.0, 0.0],
            ..row!("MyTracks_2", Test, 37031, 1029, 59, 52, 1104, 145, 71, 27)
        },
        row!("MiMangaNu", Test, 37827, 24, 9, 10, 10, 1, 0, 0),
        PaperRow {
            harmful_mix: [0.0, 0.0, 1.0, 0.0, 0.0],
            ..row!("QKSMS", Test, 56082, 225, 37, 35, 536, 171, 19, 10)
        },
        row!("K-9", Test, 78437, 499, 27, 20, 45336, 4143, 918, 0),
    ]
}

/// Scale a paper warning count to a planted-cluster count.
///
/// The default exponent is 0.5 (square root: K-9's 45k warnings become
/// ~213 clusters). Set the `NADROID_SCALE_EXP` environment variable to
/// run the suite closer to paper scale (e.g. `0.75` ≈ 3k clusters for
/// K-9; `1.0` is full scale).
#[must_use]
pub fn scale(paper: usize) -> usize {
    if paper == 0 {
        return 0;
    }
    let exp = std::env::var("NADROID_SCALE_EXP")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|e| (0.1..=1.0).contains(e))
        .unwrap_or(0.5);
    (paper as f64).powf(exp).round().max(1.0) as usize
}

/// Sound-pruned mass split across sound patterns, tuned so each filter's
/// *individual* effectiveness over the suite approximates Figure 5(a)
/// (MHB 21%, IG 66%, IA 13% of potential, with the reported overlaps).
const SOUND_SPLIT: [(PatternKind, f64); 5] = [
    (PatternKind::Ig, 0.601),
    (PatternKind::Mhb, 0.084),
    (PatternKind::Ia, 0.063),
    (PatternKind::MhbIg, 0.059),
    (PatternKind::MhbIa, 0.067),
];

/// Unsound-pruned mass split, tuned to Figure 5(b) (mayHB 13% with PHB
/// dominating, MA 26%, UR 29%, TT 15%, with small overlaps).
const UNSOUND_SPLIT: [(PatternKind, f64); 7] = [
    (PatternKind::Phb, 0.09),
    (PatternKind::Rhb, 0.01),
    (PatternKind::Chb, 0.02),
    (PatternKind::Ma, 0.18),
    (PatternKind::Ur, 0.21),
    (PatternKind::MaUr, 0.07),
    (PatternKind::Tt, 0.14),
];

const HARMFUL_KINDS: [PatternKind; 5] = [
    PatternKind::HarmfulEcEc,
    PatternKind::HarmfulEcPc,
    PatternKind::HarmfulPcPc,
    PatternKind::HarmfulCRt,
    PatternKind::HarmfulCNt,
];

const FP_KINDS: [PatternKind; 4] = [
    PatternKind::FpPath,
    PatternKind::FpPointsTo,
    PatternKind::FpUnreachable,
    PatternKind::FpMissingHb,
];

/// Derive the generator spec for one Table 1 row.
#[must_use]
pub fn spec_for(row: &PaperRow) -> AppSpec {
    let potential = scale(row.potential);
    // Per-app ratios, preserved from the paper.
    let sound_ratio = if row.potential == 0 {
        0.0
    } else {
        row.after_sound as f64 / row.potential as f64
    };
    let unsound_ratio = if row.after_sound == 0 {
        0.0
    } else {
        row.after_unsound as f64 / row.after_sound as f64
    };
    let mut after_sound = (potential as f64 * sound_ratio).round() as usize;
    let mut survivors = (after_sound as f64 * unsound_ratio).round() as usize;
    // Harmful counts are planted verbatim (they are small). To keep the
    // app's pruning *ratios* intact, back-compute the earlier stages from
    // the survivor floor instead of just clamping.
    if row.harmful > survivors {
        survivors = row.harmful;
        if unsound_ratio > 0.0 {
            after_sound = after_sound.max((survivors as f64 / unsound_ratio).round() as usize);
        }
    }
    after_sound = after_sound.max(survivors);
    let mut potential = potential.max(after_sound);
    if sound_ratio > 0.0 {
        potential = potential.max((after_sound as f64 / sound_ratio).round() as usize);
    }

    let sound_pruned = potential - after_sound;
    let unsound_pruned = after_sound - survivors;
    let fp_count = survivors - row.harmful;

    let mut spec = AppSpec::new(row.name, fxhash(row.name));
    let weights: Vec<f64> = SOUND_SPLIT.iter().map(|(_, w)| *w).collect();
    for (i, n) in distribute(sound_pruned, &weights).into_iter().enumerate() {
        spec = spec.with(SOUND_SPLIT[i].0, n);
    }
    let weights: Vec<f64> = UNSOUND_SPLIT.iter().map(|(_, w)| *w).collect();
    for (i, n) in distribute(unsound_pruned, &weights).into_iter().enumerate() {
        spec = spec.with(UNSOUND_SPLIT[i].0, n);
    }
    for (i, n) in distribute(row.harmful, &row.harmful_mix)
        .into_iter()
        .enumerate()
    {
        spec = spec.with(HARMFUL_KINDS[i], n);
    }
    for (i, n) in distribute(fp_count, &row.fp_mix).into_iter().enumerate() {
        spec = spec.with(FP_KINDS[i], n);
    }
    // Background noise proportional to the app's (paper) size.
    spec = spec.with(PatternKind::Benign, (row.loc / 4000).max(1));
    spec
}

/// The synthetic population for the corpus-scale benchmark (the timing
/// driver's `--scale` mode, nominally 1000 apps).
///
/// Everything is a pure function of the app's index: the name, the seed
/// (via [`fxhash`] of the name, like the Table 1 suite), and a
/// heavy-tailed size class — one in 200 apps is K-9-sized (~60 planted
/// clusters), one in 50 is mid-sized, one in 10 is small-but-real, and
/// the rest are the 2–5-cluster long tail that dominates real app
/// stores. Pattern mixes reuse the Figure 5 splits so population-level
/// filter tallies stay comparable to the suite's. Calling this twice
/// (or on different machines) yields byte-identical specs; the scale
/// bench leans on that to compare thread counts.
#[must_use]
pub fn scale_specs(total: usize) -> Vec<AppSpec> {
    (0..total)
        .map(|i| {
            let name = format!("scale_{i:04}");
            let seed = fxhash(&name);
            let clusters = if i % 200 == 0 {
                60
            } else if i % 50 == 0 {
                25
            } else if i % 10 == 0 {
                12
            } else {
                2 + (seed as usize) % 4
            };
            // Roughly the suite's global shape: most planted mass is
            // sound-pruned, a band is unsound-pruned, a sliver survives.
            let sound = clusters * 6 / 10;
            let unsound = clusters * 3 / 10;
            let harmful = usize::from(i % 25 == 0);
            let fp = usize::from(i % 7 == 0);
            let mut spec = AppSpec::new(&name, seed);
            let weights: Vec<f64> = SOUND_SPLIT.iter().map(|(_, w)| *w).collect();
            for (k, n) in distribute(sound, &weights).into_iter().enumerate() {
                spec = spec.with(SOUND_SPLIT[k].0, n);
            }
            let weights: Vec<f64> = UNSOUND_SPLIT.iter().map(|(_, w)| *w).collect();
            for (k, n) in distribute(unsound, &weights).into_iter().enumerate() {
                spec = spec.with(UNSOUND_SPLIT[k].0, n);
            }
            if harmful > 0 {
                spec = spec.with(HARMFUL_KINDS[(seed >> 8) as usize % HARMFUL_KINDS.len()], 1);
            }
            if fp > 0 {
                spec = spec.with(FP_KINDS[(seed >> 16) as usize % FP_KINDS.len()], 1);
            }
            spec.with(PatternKind::Benign, 1 + (seed >> 24) as usize % 3)
        })
        .collect()
}

/// Deterministic name hash for per-app seeds.
fn fxhash(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3)
    })
}

/// The 8 DroidRacer apps of the Table 2 false-negative study, with the
/// injected-UAF mix `(EC-EC, EC-PC, PC-PC, C-RT, C-NT)` from the table
/// and how many injections fall into the two §8.6 miss categories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedRow {
    /// Application name.
    pub name: &'static str,
    /// Injected UAFs per pair type (Table 2 columns).
    pub injected: [usize; 5],
    /// Injections replaced by the framework-laundering shape (missed by
    /// detection; Table 2 reports 2, both in Mms).
    pub missed_by_detection: usize,
    /// Injections replaced by the error-path `finish()` shape (pruned by
    /// the unsound CHB; Table 2 reports 3: 2 in Browser, 1 in Puzzles).
    pub pruned_by_unsound: usize,
}

/// The Table 2 injection study rows (28 injected UAFs in total).
#[must_use]
pub fn table2_rows() -> Vec<InjectedRow> {
    vec![
        InjectedRow {
            name: "Tomdroid",
            injected: [0, 1, 0, 0, 0],
            missed_by_detection: 0,
            pruned_by_unsound: 0,
        },
        InjectedRow {
            name: "Puzzles",
            injected: [0, 5, 0, 0, 4],
            missed_by_detection: 0,
            pruned_by_unsound: 1,
        },
        InjectedRow {
            name: "Aard",
            injected: [0, 1, 0, 0, 0],
            missed_by_detection: 0,
            pruned_by_unsound: 0,
        },
        InjectedRow {
            name: "Music",
            injected: [2, 4, 0, 0, 0],
            missed_by_detection: 0,
            pruned_by_unsound: 0,
        },
        InjectedRow {
            name: "Mms",
            injected: [0, 2, 3, 0, 1],
            missed_by_detection: 2,
            pruned_by_unsound: 0,
        },
        InjectedRow {
            name: "Browser",
            injected: [2, 0, 1, 0, 0],
            missed_by_detection: 0,
            pruned_by_unsound: 2,
        },
        InjectedRow {
            name: "MyTracks_2",
            injected: [0, 0, 1, 0, 0],
            missed_by_detection: 0,
            pruned_by_unsound: 0,
        },
        InjectedRow {
            name: "K-9",
            injected: [0, 0, 0, 1, 0],
            missed_by_detection: 0,
            pruned_by_unsound: 0,
        },
    ]
}

impl InjectedRow {
    /// Total injected UAFs.
    #[must_use]
    pub fn total(&self) -> usize {
        self.injected.iter().sum()
    }

    /// The generator spec for the injected variant of this app: the
    /// planted UAFs plus a little benign background.
    #[must_use]
    pub fn spec(&self) -> AppSpec {
        let mut spec = AppSpec::new(format!("{}_injected", self.name), fxhash(self.name));
        let mut remaining = self.injected;
        // Replace some injections with the special §8.6 miss shapes.
        let mut missed = self.missed_by_detection;
        let mut chb = self.pruned_by_unsound;
        // Misses replace PC-PC/EC-PC slots first (the Mms IBinder cases
        // were handler-mediated), CHB misses replace EC-EC/EC-PC slots.
        for slot in [2, 1, 4, 0, 3] {
            while missed > 0 && remaining[slot] > 0 {
                remaining[slot] -= 1;
                missed -= 1;
                spec = spec.with(PatternKind::MissedOpaque, 1);
            }
        }
        for slot in [0, 1, 4, 2, 3] {
            while chb > 0 && remaining[slot] > 0 {
                remaining[slot] -= 1;
                chb -= 1;
                spec = spec.with(PatternKind::ChbFalseNegative, 1);
            }
        }
        for (i, &n) in remaining.iter().enumerate() {
            spec = spec.with(HARMFUL_KINDS[i], n);
        }
        spec.with(PatternKind::Benign, 2)
    }
}

/// The refutation study corpus: six apps exercising every predicate
/// family the reachability-refutation filter can contradict, mixed
/// with kept controls and classic patterns so a Figure-5-style tally
/// shows exactly what the refutation stage prunes *beyond* the §6
/// filters. Deliberately disjoint from [`table1_rows`] — the 27 paper
/// apps contain no summarized-API calls and stay byte-identical.
#[must_use]
pub fn refute_specs() -> Vec<AppSpec> {
    vec![
        AppSpec::new("RefuteDialogs", 101)
            .with(PatternKind::RefuteDialogDismiss, 3)
            .with(PatternKind::PredicateKeptSkipPath, 1)
            .with(PatternKind::Ig, 2)
            .with(PatternKind::Benign, 1),
        AppSpec::new("RefuteAlarms", 102)
            .with(PatternKind::RefuteAlarmCancel, 2)
            .with(PatternKind::RefuteReceiverUnregister, 2)
            .with(PatternKind::Mhb, 1)
            .with(PatternKind::Benign, 1),
        AppSpec::new("RefuteServices", 103)
            .with(PatternKind::RefuteBindUnbind, 2)
            .with(PatternKind::HarmfulEcPc, 1)
            .with(PatternKind::Benign, 1),
        AppSpec::new("RefuteFragments", 104)
            .with(PatternKind::RefuteFragmentLifecycle, 3)
            .with(PatternKind::PredicateKeptLateDisable, 1)
            .with(PatternKind::Benign, 1),
        AppSpec::new("RefuteStacks", 105)
            .with(PatternKind::RefuteTaskStack, 3)
            .with(PatternKind::Ia, 1)
            .with(PatternKind::Benign, 1),
        AppSpec::new("RefuteMixed", 106)
            .with(PatternKind::RefuteDialogDismiss, 1)
            .with(PatternKind::RefuteAlarmCancel, 1)
            .with(PatternKind::RefuteReceiverUnregister, 1)
            .with(PatternKind::RefuteBindUnbind, 1)
            .with(PatternKind::RefuteFragmentLifecycle, 1)
            .with(PatternKind::RefuteTaskStack, 1)
            .with(PatternKind::PredicateKeptSkipPath, 1)
            .with(PatternKind::HarmfulEcEc, 1)
            .with(PatternKind::Ig, 1)
            .with(PatternKind::Benign, 1),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_seven_rows_with_correct_groups() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 27);
        assert_eq!(
            rows.iter().filter(|r| r.group == AppGroup::Train).count(),
            7
        );
        assert_eq!(
            rows.iter().filter(|r| r.group == AppGroup::Test).count(),
            20
        );
    }

    #[test]
    fn paper_harmful_total_is_88() {
        let total: usize = table1_rows().iter().map(|r| r.harmful).sum();
        assert_eq!(total, 88);
    }

    #[test]
    fn specs_reserve_room_for_harmful() {
        for row in table1_rows() {
            let spec = spec_for(&row);
            let harmful_planted: usize = spec
                .counts
                .iter()
                .filter(|(k, _)| k.is_real_uaf() && *k != PatternKind::ChbFalseNegative)
                .map(|(_, n)| n)
                .sum();
            assert_eq!(harmful_planted, row.harmful, "{}", row.name);
        }
    }

    #[test]
    fn injection_study_has_28_uafs() {
        let rows = table2_rows();
        assert_eq!(rows.len(), 8);
        let total: usize = rows.iter().map(InjectedRow::total).sum();
        assert_eq!(total, 28);
        let missed: usize = rows.iter().map(|r| r.missed_by_detection).sum();
        let pruned: usize = rows.iter().map(|r| r.pruned_by_unsound).sum();
        assert_eq!(missed, 2);
        assert_eq!(pruned, 3);
    }

    #[test]
    fn injected_specs_preserve_totals() {
        for row in table2_rows() {
            let spec = row.spec();
            let uafs: usize = spec
                .counts
                .iter()
                .filter(|(k, _)| k.is_real_uaf() || *k == PatternKind::MissedOpaque)
                .map(|(_, n)| n)
                .sum();
            assert_eq!(uafs, row.total(), "{}", row.name);
        }
    }

    #[test]
    fn scaling_is_monotone_and_small() {
        assert_eq!(scale(0), 0);
        assert_eq!(scale(1), 1);
        assert!(scale(45336) < 250);
        assert!(scale(19167) < scale(45336));
    }

    #[test]
    fn scale_population_is_deterministic_and_heavy_tailed() {
        let a = scale_specs(1000);
        let b = scale_specs(1000);
        assert_eq!(a, b, "the population is a pure function of the index");
        assert_eq!(a.len(), 1000);
        assert_eq!(a[0].name, "scale_0000");
        // The size classes land where the index arithmetic says.
        let totals: Vec<usize> = a.iter().map(AppSpec::total).collect();
        assert!(totals[0] > totals[50], "i%200 apps dominate i%50 apps");
        assert!(totals[50] > totals[10], "i%50 apps dominate i%10 apps");
        assert!(totals[10] > totals[1], "i%10 apps dominate the tail");
        assert!((2..=8).contains(&totals[1]), "tail apps stay small: {}", totals[1]);
        // A prefix is a prefix: growing the population never changes
        // the apps already in it.
        let small = scale_specs(100);
        assert_eq!(&a[..100], &small[..]);
    }
}
