//! Property tests for the ledger's noise model: self-diff emptiness at
//! arbitrary thresholds, the histogram quantization bound, and JSONL
//! round-tripping of randomly populated records.

use nadroid_ledger::{
    diff, latency_changed, parse_record_line, AppPopulation, DiffOptions, Kind, Population,
    Record, HIST_NOISE,
};
use nadroid_obs::Histogram;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Mixed magnitudes, capped at 2^45 — ledger values are JSON numbers
/// (f64), exact only below 2^53; the cap keeps even the histogram
/// *total* (a sum of up to 120 samples) inside that, and real
/// latencies are microseconds anyway.
fn samples_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec((0u64..3, 0u64..1 << 45), 1..120).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(kind, raw)| match kind {
                0 => raw % 64,
                1 => 64 + raw % 99_936,
                _ => raw,
            })
            .collect()
    })
}

/// Random thresholds, deliberately including degenerate ones
/// (`time_tolerance < 1`, zero slack, zero min effect): self-diff must
/// stay empty under all of them because every rule pairs its threshold
/// with a strict direction guard.
fn options_strategy() -> impl Strategy<Value = DiffOptions> {
    (0u64..200, 0u64..400, 0u64..100).prop_map(|(me, tol, slack)| DiffOptions {
        min_effect: me as f64 / 100.0,
        time_tolerance: tol as f64 / 100.0,
        slack_secs: slack as f64 / 100.0,
    })
}

fn record_strategy() -> impl Strategy<Value = Record> {
    (
        prop::collection::vec((0u64..40, 0u64..1 << 50), 0..12),
        prop::collection::vec((0u64..40, 0u64..1_000_000_000), 0..12),
        prop::collection::vec((0u64..40, 0u64..10_000_000), 0..12),
        samples_strategy(),
        prop::collection::vec((0u64..10, prop::collection::vec(0u64..1_000_000, 0..6)), 0..4),
    )
        .prop_map(|(counters, times, percentiles, samples, apps)| {
            let mut r = Record::new(Kind::Suite);
            r.ts = 1_755_000_000;
            r.note = "prop".into();
            for (k, v) in counters {
                r.counters.insert(format!("c{k}"), v);
            }
            for (k, v) in times {
                r.times.insert(format!("t{k}"), v as f64 / 1e6);
            }
            for (k, v) in percentiles {
                r.percentiles.insert(format!("p{k}"), v);
            }
            r.hists.insert("lat_us".into(), hist_of(&samples));
            if !apps.is_empty() {
                let mut tallies = BTreeMap::new();
                tallies.insert("potential".into(), apps.len() as u64);
                r.population = Some(Population {
                    apps: apps
                        .into_iter()
                        .map(|(a, ids)| {
                            let ids: Vec<String> =
                                ids.into_iter().map(|i| format!("w:{i:016x}")).collect();
                            AppPopulation {
                                digest: nadroid_core::warning_population_digest(&ids),
                                app: format!("app{a}"),
                                ids,
                            }
                        })
                        .collect(),
                    tallies,
                });
            }
            r
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `diff(a, a)` is empty for every record at every threshold —
    /// including pathological thresholds like `time_tolerance = 0`.
    #[test]
    fn self_diff_is_empty_at_any_threshold(
        r in record_strategy(),
        opts in options_strategy(),
    ) {
        let ds = diff(&r, &r, &opts);
        prop_assert!(ds.is_empty(), "self-diff produced {ds:?} under {opts:?}");
    }

    /// Two histograms of the same underlying latencies — one recorded
    /// verbatim, one with every sample inflated by at most the
    /// encoder's 1/32 relative quantization error — never flag a
    /// latency delta: the decoded percentiles stay within
    /// [`HIST_NOISE`], which the diff rule budgets for before any
    /// configured min effect.
    #[test]
    fn quantization_noise_never_flags(
        samples in samples_strategy(),
        me in 0u64..100,
    ) {
        let inflated: Vec<u64> = samples.iter().map(|&v| v + v / 32).collect();
        let (ha, hb) = (hist_of(&samples), hist_of(&inflated));
        let min_effect = me as f64 / 100.0;
        for p in [0.5, 0.9, 0.99, 1.0] {
            let (a, b) = (ha.percentile(p), hb.percentile(p));
            prop_assert!(
                !latency_changed(a, b, min_effect),
                "p{p}: {a} vs {b} flagged inside the {HIST_NOISE:.4} noise bound"
            );
        }
        // And through the full record diff: only the (expected) exact
        // count/total equality holds, so compare hists directly.
        let mut ra = Record::new(Kind::Suite);
        let mut rb = Record::new(Kind::Suite);
        ra.hists.insert("lat_us".into(), ha);
        rb.hists.insert("lat_us".into(), hb);
        let opts = DiffOptions { min_effect, ..DiffOptions::default() };
        let latency_deltas: Vec<_> = diff(&ra, &rb, &opts)
            .into_iter()
            .filter(|d| d.key.starts_with("hists.lat_us.p"))
            .collect();
        prop_assert!(latency_deltas.is_empty(), "{latency_deltas:?}");
    }

    /// Every record survives the JSONL round trip bit-for-bit.
    #[test]
    fn records_round_trip_through_jsonl(r in record_strategy()) {
        let back = parse_record_line(&r.to_json_line()).expect("round trip");
        prop_assert_eq!(back, r);
    }
}
