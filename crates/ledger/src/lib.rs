//! Append-only run ledger and the statistics-aware perf gate.
//!
//! Every benchmark or CI run appends one JSONL [`Record`] (schema
//! [`SCHEMA`], default path `Result/ledger.jsonl`) capturing what kind
//! of run it was, the environment it ran on, wall/CPU and per-phase
//! timings, the deterministic obs counters, latency histogram
//! snapshots in the `obs::hist` bucket encoding, and a digest of the
//! warning population per app. [`diff`] compares two records with a
//! noise model instead of a blanket tolerance:
//!
//! - **counters and populations are exact** — the analysis is
//!   deterministic, so any change is drift worth explaining;
//! - **latency percentiles** carry the histogram encoder's quantization
//!   error, so a delta only counts when it clears the combined
//!   two-sided bound [`HIST_NOISE`] plus a configurable minimum effect
//!   size ([`DiffOptions::min_effect`]);
//! - **wall/CPU seconds** from one-shot timers are the noisiest signal
//!   of all and only flag past a multiplicative tolerance plus an
//!   absolute slack ([`DiffOptions`]).
//!
//! [`gate`] turns a diff into a CI verdict: any regression or
//! unacknowledged drift fails with a message naming the exact counter,
//! percentile, or warning ids that moved. Both halves of every rule use
//! strict inequalities guarded by direction, so `diff(a, a)` is empty
//! at *any* threshold — the property suite pins this.
//!
//! Ledger numbers are JSON numbers and therefore exact only up to
//! 2^53; counters, microsecond latencies, and histogram bucket bounds
//! all live far below that in practice.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nadroid_core::{esc, parse_json, JsonValue};
use nadroid_obs::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// Schema tag written on (and required of) every ledger line.
pub const SCHEMA: &str = "nadroid-ledger/1";

/// Default ledger location, relative to the repo root.
pub const DEFAULT_PATH: &str = "Result/ledger.jsonl";

/// Combined two-sided quantization noise bound for comparing two
/// percentile readouts that each came through the log-linear histogram
/// encoder (`SUB_BITS = 5`): each readout overshoots its true order
/// statistic by at most `1/32` relative, so two readouts of the same
/// underlying latency can differ by up to
/// `(1 + 1/32)^2 - 1 = 2/32 + 1/1024`.
pub const HIST_NOISE: f64 = 2.0 / 32.0 + 1.0 / 1024.0;

/// What produced a ledger record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// The `timing` bench driver (micro + suite + scale curve).
    Timing,
    /// The `serve_bench` end-to-end serving driver.
    ServeBench,
    /// A fresh 27-app suite run recorded directly (e.g. `perf record`).
    Suite,
    /// A CI gate run.
    Ci,
    /// The `confirm_bench` schedule-synthesis driver.
    Confirm,
    /// The `refute_bench` refutation-study driver.
    Refute,
}

impl Kind {
    /// Wire name, as written in the `kind` field.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Kind::Timing => "timing",
            Kind::ServeBench => "serve_bench",
            Kind::Suite => "suite",
            Kind::Ci => "ci",
            Kind::Confirm => "confirm",
            Kind::Refute => "refute",
        }
    }

    /// Parse a wire name. (Inherent rather than `std::str::FromStr` so
    /// call sites keep the `String` error type the ledger uses
    /// throughout.)
    ///
    /// # Errors
    ///
    /// Returns the offending string when it names no kind.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Result<Kind, String> {
        match s {
            "timing" => Ok(Kind::Timing),
            "serve_bench" => Ok(Kind::ServeBench),
            "suite" => Ok(Kind::Suite),
            "ci" => Ok(Kind::Ci),
            "confirm" => Ok(Kind::Confirm),
            "refute" => Ok(Kind::Refute),
            other => Err(format!("unknown run kind {other:?}")),
        }
    }
}

/// Environment fingerprint: enough to explain why two records are not
/// comparable before blaming the code. Differences are reported as
/// informational, never as failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Env {
    /// Detected hardware parallelism.
    pub cores: u64,
    /// Effective `NADROID_THREADS` (1 when unset).
    pub threads: u64,
    /// Enabled observability-relevant features (e.g. `obs`).
    pub features: Vec<String>,
    /// `release` or `debug`.
    pub profile: String,
}

impl Env {
    /// Fingerprint the current process.
    #[must_use]
    pub fn capture() -> Env {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1);
        let threads = std::env::var("NADROID_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1);
        let mut features = Vec::new();
        if nadroid_obs::ENABLED {
            features.push("obs".to_string());
        }
        let profile = if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        };
        Env {
            cores,
            threads,
            features,
            profile: profile.to_string(),
        }
    }
}

/// One app's warning population: the sorted warning ids and their
/// order-invariant digest (`nadroid_core::warning_population_digest`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppPopulation {
    /// App slug.
    pub app: String,
    /// `wp:`-prefixed FNV-1a digest of the sorted ids.
    pub digest: String,
    /// The surviving warning ids themselves (sorted), kept so a digest
    /// change can be explained as concrete added/removed ids.
    pub ids: Vec<String>,
}

/// The suite-wide warning population: per-app id sets plus the
/// Figure-5 filter tallies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Population {
    /// Per-app populations, sorted by app slug.
    pub apps: Vec<AppPopulation>,
    /// Figure-5 tallies (`potential`, `filter.<K>.killed`, ...).
    pub tallies: BTreeMap<String, u64>,
}

/// One ledger line.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// What produced this record.
    pub kind: Kind,
    /// Wall-clock epoch seconds at record time.
    pub ts: u64,
    /// Free-form annotation (why the run happened).
    pub note: String,
    /// Environment fingerprint.
    pub env: Env,
    /// Wall/CPU/phase timings, in seconds.
    pub times: BTreeMap<String, f64>,
    /// Deterministic counters (time-valued `*_micros` counters are
    /// folded into [`Record::times`] instead, so these compare exact).
    pub counters: BTreeMap<String, u64>,
    /// Point latency readouts in microseconds (bench percentiles).
    pub percentiles: BTreeMap<String, u64>,
    /// Full latency histogram snapshots, by series name.
    pub hists: BTreeMap<String, Histogram>,
    /// Warning population, when the run analyzed the suite.
    pub population: Option<Population>,
}

/// Current wall clock as epoch seconds (0 if the clock is before 1970).
#[must_use]
pub fn epoch_secs() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

impl Record {
    /// A fresh record of `kind`, stamped with the current wall clock
    /// and environment.
    #[must_use]
    pub fn new(kind: Kind) -> Record {
        Record {
            kind,
            ts: epoch_secs(),
            note: String::new(),
            env: Env::capture(),
            times: BTreeMap::new(),
            counters: BTreeMap::new(),
            percentiles: BTreeMap::new(),
            hists: BTreeMap::new(),
            population: None,
        }
    }

    /// Encode as one JSONL line (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\"schema\":\"{}\",\"kind\":\"{}\",\"ts\":{},\"note\":\"{}\"",
            SCHEMA,
            self.kind.as_str(),
            self.ts,
            esc(&self.note)
        );
        let _ = write!(
            out,
            ",\"env\":{{\"cores\":{},\"threads\":{},\"features\":[{}],\"profile\":\"{}\"}}",
            self.env.cores,
            self.env.threads,
            self.env
                .features
                .iter()
                .map(|f| format!("\"{}\"", esc(f)))
                .collect::<Vec<_>>()
                .join(","),
            esc(&self.env.profile)
        );
        out.push_str(",\"times\":{");
        for (i, (k, v)) in self.times.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\"{}\":{v:.6}", esc(k));
        }
        out.push_str("},\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\"{}\":{v}", esc(k));
        }
        out.push_str("},\"percentiles\":{");
        for (i, (k, v)) in self.percentiles.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\"{}\":{v}", esc(k));
        }
        out.push_str("},\"hists\":{");
        for (i, (k, h)) in self.hists.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let buckets = h
                .buckets()
                .map(|(lo, hi, c)| format!("[{lo},{hi},{c}]"))
                .collect::<Vec<_>>()
                .join(",");
            let _ = write!(
                out,
                "{sep}\"{}\":{{\"total\":{},\"min\":{},\"max\":{},\"buckets\":[{buckets}]}}",
                esc(k),
                h.total(),
                h.min(),
                h.max()
            );
        }
        out.push('}');
        if let Some(pop) = &self.population {
            out.push_str(",\"population\":{\"apps\":[");
            for (i, app) in pop.apps.iter().enumerate() {
                let sep = if i == 0 { "" } else { "," };
                let ids = app
                    .ids
                    .iter()
                    .map(|id| format!("\"{}\"", esc(id)))
                    .collect::<Vec<_>>()
                    .join(",");
                let _ = write!(
                    out,
                    "{sep}{{\"app\":\"{}\",\"digest\":\"{}\",\"ids\":[{ids}]}}",
                    esc(&app.app),
                    esc(&app.digest)
                );
            }
            out.push_str("],\"tallies\":{");
            for (i, (k, v)) in pop.tallies.iter().enumerate() {
                let sep = if i == 0 { "" } else { "," };
                let _ = write!(out, "{sep}\"{}\":{v}", esc(k));
            }
            out.push_str("}}");
        }
        out.push('}');
        out
    }

    /// Decode a parsed ledger line.
    ///
    /// # Errors
    ///
    /// Rejects documents whose `schema` is not [`SCHEMA`] or whose
    /// shape deviates from what [`Record::to_json_line`] writes.
    pub fn from_json(v: &JsonValue) -> Result<Record, String> {
        let schema = v
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or("missing schema")?;
        if schema != SCHEMA {
            return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
        }
        let kind = Kind::from_str(
            v.get("kind")
                .and_then(JsonValue::as_str)
                .ok_or("missing kind")?,
        )?;
        let ts = v.get("ts").and_then(JsonValue::as_u64).ok_or("missing ts")?;
        let note = v
            .get("note")
            .and_then(JsonValue::as_str)
            .unwrap_or("")
            .to_string();
        let env_v = v.get("env").ok_or("missing env")?;
        let env = Env {
            cores: env_v
                .get("cores")
                .and_then(JsonValue::as_u64)
                .ok_or("missing env.cores")?,
            threads: env_v
                .get("threads")
                .and_then(JsonValue::as_u64)
                .ok_or("missing env.threads")?,
            features: env_v
                .get("features")
                .and_then(JsonValue::as_arr)
                .map(|a| {
                    a.iter()
                        .filter_map(JsonValue::as_str)
                        .map(str::to_string)
                        .collect()
                })
                .unwrap_or_default(),
            profile: env_v
                .get("profile")
                .and_then(JsonValue::as_str)
                .unwrap_or("release")
                .to_string(),
        };
        let times = obj_map(v.get("times"), |x| x.as_f64())?;
        let counters = obj_map(v.get("counters"), JsonValue::as_u64)?;
        let percentiles = obj_map(v.get("percentiles"), JsonValue::as_u64)?;
        let mut hists = BTreeMap::new();
        if let Some(JsonValue::Obj(members)) = v.get("hists") {
            for (name, hv) in members {
                hists.insert(name.clone(), hist_from_json(hv).map_err(|e| {
                    format!("hist {name:?}: {e}")
                })?);
            }
        }
        let population = match v.get("population") {
            None | Some(JsonValue::Null) => None,
            Some(pv) => Some(population_from_json(pv)?),
        };
        Ok(Record {
            kind,
            ts,
            note,
            env,
            times,
            counters,
            percentiles,
            hists,
            population,
        })
    }

    /// One-line human rendering for `perf list`.
    #[must_use]
    pub fn summary_line(&self, index: usize) -> String {
        let pop = self.population.as_ref().map_or(0, |p| p.apps.len());
        format!(
            "#{index} {kind:<11} ts={ts} env={cores}c/{threads}t/{profile} times={nt} counters={nc} percentiles={np} hists={nh} pop_apps={pop}{note}",
            kind = self.kind.as_str(),
            ts = self.ts,
            cores = self.env.cores,
            threads = self.env.threads,
            profile = self.env.profile,
            nt = self.times.len(),
            nc = self.counters.len(),
            np = self.percentiles.len(),
            nh = self.hists.len(),
            note = if self.note.is_empty() {
                String::new()
            } else {
                format!(" note={:?}", self.note)
            },
        )
    }
}

fn obj_map<T>(
    v: Option<&JsonValue>,
    f: impl Fn(&JsonValue) -> Option<T>,
) -> Result<BTreeMap<String, T>, String> {
    let mut out = BTreeMap::new();
    if let Some(JsonValue::Obj(members)) = v {
        for (k, mv) in members {
            out.insert(
                k.clone(),
                f(mv).ok_or_else(|| format!("bad value for {k:?}"))?,
            );
        }
    }
    Ok(out)
}

fn hist_from_json(v: &JsonValue) -> Result<Histogram, String> {
    let total = v
        .get("total")
        .and_then(JsonValue::as_u64)
        .ok_or("missing total")?;
    let min = v.get("min").and_then(JsonValue::as_u64).ok_or("missing min")?;
    let max = v.get("max").and_then(JsonValue::as_u64).ok_or("missing max")?;
    let mut triples = Vec::new();
    for b in v
        .get("buckets")
        .and_then(JsonValue::as_arr)
        .ok_or("missing buckets")?
    {
        let t = b.as_arr().ok_or("bucket is not an array")?;
        if t.len() != 3 {
            return Err("bucket is not a [lo,hi,count] triple".to_string());
        }
        let lo = t[0].as_u64().ok_or("bad bucket lo")?;
        let hi = t[1].as_u64().ok_or("bad bucket hi")?;
        let c = t[2].as_u64().ok_or("bad bucket count")?;
        triples.push((lo, hi, c));
    }
    Histogram::from_snapshot(total, min, max, triples)
}

fn population_from_json(v: &JsonValue) -> Result<Population, String> {
    let mut apps = Vec::new();
    for av in v
        .get("apps")
        .and_then(JsonValue::as_arr)
        .ok_or("population missing apps")?
    {
        apps.push(AppPopulation {
            app: av
                .get("app")
                .and_then(JsonValue::as_str)
                .ok_or("population app missing name")?
                .to_string(),
            digest: av
                .get("digest")
                .and_then(JsonValue::as_str)
                .ok_or("population app missing digest")?
                .to_string(),
            ids: av
                .get("ids")
                .and_then(JsonValue::as_arr)
                .map(|a| {
                    a.iter()
                        .filter_map(JsonValue::as_str)
                        .map(str::to_string)
                        .collect()
                })
                .unwrap_or_default(),
        });
    }
    let tallies = obj_map(v.get("tallies"), JsonValue::as_u64)?;
    Ok(Population { apps, tallies })
}

/// Parse one ledger line.
///
/// # Errors
///
/// Propagates JSON and shape errors from [`Record::from_json`].
pub fn parse_record_line(line: &str) -> Result<Record, String> {
    Record::from_json(&parse_json(line)?)
}

/// Append `rec` to the ledger at `path`, creating parent directories
/// and the file as needed.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn append(path: &Path, rec: &Record) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("create {}: {e}", parent.display()))?;
        }
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("open {}: {e}", path.display()))?;
    writeln!(f, "{}", rec.to_json_line()).map_err(|e| format!("write {}: {e}", path.display()))
}

/// Read every record in the ledger at `path`, oldest first.
///
/// # Errors
///
/// Reports the first unreadable line with its 1-based line number.
pub fn read(path: &Path) -> Result<Vec<Record>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(
            parse_record_line(line).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?,
        );
    }
    Ok(out)
}

/// Resolve a record selector against a ledger of `len` records:
/// `last` (newest), `prev` (second newest), a 1-based index from the
/// oldest (`1`, `2`, ...), or a negative index from the newest
/// (`-1` == `last`). Returns a 0-based index.
///
/// # Errors
///
/// Rejects unknown selector syntax and out-of-range indices.
pub fn select(len: usize, sel: &str) -> Result<usize, String> {
    let fail = |why: &str| Err(format!("selector {sel:?}: {why}"));
    if len == 0 {
        return fail("ledger is empty");
    }
    match sel {
        "last" => Ok(len - 1),
        "prev" => {
            if len < 2 {
                fail("ledger has no previous record")
            } else {
                Ok(len - 2)
            }
        }
        _ => {
            let n: i64 = match sel.parse() {
                Ok(n) => n,
                Err(_) => return fail("expected last, prev, or an integer"),
            };
            let idx = if n > 0 {
                n - 1
            } else if n < 0 {
                len as i64 + n
            } else {
                return fail("indices are 1-based");
            };
            if idx < 0 || idx as usize >= len {
                return fail(&format!("out of range for {len} record(s)"));
            }
            Ok(idx as usize)
        }
    }
}

/// Severity of one observed difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A timing or latency got worse beyond the noise model. Fails the
    /// gate.
    Regression,
    /// A deterministic quantity (counter, warning population, tally,
    /// histogram count) changed at all. Fails the gate until the
    /// baseline is re-recorded to acknowledge it.
    Drift,
    /// A timing or latency got *better* beyond the noise model.
    /// Reported so wins get recorded, never fails.
    Improvement,
    /// Context only (environment fingerprint differences).
    Info,
}

impl Severity {
    /// Render tag, bracketed in diff output.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Severity::Regression => "regression",
            Severity::Drift => "drift",
            Severity::Improvement => "improvement",
            Severity::Info => "info",
        }
    }
}

/// One observed difference between two records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    /// How bad it is.
    pub severity: Severity,
    /// Dotted key naming exactly what moved (`counters.hb.edges`,
    /// `percentiles.warm.server_p99_us`, `population.connectbot`, ...).
    pub key: String,
    /// Human-readable old → new detail.
    pub detail: String,
}

/// Thresholds for the noise-aware comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffOptions {
    /// Minimum relative effect size for latency percentiles, *on top
    /// of* [`HIST_NOISE`]. 0.05 means "ignore latency moves under
    /// quantization noise + 5%".
    pub min_effect: f64,
    /// Multiplicative tolerance for one-shot wall/CPU seconds; a time
    /// only regresses when `cur > base * time_tolerance + slack_secs`.
    pub time_tolerance: f64,
    /// Absolute slack for one-shot timings, absorbing scheduler noise
    /// on sub-second measurements.
    pub slack_secs: f64,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            min_effect: 0.05,
            time_tolerance: 3.0,
            slack_secs: 0.25,
        }
    }
}

/// Whether two latency readouts (µs) differ beyond quantization noise
/// plus the configured minimum effect, with a 1 µs absolute floor.
/// Symmetric in its arguments and strict, so equal values never flag.
#[must_use]
pub fn latency_changed(a: u64, b: u64, min_effect: f64) -> bool {
    let lo = a.min(b);
    let hi = a.max(b);
    #[allow(clippy::cast_precision_loss)]
    let gap = (hi - lo) as f64;
    #[allow(clippy::cast_precision_loss)]
    let budget = ((lo as f64) * (HIST_NOISE + min_effect.max(0.0))).max(1.0);
    hi > lo && gap > budget
}

fn time_beyond(budget_base: f64, cur: f64, opts: &DiffOptions) -> bool {
    cur > budget_base.mul_add(opts.time_tolerance, opts.slack_secs)
}

/// Compare two records under the noise model. Keys present in only one
/// record are skipped (BENCH-derived baselines legitimately carry
/// fewer sections than fresh suite records); environment differences
/// are informational. Histogram tail percentiles gate only when both
/// sides hold enough samples for the quantile to be an estimate
/// (`count >= 5/(1-p)`: 10 for p50, 50 for p90, 500 for p99) —
/// under-sampled tail moves are reported as info, because a p99 over a
/// handful of one-shot wall times is just the max and tracks scheduler
/// noise, not the code. `diff(a, a)` is empty for every `a` and every
/// option set — all rules pair a strict threshold with a direction
/// guard.
#[must_use]
pub fn diff(base: &Record, cur: &Record, opts: &DiffOptions) -> Vec<Delta> {
    let mut out = Vec::new();

    for (k, &b) in &base.counters {
        if let Some(&c) = cur.counters.get(k) {
            if b != c {
                let delta = i128::from(c) - i128::from(b);
                out.push(Delta {
                    severity: Severity::Drift,
                    key: format!("counters.{k}"),
                    detail: format!("{b} -> {c} ({delta:+})"),
                });
            }
        }
    }

    for (k, &b) in &base.times {
        if let Some(&c) = cur.times.get(k) {
            if c > b && time_beyond(b, c, opts) {
                out.push(Delta {
                    severity: Severity::Regression,
                    key: format!("times.{k}"),
                    detail: format!(
                        "{b:.6}s -> {c:.6}s (beyond {t:.2}x + {s:.2}s budget)",
                        t = opts.time_tolerance,
                        s = opts.slack_secs
                    ),
                });
            } else if c < b && time_beyond(c, b, opts) {
                out.push(Delta {
                    severity: Severity::Improvement,
                    key: format!("times.{k}"),
                    detail: format!("{b:.6}s -> {c:.6}s"),
                });
            }
        }
    }

    for (k, &b) in &base.percentiles {
        if let Some(&c) = cur.percentiles.get(k) {
            if latency_changed(b, c, opts.min_effect) {
                out.push(Delta {
                    severity: if c > b {
                        Severity::Regression
                    } else {
                        Severity::Improvement
                    },
                    key: format!("percentiles.{k}"),
                    detail: format!(
                        "{b}us -> {c}us (beyond {:.1}% noise + {:.1}% min effect)",
                        HIST_NOISE * 100.0,
                        opts.min_effect.max(0.0) * 100.0
                    ),
                });
            }
        }
    }

    for (k, hb) in &base.hists {
        if let Some(hc) = cur.hists.get(k) {
            if hb.count() != hc.count() {
                out.push(Delta {
                    severity: Severity::Drift,
                    key: format!("hists.{k}.count"),
                    detail: format!("{} -> {} samples", hb.count(), hc.count()),
                });
            }
            // An empirical p-quantile is only an estimate when enough
            // samples land beyond it (at least 5 expected events, i.e.
            // count >= 5/(1-p)): a p99 over 27 one-shot per-app wall
            // times is just the max, and scheduler noise moves it by
            // orders of magnitude. Under-sampled tails are reported but
            // never gate.
            for (label, p, need) in [("p50", 0.50, 10), ("p90", 0.90, 50), ("p99", 0.99, 500)] {
                let (b, c) = (hb.percentile(p), hc.percentile(p));
                if latency_changed(b, c, opts.min_effect) {
                    let n = hb.count().min(hc.count());
                    if n < need {
                        out.push(Delta {
                            severity: Severity::Info,
                            key: format!("hists.{k}.{label}"),
                            detail: format!(
                                "{b}us -> {c}us (moved, but {n} sample(s) < {need} needed to gate {label})"
                            ),
                        });
                    } else {
                        out.push(Delta {
                            severity: if c > b {
                                Severity::Regression
                            } else {
                                Severity::Improvement
                            },
                            key: format!("hists.{k}.{label}"),
                            detail: format!(
                                "{b}us -> {c}us (beyond {:.1}% noise + {:.1}% min effect)",
                                HIST_NOISE * 100.0,
                                opts.min_effect.max(0.0) * 100.0
                            ),
                        });
                    }
                }
            }
        }
    }

    if let (Some(pb), Some(pc)) = (&base.population, &cur.population) {
        diff_population(pb, pc, &mut out);
    }

    let env_pairs: [(&str, String, String); 4] = [
        ("cores", base.env.cores.to_string(), cur.env.cores.to_string()),
        (
            "threads",
            base.env.threads.to_string(),
            cur.env.threads.to_string(),
        ),
        (
            "features",
            base.env.features.join("+"),
            cur.env.features.join("+"),
        ),
        ("profile", base.env.profile.clone(), cur.env.profile.clone()),
    ];
    for (k, b, c) in env_pairs {
        if b != c {
            out.push(Delta {
                severity: Severity::Info,
                key: format!("env.{k}"),
                detail: format!("{b} -> {c} (records may not be comparable)"),
            });
        }
    }

    out
}

fn diff_population(base: &Population, cur: &Population, out: &mut Vec<Delta>) {
    let by_app = |p: &Population| -> BTreeMap<String, AppPopulation> {
        p.apps.iter().map(|a| (a.app.clone(), a.clone())).collect()
    };
    let b_apps = by_app(base);
    let c_apps = by_app(cur);
    for (app, b) in &b_apps {
        match c_apps.get(app) {
            None => out.push(Delta {
                severity: Severity::Drift,
                key: format!("population.{app}"),
                detail: format!("app disappeared ({} warning(s))", b.ids.len()),
            }),
            Some(c) if b.digest != c.digest => {
                let added: Vec<&str> = c
                    .ids
                    .iter()
                    .filter(|id| !b.ids.contains(id))
                    .map(String::as_str)
                    .collect();
                let removed: Vec<&str> = b
                    .ids
                    .iter()
                    .filter(|id| !c.ids.contains(id))
                    .map(String::as_str)
                    .collect();
                let mut detail = format!("digest {} -> {}", b.digest, c.digest);
                if !added.is_empty() {
                    let _ = write!(detail, "; added [{}]", added.join(", "));
                }
                if !removed.is_empty() {
                    let _ = write!(detail, "; removed [{}]", removed.join(", "));
                }
                out.push(Delta {
                    severity: Severity::Drift,
                    key: format!("population.{app}"),
                    detail,
                });
            }
            Some(_) => {}
        }
    }
    for (app, c) in &c_apps {
        if !b_apps.contains_key(app) {
            out.push(Delta {
                severity: Severity::Drift,
                key: format!("population.{app}"),
                detail: format!("app appeared ({} warning(s))", c.ids.len()),
            });
        }
    }
    let keys: std::collections::BTreeSet<&String> =
        base.tallies.keys().chain(cur.tallies.keys()).collect();
    for k in keys {
        let b = base.tallies.get(k);
        let c = cur.tallies.get(k);
        if b != c {
            let show = |v: Option<&u64>| v.map_or("(absent)".to_string(), u64::to_string);
            out.push(Delta {
                severity: Severity::Drift,
                key: format!("population.tallies.{k}"),
                detail: format!("{} -> {}", show(b), show(c)),
            });
        }
    }
}

/// Render a diff for humans: one bracketed-severity line per delta,
/// regressions first.
#[must_use]
pub fn render_diff(base_label: &str, cur_label: &str, deltas: &[Delta]) -> String {
    let mut out = format!("perf diff: {base_label} -> {cur_label}\n");
    if deltas.is_empty() {
        out.push_str("  no differences beyond noise\n");
        return out;
    }
    let mut sorted: Vec<&Delta> = deltas.iter().collect();
    sorted.sort_by(|a, b| a.severity.cmp(&b.severity).then_with(|| a.key.cmp(&b.key)));
    for d in sorted {
        let _ = writeln!(out, "  [{:<11}] {}: {}", d.severity.tag(), d.key, d.detail);
    }
    out
}

/// A gate decision: the full diff plus the count of blocking deltas.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// Everything the diff found.
    pub deltas: Vec<Delta>,
    /// Number of regressions among the deltas.
    pub regressions: usize,
    /// Number of drift findings among the deltas.
    pub drifts: usize,
}

impl Verdict {
    /// Whether the gate passes (no regression, no unacknowledged
    /// drift).
    #[must_use]
    pub fn pass(&self) -> bool {
        self.regressions == 0 && self.drifts == 0
    }

    /// Final PASS/FAIL line.
    #[must_use]
    pub fn summary(&self) -> String {
        if self.pass() {
            "PASS: no regressions, no drift".to_string()
        } else {
            format!(
                "FAIL: {} blocking difference(s) ({} regression(s), {} drift(s))",
                self.regressions + self.drifts,
                self.regressions,
                self.drifts
            )
        }
    }
}

/// Run the regression gate: diff `cur` against `base` and classify.
#[must_use]
pub fn gate(base: &Record, cur: &Record, opts: &DiffOptions) -> Verdict {
    let deltas = diff(base, cur, opts);
    let regressions = deltas
        .iter()
        .filter(|d| d.severity == Severity::Regression)
        .count();
    let drifts = deltas
        .iter()
        .filter(|d| d.severity == Severity::Drift)
        .count();
    Verdict {
        deltas,
        regressions,
        drifts,
    }
}

fn num(v: &JsonValue, path: &[&str]) -> Result<f64, String> {
    let mut cur = v;
    for p in path {
        cur = cur.get(p).ok_or_else(|| format!("missing {}", path.join(".")))?;
    }
    cur.as_f64().ok_or_else(|| format!("{} is not a number", path.join(".")))
}

fn unum(v: &JsonValue, path: &[&str]) -> Result<u64, String> {
    let mut cur = v;
    for p in path {
        cur = cur.get(p).ok_or_else(|| format!("missing {}", path.join(".")))?;
    }
    cur.as_u64()
        .ok_or_else(|| format!("{} is not an unsigned number", path.join(".")))
}

/// Convert a `nadroid-timing/*` BENCH document into a ledger record.
/// Returns the record plus any structural violations found in the
/// scale curve (counters that should be thread-invariant but were
/// not) — the gate treats those as failures in their own right.
///
/// # Errors
///
/// Rejects documents without a `nadroid-timing/` schema or with the
/// required sections missing.
pub fn record_from_bench_timing(v: &JsonValue) -> Result<(Record, Vec<String>), String> {
    let schema = v
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing schema")?;
    if !schema.starts_with("nadroid-timing/") {
        return Err(format!("schema {schema:?} is not a nadroid-timing document"));
    }
    let mut rec = Record::new(Kind::Timing);
    let mut violations = Vec::new();

    rec.counters.insert("apps".into(), unum(v, &["apps"])?);
    rec.times
        .insert("suite.wall_secs".into(), num(v, &["suite", "wall_secs"])?);
    rec.times
        .insert("suite.cpu_secs".into(), num(v, &["suite", "cpu_secs"])?);
    if let Some(JsonValue::Obj(members)) = v.get("phase_cpu_secs") {
        for (k, pv) in members {
            if let Some(x) = pv.as_f64() {
                rec.times.insert(format!("phase.{k}"), x);
            }
        }
    }
    if let Some(JsonValue::Obj(members)) = v.get("counters") {
        for (k, cv) in members {
            let x = cv
                .as_u64()
                .ok_or_else(|| format!("counter {k:?} is not an unsigned number"))?;
            rec.counters.insert(k.clone(), x);
        }
    }
    rec.times
        .insert("hb.closure_secs".into(), num(v, &["hb", "closure_secs"])?);
    rec.counters.insert(
        "datalog.derived_tuples".into(),
        unum(v, &["datalog_closure", "derived_tuples"])?,
    );
    rec.times.insert(
        "datalog.run_secs".into(),
        num(v, &["datalog_closure", "run_secs"])?,
    );

    if let Some(scale) = v.get("scale") {
        rec.counters
            .insert("scale.apps".into(), unum(scale, &["scale_apps"])?);
        rec.env.cores = unum(scale, &["cores"])?;
        let curve = scale
            .get("curve")
            .and_then(JsonValue::as_arr)
            .ok_or("scale.curve missing")?;
        // The scale counters must be thread-invariant: collapse them to
        // one counter each and record a violation if any thread count
        // disagreed.
        let mut collapsed: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
        for point in curve {
            let t = unum(point, &["threads"])?;
            rec.times.insert(
                format!("scale.wall_secs_t{t}"),
                num(point, &[&format!("wall_secs_t{t}")])?,
            );
            for name in ["pairs_examined", "queue_pops", "warnings"] {
                collapsed
                    .entry(name)
                    .or_default()
                    .push(unum(point, &[&format!("{name}_t{t}")])?);
            }
        }
        for (name, vals) in collapsed {
            if let Some(&first) = vals.first() {
                if vals.iter().any(|&x| x != first) {
                    violations.push(format!(
                        "scale.{name} varies across thread counts: {vals:?}"
                    ));
                }
                rec.counters.insert(format!("scale.{name}"), first);
            }
        }
    }
    Ok((rec, violations))
}

/// Convert a `nadroid-serve-bench/*` BENCH document into a ledger
/// record. Derived ratios (throughput, hit rate, speedup) are skipped —
/// their inputs are all recorded, and ratios of noisy quantities make
/// poor gate subjects.
///
/// # Errors
///
/// Rejects documents without a `nadroid-serve-bench/` schema or with
/// required sections missing.
pub fn record_from_bench_serve(v: &JsonValue) -> Result<Record, String> {
    let schema = v
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing schema")?;
    if !schema.starts_with("nadroid-serve-bench/") {
        return Err(format!(
            "schema {schema:?} is not a nadroid-serve-bench document"
        ));
    }
    let mut rec = Record::new(Kind::ServeBench);
    rec.counters.insert("apps".into(), unum(v, &["apps"])?);
    rec.counters
        .insert("concurrency".into(), unum(v, &["concurrency"])?);
    for pass in ["cold", "warm"] {
        let pv = v.get(pass).ok_or_else(|| format!("missing {pass} pass"))?;
        rec.counters
            .insert(format!("{pass}.requests"), unum(pv, &["requests"])?);
        rec.times
            .insert(format!("{pass}.wall_secs"), num(pv, &["wall_secs"])?);
        for side in ["client", "server"] {
            for p in ["p50", "p95", "p99"] {
                let field = format!("{side}_{p}_us");
                rec.percentiles
                    .insert(format!("{pass}.{field}"), unum(pv, &[&field])?);
            }
        }
    }
    if let Some(JsonValue::Obj(members)) = v.get("server") {
        for (series, sv) in members {
            rec.counters
                .insert(format!("{series}.count"), unum(sv, &["count"])?);
            for p in ["p50_us", "p95_us", "p99_us", "max_us"] {
                rec.percentiles
                    .insert(format!("{series}.{p}"), unum(sv, &[p])?);
            }
        }
    }
    for k in ["cache_bytes", "cache_entries", "cache_evictions", "rejected"] {
        rec.counters.insert(k.into(), unum(v, &[k])?);
    }
    rec.percentiles.insert(
        "connectbot.cold_us".into(),
        unum(v, &["connectbot", "cold_us"])?,
    );
    rec.percentiles.insert(
        "connectbot.warm_us".into(),
        unum(v, &["connectbot", "warm_us"])?,
    );
    // Schema /3 records the host fingerprint; older documents fall back
    // to the capturing process's own.
    if let Some(cores) = v.get("cores").and_then(JsonValue::as_u64) {
        rec.env.cores = cores;
    }
    if let Some(threads) = v.get("threads").and_then(JsonValue::as_u64) {
        rec.env.threads = threads;
    }
    if let Some(workers) = v.get("workers").and_then(JsonValue::as_u64) {
        rec.counters.insert("workers".into(), workers);
    }
    Ok(rec)
}

/// Convert a `nadroid-confirm-bench/*` BENCH document into a ledger
/// record. Verdict tallies, explored-state counts, and the per-app
/// confirmed-warning populations are all deterministic, so they land
/// as drift-exact counters and a [`Population`]; only `wall_secs`
/// rides the noise-tolerant timing lane.
///
/// # Errors
///
/// Rejects documents without a `nadroid-confirm-bench/` schema or with
/// required sections missing.
pub fn record_from_bench_confirm(v: &JsonValue) -> Result<Record, String> {
    let schema = v
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing schema")?;
    if !schema.starts_with("nadroid-confirm-bench/") {
        return Err(format!(
            "schema {schema:?} is not a nadroid-confirm-bench document"
        ));
    }
    let mut rec = Record::new(Kind::Confirm);
    rec.counters.insert("apps".into(), unum(v, &["apps"])?);
    rec.times
        .insert("confirm.wall_secs".into(), num(v, &["wall_secs"])?);
    let mut tallies = BTreeMap::new();
    for k in ["confirmed", "unconfirmed", "infeasible"] {
        let n = unum(v, &["tally", k])?;
        rec.counters.insert(format!("confirm.{k}"), n);
        tallies.insert(k.to_string(), n);
    }
    rec.counters
        .insert("confirm.states".into(), unum(v, &["states"])?);
    rec.counters.insert(
        "confirm.replays_verified".into(),
        unum(v, &["replays_verified"])?,
    );
    let per_app = v
        .get("per_app")
        .and_then(JsonValue::as_arr)
        .ok_or("missing per_app")?;
    let mut apps = Vec::new();
    for row in per_app {
        let app = row
            .get("app")
            .and_then(JsonValue::as_str)
            .ok_or("per_app row missing app")?
            .to_string();
        let digest = row
            .get("digest")
            .and_then(JsonValue::as_str)
            .ok_or("per_app row missing digest")?
            .to_string();
        let ids = row
            .get("confirmed_ids")
            .and_then(JsonValue::as_arr)
            .ok_or("per_app row missing confirmed_ids")?
            .iter()
            .filter_map(JsonValue::as_str)
            .map(str::to_string)
            .collect();
        apps.push(AppPopulation { app, digest, ids });
    }
    apps.sort_by(|a, b| a.app.cmp(&b.app));
    rec.population = Some(Population { apps, tallies });
    if let Some(cores) = v.get("cores").and_then(JsonValue::as_u64) {
        rec.env.cores = cores;
    }
    if let Some(threads) = v.get("threads").and_then(JsonValue::as_u64) {
        rec.env.threads = threads;
    }
    Ok(rec)
}

/// Convert a `nadroid-refute-bench/*` BENCH document into a ledger
/// record. The Figure-5-style stage tally (potential → after_sound →
/// after_unsound → refuted → after_refutation), the per-reason
/// refutation counts, and the per-app post-refutation warning
/// populations are all deterministic, so they land as drift-exact
/// counters and a [`Population`]; only `wall_secs` rides the
/// noise-tolerant timing lane.
///
/// # Errors
///
/// Rejects documents without a `nadroid-refute-bench/` schema or with
/// required sections missing.
pub fn record_from_bench_refute(v: &JsonValue) -> Result<Record, String> {
    let schema = v
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing schema")?;
    if !schema.starts_with("nadroid-refute-bench/") {
        return Err(format!(
            "schema {schema:?} is not a nadroid-refute-bench document"
        ));
    }
    let mut rec = Record::new(Kind::Refute);
    rec.counters.insert("apps".into(), unum(v, &["apps"])?);
    rec.times
        .insert("refute.wall_secs".into(), num(v, &["wall_secs"])?);
    let mut tallies = BTreeMap::new();
    for k in [
        "potential",
        "after_sound",
        "after_unsound",
        "refuted",
        "after_refutation",
    ] {
        let n = unum(v, &["tally", k])?;
        rec.counters.insert(format!("refute.{k}"), n);
        tallies.insert(k.to_string(), n);
    }
    if let Some(JsonValue::Obj(members)) = v.get("reasons") {
        for (k, rv) in members {
            let n = rv
                .as_u64()
                .ok_or_else(|| format!("reason {k:?} is not an unsigned number"))?;
            rec.counters.insert(format!("refute.reason.{k}"), n);
            tallies.insert(format!("reason.{k}"), n);
        }
    }
    let per_app = v
        .get("per_app")
        .and_then(JsonValue::as_arr)
        .ok_or("missing per_app")?;
    let mut apps = Vec::new();
    for row in per_app {
        let app = row
            .get("app")
            .and_then(JsonValue::as_str)
            .ok_or("per_app row missing app")?
            .to_string();
        let digest = row
            .get("digest")
            .and_then(JsonValue::as_str)
            .ok_or("per_app row missing digest")?
            .to_string();
        let ids = row
            .get("surviving_ids")
            .and_then(JsonValue::as_arr)
            .ok_or("per_app row missing surviving_ids")?
            .iter()
            .filter_map(JsonValue::as_str)
            .map(str::to_string)
            .collect();
        apps.push(AppPopulation { app, digest, ids });
    }
    apps.sort_by(|a, b| a.app.cmp(&b.app));
    rec.population = Some(Population { apps, tallies });
    if let Some(cores) = v.get("cores").and_then(JsonValue::as_u64) {
        rec.env.cores = cores;
    }
    if let Some(threads) = v.get("threads").and_then(JsonValue::as_u64) {
        rec.env.threads = threads;
    }
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> Record {
        let mut r = Record::new(Kind::Suite);
        r.ts = 1_755_000_000;
        r.note = "canned".into();
        r.env = Env {
            cores: 8,
            threads: 4,
            features: vec!["obs".into()],
            profile: "release".into(),
        };
        r.times.insert("suite.wall_secs".into(), 0.414548);
        r.times.insert("phase.hb".into(), 0.004872);
        r.counters.insert("hb.edges".into(), 1134);
        r.counters.insert("pointsto.queue_pops".into(), 12677);
        r.percentiles.insert("warm.server_p99_us".into(), 411);
        let mut h = Histogram::new();
        for v in [3u64, 17, 500, 12_345, 700_000] {
            h.record(v);
        }
        r.hists.insert("phase_us.detect".into(), h);
        r.population = Some(Population {
            apps: vec![AppPopulation {
                app: "connectbot".into(),
                digest: "wp:0011223344556677".into(),
                ids: vec!["w:aaaa".into(), "w:bbbb".into()],
            }],
            tallies: BTreeMap::from([("potential".into(), 460), ("after_sound".into(), 127)]),
        });
        r
    }

    #[test]
    fn json_line_round_trips() {
        let r = sample_record();
        let line = r.to_json_line();
        assert!(line.starts_with("{\"schema\":\"nadroid-ledger/1\""), "{line}");
        let back = parse_record_line(&line).expect("round trip");
        assert_eq!(back, r);
        // And a record without optional sections.
        let empty = Record::new(Kind::Ci);
        let back2 = parse_record_line(&empty.to_json_line()).expect("empty round trip");
        assert_eq!(back2, empty);
    }

    #[test]
    fn diff_of_identical_records_is_empty() {
        let r = sample_record();
        for opts in [
            DiffOptions::default(),
            DiffOptions {
                min_effect: 0.0,
                time_tolerance: 0.0,
                slack_secs: 0.0,
            },
            DiffOptions {
                min_effect: 0.5,
                time_tolerance: 0.1,
                slack_secs: 0.0,
            },
        ] {
            assert!(diff(&r, &r, &opts).is_empty(), "{opts:?}");
        }
    }

    #[test]
    fn under_sampled_tails_inform_but_never_gate() {
        let hist_of = |values: &[u64]| {
            let mut h = Histogram::new();
            for &v in values {
                h.record(v);
            }
            h
        };
        let opts = DiffOptions::default();

        // 27 one-shot samples a side (the per-app suite case): a huge
        // p99 move is reported as info — p99 needs 500 samples to gate
        // — and the verdict stays green.
        let mut small = vec![100u64; 26];
        let (mut a, mut b) = (Record::new(Kind::Suite), Record::new(Kind::Suite));
        small.push(300);
        a.hists.insert("lat".into(), hist_of(&small));
        *small.last_mut().unwrap() = 120_000;
        b.hists.insert("lat".into(), hist_of(&small));
        let deltas = diff(&a, &b, &opts);
        assert!(
            deltas
                .iter()
                .all(|d| d.severity == Severity::Info && d.key == "hists.lat.p99"),
            "{deltas:?}"
        );
        assert!(!deltas.is_empty(), "the tail move must still be reported");
        assert!(deltas[0].detail.contains("27 sample(s) < 500 needed"), "{}", deltas[0].detail);
        assert!(gate(&a, &b, &opts).pass());

        // With real tail mass (1000 samples) the same relative move is
        // a blocking regression.
        let mut big = vec![100u64; 980];
        big.extend(std::iter::repeat_n(1000u64, 20));
        let (mut a, mut b) = (Record::new(Kind::Suite), Record::new(Kind::Suite));
        a.hists.insert("lat".into(), hist_of(&big));
        for v in big.iter_mut().rev().take(20) {
            *v = 2000;
        }
        b.hists.insert("lat".into(), hist_of(&big));
        let deltas = diff(&a, &b, &opts);
        assert!(
            deltas
                .iter()
                .any(|d| d.severity == Severity::Regression && d.key == "hists.lat.p99"),
            "{deltas:?}"
        );
        assert!(!gate(&a, &b, &opts).pass());
    }

    #[test]
    fn counter_changes_are_exact_drift() {
        let a = sample_record();
        let mut b = a.clone();
        b.counters.insert("hb.edges".into(), 1135);
        let ds = diff(&a, &b, &DiffOptions::default());
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].severity, Severity::Drift);
        assert_eq!(ds[0].key, "counters.hb.edges");
        assert!(ds[0].detail.contains("1134 -> 1135"), "{}", ds[0].detail);
    }

    #[test]
    fn latency_rule_respects_noise_floor() {
        // 411us -> 434us is ~5.6%, inside 6.3% noise + 5% min effect.
        assert!(!latency_changed(411, 434, 0.05));
        // 411us -> 470us is ~14%, outside.
        assert!(latency_changed(411, 470, 0.05));
        // The 1us absolute floor: tiny values never flag on 1us jitter.
        assert!(!latency_changed(3, 4, 0.0));
        assert!(latency_changed(3, 5, 0.0));
        // Symmetric.
        assert_eq!(latency_changed(470, 411, 0.05), latency_changed(411, 470, 0.05));
    }

    #[test]
    fn time_rule_needs_direction_and_budget() {
        let a = sample_record();
        let mut b = a.clone();
        // 0.414548 * 3 + 0.25 = 1.49; 1.4 is inside budget.
        b.times.insert("suite.wall_secs".into(), 1.4);
        assert!(diff(&a, &b, &DiffOptions::default()).is_empty());
        b.times.insert("suite.wall_secs".into(), 1.6);
        let ds = diff(&a, &b, &DiffOptions::default());
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].severity, Severity::Regression);
        assert_eq!(ds[0].key, "times.suite.wall_secs");
        // And the reverse direction reads as an improvement.
        let ds = diff(&b, &a, &DiffOptions::default());
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].severity, Severity::Improvement);
    }

    #[test]
    fn population_drift_names_the_ids() {
        let a = sample_record();
        let mut b = a.clone();
        let pop = b.population.as_mut().unwrap();
        pop.apps[0].digest = "wp:ffeeddccbbaa9988".into();
        pop.apps[0].ids = vec!["w:aaaa".into(), "w:cccc".into()];
        let ds = diff(&a, &b, &DiffOptions::default());
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].severity, Severity::Drift);
        assert_eq!(ds[0].key, "population.connectbot");
        assert!(ds[0].detail.contains("added [w:cccc]"), "{}", ds[0].detail);
        assert!(ds[0].detail.contains("removed [w:bbbb]"), "{}", ds[0].detail);
    }

    #[test]
    fn missing_keys_are_skipped_not_flagged() {
        let a = sample_record();
        let mut b = Record::new(Kind::Ci);
        b.env = a.env.clone();
        b.counters.insert("hb.edges".into(), 1134);
        // b lacks everything else a has; nothing flags.
        assert!(diff(&a, &b, &DiffOptions::default()).is_empty());
    }

    #[test]
    fn env_changes_are_informational() {
        let a = sample_record();
        let mut b = a.clone();
        b.env.threads = 8;
        b.env.profile = "debug".into();
        let ds = diff(&a, &b, &DiffOptions::default());
        assert_eq!(ds.len(), 2, "{ds:?}");
        assert!(ds.iter().all(|d| d.severity == Severity::Info));
        let v = gate(&a, &b, &DiffOptions::default());
        assert!(v.pass(), "env-only differences must not fail the gate");
    }

    #[test]
    fn selectors_resolve() {
        assert_eq!(select(5, "last").unwrap(), 4);
        assert_eq!(select(5, "prev").unwrap(), 3);
        assert_eq!(select(5, "1").unwrap(), 0);
        assert_eq!(select(5, "-2").unwrap(), 3);
        assert!(select(5, "6").is_err());
        assert!(select(5, "0").is_err());
        assert!(select(0, "last").is_err());
        assert!(select(1, "prev").is_err());
        assert!(select(5, "nope").is_err());
    }

    #[test]
    fn bench_timing_conversion_extracts_counters_times_and_scale() {
        let doc = r#"{
          "schema": "nadroid-timing/4", "apps": 27,
          "suite": {"wall_secs": 0.4, "cpu_secs": 0.3},
          "phase_cpu_secs": {"modeling": 0.1, "total": 0.3},
          "counters": {"hb.edges": 1134, "pointsto.queue_pops": 12677},
          "hb": {"closure_secs": 0.0011},
          "datalog_closure": {"n": 200, "derived_tuples": 40000, "run_secs": 0.14, "tuples_per_sec": 283561},
          "scale": {"scale_apps": 1000, "cores": 4, "curve": [
            {"threads": 1, "wall_secs_t1": 0.13, "pairs_examined_t1": 62965, "queue_pops_t1": 45205, "warnings_t1": 183},
            {"threads": 2, "wall_secs_t2": 0.11, "pairs_examined_t2": 62965, "queue_pops_t2": 45205, "warnings_t2": 184}
          ]}
        }"#;
        let v = parse_json(doc).unwrap();
        let (rec, violations) = record_from_bench_timing(&v).unwrap();
        assert_eq!(rec.kind, Kind::Timing);
        assert_eq!(rec.counters["hb.edges"], 1134);
        assert_eq!(rec.counters["apps"], 27);
        assert_eq!(rec.counters["scale.apps"], 1000);
        assert_eq!(rec.counters["scale.pairs_examined"], 62965);
        assert_eq!(rec.counters["datalog.derived_tuples"], 40000);
        assert_eq!(rec.env.cores, 4);
        assert!((rec.times["phase.modeling"] - 0.1).abs() < 1e-12);
        assert!((rec.times["scale.wall_secs_t2"] - 0.11).abs() < 1e-12);
        // warnings differ between t1 and t2 -> one violation.
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("scale.warnings"), "{violations:?}");
    }

    #[test]
    fn bench_serve_conversion_extracts_percentiles() {
        let doc = r#"{
          "schema": "nadroid-serve-bench/3", "apps": 27, "concurrency": 2,
          "cores": 8, "threads": 2, "workers": 2,
          "cold": {"requests": 27, "wall_secs": 4.7, "throughput_rps": 5.7,
                   "client_p50_us": 9983, "client_p95_us": 2228223, "client_p99_us": 3221964,
                   "server_p50_us": 1855, "server_p95_us": 2228223, "server_p99_us": 3213493},
          "warm": {"requests": 27, "wall_secs": 0.02, "throughput_rps": 1349.9,
                   "client_p50_us": 543, "client_p95_us": 7679, "client_p99_us": 8275,
                   "server_p50_us": 58, "server_p95_us": 343, "server_p99_us": 411},
          "server": {"serve.latency.analyze.hit": {"count": 27, "p50_us": 58, "p95_us": 343, "p99_us": 411, "max_us": 411}},
          "cache_hit_rate": 0.5, "cache_bytes": 8569169, "cache_entries": 27,
          "cache_evictions": 0, "rejected": 0,
          "connectbot": {"cold_us": 735916, "warm_us": 321, "speedup": 2292.6}
        }"#;
        let v = parse_json(doc).unwrap();
        let rec = record_from_bench_serve(&v).unwrap();
        assert_eq!(rec.kind, Kind::ServeBench);
        assert_eq!(rec.env.cores, 8);
        assert_eq!(rec.env.threads, 2);
        assert_eq!(rec.counters["workers"], 2);
        assert_eq!(rec.percentiles["warm.server_p99_us"], 411);
        assert_eq!(rec.percentiles["serve.latency.analyze.hit.p99_us"], 411);
        assert_eq!(rec.percentiles["connectbot.warm_us"], 321);
        assert_eq!(rec.counters["serve.latency.analyze.hit.count"], 27);
        assert!(!rec.counters.contains_key("cache_hit_rate"));
    }

    #[test]
    fn bench_confirm_conversion_extracts_tally_and_population() {
        let doc = r#"{
          "schema": "nadroid-confirm-bench/1", "apps": 27,
          "cores": 8, "threads": 2, "wall_secs": 1.25,
          "tally": {"confirmed": 30, "unconfirmed": 4, "infeasible": 3},
          "states": 812345, "replays_verified": 30,
          "per_app": [
            {"app": "ConnectBot", "survivors": 2, "confirmed": 2, "unconfirmed": 0,
             "infeasible": 0, "states": 86, "micros": 1200, "digest": "wp:00000000deadbeef",
             "confirmed_ids": ["w:48869f4494d10ec9", "w:7e171093770b937d"]},
            {"app": "Aard", "survivors": 1, "confirmed": 1, "unconfirmed": 0,
             "infeasible": 0, "states": 40, "micros": 800, "digest": "wp:0000000000c0ffee",
             "confirmed_ids": ["w:0000000000000001"]}
          ]
        }"#;
        let v = parse_json(doc).unwrap();
        let rec = record_from_bench_confirm(&v).unwrap();
        assert_eq!(rec.kind, Kind::Confirm);
        assert_eq!(rec.counters["apps"], 27);
        assert_eq!(rec.counters["confirm.confirmed"], 30);
        assert_eq!(rec.counters["confirm.infeasible"], 3);
        assert_eq!(rec.counters["confirm.states"], 812_345);
        assert_eq!(rec.counters["confirm.replays_verified"], 30);
        assert_eq!(rec.env.cores, 8);
        assert_eq!(rec.env.threads, 2);
        assert!((rec.times["confirm.wall_secs"] - 1.25).abs() < 1e-12);
        let pop = rec.population.as_ref().expect("population recorded");
        assert_eq!(pop.tallies["confirmed"], 30);
        // Apps come back sorted regardless of document order.
        assert_eq!(pop.apps[0].app, "Aard");
        assert_eq!(pop.apps[1].ids.len(), 2);
        // The record survives a JSONL round trip.
        let line = rec.to_json_line();
        let back = Record::from_json(&parse_json(&line).unwrap()).unwrap();
        assert_eq!(back, rec);
        // A verdict flip is drift, not noise.
        let mut moved = rec.clone();
        *moved.counters.get_mut("confirm.confirmed").unwrap() -= 1;
        let verdict = gate(&rec, &moved, &DiffOptions::default());
        assert!(!verdict.pass());
        assert!(verdict.deltas.iter().any(|d| d.key == "counters.confirm.confirmed"));
    }

    #[test]
    fn bench_refute_conversion_extracts_stage_tally_and_reasons() {
        let doc = r#"{
          "schema": "nadroid-refute-bench/1", "apps": 6,
          "cores": 8, "threads": 2, "wall_secs": 0.42,
          "tally": {"potential": 30, "after_sound": 25, "after_unsound": 24,
                    "refuted": 21, "after_refutation": 3},
          "reasons": {"extended-order": 8, "disabled": 13, "unreachable": 0},
          "per_app": [
            {"app": "RefuteDialogs", "potential": 7, "after_unsound": 4, "refuted": 3,
             "after_refutation": 1, "micros": 900, "digest": "wp:00000000deadbeef",
             "surviving_ids": ["w:0000000000000001"]},
            {"app": "RefuteAlarms", "potential": 5, "after_unsound": 4, "refuted": 4,
             "after_refutation": 0, "micros": 700, "digest": "wp:0000000000c0ffee",
             "surviving_ids": []}
          ]
        }"#;
        let v = parse_json(doc).unwrap();
        let rec = record_from_bench_refute(&v).unwrap();
        assert_eq!(rec.kind, Kind::Refute);
        assert_eq!(rec.counters["apps"], 6);
        assert_eq!(rec.counters["refute.refuted"], 21);
        assert_eq!(rec.counters["refute.after_refutation"], 3);
        assert_eq!(rec.counters["refute.reason.disabled"], 13);
        assert_eq!(rec.env.cores, 8);
        assert!((rec.times["refute.wall_secs"] - 0.42).abs() < 1e-12);
        let pop = rec.population.as_ref().expect("population recorded");
        assert_eq!(pop.tallies["refuted"], 21);
        assert_eq!(pop.tallies["reason.extended-order"], 8);
        // Apps come back sorted regardless of document order.
        assert_eq!(pop.apps[0].app, "RefuteAlarms");
        assert_eq!(pop.apps[1].ids, vec!["w:0000000000000001".to_string()]);
        // The record survives a JSONL round trip.
        let line = rec.to_json_line();
        let back = Record::from_json(&parse_json(&line).unwrap()).unwrap();
        assert_eq!(back, rec);
        // A refutation-count flip is drift, not noise.
        let mut moved = rec.clone();
        *moved.counters.get_mut("refute.refuted").unwrap() -= 1;
        let verdict = gate(&rec, &moved, &DiffOptions::default());
        assert!(!verdict.pass());
        assert!(verdict
            .deltas
            .iter()
            .any(|d| d.key == "counters.refute.refuted"));
    }

    #[test]
    fn append_read_and_gate_through_a_file() {
        let dir = std::env::temp_dir().join(format!(
            "nadroid-ledger-test-{}",
            std::process::id()
        ));
        let path = dir.join("sub").join("ledger.jsonl");
        let _ = std::fs::remove_dir_all(&dir);
        let a = sample_record();
        let mut b = a.clone();
        b.counters.insert("hb.edges".into(), 9999);
        append(&path, &a).unwrap();
        append(&path, &b).unwrap();
        let records = read(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], a);
        let v = gate(
            &records[select(records.len(), "prev").unwrap()],
            &records[select(records.len(), "last").unwrap()],
            &DiffOptions::default(),
        );
        assert!(!v.pass());
        assert_eq!(v.drifts, 1);
        assert!(v.summary().starts_with("FAIL"), "{}", v.summary());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn render_diff_sorts_regressions_first() {
        let deltas = vec![
            Delta {
                severity: Severity::Info,
                key: "env.threads".into(),
                detail: "1 -> 2".into(),
            },
            Delta {
                severity: Severity::Regression,
                key: "times.suite.wall_secs".into(),
                detail: "0.4s -> 2.0s".into(),
            },
        ];
        let text = render_diff("#1", "#2", &deltas);
        let reg = text.find("[regression").unwrap();
        let info = text.find("[info").unwrap();
        assert!(reg < info, "{text}");
        assert!(render_diff("#1", "#1", &[]).contains("no differences beyond noise"));
    }
}
