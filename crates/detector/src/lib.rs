//! Static UAF ordering-violation detection (§5).
//!
//! After threadification, nAdroid applies a Chord-style static race
//! detector restricted to use-after-free pairs:
//!
//! - a **use** is a `getfield` ([`nadroid_ir::Op::Load`]);
//! - a **free** is a `putfield null` ([`nadroid_ir::Op::StoreNull`]);
//! - a pair is racy when the two accesses target the same field of a
//!   possibly-aliased, thread-escaping object from two different modeled
//!   threads.
//!
//! Following §5's modifications to Chord: lockset analysis is *not*
//! applied up front (locks provide atomicity, not ordering — UAFs happen
//! with or without locks) and MHP analysis is replaced by the
//! Android-specific happens-before filters of the filter crate. Both are
//! still available behind [`DetectorOptions`] for ablation studies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nadroid_datalog as datalog;
use nadroid_ir::walk::{self, InstrCtx};
use nadroid_ir::{Callee, FieldId, InstrId, Local, MethodId, Op, Program};
use nadroid_pointsto::{Escape, ObjId, PointsTo};
use nadroid_threadify::{ThreadId, ThreadModel};

/// Whether an access reads (use) or nulls (free) the field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// `getfield` — reads the field.
    Use,
    /// `putfield null` — frees the field.
    Free,
}

/// How the value loaded by a use is consumed inside its method — the
/// information behind the unsound used-for-return (UR) filter (§6.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UseConsumption {
    /// The loaded value is dereferenced (a method is invoked on it):
    /// a null here throws `NullPointerException`.
    Dereferenced,
    /// The value only flows to `return` and/or argument positions —
    /// commonly benign (the UR filter prunes these).
    ReturnOrArgOnly,
    /// The value is never consumed.
    Unused,
}

/// One field access with its structured context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    /// The access instruction.
    pub instr: InstrId,
    /// Its enclosing method.
    pub method: MethodId,
    /// The accessed field.
    pub field: FieldId,
    /// The local holding the base object.
    pub base: Local,
    /// Use or free.
    pub kind: AccessKind,
    /// Guards and locks dominating the access.
    pub ctx: InstrCtx,
    /// How a use's loaded value is consumed (always `Dereferenced` for
    /// frees, which have no loaded value).
    pub consumption: UseConsumption,
}

/// A potential UAF ordering violation: a racy (use, free) pair together
/// with the modeled threads the two accesses run on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UafWarning {
    /// The racy field.
    pub field: FieldId,
    /// The use access.
    pub use_access: Access,
    /// The free access.
    pub free_access: Access,
    /// The modeled thread executing the use.
    pub use_thread: ThreadId,
    /// The modeled thread executing the free.
    pub free_thread: ThreadId,
    /// The common (aliased) base objects of the two accesses.
    pub shared_objs: Vec<ObjId>,
}

impl UafWarning {
    /// The (use instr, free instr) pair identifying this warning
    /// independent of thread origins — Table 1 counts distinct pairs.
    #[must_use]
    pub fn pair(&self) -> (InstrId, InstrId) {
        (self.use_access.instr, self.free_access.instr)
    }
}

/// Detector configuration (§5's Chord modifications, exposed for
/// ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorOptions {
    /// Require at least one common base object to be thread-escaping
    /// (Chord's escape pruning). Default: true.
    pub require_escape: bool,
    /// Apply lockset pruning up front: drop pairs whose accesses hold a
    /// common must-lock. The paper argues this is wrong for UAFs
    /// (§5, second modification); default false, available for ablation.
    pub eager_lockset: bool,
}

impl Default for DetectorOptions {
    fn default() -> Self {
        DetectorOptions {
            require_escape: true,
            eager_lockset: false,
        }
    }
}

/// Collect every use and free access of a program, with contexts.
#[must_use]
pub fn collect_accesses(program: &Program) -> Vec<Access> {
    let mut out = Vec::new();
    for (mid, _) in program.methods() {
        walk::walk_method(program, mid, &mut |instr, ctx| match instr.op {
            Op::Load { dst, base, field } => {
                out.push(Access {
                    instr: instr.id,
                    method: mid,
                    field,
                    base,
                    kind: AccessKind::Use,
                    ctx: ctx.clone(),
                    consumption: consumption_of(program, mid, dst),
                });
            }
            Op::StoreNull { base, field } => {
                out.push(Access {
                    instr: instr.id,
                    method: mid,
                    field,
                    base,
                    kind: AccessKind::Free,
                    ctx: ctx.clone(),
                    consumption: UseConsumption::Dereferenced,
                });
            }
            _ => {}
        });
    }
    out
}

/// Classify how `local` (the destination of a use) is consumed in its
/// method.
fn consumption_of(program: &Program, method: MethodId, local: Local) -> UseConsumption {
    let mut deref = false;
    let mut ret_or_arg = false;
    program
        .method(method)
        .body()
        .for_each_instr(&mut |i| match &i.op {
            Op::Invoke { recv, args, .. } => {
                if *recv == Some(local) {
                    deref = true;
                }
                if args.contains(&local) {
                    ret_or_arg = true;
                }
            }
            Op::Return { val: Some(v) } if *v == local => ret_or_arg = true,
            Op::Load { base, .. } | Op::StoreNull { base, .. } if *base == local => deref = true,
            Op::Store { base, src, .. } => {
                if *base == local {
                    deref = true;
                }
                if *src == local {
                    ret_or_arg = true;
                }
            }
            _ => {}
        });
    if deref {
        UseConsumption::Dereferenced
    } else if ret_or_arg {
        UseConsumption::ReturnOrArgOnly
    } else {
        UseConsumption::Unused
    }
}

/// Run UAF detection: every racy (use, free, use-thread, free-thread)
/// combination that survives aliasing, escape, and (optionally) lockset
/// checks.
#[must_use]
pub fn detect(
    program: &Program,
    threads: &ThreadModel,
    pts: &PointsTo,
    escape: &Escape,
    options: DetectorOptions,
) -> Vec<UafWarning> {
    detect_with(program, threads, pts, escape, options, None)
}

/// Uses per parallel chunk of the pair scan. Small enough that the big
/// suite apps (hundreds of uses) split across workers, large enough
/// that per-chunk bookkeeping stays invisible next to the O(uses ×
/// frees) scan each chunk performs.
const PAIR_CHUNK_USES: usize = 32;

/// [`detect`] with an optional MHP pre-prune: when a happens-before
/// graph is supplied, thread pairs whose use is must-ordered before the
/// free (`mustHb(use, free)` — the transitive extension of the sound MHB
/// filter) are dropped before a warning is ever materialized, shrinking
/// the population entering the filter pipeline. Pairs ordered the *other*
/// way (free before use) are kept: those are definite ordering
/// violations, not safe ones.
///
/// Because `mustHb` is the closure of the direct MHB relations, the
/// pre-prune can remove strictly more pairs than the per-warning MHB
/// filter would; it is therefore opt-in (the timing driver and the
/// `--mhp-preprune` CLI flag), never the default pipeline, whose Figure 5
/// populations are pinned by the evaluation suite.
#[must_use]
pub fn detect_with(
    program: &Program,
    threads: &ThreadModel,
    pts: &PointsTo,
    escape: &Escape,
    options: DetectorOptions,
    hb: Option<&nadroid_hb::HbGraph>,
) -> Vec<UafWarning> {
    let accesses = collect_accesses(program);
    let uses: Vec<&Access> = accesses
        .iter()
        .filter(|a| a.kind == AccessKind::Use)
        .collect();
    let frees: Vec<&Access> = accesses
        .iter()
        .filter(|a| a.kind == AccessKind::Free)
        .collect();

    // The candidate pair space is partitioned by use index into
    // contiguous chunks; each worker scans its chunk against the shared
    // immutable points-to/escape/HB state and the per-chunk results are
    // concatenated in chunk order — byte-identical to the sequential
    // nested loop at any thread count (see docs/parallelism.md).
    let chunks = nadroid_par::map_chunks(uses.len(), PAIR_CHUNK_USES, |range| {
        let mut pairs_examined = 0u64;
        let mut mhp_prepruned = 0u64;
        let mut out = Vec::new();
        for u in &uses[range] {
            for f in &frees {
                pairs_examined += 1;
                if u.field != f.field || u.instr == f.instr {
                    continue;
                }
                let common = pts.common_objs((u.method, u.base), (f.method, f.base));
                if common.is_empty() {
                    continue;
                }
                let shared: Vec<ObjId> = if options.require_escape {
                    common
                        .iter()
                        .copied()
                        .filter(|&o| escape.is_shared(o))
                        .collect()
                } else {
                    common
                };
                if shared.is_empty() {
                    continue;
                }
                if options.eager_lockset && common_must_lock(pts, u, f) {
                    continue;
                }
                for &tu in threads.threads_of_method(u.method) {
                    for &tf in threads.threads_of_method(f.method) {
                        if tu == tf {
                            continue;
                        }
                        if hb.is_some_and(|g| g.must_hb(tu, tf)) {
                            mhp_prepruned += 1;
                            continue;
                        }
                        out.push(UafWarning {
                            field: u.field,
                            use_access: (*u).clone(),
                            free_access: (*f).clone(),
                            use_thread: tu,
                            free_thread: tf,
                            shared_objs: shared.clone(),
                        });
                    }
                }
            }
        }
        (out, pairs_examined, mhp_prepruned)
    });
    let mut pairs_examined = 0u64;
    let mut mhp_prepruned = 0u64;
    let mut out = Vec::new();
    for (warnings, pairs, prepruned) in chunks {
        out.extend(warnings);
        pairs_examined += pairs;
        mhp_prepruned += prepruned;
    }
    if nadroid_obs::recording() {
        nadroid_obs::counter("detector.uses", uses.len() as u64);
        nadroid_obs::counter("detector.frees", frees.len() as u64);
        nadroid_obs::counter("detector.pairs_examined", pairs_examined);
        nadroid_obs::counter("detector.warnings", out.len() as u64);
        nadroid_obs::counter("detector.racy_pairs", distinct_pairs(&out) as u64);
        if hb.is_some() {
            nadroid_obs::counter("detector.mhp_prepruned", mhp_prepruned);
        }
    }
    out
}

/// Whether two accesses hold a common must-lock object.
#[must_use]
pub fn common_must_lock(pts: &PointsTo, a: &Access, b: &Access) -> bool {
    let la: Vec<_> = a
        .ctx
        .locks
        .iter()
        .filter_map(|&l| pts.must_lock(a.method, l))
        .collect();
    b.ctx
        .locks
        .iter()
        .filter_map(|&l| pts.must_lock(b.method, l))
        .any(|o| la.contains(&o))
}

/// Count distinct (use, free) instruction pairs among warnings — the
/// granularity of Table 1's potential-UAF column.
#[must_use]
pub fn distinct_pairs(warnings: &[UafWarning]) -> usize {
    let mut pairs: Vec<(InstrId, InstrId)> = warnings.iter().map(UafWarning::pair).collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs.len()
}

/// Whether the callee is opaque (used in tests and reports).
#[must_use]
pub fn is_opaque(callee: Callee) -> bool {
    matches!(callee, Callee::Opaque)
}

/// A stable, content-derived warning identifier: `w:` plus 16 hex digits
/// of an FNV-1a hash over the racy field, the rendered use/free sites,
/// and both thread lineages. Built from rendered names rather than raw
/// ids, so the same warning keeps its id across reruns, parallel suite
/// ordering, and unrelated program edits that renumber instructions.
#[must_use]
pub fn warning_id(program: &Program, threads: &ThreadModel, w: &UafWarning) -> String {
    let field = format!(
        "{}.{}",
        program.class(program.field(w.field).owner()).name(),
        program.field(w.field).name()
    );
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in [
        field.as_str(),
        &program.describe_instr(w.use_access.instr),
        &program.describe_instr(w.free_access.instr),
        &threads.lineage_string(program, w.use_thread),
        &threads.lineage_string(program, w.free_thread),
    ] {
        for b in part.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separate components so ("ab","c") and ("a","bc") differ.
        h ^= 0x1f;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("w:{h:016x}")
}

/// The §5 racy-pair detection re-encoded as a Datalog program solved
/// with derivation recording on — the provenance backbone of
/// `nadroid explain`. Facts range over raw ids: instructions
/// ([`InstrId::raw`]), fields, objects, and modeled threads.
#[derive(Debug)]
pub struct RacyPairProvenance {
    /// The solved database (provenance recording enabled).
    pub db: datalog::Database,
    /// `racyPair(use, free, useThread, freeThread)` — the root relation.
    pub racy_pair: datalog::RelId,
    /// The executed rules; [`datalog::Derivation::rule`] indexes these.
    pub rules: datalog::RuleSet,
}

impl RacyPairProvenance {
    /// The derivation tree of one warning's racy-pair fact.
    #[must_use]
    pub fn explain_warning(&self, w: &UafWarning) -> Option<datalog::Derivation> {
        self.db.explain(
            self.racy_pair,
            &[
                w.use_access.instr.raw(),
                w.free_access.instr.raw(),
                w.use_thread.raw(),
                w.free_thread.raw(),
            ],
        )
    }
}

/// Re-derive the racy pairs of [`detect`] as a recorded Datalog solve:
///
/// ```text
/// aliasedPair(u, f) :- useAt(u, fld), freeAt(f, fld),
///                      ptsUse(u, o), ptsFree(f, o), sharedObj(o).
/// racyPair(u, f, t1, t2) :- aliasedPair(u, f), runsOn(u, t1),
///                           runsOn(f, t2), distinctThreads(t1, t2).
/// ```
///
/// `sharedObj` holds the thread-escaping objects (all objects when
/// `options.require_escape` is off), and `distinctThreads` materializes
/// thread disequality, which the engine has no built-in for. The derived
/// `racyPair` set equals the warnings of [`detect`] for the same options,
/// except that `eager_lockset` pruning is *not* encoded — with it on,
/// warnings are a subset of `racyPair`, and every warning still has a
/// derivation.
#[must_use]
pub fn derive_racy_pairs(
    program: &Program,
    threads: &ThreadModel,
    pts: &PointsTo,
    escape: &Escape,
    options: DetectorOptions,
) -> RacyPairProvenance {
    let mut db = datalog::Database::new();
    db.set_provenance(true);
    let use_at = db.relation("useAt", 2);
    let free_at = db.relation("freeAt", 2);
    let pts_use = db.relation("ptsUse", 2);
    let pts_free = db.relation("ptsFree", 2);
    let shared_obj = db.relation("sharedObj", 1);
    let runs_on = db.relation("runsOn", 2);
    let distinct_threads = db.relation("distinctThreads", 2);
    let aliased_pair = db.relation("aliasedPair", 2);
    let racy_pair = db.relation("racyPair", 4);

    for a in collect_accesses(program) {
        let (at, pt) = match a.kind {
            AccessKind::Use => (use_at, pts_use),
            AccessKind::Free => (free_at, pts_free),
        };
        db.insert(at, &[a.instr.raw(), a.field.raw()]);
        for &o in pts.pts(a.method, a.base) {
            db.insert(pt, &[a.instr.raw(), o.0]);
        }
        for &t in threads.threads_of_method(a.method) {
            db.insert(runs_on, &[a.instr.raw(), t.raw()]);
        }
    }
    for o in pts.objs().iter() {
        if !options.require_escape || escape.is_shared(o) {
            db.insert(shared_obj, &[o.0]);
        }
    }
    for (t1, _) in threads.threads() {
        for (t2, _) in threads.threads() {
            if t1 != t2 {
                db.insert(distinct_threads, &[t1.raw(), t2.raw()]);
            }
        }
    }

    let v = datalog::Term::var;
    let mut rules = datalog::RuleSet::new();
    // aliasedPair(u, f): same field, aliased bases, shared object.
    rules
        .add(aliased_pair, vec![v(0), v(2)])
        .when(use_at, vec![v(0), v(1)])
        .when(free_at, vec![v(2), v(1)])
        .when(pts_use, vec![v(0), v(3)])
        .when(pts_free, vec![v(2), v(3)])
        .when(shared_obj, vec![v(3)]);
    // racyPair(u, f, t1, t2): the pair runs on two different threads.
    rules
        .add(racy_pair, vec![v(0), v(1), v(2), v(3)])
        .when(aliased_pair, vec![v(0), v(1)])
        .when(runs_on, vec![v(0), v(2)])
        .when(runs_on, vec![v(1), v(3)])
        .when(distinct_threads, vec![v(2), v(3)]);
    db.run(&rules);

    RacyPairProvenance {
        db,
        racy_pair,
        rules,
    }
}

/// Render one Datalog fact of the racy-pair encoding in source terms:
/// instruction sites, qualified fields, thread lineages.
#[must_use]
pub fn describe_fact(
    program: &Program,
    threads: &ThreadModel,
    db: &datalog::Database,
    rel: datalog::RelId,
    tuple: &[u32],
) -> String {
    let site = |raw: u32| program.describe_instr(InstrId::from_raw(raw));
    let field = |raw: u32| {
        let f = FieldId::from_raw(raw);
        format!(
            "{}.{}",
            program.class(program.field(f).owner()).name(),
            program.field(f).name()
        )
    };
    let thread = |raw: u32| threads.lineage_string(program, ThreadId::from_raw(raw));
    match db.name(rel) {
        "useAt" => format!("useAt({}, {})", site(tuple[0]), field(tuple[1])),
        "freeAt" => format!("freeAt({}, {})", site(tuple[0]), field(tuple[1])),
        "ptsUse" => format!("ptsUse({}, obj#{})", site(tuple[0]), tuple[1]),
        "ptsFree" => format!("ptsFree({}, obj#{})", site(tuple[0]), tuple[1]),
        "sharedObj" => format!("sharedObj(obj#{})", tuple[0]),
        "runsOn" => format!("runsOn({}, {})", site(tuple[0]), thread(tuple[1])),
        "distinctThreads" => {
            format!("distinctThreads({}, {})", thread(tuple[0]), thread(tuple[1]))
        }
        "aliasedPair" => format!("aliasedPair({}, {})", site(tuple[0]), site(tuple[1])),
        "racyPair" => format!(
            "racyPair({}, {}, {}, {})",
            site(tuple[0]),
            site(tuple[1]),
            thread(tuple[2]),
            thread(tuple[3])
        ),
        name => {
            let vals: Vec<String> = tuple.iter().map(ToString::to_string).collect();
            format!("{name}({})", vals.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadroid_ir::parse_program;
    use nadroid_ir::Program;

    fn run(src: &str) -> (Program, ThreadModel, Vec<UafWarning>) {
        let p = parse_program(src).unwrap_or_else(|e| panic!("{e}"));
        let t = ThreadModel::build(&p);
        let pts = PointsTo::run(&p, &t, 2);
        let esc = Escape::compute(&p, &t, &pts);
        let w = detect(&p, &t, &pts, &esc, DetectorOptions::default());
        (p, t, w)
    }

    const CONNECTBOT_A: &str = r#"
        app ConnectBotA
        activity Console {
            field bound: Console
            cb onCreate              { bind this }
            cb onServiceConnected    { bound = new Console }
            cb onServiceDisconnected { bound = null }
            cb onCreateContextMenu   { use bound }
        }
    "#;

    #[test]
    fn detects_figure1a_uaf() {
        let (_p, _t, w) = run(CONNECTBOT_A);
        assert!(!w.is_empty(), "the ConnectBot UAF must be detected");
        assert_eq!(distinct_pairs(&w), 1);
    }

    #[test]
    fn different_fields_do_not_pair() {
        let (_p, _t, w) = run(r#"
            app D
            activity Main {
                field a: Main
                field b: Main
                cb onClick { use a }
                cb onPause { b = null }
            }
            "#);
        assert!(w.is_empty());
    }

    #[test]
    fn unaliased_bases_do_not_pair() {
        // Two different holder objects: freeing one's field cannot break
        // uses of the other's.
        let (_p, _t, w) = run(r#"
            app U
            activity Main {
                field x: Holder
                field y: Holder
                cb onCreate {
                    x = new Holder
                    y = new Holder
                }
                cb onClick {
                    t2 = load this Main.x
                    t3 = load t2 Holder.v
                    call opaque(recv=t3)
                }
                cb onPause {
                    t2 = load this Main.y
                    free t2 Holder.v
                }
            }
            class Holder { field v }
            "#);
        assert!(w.is_empty(), "{w:?}");
    }

    #[test]
    fn same_thread_accesses_do_not_pair() {
        let (_p, _t, w) = run(r#"
            app S
            activity Main {
                field f: Main
                cb onClick { use f  f = null }
            }
            "#);
        assert!(w.is_empty(), "use and free in one callback are ordered");
    }

    #[test]
    fn cross_class_uaf_detected() {
        // The FireFox Figure 1(c) shape: a background thread frees a field
        // of the activity while a callback uses it.
        let (p, t, w) = run(r#"
            app FF
            activity Main {
                field jClient: Main
                cb onResume { spawn W }
                cb onPause {
                    if jClient != null { use jClient }
                }
            }
            thread W in Main {
                cb run { outer.jClient = null }
            }
            "#);
        assert!(!w.is_empty());
        let warning = &w[0];
        let free_thread = t.thread(warning.free_thread);
        assert_eq!(free_thread.kind(), nadroid_threadify::ThreadKind::Native);
        let _ = p;
    }

    #[test]
    fn consumption_classification() {
        let (p, _t, w) = run(r#"
            app C
            activity Main {
                field f: Main
                cb onClick  { useret f }
                cb onPause  { f = null }
            }
            "#);
        assert!(!w.is_empty());
        assert_eq!(w[0].use_access.consumption, UseConsumption::ReturnOrArgOnly);
        let _ = p;
    }

    #[test]
    fn guard_context_is_attached() {
        let (_p, _t, w) = run(r#"
            app G
            activity Main {
                field f: Main
                cb onClick { if f != null { use f } }
                cb onPause { f = null }
            }
            "#);
        assert!(!w.is_empty());
        let u = &w[0].use_access;
        assert!(u.ctx.guarded_non_null(u.base, u.field));
    }

    #[test]
    fn eager_lockset_prunes_locked_pairs() {
        let src = r#"
            app L
            activity Main {
                field f: Main
                field lock: Main
                cb onCreate { lock = new Main  f = new Main }
                cb onResume { spawn W }
                cb onClick { sync lock { use f } }
            }
            thread W in Main {
                cb run {
                    t1 = load this W.$outer
                    t2 = load t1 Main.lock
                    sync t2 {
                        free t1 Main.f
                    }
                }
            }
        "#;
        let p = parse_program(src).unwrap();
        let t = ThreadModel::build(&p);
        let pts = PointsTo::run(&p, &t, 2);
        let esc = Escape::compute(&p, &t, &pts);
        let with = detect(&p, &t, &pts, &esc, DetectorOptions::default());
        let without = detect(
            &p,
            &t,
            &pts,
            &esc,
            DetectorOptions {
                eager_lockset: true,
                ..DetectorOptions::default()
            },
        );
        assert!(
            !with.is_empty(),
            "default keeps locked pairs (locks don't stop UAFs)"
        );
        assert!(
            without.len() < with.len(),
            "eager lockset prunes the locked pair"
        );
    }

    #[test]
    fn shared_helpers_attribute_accesses_to_every_caller() {
        // A use inside a plain helper called from two callbacks races the
        // free from *both* modeled threads.
        let (_p, t, w) = run(r#"
            app H
            activity M {
                field f: M
                fn helper { use f }
                cb onClick { call helper }
                cb onLongClick { call helper }
                cb onPause { f = null }
            }
            "#);
        assert_eq!(distinct_pairs(&w), 1, "one (use, free) instruction pair");
        let use_threads: std::collections::BTreeSet<_> = w.iter().map(|x| x.use_thread).collect();
        assert_eq!(
            use_threads.len(),
            2,
            "attributed to onClick and onLongClick"
        );
        let _ = t;
    }

    #[test]
    fn escape_requirement_prunes_confined_objects() {
        // An object reachable from only one modeled thread cannot race.
        let src = r#"
            app E
            activity Main {
                cb onClick {
                    t1 = new Holder
                    t2 = load t1 Holder.v
                    call opaque(recv=t2)
                    free t1 Holder.v
                }
            }
            class Holder { field v }
        "#;
        let p = parse_program(src).unwrap();
        let t = ThreadModel::build(&p);
        let pts = PointsTo::run(&p, &t, 2);
        let esc = Escape::compute(&p, &t, &pts);
        let w = detect(&p, &t, &pts, &esc, DetectorOptions::default());
        assert!(w.is_empty());
    }

    #[test]
    fn mhp_preprune_drops_must_ordered_pairs() {
        let src = r#"
            app PP
            activity Main {
                field f: Main
                cb onCreate { f = new Main  use f }
                cb onDestroy { f = null }
            }
        "#;
        let p = parse_program(src).unwrap();
        let t = ThreadModel::build(&p);
        let pts = PointsTo::run(&p, &t, 2);
        let esc = Escape::compute(&p, &t, &pts);
        let base = detect(&p, &t, &pts, &esc, DetectorOptions::default());
        assert!(!base.is_empty(), "the lifecycle-ordered pair is detected");
        let g = nadroid_hb::HbGraph::build(&p, &t);
        let pruned = detect_with(&p, &t, &pts, &esc, DetectorOptions::default(), Some(&g));
        assert!(
            pruned.len() < base.len(),
            "mustHb(onCreate, onDestroy) pairs are dropped before warning \
             materialization ({} -> {})",
            base.len(),
            pruned.len()
        );
        for w in &pruned {
            assert!(
                !g.must_hb(w.use_thread, w.free_thread),
                "no surviving pair is must-ordered use-before-free"
            );
        }
    }

    fn run_with_provenance(
        src: &str,
    ) -> (Program, ThreadModel, Vec<UafWarning>, RacyPairProvenance) {
        let p = parse_program(src).unwrap_or_else(|e| panic!("{e}"));
        let t = ThreadModel::build(&p);
        let pts = PointsTo::run(&p, &t, 2);
        let esc = Escape::compute(&p, &t, &pts);
        let opts = DetectorOptions::default();
        let w = detect(&p, &t, &pts, &esc, opts);
        let prov = derive_racy_pairs(&p, &t, &pts, &esc, opts);
        (p, t, w, prov)
    }

    #[test]
    fn datalog_racy_pairs_match_the_detector() {
        let (_p, _t, w, prov) = run_with_provenance(CONNECTBOT_A);
        assert!(!w.is_empty());
        assert_eq!(
            prov.db.len(prov.racy_pair),
            w.len(),
            "racyPair must equal detect() under default options"
        );
        for x in &w {
            assert!(prov.db.contains(
                prov.racy_pair,
                &[
                    x.use_access.instr.raw(),
                    x.free_access.instr.raw(),
                    x.use_thread.raw(),
                    x.free_thread.raw(),
                ]
            ));
        }
    }

    #[test]
    fn every_warning_has_a_derivation_rooted_at_racy_pair() {
        let (p, t, w, prov) = run_with_provenance(CONNECTBOT_A);
        assert!(!w.is_empty());
        for x in &w {
            let d = prov.explain_warning(x).expect("warning is explainable");
            assert_eq!(d.rel, prov.racy_pair);
            assert!(d.rule.is_some(), "racyPair facts are derived, not EDB");
            assert!(d.node_count() > 1);
            // The tree bottoms out in base facts, and every node renders.
            fn visit(
                p: &Program,
                t: &ThreadModel,
                prov: &RacyPairProvenance,
                node: &datalog::Derivation,
            ) {
                assert!(!describe_fact(p, t, &prov.db, node.rel, &node.tuple).is_empty());
                if node.premises.is_empty() {
                    assert!(node.is_base(), "leaves are EDB facts");
                } else {
                    for pr in &node.premises {
                        visit(p, t, prov, pr);
                    }
                }
            }
            visit(&p, &t, &prov, &d);
        }
    }

    #[test]
    fn warning_ids_are_stable_and_distinct() {
        let (p1, t1, w1, _) = run_with_provenance(CONNECTBOT_A);
        let (p2, t2, w2, _) = run_with_provenance(CONNECTBOT_A);
        assert_eq!(w1.len(), w2.len());
        let ids1: Vec<String> = w1.iter().map(|x| warning_id(&p1, &t1, x)).collect();
        let ids2: Vec<String> = w2.iter().map(|x| warning_id(&p2, &t2, x)).collect();
        assert_eq!(ids1, ids2, "ids survive a full rerun");
        let unique: std::collections::BTreeSet<_> = ids1.iter().collect();
        assert_eq!(unique.len(), ids1.len(), "distinct warnings, distinct ids");
        for id in &ids1 {
            assert!(id.starts_with("w:") && id.len() == 18, "bad id shape {id}");
        }
    }
}
