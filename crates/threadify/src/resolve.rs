//! Syntactic resolution of Android-intrinsic operands.
//!
//! Thread-model construction needs to know which class a posted `Runnable`, bound
//! `ServiceConnection`, executed `AsyncTask`, ... belongs to. nAdroid
//! discovers entry points by scanning the APK before any whole-program
//! analysis runs; equivalently, this module resolves each intrinsic's
//! operand with a simple intra-method reaching-definition walk:
//! allocations, static component loads, moves, and declared field types.

use nadroid_android::listeners::RegistrationApi;
use nadroid_ir::{AndroidOp, Block, ClassId, InstrId, Local, MethodId, Op, Program, Stmt};
use std::collections::HashMap;

/// What an Android intrinsic site does, with its operand class resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteAction {
    /// `post(runnable)` of the given Runnable class.
    Post(ClassId),
    /// `sendMessage` to a handler of the given class.
    Send(ClassId),
    /// `bindService` with a connection of the given class.
    Bind(ClassId),
    /// `unbindService` of a connection of the given class.
    Unbind(ClassId),
    /// `registerReceiver` of the given receiver class.
    Register(ClassId),
    /// `unregisterReceiver` of the given receiver class.
    Unregister(ClassId),
    /// `execute()` of the given AsyncTask class.
    Execute(ClassId),
    /// `start()` of the given Thread class.
    Spawn(ClassId),
    /// A listener registration arming callbacks on the given class.
    Listen(RegistrationApi, ClassId),
    /// `removeCallbacksAndMessages` on a handler of the given class.
    RemovePosts(ClassId),
    /// `Activity.finish()` (no operand; the enclosing component governs).
    Finish,
    /// `publishProgress()` inside `doInBackground`.
    Publish,
    /// `Dialog.show()` of a dialog of the given class.
    Show(ClassId),
    /// `Dialog.dismiss()` of a dialog of the given class.
    Dismiss(ClassId),
    /// `AlarmManager.set(...)` arming an alarm target of the given class.
    Schedule(ClassId),
    /// `AlarmManager.cancel(...)` of an alarm target of the given class.
    CancelAlarm(ClassId),
    /// `startActivity` launching the given activity class.
    Launch(ClassId),
}

/// A resolved Android intrinsic site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Site {
    /// The intrinsic instruction.
    pub instr: InstrId,
    /// The method containing it.
    pub method: MethodId,
    /// The resolved action.
    pub action: SiteAction,
}

/// Outcome of scanning one method for intrinsic sites.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteScan {
    /// Sites whose operand class resolved.
    pub sites: Vec<Site>,
    /// Intrinsic instructions whose operand class could not be resolved
    /// syntactically (diagnostic; such sites are skipped, a modeling
    /// limitation the paper shares for reflective registrations).
    pub unresolved: Vec<InstrId>,
}

/// Scan a method for Android intrinsic sites, resolving operand classes
/// with an intra-method reaching-definition walk.
#[must_use]
pub fn scan_method(program: &Program, method: MethodId) -> SiteScan {
    let m = program.method(method);
    let mut env: HashMap<Local, ClassId> = HashMap::new();
    env.insert(Local::THIS, m.owner());
    let mut out = SiteScan::default();
    scan_block(program, method, m.body(), &mut env, &mut out);
    out
}

fn scan_block(
    program: &Program,
    method: MethodId,
    block: &Block,
    env: &mut HashMap<Local, ClassId>,
    out: &mut SiteScan,
) {
    for stmt in block {
        match stmt {
            Stmt::Instr(i) => {
                scan_instr(program, method, i.id, &i.op, env, out);
            }
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                // Scope bindings per arm so one arm's defs don't leak into
                // the other; the post-if environment keeps only defs agreed
                // on by entry (conservative and deterministic).
                let snapshot = env.clone();
                scan_block(program, method, then_blk, env, out);
                *env = snapshot.clone();
                scan_block(program, method, else_blk, env, out);
                *env = snapshot;
            }
            Stmt::Loop { body } => {
                let snapshot = env.clone();
                scan_block(program, method, body, env, out);
                *env = snapshot;
            }
            Stmt::Sync { body, .. } => {
                scan_block(program, method, body, env, out);
            }
        }
    }
}

fn scan_instr(
    program: &Program,
    method: MethodId,
    id: InstrId,
    op: &Op,
    env: &mut HashMap<Local, ClassId>,
    out: &mut SiteScan,
) {
    match op {
        Op::New { dst, class } | Op::LoadStatic { dst, class } => {
            env.insert(*dst, *class);
        }
        Op::Move { dst, src } => {
            match env.get(src).copied() {
                Some(c) => env.insert(*dst, c),
                None => env.remove(dst),
            };
        }
        Op::Load { dst, field, .. } => {
            match program.field(*field).ty() {
                Some(c) => env.insert(*dst, c),
                None => env.remove(dst),
            };
        }
        Op::Null { dst } => {
            env.remove(dst);
        }
        Op::Invoke { dst: Some(dst), .. } => {
            env.remove(dst);
        }
        Op::Android(a) => {
            let resolved = |l: &Local| env.get(l).copied();
            let action = match a {
                AndroidOp::Post { runnable } => resolved(runnable).map(SiteAction::Post),
                AndroidOp::SendMessage { handler } => resolved(handler).map(SiteAction::Send),
                AndroidOp::BindService { connection } => resolved(connection).map(SiteAction::Bind),
                AndroidOp::UnbindService { connection } => {
                    resolved(connection).map(SiteAction::Unbind)
                }
                AndroidOp::RegisterReceiver { receiver } => {
                    resolved(receiver).map(SiteAction::Register)
                }
                AndroidOp::UnregisterReceiver { receiver } => {
                    resolved(receiver).map(SiteAction::Unregister)
                }
                AndroidOp::Execute { task } => resolved(task).map(SiteAction::Execute),
                AndroidOp::Start { thread } => resolved(thread).map(SiteAction::Spawn),
                AndroidOp::RegisterListener { api, listener } => {
                    resolved(listener).map(|c| SiteAction::Listen(*api, c))
                }
                AndroidOp::RemoveCallbacksAndMessages { handler } => {
                    resolved(handler).map(SiteAction::RemovePosts)
                }
                AndroidOp::Finish => Some(SiteAction::Finish),
                AndroidOp::PublishProgress => Some(SiteAction::Publish),
                AndroidOp::ShowDialog { dialog } => resolved(dialog).map(SiteAction::Show),
                AndroidOp::DismissDialog { dialog } => resolved(dialog).map(SiteAction::Dismiss),
                AndroidOp::ScheduleAlarm { target } => resolved(target).map(SiteAction::Schedule),
                AndroidOp::CancelAlarm { target } => {
                    resolved(target).map(SiteAction::CancelAlarm)
                }
                AndroidOp::StartActivity { activity } => {
                    resolved(activity).map(SiteAction::Launch)
                }
                // Wake-lock ops arm no callbacks and cancel nothing; the
                // no-sleep client scans them directly.
                AndroidOp::AcquireWakeLock { .. } | AndroidOp::ReleaseWakeLock { .. } => {
                    return;
                }
            };
            match action {
                Some(action) => out.sites.push(Site {
                    instr: id,
                    method,
                    action,
                }),
                None => out.unresolved.push(id),
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadroid_android::{CallbackKind, ClassRole};
    use nadroid_ir::ProgramBuilder;

    #[test]
    fn resolves_fresh_allocations() {
        let mut b = ProgramBuilder::new("R");
        let act = b.add_class("A", ClassRole::Activity);
        let run = b.add_class("R", ClassRole::Runnable);
        let mut m = b.method(act, "onClick");
        m.post_new(run);
        let mid = m.finish_callback(CallbackKind::OnClick);
        let p = b.build();
        let scan = scan_method(&p, mid);
        assert_eq!(scan.sites.len(), 1);
        assert_eq!(scan.sites[0].action, SiteAction::Post(run));
        assert!(scan.unresolved.is_empty());
    }

    #[test]
    fn resolves_this_operand() {
        let mut b = ProgramBuilder::new("R");
        let act = b.add_class("A", ClassRole::Activity);
        let mut m = b.method(act, "onCreate");
        m.bind_self();
        let mid = m.finish_callback(CallbackKind::OnCreate);
        let p = b.build();
        let scan = scan_method(&p, mid);
        assert_eq!(scan.sites[0].action, SiteAction::Bind(act));
    }

    #[test]
    fn resolves_field_loads_by_declared_type() {
        let mut b = ProgramBuilder::new("R");
        let act = b.add_class("A", ClassRole::Activity);
        let h = b.add_class("H", ClassRole::Handler);
        let f = b.add_field(act, "handler", Some(h));
        let g = b.add_field(act, "untyped", None);
        let mut m = b.method(act, "onClick");
        let t = m.new_local();
        m.load(t, Local::THIS, f);
        m.android(nadroid_ir::AndroidOp::SendMessage { handler: t });
        let u = m.new_local();
        m.load(u, Local::THIS, g);
        m.android(nadroid_ir::AndroidOp::SendMessage { handler: u });
        let mid = m.finish_callback(CallbackKind::OnClick);
        let p = b.build();
        let scan = scan_method(&p, mid);
        assert_eq!(scan.sites.len(), 1);
        assert_eq!(scan.sites[0].action, SiteAction::Send(h));
        assert_eq!(scan.unresolved.len(), 1);
    }

    #[test]
    fn branch_arms_do_not_leak_definitions() {
        let mut b = ProgramBuilder::new("R");
        let act = b.add_class("A", ClassRole::Activity);
        let run = b.add_class("R", ClassRole::Runnable);
        let mut m = b.method(act, "onClick");
        let t = m.new_local();
        m.if_opaque(
            |m| {
                m.new_obj(t, run);
            },
            |m| {
                // t is not defined here; posting it is unresolved.
                m.android(nadroid_ir::AndroidOp::Post { runnable: t });
            },
        );
        let mid = m.finish_callback(CallbackKind::OnClick);
        let p = b.build();
        let scan = scan_method(&p, mid);
        assert!(scan.sites.is_empty());
        assert_eq!(scan.unresolved.len(), 1);
    }

    #[test]
    fn moves_propagate() {
        let mut b = ProgramBuilder::new("R");
        let act = b.add_class("A", ClassRole::Activity);
        let th = b.add_class("W", ClassRole::Thread);
        let mut m = b.method(act, "onClick");
        let t = m.new_local();
        m.new_obj(t, th);
        let u = m.new_local();
        m.mov(u, t);
        m.android(nadroid_ir::AndroidOp::Start { thread: u });
        let mid = m.finish_callback(CallbackKind::OnClick);
        let p = b.build();
        let scan = scan_method(&p, mid);
        assert_eq!(scan.sites[0].action, SiteAction::Spawn(th));
    }
}
