//! The thread model produced by threadification.

use nadroid_android::{CallbackClass, CallbackKind};
use nadroid_ir::{ClassId, InstrId, MethodId};
use std::fmt;

/// Identifier of a modeled thread in a [`crate::ThreadModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub(crate) u32);

impl ThreadId {
    /// The dummy main (initial UI looper) thread is always thread 0.
    pub const DUMMY_MAIN: ThreadId = ThreadId(0);

    /// Raw index, usable as a Datalog term.
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Construct from a raw index (inverse of [`ThreadId::raw`]).
    #[must_use]
    pub fn from_raw(raw: u32) -> Self {
        ThreadId(raw)
    }

    /// Arena index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// What a modeled thread stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadKind {
    /// The dummy main thread representing the initial looper (§3).
    DummyMain,
    /// An event callback modeled as a thread (§4). Carries its callback
    /// kind; entry vs posted classification follows from the kind.
    Callback(CallbackKind),
    /// An `AsyncTask.doInBackground` body (runs on a pool thread).
    TaskBody,
    /// A native `java.lang.Thread` body.
    Native,
}

impl ThreadKind {
    /// Whether this modeled thread executes atomically on a looper thread
    /// (event callbacks do; task bodies and native threads do not).
    #[must_use]
    pub fn on_looper(self) -> bool {
        match self {
            ThreadKind::DummyMain => true,
            ThreadKind::Callback(k) => k.runs_on_looper(),
            ThreadKind::TaskBody | ThreadKind::Native => false,
        }
    }

    /// The §7 Entry/Posted classification, when this is an event callback.
    #[must_use]
    pub fn callback_class(self) -> Option<CallbackClass> {
        match self {
            ThreadKind::Callback(k) => k.class(),
            _ => None,
        }
    }

    /// The callback kind, when this is an event callback.
    #[must_use]
    pub fn callback_kind(self) -> Option<CallbackKind> {
        match self {
            ThreadKind::Callback(k) => Some(k),
            _ => None,
        }
    }
}

/// How a modeled thread came to exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpawnVia {
    /// The dummy main itself.
    Root,
    /// An entry callback declared on a component class (lifecycle, UI,
    /// system callbacks the framework arms by default).
    Component,
    /// A receiver declared in the manifest.
    Manifest,
    /// A listener registered imperatively (FlowDroid table).
    Listener,
    /// `Handler.post` / `View.post` / `runOnUiThread`.
    Post,
    /// `Handler.sendMessage`.
    Send,
    /// `bindService`.
    Bind,
    /// `registerReceiver`.
    Register,
    /// `AsyncTask.execute` (the `doInBackground` body).
    Execute,
    /// A looper-side AsyncTask callback (`onPreExecute`,
    /// `onProgressUpdate`, `onPostExecute`) of an executed task.
    TaskCallback,
    /// `Thread.start`.
    Spawn,
    /// `Dialog.show()` (arms the dialog's `onShow`/`onDismiss`).
    Show,
    /// `AlarmManager.set(...)` (arms the target's `onAlarm`).
    Schedule,
}

/// One modeled thread: a node of the threadification forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModeledThread {
    pub(crate) kind: ThreadKind,
    pub(crate) root: Option<MethodId>,
    pub(crate) class: Option<ClassId>,
    pub(crate) parent: Option<ThreadId>,
    pub(crate) component: Option<ClassId>,
    pub(crate) origin_site: Option<InstrId>,
    pub(crate) via: SpawnVia,
    pub(crate) looper: Option<ClassId>,
}

impl ModeledThread {
    /// What this thread stands for.
    #[must_use]
    pub fn kind(&self) -> ThreadKind {
        self.kind
    }

    /// The body (root) method the thread executes; `None` only for the
    /// dummy main.
    #[must_use]
    pub fn root(&self) -> Option<MethodId> {
        self.root
    }

    /// The class declaring the root method.
    #[must_use]
    pub fn class(&self) -> Option<ClassId> {
        self.class
    }

    /// The creating thread (poster for PCs, dummy main for ECs); `None`
    /// only for the dummy main itself.
    #[must_use]
    pub fn parent(&self) -> Option<ThreadId> {
        self.parent
    }

    /// The governing component class (the Activity/Service/Receiver whose
    /// lifecycle scopes this callback), when resolvable. Used by the MHB,
    /// RHB, and CHB filters to require same-component pairs.
    #[must_use]
    pub fn component(&self) -> Option<ClassId> {
        self.component
    }

    /// The registration/post/spawn instruction that armed this thread
    /// (`None` for the dummy main, manifest-armed, and component-declared
    /// callbacks).
    #[must_use]
    pub fn origin_site(&self) -> Option<InstrId> {
        self.origin_site
    }

    /// How the thread came to exist.
    #[must_use]
    pub fn via(&self) -> SpawnVia {
        self.via
    }

    /// The looper this callback runs on: `None` is the main looper; a
    /// `Some` names the `LooperThread` class the callback's class was
    /// declared `on`. Only meaningful when the kind runs on a looper.
    #[must_use]
    pub fn looper(&self) -> Option<ClassId> {
        self.looper
    }
}
