//! Threadification: modeling Android event callbacks as threads (§4).
//!
//! nAdroid's key insight is that single-threaded ordering violations
//! between unordered event callbacks become ordinary multi-threaded
//! ordering violations once every callback is modeled as a thread:
//!
//! - **Entry Callbacks** (lifecycle, UI, system) are modeled as children
//!   of a *dummy main* thread, because the Android runtime invokes them;
//! - **Posted Callbacks** (Handler posts/messages, service-connection and
//!   receiver callbacks, AsyncTask callbacks) are modeled as children of
//!   the callback or thread that posted/registered them, preserving the
//!   poster/postee causal order;
//! - native threads and `doInBackground` bodies stay genuine threads.
//!
//! [`ThreadModel::build`] performs the transformation; the resulting
//! forest carries the lineage (§7's callback/thread sequences), the
//! per-thread Android intrinsic sites (consumed by the happens-before
//! filters), and the EC/PC/T counts of Table 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod model;
pub mod resolve;

pub use build::{callback_method, own_methods, ThreadModel};
pub use model::{ModeledThread, SpawnVia, ThreadId, ThreadKind};

#[cfg(test)]
mod tests {
    use super::*;
    use nadroid_android::{CallbackClass, CallbackKind};
    use nadroid_ir::parse_program;

    fn model(src: &str) -> (nadroid_ir::Program, ThreadModel) {
        let p = parse_program(src).unwrap_or_else(|e| panic!("{e}"));
        let m = ThreadModel::build(&p);
        (p, m)
    }

    #[test]
    fn figure3_shape() {
        // The running example of Figure 3: lifecycle + UI ECs, handler
        // posts, service binding, receiver registration, and an AsyncTask.
        let (_p, m) = model(
            r#"
            app Fig3
            activity Main {
                field h: H
                cb onCreate { bind Conn }
                cb onStart { }
                cb onResume { register Recv }
                cb onClick { send H  post R }
                cb onLocationChanged { execute Task }
            }
            handler H in Main { cb handleMessage { } }
            runnable R in Main { cb run { } }
            connection Conn in Main {
                cb onServiceConnected { }
                cb onServiceDisconnected { }
            }
            receiver Recv { cb onReceive { } }
            asynctask Task in Main {
                cb onPreExecute { }
                cb doInBackground { publish }
                cb onProgressUpdate { }
                cb onPostExecute { }
            }
            "#,
        );
        // dummy(1) + 5 ECs + handleMessage/run/conn×2/onReceive (5 PCs)
        // + task body + 3 task callbacks = 15
        assert_eq!(m.len(), 15);

        // ECs are children of the dummy main.
        for (_, t) in m.threads() {
            if t.via() == SpawnVia::Component {
                assert_eq!(t.parent(), Some(ThreadId::DUMMY_MAIN));
            }
        }
        // Posted callbacks are children of their poster.
        let (send_id, send) = m
            .threads()
            .find(|(_, t)| t.via() == SpawnVia::Send)
            .expect("handleMessage thread");
        let poster = m.thread(send.parent().unwrap());
        assert_eq!(poster.kind().callback_kind(), Some(CallbackKind::OnClick));
        assert!(m.is_ancestor(ThreadId::DUMMY_MAIN, send_id));

        // AsyncTask: looper-side callbacks hang off the task body.
        let (body_id, _) = m
            .threads()
            .find(|(_, t)| t.kind() == ThreadKind::TaskBody)
            .expect("task body");
        let task_cbs: Vec<_> = m
            .threads()
            .filter(|(_, t)| t.via() == SpawnVia::TaskCallback)
            .collect();
        assert_eq!(task_cbs.len(), 3);
        for (_, t) in task_cbs {
            assert_eq!(t.parent(), Some(body_id));
        }
        // Counts: 5 ECs; PCs = handleMessage, run, conn*2, onReceive, 3 task cbs = 8.
        assert_eq!(m.entry_callback_count(), 5);
        assert_eq!(m.posted_callback_count(), 8);
        // Threads: dummy main + task body.
        assert_eq!(m.thread_count(), 2);
    }

    #[test]
    fn predicate_sites_arm_dialog_and_alarm_callbacks() {
        let (_p, m) = model(
            r#"
            app P
            activity Main {
                field dlg: Dlg
                field rcv: Recv
                cb onCreate { t1 = new Dlg  store t1 Dlg.$outer = this  store this Main.dlg = t1  show t1  schedule Recv  startactivity Other }
                cb onPause { dismiss dlg  cancelalarm rcv }
            }
            dialog Dlg in Main {
                field $outer
                cb onShow { }
                cb onDismiss { }
            }
            receiver Recv { cb onAlarm { } }
            activity Other { cb onCreate { } }
            "#,
        );
        // show arms both dialog callbacks as children of the shower.
        let dialog_cbs: Vec<_> = m
            .threads()
            .filter(|(_, t)| t.via() == SpawnVia::Show)
            .collect();
        assert_eq!(dialog_cbs.len(), 2);
        for (_, t) in &dialog_cbs {
            let shower = m.thread(t.parent().unwrap());
            assert_eq!(shower.kind().callback_kind(), Some(CallbackKind::OnCreate));
        }
        // schedule arms onAlarm.
        let (_, alarm) = m
            .threads()
            .find(|(_, t)| t.via() == SpawnVia::Schedule)
            .expect("onAlarm thread");
        assert_eq!(alarm.kind().callback_kind(), Some(CallbackKind::OnAlarm));
        // Launch arms nothing extra: Other.onCreate is component-armed.
        let other_creates = m
            .threads()
            .filter(|(_, t)| {
                t.kind().callback_kind() == Some(CallbackKind::OnCreate)
                    && t.via() == SpawnVia::Component
            })
            .count();
        assert_eq!(other_creates, 2); // Main.onCreate + Other.onCreate
        // Dismiss/cancel sites are recorded but arm nothing.
        assert!(m.threads().all(|(_, t)| t.via() != SpawnVia::Bind));
    }

    #[test]
    fn fragment_lifecycle_callbacks_are_component_armed() {
        let (_p, m) = model(
            r#"
            app F
            activity Host { cb onCreate { } }
            fragment Frag in Host {
                cb onAttach { }
                cb onCreateView { }
                cb onDestroyView { }
                cb onDetach { }
            }
            "#,
        );
        let frag_cbs: Vec<_> = m
            .threads()
            .filter(|(_, t)| {
                t.kind()
                    .callback_kind()
                    .is_some_and(CallbackKind::is_fragment_lifecycle)
            })
            .collect();
        assert_eq!(frag_cbs.len(), 4);
        for (_, t) in frag_cbs {
            assert_eq!(t.via(), SpawnVia::Component);
            assert_eq!(t.parent(), Some(ThreadId::DUMMY_MAIN));
        }
    }

    #[test]
    fn listener_registrations_are_entry_children_of_main() {
        let (_p, m) = model(
            r#"
            app L
            activity Main {
                cb onCreate { listen setOnClickListener ClickL }
            }
            listener ClickL in Main { cb onClick { } }
            "#,
        );
        let (_, t) = m
            .threads()
            .find(|(_, t)| t.via() == SpawnVia::Listener)
            .expect("listener");
        assert_eq!(t.parent(), Some(ThreadId::DUMMY_MAIN));
        assert_eq!(t.kind().callback_class(), Some(CallbackClass::Entry));
    }

    #[test]
    fn native_threads_and_reachability() {
        let (p, m) = model(
            r#"
            app N
            activity Main {
                cb onClick { call helper }
                fn helper { spawn W }
            }
            thread W in Main { cb run { } }
            "#,
        );
        let (wid, w) = m
            .threads()
            .find(|(_, t)| t.kind() == ThreadKind::Native)
            .expect("native");
        // Spawn inside a plain helper is attributed to the calling callback.
        let parent = m.thread(w.parent().unwrap());
        assert_eq!(parent.kind().callback_kind(), Some(CallbackKind::OnClick));
        assert!(!m.thread(wid).kind().on_looper());
        // helper belongs to the onClick thread's methods.
        let main = p.class_by_name("Main").unwrap();
        let helper = p.method_by_name(main, "helper").unwrap();
        assert_eq!(m.threads_of_method(helper).len(), 1);
    }

    #[test]
    fn self_posting_runnable_is_cycle_cut() {
        let (_p, m) = model(
            r#"
            app C
            activity Main { cb onCreate { post R } }
            runnable R in Main { cb run { post R } }
            "#,
        );
        // dummy, onCreate, one run thread — re-post of the same root is cut.
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn manifest_receiver_is_armed() {
        let (_p, m) = model(
            r#"
            app M
            activity Main { }
            receiver R { cb onReceive { } }
            manifest { main Main receiver R }
            "#,
        );
        let (_, t) = m
            .threads()
            .find(|(_, t)| t.via() == SpawnVia::Manifest)
            .expect("receiver");
        assert_eq!(t.kind().callback_kind(), Some(CallbackKind::OnReceive));
    }

    #[test]
    fn components_resolve_through_outer_chain() {
        let (p, m) = model(
            r#"
            app O
            activity Main {
                cb onClick { post R }
            }
            runnable R in Main { cb run { } }
            "#,
        );
        let main = p.class_by_name("Main").unwrap();
        for (_, t) in m.threads() {
            if t.root().is_some() {
                assert_eq!(t.component(), Some(main), "{t:?}");
            }
        }
    }

    #[test]
    fn atomicity_pairs() {
        let (_p, m) = model(
            r#"
            app A
            activity Main {
                cb onClick { }
                cb onPause { spawn W }
            }
            thread W in Main { cb run { } }
            "#,
        );
        let click = m
            .threads()
            .find(|(_, t)| t.kind().callback_kind() == Some(CallbackKind::OnClick))
            .unwrap()
            .0;
        let pause = m
            .threads()
            .find(|(_, t)| t.kind().callback_kind() == Some(CallbackKind::OnPause))
            .unwrap()
            .0;
        let w = m
            .threads()
            .find(|(_, t)| t.kind() == ThreadKind::Native)
            .unwrap()
            .0;
        assert!(m.atomic_pair(click, pause));
        assert!(!m.atomic_pair(click, w));
    }

    #[test]
    fn custom_loopers_break_cross_looper_atomicity() {
        let (p, m) = model(
            r#"
            app Loopers
            activity Main {
                cb onClick { send H }
                cb onPause { }
            }
            looperthread Worker { }
            handler H in Main on Worker {
                cb handleMessage { }
            }
            "#,
        );
        let worker = p.class_by_name("Worker").unwrap();
        let click = m
            .threads()
            .find(|(_, t)| t.kind().callback_kind() == Some(CallbackKind::OnClick))
            .unwrap()
            .0;
        let pause = m
            .threads()
            .find(|(_, t)| t.kind().callback_kind() == Some(CallbackKind::OnPause))
            .unwrap()
            .0;
        let (hm_id, hm) = m
            .threads()
            .find(|(_, t)| t.kind().callback_kind() == Some(CallbackKind::HandleMessage))
            .unwrap();
        assert_eq!(hm.looper(), Some(worker));
        assert!(m.atomic_pair(click, pause), "both on the main looper");
        assert!(!m.atomic_pair(click, hm_id), "different loopers interleave");
    }

    #[test]
    fn dot_export_has_nodes_and_edges() {
        let (p, m) = model(
            r#"
            app D
            activity Main { cb onClick { post R  spawn W } }
            runnable R in Main { cb run { } }
            thread W in Main { cb run { } }
            "#,
        );
        let dot = m.to_dot(&p);
        assert!(dot.starts_with("digraph threadification {"));
        assert!(dot.contains("doubleoctagon"), "dummy main node: {dot}");
        assert!(dot.contains("Main.onClick"), "{dot}");
        assert!(dot.contains("label=\"Post\""), "post edge: {dot}");
        assert!(dot.contains("label=\"Spawn\""), "spawn edge: {dot}");
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn lineage_strings_read_top_down() {
        let (p, m) = model(
            r#"
            app L
            activity Main { cb onClick { post R } }
            runnable R in Main { cb run { } }
            "#,
        );
        let run = m
            .threads()
            .find(|(_, t)| t.via() == SpawnVia::Post)
            .unwrap()
            .0;
        assert_eq!(m.lineage_string(&p, run), "main > Main.onClick > R.run");
    }
}
