//! Construction of the threadification forest (§4 of the paper).

use crate::model::{ModeledThread, SpawnVia, ThreadId, ThreadKind};
use crate::resolve::{scan_method, Site, SiteAction};
use nadroid_android::{CallbackClass, CallbackKind};
use nadroid_ir::{Callee, ClassId, InstrId, MethodId, Op, Program};
use std::collections::{HashMap, VecDeque};

/// The threadified view of a program: a forest of modeled threads rooted
/// at the dummy main, plus the resolved Android-intrinsic sites of each
/// thread.
///
/// # Example
///
/// ```
/// use nadroid_ir::parse_program;
/// use nadroid_threadify::{ThreadModel, ThreadId};
///
/// let p = parse_program(
///     r#"
///     app Demo
///     activity Main {
///         cb onCreate { post Work }
///     }
///     runnable Work in Main { cb run { } }
///     "#,
/// ).unwrap();
/// let model = ThreadModel::build(&p);
/// // dummy main, onCreate (EC), run (PC)
/// assert_eq!(model.len(), 3);
/// let run = model.threads().find(|(_, t)| t.via() == nadroid_threadify::SpawnVia::Post).unwrap();
/// // the posted callback is a child of the posting callback, not of main
/// assert_ne!(run.1.parent(), Some(ThreadId::DUMMY_MAIN));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadModel {
    threads: Vec<ModeledThread>,
    /// Methods executed by each thread: the root plus plain (non-callback)
    /// methods reachable through invokes.
    methods: Vec<Vec<MethodId>>,
    /// Android intrinsic sites attributable to each thread.
    sites: Vec<Vec<Site>>,
    /// Threads executing each method.
    by_method: HashMap<MethodId, Vec<ThreadId>>,
    /// Intrinsic sites whose operand class could not be resolved.
    unresolved_sites: Vec<InstrId>,
}

impl ThreadModel {
    /// Threadify a program: model event callbacks as threads per §4.
    #[must_use]
    pub fn build(program: &Program) -> ThreadModel {
        Builder::new(program).run()
    }

    /// Number of modeled threads (including the dummy main).
    #[must_use]
    pub fn len(&self) -> usize {
        self.threads.len()
    }

    /// Whether the model contains only the dummy main.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.threads.len() <= 1
    }

    /// Look up a modeled thread.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a thread of this model.
    #[must_use]
    pub fn thread(&self, id: ThreadId) -> &ModeledThread {
        &self.threads[id.index()]
    }

    /// Iterate all modeled threads with their ids.
    pub fn threads(&self) -> impl Iterator<Item = (ThreadId, &ModeledThread)> + '_ {
        self.threads
            .iter()
            .enumerate()
            .map(|(i, t)| (ThreadId(i as u32), t))
    }

    /// Methods executed by a thread (root plus plain helpers).
    #[must_use]
    pub fn methods_of(&self, id: ThreadId) -> &[MethodId] {
        &self.methods[id.index()]
    }

    /// Android intrinsic sites executed by a thread.
    #[must_use]
    pub fn sites_of(&self, id: ThreadId) -> &[Site] {
        &self.sites[id.index()]
    }

    /// Threads that execute a method (possibly several when a helper is
    /// shared).
    #[must_use]
    pub fn threads_of_method(&self, m: MethodId) -> &[ThreadId] {
        self.by_method.get(&m).map_or(&[], Vec::as_slice)
    }

    /// Intrinsic sites skipped because their operand class did not resolve.
    #[must_use]
    pub fn unresolved_sites(&self) -> &[InstrId] {
        &self.unresolved_sites
    }

    /// The lineage of a thread: itself, its parent, ... up to the dummy
    /// main.
    #[must_use]
    pub fn lineage(&self, id: ThreadId) -> Vec<ThreadId> {
        let mut out = vec![id];
        let mut cur = id;
        while let Some(p) = self.threads[cur.index()].parent {
            out.push(p);
            cur = p;
        }
        out
    }

    /// Whether `ancestor` appears in the lineage of `t` (reflexive).
    #[must_use]
    pub fn is_ancestor(&self, ancestor: ThreadId, t: ThreadId) -> bool {
        self.lineage(t).contains(&ancestor)
    }

    /// Whether two modeled threads are atomic with respect to each other:
    /// both are event callbacks on the *same* looper, so their bodies
    /// cannot interleave at instruction granularity. Callbacks on a
    /// custom `HandlerThread` looper are not atomic with main-looper
    /// callbacks — the §8.1 multi-looper refinement (the paper's
    /// prototype assumed a single looper; the IG/IA filters downgrade
    /// automatically for cross-looper pairs here).
    #[must_use]
    pub fn atomic_pair(&self, a: ThreadId, b: ThreadId) -> bool {
        let ta = self.thread(a);
        let tb = self.thread(b);
        ta.kind().on_looper() && tb.kind().on_looper() && ta.looper() == tb.looper()
    }

    /// A human-readable lineage string
    /// (`main > onClick > run`), used by the §7 report.
    #[must_use]
    pub fn lineage_string(&self, program: &Program, id: ThreadId) -> String {
        let mut names: Vec<String> = self
            .lineage(id)
            .into_iter()
            .map(|t| self.describe(program, t))
            .collect();
        names.reverse();
        names.join(" > ")
    }

    /// Short description of one thread (`Main.onClick` or `main`).
    #[must_use]
    pub fn describe(&self, program: &Program, id: ThreadId) -> String {
        let t = self.thread(id);
        match (t.class, t.root) {
            (Some(c), Some(m)) => {
                format!("{}.{}", program.class(c).name(), program.method(m).name())
            }
            _ => "main".to_owned(),
        }
    }

    /// Static number of Entry Callbacks (Table 1's EC column): modeled
    /// callback threads classified EC, counted per distinct root method.
    #[must_use]
    pub fn entry_callback_count(&self) -> usize {
        self.count_class(CallbackClass::Entry)
    }

    /// Static number of Posted Callbacks (Table 1's PC column).
    #[must_use]
    pub fn posted_callback_count(&self) -> usize {
        self.count_class(CallbackClass::Posted)
    }

    fn count_class(&self, class: CallbackClass) -> usize {
        let mut roots: Vec<MethodId> = self
            .threads
            .iter()
            .filter(|t| t.kind.callback_class() == Some(class))
            .filter_map(|t| t.root)
            .collect();
        roots.sort_unstable();
        roots.dedup();
        roots.len()
    }

    /// Render the threadification forest in Graphviz DOT format: one
    /// node per modeled thread (labelled with its class.method, kind, and
    /// looper), edges from parent to child annotated with the spawn
    /// mechanism. Useful for inspecting what §4 produced.
    #[must_use]
    pub fn to_dot(&self, program: &Program) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph threadification {\n  rankdir=TB;\n");
        for (id, t) in self.threads() {
            let label = self.describe(program, id);
            let shape = match t.kind() {
                ThreadKind::DummyMain => "doubleoctagon",
                ThreadKind::Callback(_) => "box",
                ThreadKind::TaskBody | ThreadKind::Native => "ellipse",
            };
            let looper = match t.looper() {
                Some(l) => format!("\\non {}", program.class(l).name()),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "  t{} [label=\"{label}{looper}\", shape={shape}];",
                id.raw()
            );
        }
        for (id, t) in self.threads() {
            if let Some(p) = t.parent() {
                let _ = writeln!(
                    out,
                    "  t{} -> t{} [label=\"{:?}\"];",
                    p.raw(),
                    id.raw(),
                    t.via()
                );
            }
        }
        out.push_str("}\n");
        out
    }

    /// Static number of threads (Table 1's T column): the dummy UI main
    /// thread, AsyncTask `doInBackground` bodies, and native threads,
    /// counted per distinct root method (plus the dummy main).
    #[must_use]
    pub fn thread_count(&self) -> usize {
        let mut roots: Vec<MethodId> = self
            .threads
            .iter()
            .filter(|t| matches!(t.kind, ThreadKind::TaskBody | ThreadKind::Native))
            .filter_map(|t| t.root)
            .collect();
        roots.sort_unstable();
        roots.dedup();
        1 + roots.len()
    }
}

struct Builder<'p> {
    program: &'p Program,
    threads: Vec<ModeledThread>,
    methods: Vec<Vec<MethodId>>,
    sites: Vec<Vec<Site>>,
    by_method: HashMap<MethodId, Vec<ThreadId>>,
    unresolved: Vec<InstrId>,
    queue: VecDeque<ThreadId>,
}

impl<'p> Builder<'p> {
    fn new(program: &'p Program) -> Self {
        let dummy = ModeledThread {
            kind: ThreadKind::DummyMain,
            root: None,
            class: None,
            parent: None,
            component: None,
            origin_site: None,
            via: SpawnVia::Root,
            looper: None,
        };
        Builder {
            program,
            threads: vec![dummy],
            methods: vec![Vec::new()],
            sites: vec![Vec::new()],
            by_method: HashMap::new(),
            unresolved: Vec::new(),
            queue: VecDeque::new(),
        }
    }

    fn run(mut self) -> ThreadModel {
        self.arm_components();
        self.arm_manifest_receivers();
        while let Some(t) = self.queue.pop_front() {
            self.process(t);
        }
        ThreadModel {
            threads: self.threads,
            methods: self.methods,
            sites: self.sites,
            by_method: self.by_method,
            unresolved_sites: self.unresolved,
        }
    }

    /// Lifecycle, UI, and system callbacks declared directly on component
    /// classes — and on fragments hosted by them — are armed by the
    /// framework: children of the dummy main (§4.1). Fragment modeling
    /// extends the paper's prototype, which skipped them (§8.1).
    fn arm_components(&mut self) {
        for (cid, class) in self.program.classes() {
            let armed = class.role().is_component()
                || (class.role() == nadroid_android::ClassRole::Fragment
                    && class.outer().is_some());
            if !armed {
                continue;
            }
            for &m in class.methods() {
                let Some(k) = self.program.method(m).callback() else {
                    continue;
                };
                if k.is_lifecycle() || k.is_ui() || k.is_system() || k.is_fragment_lifecycle() {
                    self.spawn(
                        ThreadKind::Callback(k),
                        m,
                        cid,
                        ThreadId::DUMMY_MAIN,
                        SpawnVia::Component,
                        None,
                    );
                }
            }
        }
    }

    /// Receivers declared in the manifest have `onReceive` armed from
    /// process start.
    fn arm_manifest_receivers(&mut self) {
        for &r in self.program.manifest().declared_receivers() {
            if let Some(m) = callback_method(self.program, r, CallbackKind::OnReceive) {
                self.spawn(
                    ThreadKind::Callback(CallbackKind::OnReceive),
                    m,
                    r,
                    ThreadId::DUMMY_MAIN,
                    SpawnVia::Manifest,
                    None,
                );
            }
        }
    }

    /// Scan a thread's methods for intrinsic sites and spawn the modeled
    /// threads they arm (§4.2), recursively via the worklist.
    fn process(&mut self, t: ThreadId) {
        let own = self.methods[t.index()].clone();
        for m in own {
            let scan = scan_method(self.program, m);
            self.unresolved.extend_from_slice(&scan.unresolved);
            for site in &scan.sites {
                self.handle_site(t, site);
            }
            self.sites[t.index()].extend(scan.sites);
        }
    }

    fn handle_site(&mut self, t: ThreadId, site: &Site) {
        let p = self.program;
        let at = |class: ClassId, kind: CallbackKind| callback_method(p, class, kind);
        match site.action {
            SiteAction::Post(c) => {
                if let Some(m) = at(c, CallbackKind::PostedRun) {
                    self.spawn(
                        ThreadKind::Callback(CallbackKind::PostedRun),
                        m,
                        c,
                        t,
                        SpawnVia::Post,
                        Some(site.instr),
                    );
                }
            }
            SiteAction::Send(c) => {
                if let Some(m) = at(c, CallbackKind::HandleMessage) {
                    self.spawn(
                        ThreadKind::Callback(CallbackKind::HandleMessage),
                        m,
                        c,
                        t,
                        SpawnVia::Send,
                        Some(site.instr),
                    );
                }
            }
            SiteAction::Bind(c) => {
                for k in [
                    CallbackKind::OnServiceConnected,
                    CallbackKind::OnServiceDisconnected,
                ] {
                    if let Some(m) = at(c, k) {
                        self.spawn(
                            ThreadKind::Callback(k),
                            m,
                            c,
                            t,
                            SpawnVia::Bind,
                            Some(site.instr),
                        );
                    }
                }
            }
            SiteAction::Register(c) => {
                if let Some(m) = at(c, CallbackKind::OnReceive) {
                    self.spawn(
                        ThreadKind::Callback(CallbackKind::OnReceive),
                        m,
                        c,
                        t,
                        SpawnVia::Register,
                        Some(site.instr),
                    );
                }
            }
            SiteAction::Execute(c) => {
                // Figure 3(e): the task body is a child of the executor;
                // the looper-side callbacks are children of the task body.
                let body = at(c, CallbackKind::DoInBackground).and_then(|m| {
                    self.spawn(
                        ThreadKind::TaskBody,
                        m,
                        c,
                        t,
                        SpawnVia::Execute,
                        Some(site.instr),
                    )
                });
                let anchor = body.unwrap_or(t);
                for k in [
                    CallbackKind::OnPreExecute,
                    CallbackKind::OnProgressUpdate,
                    CallbackKind::OnPostExecute,
                ] {
                    if let Some(m) = at(c, k) {
                        self.spawn(
                            ThreadKind::Callback(k),
                            m,
                            c,
                            anchor,
                            SpawnVia::TaskCallback,
                            Some(site.instr),
                        );
                    }
                }
            }
            SiteAction::Spawn(c) => {
                if let Some(m) = at(c, CallbackKind::ThreadRun) {
                    self.spawn(
                        ThreadKind::Native,
                        m,
                        c,
                        t,
                        SpawnVia::Spawn,
                        Some(site.instr),
                    );
                }
            }
            SiteAction::Listen(api, c) => {
                // §4.1: imperatively registered UI/system listeners are
                // still entry callbacks — children of the dummy main.
                let k = api.armed_callback();
                if let Some(m) = at(c, k) {
                    self.spawn(
                        ThreadKind::Callback(k),
                        m,
                        c,
                        ThreadId::DUMMY_MAIN,
                        SpawnVia::Listener,
                        Some(site.instr),
                    );
                }
            }
            SiteAction::Show(c) => {
                // show() arms both dialog callbacks: onShow fires on
                // display, onDismiss when the shown dialog is dismissed.
                for k in [CallbackKind::OnShow, CallbackKind::OnDismiss] {
                    if let Some(m) = at(c, k) {
                        self.spawn(
                            ThreadKind::Callback(k),
                            m,
                            c,
                            t,
                            SpawnVia::Show,
                            Some(site.instr),
                        );
                    }
                }
            }
            SiteAction::Schedule(c) => {
                if let Some(m) = at(c, CallbackKind::OnAlarm) {
                    self.spawn(
                        ThreadKind::Callback(CallbackKind::OnAlarm),
                        m,
                        c,
                        t,
                        SpawnVia::Schedule,
                        Some(site.instr),
                    );
                }
            }
            // Cancellation and publish sites arm no threads; the filter
            // layer reads them from `sites_of`. Launch sites arm nothing
            // either: the target activity's lifecycle callbacks are
            // already component-armed, and the predicate HB layer reads
            // launch sites directly to derive task-stack edges.
            SiteAction::Unbind(_)
            | SiteAction::Unregister(_)
            | SiteAction::RemovePosts(_)
            | SiteAction::Finish
            | SiteAction::Publish
            | SiteAction::Dismiss(_)
            | SiteAction::CancelAlarm(_)
            | SiteAction::Launch(_) => {}
        }
    }

    fn spawn(
        &mut self,
        kind: ThreadKind,
        root: MethodId,
        class: ClassId,
        parent: ThreadId,
        via: SpawnVia,
        origin_site: Option<InstrId>,
    ) -> Option<ThreadId> {
        // Cycle cut: a thread whose root already appears in its ancestor
        // chain would recurse forever (e.g. a runnable re-posting itself).
        let mut cur = Some(parent);
        while let Some(c) = cur {
            if self.threads[c.index()].root == Some(root) {
                return None;
            }
            cur = self.threads[c.index()].parent;
        }
        // Dedup: the same (root, parent, origin) triple is one thread.
        if let Some((i, _)) = self.threads.iter().enumerate().find(|(_, t)| {
            t.root == Some(root) && t.parent == Some(parent) && t.origin_site == origin_site
        }) {
            return Some(ThreadId(i as u32));
        }
        let component = self.component_of(class, parent);
        let id = ThreadId(self.threads.len() as u32);
        let looper = if kind.on_looper() {
            self.program.class(class).looper()
        } else {
            None
        };
        self.threads.push(ModeledThread {
            kind,
            root: Some(root),
            class: Some(class),
            parent: Some(parent),
            component,
            origin_site,
            via,
            looper,
        });
        let own = own_methods(self.program, root);
        for &m in &own {
            self.by_method.entry(m).or_default().push(id);
        }
        self.methods.push(own);
        self.sites.push(Vec::new());
        self.queue.push_back(id);
        Some(id)
    }

    /// The component governing a callback: the outermost enclosing class
    /// if it is a component, otherwise the parent thread's component.
    fn component_of(&self, class: ClassId, parent: ThreadId) -> Option<ClassId> {
        let outer = self.program.outermost_class(class);
        if self.program.class(outer).role().is_component() {
            Some(outer)
        } else {
            self.threads[parent.index()].component
        }
    }
}

/// The method implementing `kind` on `class`, if declared.
#[must_use]
pub fn callback_method(program: &Program, class: ClassId, kind: CallbackKind) -> Option<MethodId> {
    program
        .class(class)
        .methods()
        .iter()
        .copied()
        .find(|&m| program.method(m).callback() == Some(kind))
}

/// The methods a thread rooted at `root` executes: `root` plus all plain
/// (non-callback) methods transitively reachable through invokes.
#[must_use]
pub fn own_methods(program: &Program, root: MethodId) -> Vec<MethodId> {
    let mut seen = vec![root];
    let mut stack = vec![root];
    while let Some(m) = stack.pop() {
        program.method(m).body().for_each_instr(&mut |i| {
            if let Op::Invoke {
                callee: Callee::Method(callee),
                ..
            } = i.op
            {
                if program.method(callee).callback().is_none() && !seen.contains(&callee) {
                    seen.push(callee);
                    stack.push(callee);
                }
            }
        });
    }
    seen
}
