//! Differential tests: the compiled/indexed engine against the retained
//! naive evaluator ([`nadroid_datalog::reference::NaiveDatabase`]).
//!
//! On randomized schemas, facts, and rule sets the two engines must
//! derive exactly the same relation contents — and, for a batch run,
//! in exactly the same first-derivation order, because downstream
//! consumers (tuple → dense-ID maps in the points-to baseline) depend on
//! `tuples()` order being an implementation-stable part of the API.
//!
//! Incremental reruns are compared by contents only: the naive engine
//! re-derives from a full delta while the indexed engine resumes from
//! its high-water mark, so the *order* in which missing tuples are first
//! found may legitimately differ between the two.

use nadroid_datalog::reference::NaiveDatabase;
use nadroid_datalog::{Database, RelId, RuleSet, Term};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Fixed differential schema: enough arity variety to exercise probe
/// keys of one, two, and three columns.
const ARITIES: [usize; 4] = [2, 2, 1, 3];

/// A rule in generator form: head relation, head term picks, body atoms.
/// Terms are encoded as small integers and decoded against the schema so
/// a single strategy covers variables, repeated variables, and constants.
#[derive(Debug, Clone)]
struct RuleSpec {
    head_rel: usize,
    head_picks: Vec<u32>,
    body: Vec<(usize, Vec<u32>)>,
}

/// Decode a body-term pick: 0..8 → Var(pick % 4) (variables repeat often,
/// exercising intra- and inter-atom equality), 8..12 → Const(pick - 8).
fn body_term(pick: u32) -> Term {
    if pick < 8 {
        Term::var((pick % 4) as u8)
    } else {
        Term::val(pick - 8)
    }
}

fn build_rules(specs: &[RuleSpec], rels: &[RelId]) -> RuleSet {
    let mut rules = RuleSet::new();
    for spec in specs {
        // Collect the variables the body binds, in a deterministic order.
        let mut bound: Vec<u8> = Vec::new();
        for (rel, picks) in &spec.body {
            for &p in picks.iter().take(ARITIES[*rel]) {
                if let Term::Var(v) = body_term(p) {
                    if !bound.contains(&v) {
                        bound.push(v);
                    }
                }
            }
        }
        // Head terms draw from bound variables when any exist (satisfying
        // the range-restriction check), else fall back to constants.
        let head_terms: Vec<Term> = spec
            .head_picks
            .iter()
            .take(ARITIES[spec.head_rel])
            .map(|&p| {
                if !bound.is_empty() && p < 8 {
                    Term::var(bound[p as usize % bound.len()])
                } else {
                    Term::val(p % 6)
                }
            })
            .collect();
        let mut b = rules.add(rels[spec.head_rel], head_terms);
        for (rel, picks) in &spec.body {
            let terms: Vec<Term> = picks
                .iter()
                .take(ARITIES[*rel])
                .map(|&p| body_term(p))
                .collect();
            b = b.when(rels[*rel], terms);
        }
        let _ = b;
    }
    rules
}

fn rule_spec_strategy() -> impl Strategy<Value = RuleSpec> {
    (
        0usize..ARITIES.len(),
        prop::collection::vec(0u32..12, 3..=3),
        prop::collection::vec(
            (0usize..ARITIES.len(), prop::collection::vec(0u32..12, 3..=3)),
            1..4,
        ),
    )
        .prop_map(|(head_rel, head_picks, body)| RuleSpec {
            head_rel,
            head_picks,
            body,
        })
}

fn facts_strategy() -> impl Strategy<Value = Vec<(usize, Vec<u32>)>> {
    prop::collection::vec(
        (0usize..ARITIES.len(), prop::collection::vec(0u32..6, 3..=3)),
        0..30,
    )
}

fn setup(
    facts: &[(usize, Vec<u32>)],
    specs: &[RuleSpec],
) -> (Database, NaiveDatabase, Vec<RelId>, RuleSet) {
    let mut fast = Database::new();
    let mut naive = NaiveDatabase::new();
    let rels: Vec<RelId> = ARITIES
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            let id = fast.relation(format!("r{i}"), a);
            assert_eq!(id, naive.relation(format!("r{i}"), a));
            id
        })
        .collect();
    for (rel, vals) in facts {
        let tuple = &vals[..ARITIES[*rel]];
        assert_eq!(fast.insert(rels[*rel], tuple), naive.insert(rels[*rel], tuple));
    }
    let rules = build_rules(specs, &rels);
    (fast, naive, rels, rules)
}

fn ordered_tuples(db: &Database, rel: RelId) -> Vec<Vec<u32>> {
    db.tuples(rel).map(<[u32]>::to_vec).collect()
}

fn naive_ordered_tuples(db: &NaiveDatabase, rel: RelId) -> Vec<Vec<u32>> {
    db.tuples(rel).map(<[u32]>::to_vec).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Batch run: identical contents in identical first-derivation order.
    #[test]
    fn indexed_engine_matches_naive_engine_exactly(
        facts in facts_strategy(),
        specs in prop::collection::vec(rule_spec_strategy(), 1..5),
    ) {
        let (mut fast, mut naive, rels, rules) = setup(&facts, &specs);
        fast.run(&rules);
        naive.run(&rules);
        for &rel in &rels {
            prop_assert_eq!(
                ordered_tuples(&fast, rel),
                naive_ordered_tuples(&naive, rel),
                "relation {} diverged (contents or order)", rel
            );
        }
    }

    /// Incremental rerun after extra facts: identical contents (order may
    /// differ — the high-water mark changes which delta finds a tuple
    /// first, not which tuples exist).
    #[test]
    fn incremental_rerun_matches_naive_contents(
        facts in facts_strategy(),
        extra in facts_strategy(),
        specs in prop::collection::vec(rule_spec_strategy(), 1..4),
    ) {
        let (mut fast, mut naive, rels, rules) = setup(&facts, &specs);
        fast.run(&rules);
        naive.run(&rules);
        for (rel, vals) in &extra {
            let tuple = &vals[..ARITIES[*rel]];
            fast.insert(rels[*rel], tuple);
            naive.insert(rels[*rel], tuple);
        }
        fast.run(&rules);
        naive.run(&rules);
        for &rel in &rels {
            let f: BTreeSet<Vec<u32>> = fast.tuples(rel).map(<[u32]>::to_vec).collect();
            let n: BTreeSet<Vec<u32>> = naive.tuples(rel).map(<[u32]>::to_vec).collect();
            prop_assert_eq!(f, n, "relation {} contents diverged after rerun", rel);
        }
        // And the indexed engine's rerun-of-a-fixpoint is truly free.
        let before = fast.stats().derived;
        fast.run(&rules);
        prop_assert_eq!(before >= fast.stats().derived, true);
        prop_assert_eq!(fast.stats().derived, 0);
    }
}

/// Provenance differential + replay: both engines must record the *same*
/// first derivation for every tuple, and each recorded derivation must
/// actually re-derive its conclusion — premises unify with the rule body,
/// instantiate the head, exist in the oracle, and bottom out in EDB facts.
#[cfg(feature = "provenance")]
mod provenance_replay {
    use super::*;
    use nadroid_datalog::Derivation;
    use std::collections::{HashMap, HashSet};

    fn check_replay(
        node: &Derivation,
        rules: &RuleSet,
        naive: &NaiveDatabase,
        edb: &HashSet<(RelId, Vec<u32>)>,
    ) -> Result<(), String> {
        match node.rule {
            None => {
                prop_assert!(
                    edb.contains(&(node.rel, node.tuple.clone())),
                    "leaf {:?} of {} is not a base fact",
                    node.tuple,
                    node.rel
                );
            }
            Some(idx) => {
                let rule = &rules.rules()[idx];
                prop_assert_eq!(rule.head().rel(), node.rel, "rule head relation mismatch");
                prop_assert_eq!(
                    rule.body().len(),
                    node.premises.len(),
                    "one premise per body atom"
                );
                let mut env: HashMap<u8, u32> = HashMap::new();
                for (atom, prem) in rule.body().iter().zip(&node.premises) {
                    prop_assert_eq!(atom.rel(), prem.rel, "premise relation mismatch");
                    prop_assert!(
                        naive.contains(prem.rel, &prem.tuple),
                        "premise {:?} absent from the oracle",
                        prem.tuple
                    );
                    for (term, &val) in atom.terms().iter().zip(prem.tuple.iter()) {
                        match *term {
                            Term::Const(c) => prop_assert_eq!(c, val, "constant mismatch"),
                            Term::Var(v) => {
                                if let Some(&bound) = env.get(&v) {
                                    prop_assert_eq!(bound, val, "inconsistent binding");
                                } else {
                                    env.insert(v, val);
                                }
                            }
                        }
                    }
                }
                // The premises alone must re-derive the conclusion.
                let head: Vec<u32> = rule
                    .head()
                    .terms()
                    .iter()
                    .map(|t| match *t {
                        Term::Const(c) => c,
                        Term::Var(v) => env[&v],
                    })
                    .collect();
                prop_assert_eq!(&head, &node.tuple, "head does not re-derive from premises");
                for prem in &node.premises {
                    check_replay(prem, rules, naive, edb)?;
                }
            }
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn recorded_derivations_match_the_oracle_and_replay(
            facts in facts_strategy(),
            specs in prop::collection::vec(rule_spec_strategy(), 1..5),
        ) {
            let (mut fast, mut naive, rels, rules) = setup(&facts, &specs);
            fast.set_provenance(true);
            naive.set_provenance(true);
            fast.run(&rules);
            naive.run(&rules);
            let mut edb: HashSet<(RelId, Vec<u32>)> = HashSet::new();
            for (rel, vals) in &facts {
                edb.insert((rels[*rel], vals[..ARITIES[*rel]].to_vec()));
            }
            for &rel in &rels {
                for tuple in ordered_tuples(&fast, rel) {
                    let d = fast.explain(rel, &tuple).expect("every tuple is recorded");
                    let nd = naive.explain(rel, &tuple).expect("the oracle records too");
                    prop_assert_eq!(&d, &nd, "first-derivation trees diverged");
                    check_replay(&d, &rules, &naive, &edb)?;
                }
            }
        }
    }
}

/// Deterministic regression cases that have historically been the sharp
/// edges of index-backed evaluation.
mod fixed_cases {
    use super::*;

    fn both() -> (Database, NaiveDatabase) {
        (Database::new(), NaiveDatabase::new())
    }

    #[test]
    fn constant_only_probe_key() {
        let (mut fast, mut naive) = both();
        let t_f = fast.relation("t", 2);
        let o_f = fast.relation("o", 1);
        let t_n = naive.relation("t", 2);
        let o_n = naive.relation("o", 1);
        for tup in [[5u32, 1], [5, 2], [6, 3]] {
            fast.insert(t_f, &tup);
            naive.insert(t_n, &tup);
        }
        let v = Term::var;
        let mut rules = RuleSet::new();
        rules.add(o_f, vec![v(0)]).when(t_f, vec![Term::val(5), v(0)]);
        fast.run(&rules);
        let mut nrules = RuleSet::new();
        nrules.add(o_n, vec![v(0)]).when(t_n, vec![Term::val(5), v(0)]);
        naive.run(&nrules);
        assert_eq!(
            fast.tuples(o_f).collect::<Vec<_>>(),
            naive.tuples(o_n).collect::<Vec<_>>()
        );
    }

    #[test]
    fn repeated_variables_inside_and_across_atoms() {
        let (mut fast, mut naive) = both();
        let a_f = fast.relation("a", 3);
        let b_f = fast.relation("b", 2);
        let o_f = fast.relation("o", 2);
        let a_n = naive.relation("a", 3);
        let b_n = naive.relation("b", 2);
        let o_n = naive.relation("o", 2);
        for tup in [[1u32, 1, 2], [1, 2, 2], [3, 3, 4]] {
            fast.insert(a_f, &tup);
            naive.insert(a_n, &tup);
        }
        for tup in [[2u32, 1], [4, 3], [4, 9]] {
            fast.insert(b_f, &tup);
            naive.insert(b_n, &tup);
        }
        let v = Term::var;
        // o(x, y) :- a(x, x, y), b(y, x).
        let mut rules = RuleSet::new();
        rules
            .add(o_f, vec![v(0), v(1)])
            .when(a_f, vec![v(0), v(0), v(1)])
            .when(b_f, vec![v(1), v(0)]);
        fast.run(&rules);
        let mut nrules = RuleSet::new();
        nrules
            .add(o_n, vec![v(0), v(1)])
            .when(a_n, vec![v(0), v(0), v(1)])
            .when(b_n, vec![v(1), v(0)]);
        naive.run(&nrules);
        assert_eq!(
            fast.tuples(o_f).collect::<Vec<_>>(),
            naive.tuples(o_n).collect::<Vec<_>>()
        );
        assert!(fast.contains(o_f, &[1, 2]));
    }

    #[test]
    fn empty_delta_relations_are_skipped_without_derivation() {
        let (mut fast, _) = both();
        let a = fast.relation("a", 1);
        let b = fast.relation("b", 1);
        let o = fast.relation("o", 1);
        fast.insert(a, &[1]);
        // b stays empty: the two-atom rule can never fire, and the run
        // must still terminate after one sterile iteration.
        let v = Term::var;
        let mut rules = RuleSet::new();
        rules
            .add(o, vec![v(0)])
            .when(a, vec![v(0)])
            .when(b, vec![v(0)]);
        fast.run(&rules);
        assert!(fast.is_empty(o));
        assert_eq!(fast.stats().iterations, 1);
        assert_eq!(fast.stats().considered, 0);
    }
}
