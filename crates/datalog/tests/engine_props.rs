//! Property tests for the Datalog engine: monotonicity, idempotence, and
//! agreement with a reference transitive-closure implementation.

use nadroid_datalog::{Database, RuleSet, Term};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn closure_rules(db: &mut Database) -> (nadroid_datalog::RelId, nadroid_datalog::RelId, RuleSet) {
    let edge = db.relation("edge", 2);
    let path = db.relation("path", 2);
    let v = Term::var;
    let mut rules = RuleSet::new();
    rules
        .add(path, vec![v(0), v(1)])
        .when(edge, vec![v(0), v(1)]);
    rules
        .add(path, vec![v(0), v(2)])
        .when(path, vec![v(0), v(1)])
        .when(edge, vec![v(1), v(2)]);
    (edge, path, rules)
}

/// Reference transitive closure (Warshall over a dense matrix).
fn reference_closure(n: u32, edges: &[(u32, u32)]) -> BTreeSet<(u32, u32)> {
    let n = n as usize;
    let mut reach = vec![vec![false; n]; n];
    for &(a, b) in edges {
        reach[a as usize][b as usize] = true;
    }
    for k in 0..n {
        for i in 0..n {
            if reach[i][k] {
                let row_k = reach[k].clone();
                for (j, r) in row_k.iter().enumerate() {
                    if *r {
                        reach[i][j] = true;
                    }
                }
            }
        }
    }
    let mut out = BTreeSet::new();
    for (i, row) in reach.iter().enumerate() {
        for (j, &r) in row.iter().enumerate() {
            if r {
                out.insert((i as u32, j as u32));
            }
        }
    }
    out
}

fn edges_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0u32..12, 0u32..12), 0..40)
}

proptest! {
    /// The engine's fixpoint equals the reference closure.
    #[test]
    fn closure_matches_reference(edges in edges_strategy()) {
        let mut db = Database::new();
        let (edge, path, rules) = closure_rules(&mut db);
        for &(a, b) in &edges {
            db.insert(edge, &[a, b]);
        }
        db.run(&rules);
        let engine: BTreeSet<(u32, u32)> =
            db.tuples(path).map(|t| (t[0], t[1])).collect();
        prop_assert_eq!(engine, reference_closure(12, &edges));
    }

    /// Monotonicity: adding facts never removes derived tuples.
    #[test]
    fn adding_facts_is_monotone(
        edges in edges_strategy(),
        extra in (0u32..12, 0u32..12),
    ) {
        let mut db = Database::new();
        let (edge, path, rules) = closure_rules(&mut db);
        for &(a, b) in &edges {
            db.insert(edge, &[a, b]);
        }
        db.run(&rules);
        let before: BTreeSet<(u32, u32)> =
            db.tuples(path).map(|t| (t[0], t[1])).collect();
        db.insert(edge, &[extra.0, extra.1]);
        db.run(&rules);
        let after: BTreeSet<(u32, u32)> =
            db.tuples(path).map(|t| (t[0], t[1])).collect();
        prop_assert!(before.is_subset(&after));
    }

    /// Idempotence: re-running the same rules changes nothing.
    #[test]
    fn rerun_is_idempotent(edges in edges_strategy()) {
        let mut db = Database::new();
        let (edge, path, rules) = closure_rules(&mut db);
        for &(a, b) in &edges {
            db.insert(edge, &[a, b]);
        }
        db.run(&rules);
        let n = db.len(path);
        db.run(&rules);
        prop_assert_eq!(db.len(path), n);
    }

    /// Incremental insertion then rerun equals batch insertion.
    #[test]
    fn incremental_equals_batch(edges in edges_strategy(), split in 0usize..40) {
        let split = split.min(edges.len());
        // Incremental.
        let mut db1 = Database::new();
        let (e1, p1, rules) = closure_rules(&mut db1);
        for &(a, b) in &edges[..split] {
            db1.insert(e1, &[a, b]);
        }
        db1.run(&rules);
        for &(a, b) in &edges[split..] {
            db1.insert(e1, &[a, b]);
        }
        db1.run(&rules);
        // Batch.
        let mut db2 = Database::new();
        let (e2, p2, rules2) = closure_rules(&mut db2);
        for &(a, b) in &edges {
            db2.insert(e2, &[a, b]);
        }
        db2.run(&rules2);
        let inc: BTreeSet<(u32, u32)> = db1.tuples(p1).map(|t| (t[0], t[1])).collect();
        let bat: BTreeSet<(u32, u32)> = db2.tuples(p2).map(|t| (t[0], t[1])).collect();
        prop_assert_eq!(inc, bat);
    }
}
