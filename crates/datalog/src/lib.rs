//! A semi-naive, bottom-up Datalog engine with compiled join plans and
//! column indexes.
//!
//! Chord — the static race detector nAdroid builds on — expresses its
//! analyses (call graph, k-object-sensitive points-to, thread escape) as
//! Datalog programs solved by the bddbddb engine. This crate is the
//! equivalent substrate for nAdroid-rs: relations over dense `u32` terms,
//! positive Horn rules, and semi-naive fixpoint evaluation.
//!
//! # Architecture
//!
//! Tuples are interned into a flat per-relation arena (`Vec<u32>`, one
//! row per tuple) and never re-allocated afterwards. Each [`Rule`] is
//! compiled once per [`Database::run`] into a fixed sequence of column
//! actions over dense variable slots, so the inner join loop works on a
//! stack-allocated binding array instead of a per-tuple hash map. Body
//! atoms with bound columns probe per-relation hash indexes keyed on the
//! projection of those columns; indexes are built lazily per
//! `(relation, bound-column mask)`, extended incrementally as tuples are
//! derived, and shared between full and delta scans (a delta is just a
//! contiguous row range of the arena). Re-running the same rules resumes
//! from a per-relation high-water mark, so a second [`Database::run`]
//! with unchanged facts does near-zero work.
//!
//! The naive evaluator the engine replaced is retained as
//! [`reference::NaiveEngine`] and the property suite asserts both derive
//! identical relation contents *in identical first-derivation order*.
//!
//! # Provenance
//!
//! With [`Database::set_provenance`] enabled, every admitted tuple also
//! records *how* it was first derived — the rule index and the arena rows
//! of its premises — in a compact side arena (one `u32` tag per row plus
//! one record per derived tuple). [`Database::explain`] replays those
//! records into a [`Derivation`] tree that bottoms out in base (EDB)
//! facts. Recording is off by default and the machinery can be compiled
//! out entirely with `--no-default-features` (the `provenance` feature);
//! in either off state the join loop pays nothing. The naive reference
//! engine mirrors the same API so the differential suite covers
//! derivations, not just contents.
//!
//! # Example: transitive closure
//!
//! ```
//! use nadroid_datalog::{Database, RuleSet, Term};
//!
//! let mut db = Database::new();
//! let edge = db.relation("edge", 2);
//! let path = db.relation("path", 2);
//! db.insert(edge, &[1, 2]);
//! db.insert(edge, &[2, 3]);
//! db.insert(edge, &[3, 4]);
//!
//! let mut rules = RuleSet::new();
//! // path(x, y) :- edge(x, y).
//! rules.add(path, vec![Term::var(0), Term::var(1)])
//!     .when(edge, vec![Term::var(0), Term::var(1)]);
//! // path(x, z) :- path(x, y), edge(y, z).
//! rules.add(path, vec![Term::var(0), Term::var(2)])
//!     .when(path, vec![Term::var(0), Term::var(1)])
//!     .when(edge, vec![Term::var(1), Term::var(2)]);
//!
//! db.run(&rules);
//! assert!(db.contains(path, &[1, 4]));
//! assert_eq!(db.len(path), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod reference;

use nadroid_obs as obs;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::{Duration, Instant};

/// Identifier of a relation within a [`Database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelId(u32);

impl RelId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A term in a rule atom: either a variable (identified by a small index,
/// scoped to the rule) or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Term {
    /// A rule-scoped variable.
    Var(u8),
    /// A constant value.
    Const(u32),
}

impl Term {
    /// Shorthand for [`Term::Var`].
    #[must_use]
    pub fn var(i: u8) -> Term {
        Term::Var(i)
    }

    /// Shorthand for [`Term::Const`].
    #[must_use]
    pub fn val(v: u32) -> Term {
        Term::Const(v)
    }
}

/// One atom of a rule body or head: a relation applied to terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    pub(crate) rel: RelId,
    pub(crate) terms: Vec<Term>,
}

impl Atom {
    /// Construct an atom.
    #[must_use]
    pub fn new(rel: RelId, terms: Vec<Term>) -> Self {
        Atom { rel, terms }
    }

    /// The relation this atom ranges over.
    #[must_use]
    pub fn rel(&self) -> RelId {
        self.rel
    }

    /// The atom's terms, one per column.
    #[must_use]
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }
}

/// A positive Horn rule: `head :- body₀, body₁, ...`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    pub(crate) head: Atom,
    pub(crate) body: Vec<Atom>,
}

impl Rule {
    /// The head atom.
    #[must_use]
    pub fn head(&self) -> &Atom {
        &self.head
    }

    /// The body atoms, in evaluation order.
    #[must_use]
    pub fn body(&self) -> &[Atom] {
        &self.body
    }
}

/// A collection of rules evaluated together to fixpoint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleSet {
    pub(crate) rules: Vec<Rule>,
}

/// Builder handle returned by [`RuleSet::add`]; chain [`RuleBuilder::when`]
/// to append body atoms.
#[derive(Debug)]
pub struct RuleBuilder<'a> {
    rules: &'a mut Vec<Rule>,
    index: usize,
}

impl RuleBuilder<'_> {
    /// Append a body atom to the rule.
    #[allow(clippy::return_self_not_must_use)]
    pub fn when(self, rel: RelId, terms: Vec<Term>) -> Self {
        self.rules[self.index].body.push(Atom::new(rel, terms));
        self
    }
}

impl RuleSet {
    /// An empty rule set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a rule with the given head; returns a builder to append body
    /// atoms. A rule with an empty body is a fact template (head must then
    /// be all-constant).
    pub fn add(&mut self, head_rel: RelId, head_terms: Vec<Term>) -> RuleBuilder<'_> {
        let index = self.rules.len();
        self.rules.push(Rule {
            head: Atom::new(head_rel, head_terms),
            body: Vec::new(),
        });
        RuleBuilder {
            rules: &mut self.rules,
            index,
        }
    }

    /// Number of rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The rules, in evaluation order (the indices [`Derivation::rule`]
    /// refers to).
    #[must_use]
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }
}

/// Counters and timing of the most recent [`Database::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Fixpoint iterations executed (at least 1 for a non-trivial run).
    pub iterations: u64,
    /// Tuples newly derived and admitted into relations.
    pub derived: u64,
    /// Candidate head tuples produced before deduplication.
    pub considered: u64,
    /// Hash-index probes performed by compiled joins.
    pub index_probes: u64,
    /// `(relation, column-mask)` indexes materialized or extended.
    pub indexes_built: u64,
    /// Derivation records appended by this run (0 unless provenance
    /// recording is enabled; equals `derived` when it is).
    pub prov_records: u64,
    /// Total provenance-arena size in bytes after the run (records,
    /// premise list, and per-row tags; 0 when recording is disabled).
    pub prov_bytes: u64,
    /// Wall-clock time of the run.
    pub duration: Duration,
}

impl EngineStats {
    /// Derived tuples per second of run time (0 when no time elapsed).
    #[must_use]
    pub fn tuples_per_sec(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs > 0.0 {
            self.derived as f64 / secs
        } else {
            0.0
        }
    }
}

/// One node of the derivation tree returned by [`Database::explain`]:
/// a fact plus how it was *first* derived. Later re-derivations of the
/// same tuple are not recorded — deduplication keeps the first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Derivation {
    /// The relation of the derived fact.
    pub rel: RelId,
    /// The fact itself.
    pub tuple: Vec<u32>,
    /// Index into the executed [`RuleSet`] of the rule that first derived
    /// the fact, or `None` for a base (EDB) fact.
    pub rule: Option<usize>,
    /// One sub-derivation per body atom of the deriving rule, in body
    /// order. Empty for base facts and fact-template (empty-body) rules.
    pub premises: Vec<Derivation>,
}

impl Derivation {
    /// Whether this node is a base (EDB) fact.
    #[must_use]
    pub fn is_base(&self) -> bool {
        self.rule.is_none()
    }

    /// Total number of nodes in the tree (≥ 1).
    #[must_use]
    pub fn node_count(&self) -> usize {
        1 + self.premises.iter().map(Derivation::node_count).sum::<usize>()
    }

    /// Height of the tree: 1 for a leaf.
    #[must_use]
    pub fn depth(&self) -> usize {
        1 + self.premises.iter().map(Derivation::depth).max().unwrap_or(0)
    }
}

/// Per-row provenance tag meaning "base fact / not derived by a rule".
#[cfg(feature = "provenance")]
const NO_PROV: u32 = u32::MAX;

/// One derivation record: the rule plus a span of the premise list.
#[cfg(feature = "provenance")]
#[derive(Debug, Clone, Copy)]
struct ProvRecord {
    rule: u32,
    start: u32,
    len: u32,
}

/// The compact side arena of derivation records. Premises are stored as
/// `(relation, arena row)` pairs — rows are stable because tuple arenas
/// never shrink or reorder.
#[cfg(feature = "provenance")]
#[derive(Debug, Default)]
struct ProvArena {
    records: Vec<ProvRecord>,
    premises: Vec<(RelId, u32)>,
}

/// Per-(rule, delta-position) premise capture threaded through the join
/// recursion. When inactive (recording off, or the whole `provenance`
/// feature disabled) every method is a no-op the optimizer removes.
#[derive(Debug, Default)]
struct ProvBuf {
    #[cfg(feature = "provenance")]
    active: bool,
    /// Arena row of the candidate match per body position.
    #[cfg(feature = "provenance")]
    path: Vec<u32>,
    /// One `path` snapshot per emitted head tuple, flattened.
    #[cfg(feature = "provenance")]
    rows: Vec<u32>,
}

impl ProvBuf {
    fn reset(&mut self, _n_atoms: usize, _active: bool) {
        #[cfg(feature = "provenance")]
        {
            self.active = _active;
            self.path.clear();
            self.path.resize(_n_atoms, 0);
            self.rows.clear();
        }
    }

    /// Note the matched arena row for body position `pos`.
    #[inline]
    fn enter(&mut self, _pos: usize, _row_id: u32) {
        #[cfg(feature = "provenance")]
        if self.active {
            self.path[_pos] = _row_id;
        }
    }

    /// Snapshot the current match path; called once per emitted head
    /// tuple, keeping `rows` parallel to the scratch output.
    #[inline]
    fn emit(&mut self) {
        #[cfg(feature = "provenance")]
        if self.active {
            self.rows.extend_from_slice(&self.path);
        }
    }

    /// The premise rows of the `i`-th emitted head tuple.
    #[cfg(feature = "provenance")]
    fn premise_rows(&self, i: usize) -> &[u32] {
        let n = self.path.len();
        &self.rows[i * n..(i + 1) * n]
    }
}

/// One lazily built hash index over a relation: the projection of the
/// columns in a bound-column mask, mapped to the (ascending) rows whose
/// projection hashes there. Hash collisions are harmless — probes verify
/// candidate rows against the arena.
#[derive(Debug, Default)]
struct ColumnIndex {
    /// Rows `[0, rows_indexed)` of the arena are reflected in `map`.
    rows_indexed: u32,
    map: HashMap<u64, Vec<u32>>,
}

#[derive(Debug, Default)]
struct RelationData {
    name: String,
    arity: usize,
    /// Flat tuple arena: row `i` is `data[i*arity .. (i+1)*arity]`, in
    /// first-derivation order (this *is* the `tuples()` order).
    data: Vec<u32>,
    /// Full-tuple hash -> rows with that hash (deduplication).
    dedup: HashMap<u64, Vec<u32>>,
    /// Bound-column mask -> lazily maintained index.
    indexes: HashMap<u32, ColumnIndex>,
    /// Rows already at fixpoint after the last completed `run`.
    hwm: u32,
    /// While recording: one derivation-record index per row, parallel to
    /// the arena (`NO_PROV` = base fact). Empty when recording is off.
    #[cfg(feature = "provenance")]
    prov: Vec<u32>,
}

impl RelationData {
    #[allow(clippy::cast_possible_truncation)]
    fn rows(&self) -> u32 {
        debug_assert!(self.arity > 0);
        (self.data.len() / self.arity) as u32
    }

    fn row(&self, r: u32) -> &[u32] {
        let start = r as usize * self.arity;
        &self.data[start..start + self.arity]
    }

    /// Insert a tuple if absent; returns true when new.
    fn insert_row(&mut self, tuple: &[u32]) -> bool {
        let h = hash_vals(tuple.iter().copied());
        let rows = self.rows();
        let candidates = self.dedup.entry(h).or_default();
        let arity = self.arity;
        if candidates
            .iter()
            .any(|&r| &self.data[r as usize * arity..r as usize * arity + arity] == tuple)
        {
            return false;
        }
        candidates.push(rows);
        self.data.extend_from_slice(tuple);
        true
    }

    fn contains_row(&self, tuple: &[u32]) -> bool {
        self.find_row(tuple).is_some()
    }

    /// The arena row holding `tuple`, if present.
    fn find_row(&self, tuple: &[u32]) -> Option<u32> {
        let h = hash_vals(tuple.iter().copied());
        self.dedup
            .get(&h)?
            .iter()
            .copied()
            .find(|&r| self.row(r) == tuple)
    }

    /// Extend the index for `mask` to cover rows `[0, upto)`.
    fn ensure_index(&mut self, mask: u32, upto: u32) -> bool {
        let arity = self.arity;
        let idx = self.indexes.entry(mask).or_default();
        if idx.rows_indexed >= upto {
            return false;
        }
        for r in idx.rows_indexed..upto {
            let start = r as usize * arity;
            let row = &self.data[start..start + arity];
            let h = hash_vals(
                (0..arity)
                    .filter(|c| mask & (1 << c) != 0)
                    .map(|c| row[c]),
            );
            idx.map.entry(h).or_default().push(r);
        }
        idx.rows_indexed = upto;
        true
    }
}

/// FNV-1a over a value stream; the basis of both deduplication and the
/// column indexes.
fn hash_vals(vals: impl Iterator<Item = u32>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in vals {
        h ^= u64::from(v);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// How one column of a compiled atom constrains or extends the bindings.
#[derive(Debug, Clone, Copy)]
enum ColAction {
    /// The column must equal this constant.
    Const(u32),
    /// The column must equal an already-bound slot (bound by an earlier
    /// atom, or by an earlier column of this atom — repeated variables).
    Eq(u8),
    /// The column binds a fresh slot.
    Bind(u8),
}

/// One part of a probe key or head template.
#[derive(Debug, Clone, Copy)]
enum KeyPart {
    Const(u32),
    Slot(u8),
}

#[derive(Debug)]
struct CompiledAtom {
    rel: RelId,
    /// Bitmask of columns bound before this atom is scanned (constants
    /// plus variables bound by earlier atoms). Zero means full scan.
    mask: u32,
    /// Probe-key parts for the mask's columns, in ascending column order.
    key: Vec<KeyPart>,
    /// Per-column verification/binding program.
    actions: Vec<ColAction>,
}

#[derive(Debug)]
struct CompiledRule {
    head_rel: RelId,
    head: Vec<KeyPart>,
    atoms: Vec<CompiledAtom>,
    n_slots: usize,
}

/// Binding slots kept on the stack for rules with up to this many
/// distinct variables (the common case by far); larger rules fall back
/// to one heap allocation per (rule, delta-position) evaluation.
const STACK_SLOTS: usize = 16;

/// A deductive database: named relations plus fixpoint evaluation.
#[derive(Debug, Default)]
pub struct Database {
    relations: Vec<RelationData>,
    /// The rules of the last completed `run`, for high-water-mark reuse:
    /// re-running an identical rule set resumes from each relation's
    /// fixpoint instead of re-deriving from scratch.
    last_rules: Option<RuleSet>,
    stats: EngineStats,
    #[cfg(feature = "provenance")]
    prov: ProvArena,
    #[cfg(feature = "provenance")]
    record_provenance: bool,
}

impl Database {
    /// An empty database.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a relation with a fixed arity.
    ///
    /// # Panics
    ///
    /// Panics if `arity` is zero or a relation with this name exists.
    #[allow(clippy::cast_possible_truncation)]
    pub fn relation(&mut self, name: impl Into<String>, arity: usize) -> RelId {
        let name = name.into();
        assert!(arity > 0, "relations must have positive arity");
        assert!(
            arity <= 32,
            "relations are limited to 32 columns (bound-column masks are u32)"
        );
        assert!(
            !self.relations.iter().any(|r| r.name == name),
            "duplicate relation name {name:?}"
        );
        let id = RelId(self.relations.len() as u32);
        self.relations.push(RelationData {
            name,
            arity,
            ..Default::default()
        });
        id
    }

    /// Insert a base (EDB) tuple. Returns true if it was new.
    ///
    /// # Panics
    ///
    /// Panics if the tuple arity does not match the relation.
    pub fn insert(&mut self, rel: RelId, tuple: &[u32]) -> bool {
        let r = &mut self.relations[rel.index()];
        assert_eq!(
            tuple.len(),
            r.arity,
            "arity mismatch inserting into {}",
            r.name
        );
        let added = r.insert_row(tuple);
        #[cfg(feature = "provenance")]
        if added && self.record_provenance {
            self.relations[rel.index()].prov.push(NO_PROV);
        }
        added
    }

    /// Whether a tuple is present.
    #[must_use]
    pub fn contains(&self, rel: RelId, tuple: &[u32]) -> bool {
        self.relations[rel.index()].contains_row(tuple)
    }

    /// Number of tuples in a relation.
    #[must_use]
    pub fn len(&self, rel: RelId) -> usize {
        self.relations[rel.index()].rows() as usize
    }

    /// Whether a relation is empty.
    #[must_use]
    pub fn is_empty(&self, rel: RelId) -> bool {
        self.len(rel) == 0
    }

    /// Iterate the tuples of a relation in first-derivation order.
    pub fn tuples(&self, rel: RelId) -> impl Iterator<Item = &[u32]> + '_ {
        let r = &self.relations[rel.index()];
        r.data.chunks_exact(r.arity)
    }

    /// The declared name of a relation.
    #[must_use]
    pub fn name(&self, rel: RelId) -> &str {
        &self.relations[rel.index()].name
    }

    /// Counters and timing of the most recent [`Database::run`].
    #[must_use]
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Enable or disable derivation recording.
    ///
    /// Enabling tags every already-present row as a base fact, so a
    /// database can start recording mid-life; rows derived while
    /// recording was off are indistinguishable from EDB facts. Disabling
    /// discards all recorded provenance. With the crate built without
    /// the `provenance` feature this is a no-op.
    pub fn set_provenance(&mut self, _on: bool) {
        #[cfg(feature = "provenance")]
        {
            self.record_provenance = _on;
            if _on {
                for r in &mut self.relations {
                    let rows = r.rows() as usize;
                    r.prov.resize(rows, NO_PROV);
                }
            } else {
                self.prov = ProvArena::default();
                for r in &mut self.relations {
                    r.prov = Vec::new();
                }
            }
        }
    }

    /// Whether derivation recording is currently enabled.
    #[must_use]
    pub fn provenance_enabled(&self) -> bool {
        #[cfg(feature = "provenance")]
        {
            self.record_provenance
        }
        #[cfg(not(feature = "provenance"))]
        {
            false
        }
    }

    /// The derivation tree of a recorded tuple: how it was first derived,
    /// down to base (EDB) facts. `None` if the tuple is absent or
    /// recording is (or was) disabled.
    ///
    /// Trees are finite by construction: a derived row's premises were
    /// admitted in strictly earlier fixpoint iterations (joins read the
    /// iteration-start snapshot), so depth is bounded by the iteration
    /// count of the recording runs.
    #[must_use]
    pub fn explain(&self, _rel: RelId, _tuple: &[u32]) -> Option<Derivation> {
        #[cfg(feature = "provenance")]
        {
            if !self.record_provenance {
                return None;
            }
            let row = self.relations[_rel.index()].find_row(_tuple)?;
            Some(self.derivation_of(_rel, row))
        }
        #[cfg(not(feature = "provenance"))]
        {
            None
        }
    }

    #[cfg(feature = "provenance")]
    fn derivation_of(&self, rel: RelId, row: u32) -> Derivation {
        let r = &self.relations[rel.index()];
        let tuple = r.row(row).to_vec();
        let tag = r.prov.get(row as usize).copied().unwrap_or(NO_PROV);
        if tag == NO_PROV {
            return Derivation {
                rel,
                tuple,
                rule: None,
                premises: Vec::new(),
            };
        }
        let rec = self.prov.records[tag as usize];
        let span = rec.start as usize..(rec.start + rec.len) as usize;
        let premises = self.prov.premises[span]
            .iter()
            .map(|&(prel, prow)| self.derivation_of(prel, prow))
            .collect();
        Derivation {
            rel,
            tuple,
            rule: Some(rec.rule as usize),
            premises,
        }
    }

    /// Total provenance-arena size in bytes (0 when recording is off or
    /// the `provenance` feature is disabled).
    #[must_use]
    pub fn provenance_bytes(&self) -> u64 {
        #[cfg(feature = "provenance")]
        {
            let tags: usize = self.relations.iter().map(|r| r.prov.len()).sum();
            (self.prov.records.len() * std::mem::size_of::<ProvRecord>()
                + self.prov.premises.len() * std::mem::size_of::<(RelId, u32)>()
                + tags * std::mem::size_of::<u32>()) as u64
        }
        #[cfg(not(feature = "provenance"))]
        {
            0
        }
    }

    /// Run the rules to fixpoint with semi-naive evaluation.
    ///
    /// Newly derived tuples are added to the head relations; evaluation
    /// stops when an iteration derives nothing new. Running twice with the
    /// same rules is a no-op (fixpoints are idempotent) and, thanks to the
    /// per-relation high-water mark, near-zero cost; facts inserted
    /// between runs are treated as the semi-naive delta of the rerun.
    ///
    /// # Panics
    ///
    /// Panics if a rule's head contains a variable that does not occur in
    /// its body, or atom arities mismatch their relations.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn run(&mut self, rules: &RuleSet) {
        let _run_span = obs::span("datalog.run");
        let t0 = Instant::now();
        for rule in &rules.rules {
            self.check_rule(rule);
        }
        let compiled: Vec<CompiledRule> = rules.rules.iter().map(compile_rule).collect();
        let mut stats = EngineStats::default();
        let record = self.provenance_enabled();
        #[cfg(feature = "provenance")]
        let records_before = self.prov.records.len();

        // With unchanged rules the previous fixpoint still holds, so only
        // rows inserted since then are delta; a rule change invalidates
        // the mark and everything becomes delta again.
        let same_rules = self.last_rules.as_ref() == Some(rules);
        let mut delta_lo: Vec<u32> = self
            .relations
            .iter()
            .map(|r| if same_rules { r.hwm } else { 0 })
            .collect();

        // The (relation, mask) indexes the compiled plans will probe.
        let mut needed: Vec<(RelId, u32)> = compiled
            .iter()
            .flat_map(|r| r.atoms.iter())
            .filter(|a| a.mask != 0)
            .map(|a| (a.rel, a.mask))
            .collect();
        needed.sort_unstable();
        needed.dedup();

        let mut scratch: Vec<u32> = Vec::new();
        let mut prov = ProvBuf::default();
        loop {
            stats.iterations += 1;
            // Cooperative cancellation hook: one cheap check per
            // semi-naive drain batch (see `nadroid_obs::cancel`).
            obs::cancel::checkpoint();
            let _iter_span = obs::span_lazy(|| format!("datalog.iteration:{}", stats.iterations));
            let snapshot: Vec<u32> = self.relations.iter().map(RelationData::rows).collect();
            let delta_total: u64 = snapshot
                .iter()
                .zip(&delta_lo)
                .map(|(&s, &l)| u64::from(s - l))
                .sum();
            if obs::recording() {
                obs::counter("datalog.delta_rows", delta_total);
                obs::gauge_max("datalog.max_delta_rows", delta_total);
            }
            for &(rel, mask) in &needed {
                if self.relations[rel.index()].ensure_index(mask, snapshot[rel.index()]) {
                    stats.indexes_built += 1;
                }
            }

            // Within one iteration every (rule, delta-occurrence)
            // evaluation reads only rows below the snapshot — tuples
            // inserted by earlier rules of the same iteration are
            // invisible to joins — so the evaluations are independent
            // and can run concurrently. Insertions are then replayed
            // sequentially in task order, which reproduces the
            // sequential engine's arena order, dedup outcomes,
            // first-derivation provenance, and stats exactly. Only
            // iterations with enough delta rows to amortise the fan-out
            // take this path; small programs keep the sequential loop
            // (and its per-rule spans).
            const PAR_MIN_DELTA_ROWS: u64 = 512;
            let mut grew = false;
            if nadroid_par::current() > 1 && delta_total >= PAR_MIN_DELTA_ROWS {
                grew = self.run_iteration_parallel(
                    &compiled, &delta_lo, &snapshot, record, &mut stats,
                );
                delta_lo.copy_from_slice(&snapshot);
                if !grew {
                    break;
                }
                continue;
            }
            for (_rule_idx, crule) in compiled.iter().enumerate() {
                let _rule_span = obs::span_lazy(|| {
                    format!("datalog.rule:{}", self.relations[crule.head_rel.index()].name)
                });
                if crule.atoms.is_empty() {
                    // Fact template: all-constant head (checked).
                    scratch.clear();
                    scratch.extend(crule.head.iter().map(|p| match p {
                        KeyPart::Const(c) => *c,
                        KeyPart::Slot(_) => unreachable!("checked: no unbound head vars"),
                    }));
                    stats.considered += 1;
                    if self.relations[crule.head_rel.index()].insert_row(&scratch) {
                        stats.derived += 1;
                        grew = true;
                        #[cfg(feature = "provenance")]
                        if record {
                            // Premise-free record: derived, but by a rule
                            // with no body.
                            let rec = self.prov.records.len() as u32;
                            let start = self.prov.premises.len() as u32;
                            self.prov.records.push(ProvRecord {
                                rule: _rule_idx as u32,
                                start,
                                len: 0,
                            });
                            self.relations[crule.head_rel.index()].prov.push(rec);
                        }
                    }
                    continue;
                }
                for delta_pos in 0..crule.atoms.len() {
                    let drel = crule.atoms[delta_pos].rel.index();
                    if delta_lo[drel] >= snapshot[drel] {
                        continue; // empty delta: this occurrence derives nothing new
                    }
                    scratch.clear();
                    prov.reset(crule.atoms.len(), record);
                    let mut stack_buf = [0u32; STACK_SLOTS];
                    let mut heap_buf;
                    let bindings: &mut [u32] = if crule.n_slots <= STACK_SLOTS {
                        &mut stack_buf[..]
                    } else {
                        heap_buf = vec![0u32; crule.n_slots];
                        &mut heap_buf[..]
                    };
                    self.join(
                        crule,
                        0,
                        delta_pos,
                        &delta_lo,
                        &snapshot,
                        bindings,
                        &mut scratch,
                        &mut stats,
                        &mut prov,
                    );
                    let head_idx = crule.head_rel.index();
                    for (_emit, tuple) in scratch.chunks_exact(crule.head.len()).enumerate() {
                        if self.relations[head_idx].insert_row(tuple) {
                            stats.derived += 1;
                            grew = true;
                            #[cfg(feature = "provenance")]
                            if record {
                                let start = self.prov.premises.len() as u32;
                                for (atom, &row) in
                                    crule.atoms.iter().zip(prov.premise_rows(_emit))
                                {
                                    self.prov.premises.push((atom.rel, row));
                                }
                                let rec = self.prov.records.len() as u32;
                                self.prov.records.push(ProvRecord {
                                    rule: _rule_idx as u32,
                                    start,
                                    len: crule.atoms.len() as u32,
                                });
                                self.relations[head_idx].prov.push(rec);
                            }
                        }
                    }
                }
            }

            // Next iteration's delta: exactly the rows derived just now.
            delta_lo.copy_from_slice(&snapshot);
            if !grew {
                break;
            }
        }

        for r in &mut self.relations {
            r.hwm = r.rows();
        }
        self.last_rules = Some(rules.clone());
        stats.duration = t0.elapsed();
        #[cfg(feature = "provenance")]
        {
            stats.prov_records = (self.prov.records.len() - records_before) as u64;
            stats.prov_bytes = self.provenance_bytes();
        }
        if obs::recording() {
            obs::counter("datalog.iterations", stats.iterations);
            obs::counter("datalog.derived", stats.derived);
            obs::counter("datalog.considered", stats.considered);
            obs::counter("datalog.index_probes", stats.index_probes);
            obs::counter("datalog.indexes_built", stats.indexes_built);
            // A rate, not a sum: high-water across the runs a recorder sees.
            obs::gauge_max("datalog.tuples_per_sec", stats.tuples_per_sec() as u64);
            obs::counter("datalog.prov_records", stats.prov_records);
            obs::gauge_max("datalog.prov_arena_bytes", stats.prov_bytes);
        }
        self.stats = stats;
    }

    /// One semi-naive iteration with concurrent rule evaluation.
    ///
    /// Builds the task list — one entry per fact-template rule and per
    /// (rule, non-empty delta occurrence), in the exact order the
    /// sequential loop would visit them — evaluates the join tasks in
    /// parallel against the immutable snapshot, then replays insertions
    /// sequentially in task order. Returns whether any relation grew.
    #[allow(clippy::cast_possible_truncation)]
    fn run_iteration_parallel(
        &mut self,
        compiled: &[CompiledRule],
        delta_lo: &[u32],
        snapshot: &[u32],
        record: bool,
        stats: &mut EngineStats,
    ) -> bool {
        const PAR_RULE_GRAIN: usize = 1;
        let mut tasks: Vec<(usize, Option<usize>)> = Vec::new();
        for (rule_idx, crule) in compiled.iter().enumerate() {
            if crule.atoms.is_empty() {
                tasks.push((rule_idx, None));
                continue;
            }
            for delta_pos in 0..crule.atoms.len() {
                let drel = crule.atoms[delta_pos].rel.index();
                if delta_lo[drel] < snapshot[drel] {
                    tasks.push((rule_idx, Some(delta_pos)));
                }
            }
        }

        let engine = &*self;
        let results = nadroid_par::map_chunks(tasks.len(), PAR_RULE_GRAIN, |range| {
            tasks[range]
                .iter()
                .map(|&(rule_idx, delta_pos)| {
                    let crule = &compiled[rule_idx];
                    let mut scratch: Vec<u32> = Vec::new();
                    let mut prov = ProvBuf::default();
                    let mut local = EngineStats::default();
                    match delta_pos {
                        None => {
                            // Fact template: all-constant head (checked).
                            scratch.extend(crule.head.iter().map(|p| match p {
                                KeyPart::Const(c) => *c,
                                KeyPart::Slot(_) => {
                                    unreachable!("checked: no unbound head vars")
                                }
                            }));
                            local.considered += 1;
                        }
                        Some(delta_pos) => {
                            prov.reset(crule.atoms.len(), record);
                            let mut stack_buf = [0u32; STACK_SLOTS];
                            let mut heap_buf;
                            let bindings: &mut [u32] = if crule.n_slots <= STACK_SLOTS {
                                &mut stack_buf[..]
                            } else {
                                heap_buf = vec![0u32; crule.n_slots];
                                &mut heap_buf[..]
                            };
                            engine.join(
                                crule,
                                0,
                                delta_pos,
                                delta_lo,
                                snapshot,
                                bindings,
                                &mut scratch,
                                &mut local,
                                &mut prov,
                            );
                        }
                    }
                    (rule_idx, delta_pos, scratch, prov, local)
                })
                .collect::<Vec<_>>()
        });

        let mut grew = false;
        for (_rule_idx, delta_pos, scratch, _prov, local) in results.into_iter().flatten() {
            stats.considered += local.considered;
            stats.index_probes += local.index_probes;
            let crule = &compiled[_rule_idx];
            let head_idx = crule.head_rel.index();
            if delta_pos.is_none() {
                if self.relations[head_idx].insert_row(&scratch) {
                    stats.derived += 1;
                    grew = true;
                    #[cfg(feature = "provenance")]
                    if record {
                        let rec = self.prov.records.len() as u32;
                        let start = self.prov.premises.len() as u32;
                        self.prov.records.push(ProvRecord {
                            rule: _rule_idx as u32,
                            start,
                            len: 0,
                        });
                        self.relations[head_idx].prov.push(rec);
                    }
                }
                continue;
            }
            for (_emit, tuple) in scratch.chunks_exact(crule.head.len()).enumerate() {
                if self.relations[head_idx].insert_row(tuple) {
                    stats.derived += 1;
                    grew = true;
                    #[cfg(feature = "provenance")]
                    if record {
                        let start = self.prov.premises.len() as u32;
                        for (atom, &row) in crule.atoms.iter().zip(_prov.premise_rows(_emit)) {
                            self.prov.premises.push((atom.rel, row));
                        }
                        let rec = self.prov.records.len() as u32;
                        self.prov.records.push(ProvRecord {
                            rule: _rule_idx as u32,
                            start,
                            len: crule.atoms.len() as u32,
                        });
                        self.relations[head_idx].prov.push(rec);
                    }
                }
            }
        }
        grew
    }

    /// Enumerate matches of `crule.atoms[pos..]`, with the atom at
    /// `delta_pos` restricted to its relation's delta row range, emitting
    /// head tuples into `out`. Candidate rows are visited in arena
    /// (first-derivation) order, which keeps the emission order identical
    /// to the naive engine's.
    #[allow(clippy::too_many_arguments)]
    fn join(
        &self,
        crule: &CompiledRule,
        pos: usize,
        delta_pos: usize,
        delta_lo: &[u32],
        snapshot: &[u32],
        bindings: &mut [u32],
        out: &mut Vec<u32>,
        stats: &mut EngineStats,
        prov: &mut ProvBuf,
    ) {
        if pos == crule.atoms.len() {
            out.extend(crule.head.iter().map(|p| match p {
                KeyPart::Const(c) => *c,
                KeyPart::Slot(s) => bindings[*s as usize],
            }));
            stats.considered += 1;
            prov.emit();
            return;
        }
        let atom = &crule.atoms[pos];
        let r = &self.relations[atom.rel.index()];
        let lo = if pos == delta_pos {
            delta_lo[atom.rel.index()]
        } else {
            0
        };
        let hi = snapshot[atom.rel.index()];

        let visit = |row_id: u32,
                     this: &Self,
                     bindings: &mut [u32],
                     out: &mut Vec<u32>,
                     stats: &mut EngineStats,
                     prov: &mut ProvBuf| {
            let row = r.row(row_id);
            for (col, action) in atom.actions.iter().enumerate() {
                match *action {
                    ColAction::Const(c) => {
                        if row[col] != c {
                            return;
                        }
                    }
                    ColAction::Eq(slot) => {
                        if row[col] != bindings[slot as usize] {
                            return;
                        }
                    }
                    ColAction::Bind(slot) => bindings[slot as usize] = row[col],
                }
            }
            prov.enter(pos, row_id);
            this.join(crule, pos + 1, delta_pos, delta_lo, snapshot, bindings, out, stats, prov);
        };

        if atom.mask == 0 {
            for row_id in lo..hi {
                visit(row_id, self, bindings, out, stats, prov);
            }
        } else {
            stats.index_probes += 1;
            let h = hash_vals(atom.key.iter().map(|p| match p {
                KeyPart::Const(c) => *c,
                KeyPart::Slot(s) => bindings[*s as usize],
            }));
            let idx = &r.indexes[&atom.mask];
            debug_assert!(idx.rows_indexed >= hi, "index extended before evaluation");
            if let Some(rows) = idx.map.get(&h) {
                // Rows are ascending; restrict to [lo, hi).
                let start = rows.partition_point(|&row| row < lo);
                for &row_id in &rows[start..] {
                    if row_id >= hi {
                        break;
                    }
                    visit(row_id, self, bindings, out, stats, prov);
                }
            }
        }
    }

    fn check_rule(&self, rule: &Rule) {
        let mut body_vars = HashSet::new();
        for atom in &rule.body {
            let r = &self.relations[atom.rel.index()];
            assert_eq!(
                atom.terms.len(),
                r.arity,
                "arity mismatch in body atom of {}",
                r.name
            );
            for t in &atom.terms {
                if let Term::Var(v) = t {
                    body_vars.insert(*v);
                }
            }
        }
        let hr = &self.relations[rule.head.rel.index()];
        assert_eq!(
            rule.head.terms.len(),
            hr.arity,
            "arity mismatch in head atom of {}",
            hr.name
        );
        for t in &rule.head.terms {
            if let Term::Var(v) = t {
                assert!(
                    body_vars.contains(v),
                    "head variable v{v} of rule for {} is unbound in the body",
                    hr.name
                );
            }
        }
    }
}

/// Compile one rule: dense slot assignment in order of first occurrence,
/// then a per-column action program and probe key for each body atom.
fn compile_rule(rule: &Rule) -> CompiledRule {
    let mut slot_of: HashMap<u8, u8> = HashMap::new();
    let slot = |v: u8, slot_of: &mut HashMap<u8, u8>| -> u8 {
        let next = slot_of.len() as u8;
        *slot_of.entry(v).or_insert(next)
    };

    let mut bound: HashSet<u8> = HashSet::new(); // slots bound by earlier atoms
    let mut atoms = Vec::with_capacity(rule.body.len());
    for atom in &rule.body {
        let mut mask = 0u32;
        let mut key = Vec::new();
        let mut actions = Vec::with_capacity(atom.terms.len());
        let mut bound_here: HashSet<u8> = HashSet::new();
        for (col, term) in atom.terms.iter().enumerate() {
            match *term {
                Term::Const(c) => {
                    mask |= 1 << col;
                    key.push(KeyPart::Const(c));
                    actions.push(ColAction::Const(c));
                }
                Term::Var(v) => {
                    let s = slot(v, &mut slot_of);
                    if bound.contains(&s) {
                        // Bound by an earlier atom: part of the probe key.
                        mask |= 1 << col;
                        key.push(KeyPart::Slot(s));
                        actions.push(ColAction::Eq(s));
                    } else if bound_here.contains(&s) {
                        // Repeated within this atom: post-fetch equality.
                        actions.push(ColAction::Eq(s));
                    } else {
                        bound_here.insert(s);
                        actions.push(ColAction::Bind(s));
                    }
                }
            }
        }
        bound.extend(bound_here);
        atoms.push(CompiledAtom {
            rel: atom.rel,
            mask,
            key,
            actions,
        });
    }

    let head = rule
        .head
        .terms
        .iter()
        .map(|t| match *t {
            Term::Const(c) => KeyPart::Const(c),
            Term::Var(v) => KeyPart::Slot(slot(v, &mut slot_of)),
        })
        .collect();

    CompiledRule {
        head_rel: rule.head.rel,
        head,
        atoms,
        n_slots: slot_of.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u8) -> Term {
        Term::var(i)
    }

    #[test]
    fn transitive_closure() {
        let mut db = Database::new();
        let edge = db.relation("edge", 2);
        let path = db.relation("path", 2);
        for e in [[0u32, 1], [1, 2], [2, 3], [3, 4]] {
            db.insert(edge, &e);
        }
        let mut rules = RuleSet::new();
        rules
            .add(path, vec![v(0), v(1)])
            .when(edge, vec![v(0), v(1)]);
        rules
            .add(path, vec![v(0), v(2)])
            .when(path, vec![v(0), v(1)])
            .when(edge, vec![v(1), v(2)]);
        db.run(&rules);
        assert_eq!(db.len(path), 10); // 4+3+2+1
        assert!(db.contains(path, &[0, 4]));
        assert!(!db.contains(path, &[4, 0]));
    }

    #[test]
    fn fixpoint_is_idempotent() {
        let mut db = Database::new();
        let edge = db.relation("edge", 2);
        let path = db.relation("path", 2);
        db.insert(edge, &[0, 1]);
        db.insert(edge, &[1, 0]); // cycle
        let mut rules = RuleSet::new();
        rules
            .add(path, vec![v(0), v(1)])
            .when(edge, vec![v(0), v(1)]);
        rules
            .add(path, vec![v(0), v(2)])
            .when(path, vec![v(0), v(1)])
            .when(path, vec![v(1), v(2)]);
        db.run(&rules);
        let n = db.len(path);
        assert_eq!(n, 4); // {0,1}²
        db.run(&rules);
        assert_eq!(db.len(path), n);
    }

    #[test]
    fn constants_filter_joins() {
        let mut db = Database::new();
        let edge = db.relation("edge", 2);
        let from_zero = db.relation("fromZero", 1);
        db.insert(edge, &[0, 1]);
        db.insert(edge, &[5, 6]);
        let mut rules = RuleSet::new();
        rules
            .add(from_zero, vec![v(0)])
            .when(edge, vec![Term::val(0), v(0)]);
        db.run(&rules);
        assert_eq!(db.len(from_zero), 1);
        assert!(db.contains(from_zero, &[1]));
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let mut db = Database::new();
        let edge = db.relation("edge", 2);
        let self_loop = db.relation("selfLoop", 1);
        db.insert(edge, &[3, 3]);
        db.insert(edge, &[3, 4]);
        let mut rules = RuleSet::new();
        rules
            .add(self_loop, vec![v(0)])
            .when(edge, vec![v(0), v(0)]);
        db.run(&rules);
        assert_eq!(db.len(self_loop), 1);
        assert!(db.contains(self_loop, &[3]));
    }

    #[test]
    fn fact_rules_insert_constants() {
        let mut db = Database::new();
        let marker = db.relation("marker", 1);
        let mut rules = RuleSet::new();
        rules.add(marker, vec![Term::val(42)]);
        db.run(&rules);
        assert!(db.contains(marker, &[42]));
    }

    #[test]
    #[should_panic(expected = "unbound in the body")]
    fn unbound_head_var_panics() {
        let mut db = Database::new();
        let a = db.relation("a", 1);
        let b = db.relation("b", 1);
        let mut rules = RuleSet::new();
        rules.add(a, vec![v(1)]).when(b, vec![v(0)]);
        db.run(&rules);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut db = Database::new();
        let a = db.relation("a", 2);
        db.insert(a, &[1]);
    }

    #[test]
    fn three_way_join() {
        // grandparent(x, z) :- parent(x, y), parent(y, z), person(z).
        let mut db = Database::new();
        let parent = db.relation("parent", 2);
        let person = db.relation("person", 1);
        let gp = db.relation("grandparent", 2);
        db.insert(parent, &[1, 2]);
        db.insert(parent, &[2, 3]);
        db.insert(person, &[3]);
        let mut rules = RuleSet::new();
        rules
            .add(gp, vec![v(0), v(2)])
            .when(parent, vec![v(0), v(1)])
            .when(parent, vec![v(1), v(2)])
            .when(person, vec![v(2)]);
        db.run(&rules);
        assert_eq!(db.len(gp), 1);
        assert!(db.contains(gp, &[1, 3]));
    }

    #[test]
    fn incremental_inserts_then_rerun() {
        let mut db = Database::new();
        let edge = db.relation("edge", 2);
        let path = db.relation("path", 2);
        let mut rules = RuleSet::new();
        rules
            .add(path, vec![v(0), v(1)])
            .when(edge, vec![v(0), v(1)]);
        rules
            .add(path, vec![v(0), v(2)])
            .when(path, vec![v(0), v(1)])
            .when(edge, vec![v(1), v(2)]);
        db.insert(edge, &[0, 1]);
        db.run(&rules);
        assert_eq!(db.len(path), 1);
        db.insert(edge, &[1, 2]);
        db.run(&rules);
        assert!(db.contains(path, &[0, 2]));
        assert_eq!(db.len(path), 3);
    }

    #[test]
    fn deterministic_iteration_order() {
        let mut db = Database::new();
        let r = db.relation("r", 1);
        for i in (0..10).rev() {
            db.insert(r, &[i]);
        }
        let order: Vec<u32> = db.tuples(r).map(|t| t[0]).collect();
        assert_eq!(order, (0..10).rev().collect::<Vec<_>>());
    }

    #[test]
    fn diamond_derivations_deduplicate() {
        let mut db = Database::new();
        let e = db.relation("e", 2);
        let p = db.relation("p", 2);
        // two paths from 0 to 3
        for t in [[0u32, 1], [0, 2], [1, 3], [2, 3]] {
            db.insert(e, &t);
        }
        let mut rules = RuleSet::new();
        rules.add(p, vec![v(0), v(1)]).when(e, vec![v(0), v(1)]);
        rules
            .add(p, vec![v(0), v(2)])
            .when(p, vec![v(0), v(1)])
            .when(e, vec![v(1), v(2)]);
        db.run(&rules);
        assert!(db.contains(p, &[0, 3]));
        assert_eq!(db.len(p), 5); // 4 edges + (0,3) once
    }

    // ------- index/plan-specific coverage (new engine) -------

    #[test]
    fn rerun_with_unchanged_facts_is_near_zero_work() {
        let mut db = Database::new();
        let edge = db.relation("edge", 2);
        let path = db.relation("path", 2);
        for i in 0..50u32 {
            db.insert(edge, &[i, i + 1]);
        }
        let mut rules = RuleSet::new();
        rules
            .add(path, vec![v(0), v(1)])
            .when(edge, vec![v(0), v(1)]);
        rules
            .add(path, vec![v(0), v(2)])
            .when(path, vec![v(0), v(1)])
            .when(edge, vec![v(1), v(2)]);
        db.run(&rules);
        let first = *db.stats();
        assert!(first.derived > 0);
        db.run(&rules);
        let second = *db.stats();
        assert_eq!(second.derived, 0, "high-water mark skips re-derivation");
        assert_eq!(
            second.considered, 0,
            "empty deltas produce no candidate tuples at all"
        );
        assert_eq!(second.iterations, 1);
    }

    #[test]
    fn changing_rules_resets_the_high_water_mark() {
        let mut db = Database::new();
        let edge = db.relation("edge", 2);
        let path = db.relation("path", 2);
        let rev = db.relation("rev", 2);
        db.insert(edge, &[1, 2]);
        let mut rules = RuleSet::new();
        rules
            .add(path, vec![v(0), v(1)])
            .when(edge, vec![v(0), v(1)]);
        db.run(&rules);
        assert_eq!(db.len(path), 1);
        // A different rule set must see the *existing* facts as delta.
        let mut rules2 = RuleSet::new();
        rules2.add(rev, vec![v(1), v(0)]).when(edge, vec![v(0), v(1)]);
        db.run(&rules2);
        assert!(db.contains(rev, &[2, 1]));
    }

    #[test]
    fn constants_probe_indexes_correctly() {
        // Two constant columns + one variable: the probe key mixes
        // constants and bound slots.
        let mut db = Database::new();
        let t = db.relation("t", 3);
        let out = db.relation("out", 1);
        db.insert(t, &[1, 10, 100]);
        db.insert(t, &[1, 20, 100]);
        db.insert(t, &[2, 10, 100]);
        db.insert(t, &[1, 10, 200]);
        let mut rules = RuleSet::new();
        // out(z) :- t(1, 10, z).
        rules
            .add(out, vec![v(0)])
            .when(t, vec![Term::val(1), Term::val(10), v(0)]);
        db.run(&rules);
        let zs: Vec<u32> = db.tuples(out).map(|r| r[0]).collect();
        assert_eq!(zs, vec![100, 200]);
    }

    #[test]
    fn repeated_variable_across_atoms_probes_bound_slot() {
        // second(y) :- a(x, y), b(y, x): both columns of b are bound.
        let mut db = Database::new();
        let a = db.relation("a", 2);
        let b = db.relation("b", 2);
        let out = db.relation("second", 1);
        db.insert(a, &[1, 2]);
        db.insert(a, &[3, 4]);
        db.insert(b, &[2, 1]);
        db.insert(b, &[4, 9]); // mismatched x: must not join
        let mut rules = RuleSet::new();
        rules
            .add(out, vec![v(1)])
            .when(a, vec![v(0), v(1)])
            .when(b, vec![v(1), v(0)]);
        db.run(&rules);
        assert_eq!(db.len(out), 1);
        assert!(db.contains(out, &[2]));
    }

    #[test]
    fn triple_repeated_variable_within_atom() {
        let mut db = Database::new();
        let t = db.relation("t", 3);
        let out = db.relation("diag", 1);
        db.insert(t, &[7, 7, 7]);
        db.insert(t, &[7, 7, 8]);
        db.insert(t, &[1, 2, 3]);
        let mut rules = RuleSet::new();
        rules.add(out, vec![v(0)]).when(t, vec![v(0), v(0), v(0)]);
        db.run(&rules);
        assert_eq!(db.len(out), 1);
        assert!(db.contains(out, &[7]));
    }

    #[test]
    fn stats_reflect_index_usage() {
        let mut db = Database::new();
        let edge = db.relation("edge", 2);
        let path = db.relation("path", 2);
        for i in 0..20u32 {
            db.insert(edge, &[i, i + 1]);
        }
        let mut rules = RuleSet::new();
        rules
            .add(path, vec![v(0), v(1)])
            .when(edge, vec![v(0), v(1)]);
        rules
            .add(path, vec![v(0), v(2)])
            .when(path, vec![v(0), v(1)])
            .when(edge, vec![v(1), v(2)]);
        db.run(&rules);
        let s = *db.stats();
        assert!(s.index_probes > 0, "the closure rule probes edge by column 0");
        assert!(s.indexes_built > 0);
        assert!(s.derived >= 20 * 21 / 2);
        assert!(s.iterations > 2);
        assert!(s.tuples_per_sec() >= 0.0);
    }

    // ------- provenance recording -------

    /// edge 0→1→2 plus the closure rules; recording enabled up front.
    #[cfg(feature = "provenance")]
    fn recorded_closure() -> (Database, RelId, RelId) {
        let mut db = Database::new();
        db.set_provenance(true);
        let edge = db.relation("edge", 2);
        let path = db.relation("path", 2);
        db.insert(edge, &[0, 1]);
        db.insert(edge, &[1, 2]);
        let mut rules = RuleSet::new();
        rules
            .add(path, vec![v(0), v(1)])
            .when(edge, vec![v(0), v(1)]);
        rules
            .add(path, vec![v(0), v(2)])
            .when(path, vec![v(0), v(1)])
            .when(edge, vec![v(1), v(2)]);
        db.run(&rules);
        (db, edge, path)
    }

    #[test]
    #[cfg(feature = "provenance")]
    fn explain_base_fact_is_a_leaf() {
        let (db, edge, _) = recorded_closure();
        let d = db.explain(edge, &[0, 1]).expect("recorded");
        assert_eq!(d.rule, None);
        assert!(d.is_base());
        assert!(d.premises.is_empty());
        assert_eq!(d.tuple, vec![0, 1]);
        assert_eq!(d.node_count(), 1);
        assert_eq!(d.depth(), 1);
    }

    #[test]
    #[cfg(feature = "provenance")]
    fn explain_reconstructs_the_derivation_tree() {
        let (db, edge, path) = recorded_closure();
        // path(0,2) :- path(0,1), edge(1,2); path(0,1) :- edge(0,1).
        let d = db.explain(path, &[0, 2]).expect("recorded");
        assert_eq!(d.rule, Some(1));
        assert_eq!(d.premises.len(), 2);
        assert_eq!(d.premises[0].rel, path);
        assert_eq!(d.premises[0].tuple, vec![0, 1]);
        assert_eq!(d.premises[0].rule, Some(0));
        assert_eq!(d.premises[0].premises.len(), 1);
        assert_eq!(d.premises[0].premises[0].rel, edge);
        assert!(d.premises[0].premises[0].is_base());
        assert_eq!(d.premises[1].rel, edge);
        assert_eq!(d.premises[1].tuple, vec![1, 2]);
        assert!(d.premises[1].is_base());
        assert_eq!(d.node_count(), 4);
        assert_eq!(d.depth(), 3);
    }

    #[test]
    #[cfg(feature = "provenance")]
    fn diamond_keeps_the_first_derivation() {
        let mut db = Database::new();
        db.set_provenance(true);
        let e = db.relation("e", 2);
        let p = db.relation("p", 2);
        for t in [[0u32, 1], [0, 2], [1, 3], [2, 3]] {
            db.insert(e, &t);
        }
        let mut rules = RuleSet::new();
        rules.add(p, vec![v(0), v(1)]).when(e, vec![v(0), v(1)]);
        rules
            .add(p, vec![v(0), v(2)])
            .when(p, vec![v(0), v(1)])
            .when(e, vec![v(1), v(2)]);
        db.run(&rules);
        // p(0,3) is derivable via p(0,1),e(1,3) and via p(0,2),e(2,3);
        // the arena scans p in first-derivation order, so (0,1) wins.
        let d = db.explain(p, &[0, 3]).expect("recorded");
        assert_eq!(d.rule, Some(1));
        assert_eq!(d.premises[0].tuple, vec![0, 1]);
        assert_eq!(d.premises[1].tuple, vec![1, 3]);
    }

    #[test]
    #[cfg(feature = "provenance")]
    fn fact_template_rules_record_premise_free_derivations() {
        let mut db = Database::new();
        db.set_provenance(true);
        let marker = db.relation("marker", 1);
        let mut rules = RuleSet::new();
        rules.add(marker, vec![Term::val(42)]);
        db.run(&rules);
        let d = db.explain(marker, &[42]).expect("recorded");
        assert_eq!(d.rule, Some(0), "derived by the fact template, not EDB");
        assert!(d.premises.is_empty());
    }

    #[test]
    fn explain_without_recording_returns_none() {
        let mut db = Database::new();
        let edge = db.relation("edge", 2);
        db.insert(edge, &[0, 1]);
        db.run(&RuleSet::new());
        assert_eq!(db.explain(edge, &[0, 1]), None);
        assert_eq!(db.provenance_bytes(), 0);
        assert_eq!(db.stats().prov_records, 0);
        assert_eq!(db.stats().prov_bytes, 0);
    }

    #[test]
    #[cfg(feature = "provenance")]
    fn enabling_mid_life_backfills_base_facts_and_disabling_discards() {
        let mut db = Database::new();
        let edge = db.relation("edge", 2);
        let path = db.relation("path", 2);
        db.insert(edge, &[0, 1]); // inserted before recording starts
        db.set_provenance(true);
        db.insert(edge, &[1, 2]);
        let mut rules = RuleSet::new();
        rules
            .add(path, vec![v(0), v(1)])
            .when(edge, vec![v(0), v(1)]);
        db.run(&rules);
        let d = db.explain(path, &[0, 1]).expect("recorded");
        assert!(d.premises[0].is_base(), "backfilled row reads as base fact");
        assert!(db.provenance_bytes() > 0);
        db.set_provenance(false);
        assert_eq!(db.explain(path, &[0, 1]), None);
        assert_eq!(db.provenance_bytes(), 0);
    }

    #[test]
    #[cfg(feature = "provenance")]
    fn explain_of_absent_tuple_is_none() {
        let (db, edge, path) = recorded_closure();
        assert_eq!(db.explain(edge, &[7, 8]), None);
        assert_eq!(db.explain(path, &[2, 0]), None);
    }

    #[test]
    #[cfg(feature = "provenance")]
    fn stats_count_provenance_records() {
        let (db, _, _) = recorded_closure();
        let s = *db.stats();
        assert_eq!(s.prov_records, s.derived, "one record per derived tuple");
        assert!(s.prov_bytes > 0);
    }

    #[test]
    fn recording_does_not_change_contents_or_order() {
        let build = |record: bool| {
            let mut db = Database::new();
            db.set_provenance(record);
            let edge = db.relation("edge", 2);
            let path = db.relation("path", 2);
            for i in 0..12u32 {
                db.insert(edge, &[i, (i + 1) % 12]);
                db.insert(edge, &[i, (i + 5) % 12]);
            }
            let mut rules = RuleSet::new();
            rules
                .add(path, vec![v(0), v(1)])
                .when(edge, vec![v(0), v(1)]);
            rules
                .add(path, vec![v(0), v(2)])
                .when(path, vec![v(0), v(1)])
                .when(edge, vec![v(1), v(2)]);
            db.run(&rules);
            db.tuples(path).map(<[u32]>::to_vec).collect::<Vec<_>>()
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn wide_rules_fall_back_to_heap_bindings() {
        // 17 distinct variables exceed the stack-slot budget.
        let mut db = Database::new();
        let wide = db.relation("wide", 17);
        let out = db.relation("out", 17);
        let tuple: Vec<u32> = (0..17).collect();
        db.insert(wide, &tuple);
        let mut rules = RuleSet::new();
        #[allow(clippy::cast_possible_truncation)]
        let vars: Vec<Term> = (0..17).map(|i| v(i as u8)).collect();
        rules.add(out, vars.clone()).when(wide, vars);
        db.run(&rules);
        assert!(db.contains(out, &tuple));
    }
}
